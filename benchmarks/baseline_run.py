"""The shared 34-node baseline experiment (paper Section 4.2).

Figures 7-12 all come from one deployment: 34 PlanetLab nodes congruent
with the Abilene+GÉANT router sites, three indices, three days of traffic
replayed at the real timescale, and periodic 5-minute-window queries with
uniformly random attribute ranges.

This module runs a scaled version of that deployment exactly once per
pytest session and hands the same results object to every figure's
benchmark:

* 3 synthetic days x 2 hour-slots (11:30 and 23:30), each replayed as a
  5-minute slice at the paper's timescale (documented scale-down from the
  paper's hour-long measurement slots over 9M records/day);
* per-slot insertion metrics, query metrics, per-link traffic counters
  and per-link delay samples.
"""

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from benchmarks.helpers import planetlab_calibration

from repro.bench.workload import replay, timed_index_records
from repro.core.cluster import MindCluster
from repro.core.cuts import BalancedCuts
from repro.core.embedding import Embedding
from repro.core.histogram import MultiDimHistogram
from repro.core.metrics import InsertMetric, QueryMetric
from repro.core.query import RangeQuery
from repro.net.topology import backbone_sites
from repro.traffic.datasets import baseline_generator
from repro.traffic.generator import TrafficConfig
from repro.traffic.indices import index1_schema, index2_schema, index3_schema

SLICE_LEN = 300.0
SLOTS: List[Tuple[int, float, str]] = [
    (day, tod, f"day{day + 1}-{label}")
    for day in range(3)
    for tod, label in ((11.5 * 3600.0, "11:30"), (23.5 * 3600.0, "23:30"))
]
THRESHOLDS = {"index1": 4.0, "index2": 20_000.0, "index3": 2_000.0}
QUERIES_PER_SLOT = 30
HORIZON = 4 * 86400.0

QUERY_ATTRS = {
    "index1": ("fanout", 5024.0),
    "index2": ("octets", 2_000_000.0),
    "index3": ("flow_size", 128_000.0),
}


@dataclass
class BaselineRun:
    cluster: MindCluster
    slot_inserts: Dict[str, List[InsertMetric]] = field(default_factory=dict)
    slot_queries: Dict[str, List[QueryMetric]] = field(default_factory=dict)
    total_records: int = 0

    @property
    def all_inserts(self) -> List[InsertMetric]:
        return [m for slot in self.slot_inserts.values() for m in slot]

    @property
    def all_queries(self) -> List[QueryMetric]:
        return [m for slot in self.slot_queries.values() for m in slot]


_CACHE: List[BaselineRun] = []


#: The paper's periodic queries use a 5-minute window over 3 days of data
#: (~0.1% of the inserted mass).  Our trace replays six 5-minute slices, so
#: the mass-equivalent window is scaled to 30 seconds; EXPERIMENTS.md
#: documents this.
QUERY_WINDOW_S = 30.0


#: The address span actually carrying traffic (GÉANT pool at 62/8 through
#: the Abilene pool above 128/8).  The paper's "uniform" ranges were
#: uniform over its real traffic's address space; drawing over the whole
#: 2^32 domain would make every query contain all of our synthetic sliver.
DEST_SPAN = (62.0 * 2**24, 128.0 * 2**24 + 192.0 * 2**16)


def _random_query(rng: random.Random, index: str, trace_t0: float, slice_len: float) -> RangeQuery:
    """Uniformly sized ranges on non-time attributes, scaled time window."""
    attr, cap = QUERY_ATTRS[index]
    t0 = trace_t0 + rng.random() * max(0.0, slice_len - QUERY_WINDOW_S)
    dest_a, dest_b = sorted(rng.uniform(*DEST_SPAN) for _ in range(2))
    val_a, val_b = sorted(rng.uniform(0, cap) for _ in range(2))
    return RangeQuery(
        index,
        {
            "timestamp": (t0, t0 + QUERY_WINDOW_S),
            "dest_prefix": (dest_a, dest_b),
            attr: (val_a, val_b),
        },
    )


def get_baseline_run() -> BaselineRun:
    """Run (once) and return the shared baseline experiment."""
    if _CACHE:
        return _CACHE[0]

    config = planetlab_calibration(seed=700, record_link_delays=True)
    cluster = MindCluster(backbone_sites(), config)
    cluster.build()

    gen = baseline_generator(seed=701, config=TrafficConfig(seed=701, flows_per_second=1.0))

    # As in the paper's experiments, balanced cuts are computed off-line
    # from the previous day's distribution and installed at the nodes; each
    # subsequent day gets a version whose histogram is shifted forward in
    # time (the mix is stationary, the clock is not).
    schemas = {
        "index1": index1_schema(HORIZON),
        "index2": index2_schema(HORIZON),
        "index3": index3_schema(HORIZON),
    }
    day0 = timed_index_records(gen, 0, SLOTS[0][1], SLICE_LEN, thresholds=THRESHOLDS)
    day0 += timed_index_records(gen, 0, SLOTS[1][1], SLICE_LEN, thresholds=THRESHOLDS)
    histograms = {}
    for name, schema in schemas.items():
        hist = MultiDimHistogram(3, (65536, 8192, 64))
        for item in day0:
            if item.index == name:
                hist.add(schema.normalize(item.record.values))
        histograms[name] = hist
    time_shift = 86400.0 / HORIZON
    for name, schema in schemas.items():
        cluster.create_index(schema, strategy=BalancedCuts(histograms[name]), replication=1)
        for day in (1, 2):
            shifted = histograms[name].shifted(1, day * time_shift)
            cluster.install_version(
                name, day * 86400.0, Embedding(schema, BalancedCuts(shifted), code_depth=16)
            )

    run = BaselineRun(cluster=cluster)
    rng = random.Random(702)
    origins = [s.name for s in backbone_sites()]

    for day, tod, label in SLOTS:
        before_inserts = len(cluster.metrics.inserts)
        before_queries = len(cluster.metrics.queries)
        timed = timed_index_records(
            gen, day, tod, SLICE_LEN, thresholds=THRESHOLDS
        )
        run.total_records += len(timed)
        start, end = replay(cluster, timed)
        trace_t0 = day * 86400.0 + tod
        for i in range(QUERIES_PER_SLOT):
            index = ("index1", "index2", "index3")[i % 3]
            query = _random_query(rng, index, trace_t0, SLICE_LEN)
            at = start + (i + 1) * (end - start) / (QUERIES_PER_SLOT + 1)
            cluster.schedule_query(query, rng.choice(origins), at)
        cluster.advance((end - start) + 90.0)
        run.slot_inserts[label] = cluster.metrics.inserts[before_inserts:]
        run.slot_queries[label] = cluster.metrics.queries[before_queries:]

    _CACHE.append(run)
    return run
