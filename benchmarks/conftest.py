"""Pytest hooks for the benchmark suite (helpers live in helpers.py)."""
