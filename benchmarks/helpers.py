"""Shared configuration for the figure-reproduction benchmarks.

Scaling note (applies to every benchmark): the paper inserted ~9M records
per day over multi-day PlanetLab runs.  A discrete-event simulation cannot
replay that volume in a test suite, so each benchmark replays a shorter
trace slice at the paper's timescale with the distributional parameters
unchanged, and says so in its output.  Latencies are calibrated to the
2004 PlanetLab regime via :func:`planetlab_calibration` (slow Java/MySQL
nodes, heavily shared hosts); the *shape* of each figure — who wins, by
what factor, where the tails and crossovers are — is the reproduction
target, not absolute milliseconds.
"""

from repro.core.cluster import ClusterConfig
from repro.core.mind_node import MindConfig
from repro.net.latency import LatencyModel
from repro.overlay.node import OverlayConfig
from repro.storage.dac import DacConfig


def planetlab_calibration(seed: int = 0, **overrides) -> ClusterConfig:
    """A ClusterConfig tuned to the paper's PlanetLab-era latency regime.

    Per-message dispatch ~25 ms and per-record DB work ~40 ms reflect the
    prototype's Java message handling and MySQL-over-JDBC on 2004 shared
    hosts; one in twelve nodes is badly overloaded.
    """
    config = ClusterConfig(
        seed=seed,
        overlay=OverlayConfig(service_time_s=0.025, service_jitter_sigma=0.8),
        mind=MindConfig(
            code_depth=12,
            dac=DacConfig(
                insert_time_s=0.04,
                query_base_s=0.08,
                query_per_record_s=0.0015,
                replica_insert_time_s=0.03,
            ),
        ),
        latency=LatencyModel(pathology_prob=0.004, pathology_scale_s=0.8),
        slow_node_fraction=0.08,
        slow_factor=6.0,
    )
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


def run_once(benchmark, func):
    """Run an experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)
