"""Performance microbenchmarks and the perf-regression harness.

Run ``PYTHONPATH=src python benchmarks/perf/run.py`` to execute the suite
and write ``BENCH_PERF.json``; every future PR compares against that
trajectory.  The runner exits non-zero if the vectorized columnar paths
ever fall behind the scalar reference on the query-scan microbenchmark.
"""
