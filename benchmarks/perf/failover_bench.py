"""Failure-handling scenario for the perf harness.

A small liveness-off cluster at replication 1 loses one node, then
answers strip queries that must complete via the retry/failover path
(with liveness disabled nothing takes the dead region over, so replica
failover is the *only* way to completeness).  The counters land in
``BENCH_PERF.json`` next to the microbench timings, so regressions in
failure handling — retries that stop firing, failovers that stop landing
on replica holders, replica results that stop merging — show up in the
same perf trajectory as latency regressions.
"""

from typing import Dict

from repro.core.cluster import ClusterConfig, MindCluster
from repro.core.metrics import MetricsCollector
from repro.core.mind_node import MindConfig
from repro.core.query import RangeQuery
from repro.core.records import Record
from repro.core.schema import AttributeSpec, IndexSchema
from repro.overlay.node import OverlayConfig


def run_failover_scenario(
    seed: int = 11,
    nodes: int = 16,
    records: int = 150,
    queries: int = 8,
) -> Dict[str, object]:
    """One dead primary, replication 1: every query must still complete."""
    overlay = OverlayConfig(liveness_enabled=False)
    mind = MindConfig(
        subquery_attempt_timeout_s=6.0,
        insert_attempt_timeout_s=6.0,
        retry_backoff_base_s=0.25,
        retry_backoff_max_s=2.0,
    )
    config = ClusterConfig(
        seed=seed,
        overlay=overlay,
        mind=mind,
        track_ground_truth=True,
        slow_node_fraction=0.0,
    )
    cluster = MindCluster(nodes, config)
    cluster.build()
    schema = IndexSchema(
        "f",
        attributes=[
            AttributeSpec("x", 0.0, 1000.0),
            AttributeSpec("timestamp", 0.0, 86400.0, is_time=True),
            AttributeSpec("v", 0.0, 100.0),
        ],
    )
    cluster.create_index(schema, replication=1)

    rng = cluster.sim.rng("bench.failover")
    observer = cluster.nodes[0].address
    for _ in range(records):
        record = Record([rng.uniform(0, 1000), rng.uniform(0, 86400), rng.uniform(0, 100)])
        cluster.insert_now("f", record, origin=observer)
    cluster.advance(10.0)  # replica stores drain

    victim = cluster.nodes[1 + int(rng.random() * (nodes - 1))].address
    cluster.failures.crash_node(victim, at_in_s=1.0)
    cluster.advance(5.0)

    strip = 1000.0 / queries
    query_metrics = []
    full_recall = 0
    for i in range(queries):
        query = RangeQuery("f", {"x": (i * strip, (i + 1) * strip)})
        expected = cluster.reference_answer(query)
        metric = cluster.query_now(query, origin=observer, timeout_s=200.0)
        query_metrics.append(metric)
        if metric.complete and expected <= metric.record_keys:
            full_recall += 1

    scoped = MetricsCollector()
    scoped.inserts = list(cluster.metrics.inserts)
    scoped.queries = query_metrics
    return {
        "nodes": nodes,
        "records": records,
        "queries": queries,
        "victim": victim,
        "complete_fraction": sum(1 for m in query_metrics if m.complete) / queries,
        "full_recall_fraction": full_recall / queries,
        "counters": scoped.failure_handling(),
    }
