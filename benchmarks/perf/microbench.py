"""Microbenchmarks for the vectorized columnar hot paths.

Each benchmark times the scalar reference implementation against the
NumPy-vectorized path on identical inputs and reports wall time plus the
speedup.  Workload shape follows the paper's Index-1-style deployment: a
3-dimensional index (address-like attribute, timestamp, scalar fanout)
over a day of records, queried in 5-minute monitoring windows.
"""

import random
import time
from typing import Callable, Dict, List, Tuple

from repro.core.balance import derive_cut_tree, histogram_from_records
from repro.core.cuts import BalancedCuts
from repro.core.embedding import Embedding
from repro.core.query import RangeQuery
from repro.core.records import Record
from repro.core.schema import AttributeSpec, IndexSchema
from repro.net.message import ISOLATE_COPY, ISOLATE_FREEZE, ISOLATE_OFF, Message
from repro.storage.memtable import TimePartitionedStore

DAY_S = 86400.0

SCHEMA = IndexSchema(
    "perf-index1",
    attributes=[
        AttributeSpec("dest_prefix", 0.0, 2.0**32),
        AttributeSpec("timestamp", 0.0, DAY_S, is_time=True),
        AttributeSpec("fanout", 0.0, 4096.0),
    ],
)

#: Histogram granularity for the cut-derivation benches; modest on purpose
#: so the scalar reference finishes in reasonable time.
GRAINS = (256, 512, 64)


def make_records(n: int, seed: int = 7) -> List[Record]:
    """A skewed day of synthetic monitoring records (deterministic)."""
    rng = random.Random(seed)
    records = []
    for _ in range(n):
        # Zipf-ish destination popularity: a few hot /8s, a long tail.
        prefix = (rng.paretovariate(1.2) * 2.0**24) % 2.0**32
        timestamp = rng.random() * DAY_S
        fanout = min(rng.paretovariate(1.5) * 4.0, 5000.0)  # some clamp out of domain
        records.append(Record((prefix, timestamp, fanout)))
    return records


def make_queries(n: int, seed: int = 11) -> List[RangeQuery]:
    """Fig-9-style monitoring queries: 5-minute windows, ranged attributes."""
    rng = random.Random(seed)
    queries = []
    for _ in range(n):
        t0 = rng.random() * (DAY_S - 300.0)
        p0 = rng.random() * (2.0**32) * 0.9
        queries.append(
            RangeQuery(
                SCHEMA.name,
                {
                    "dest_prefix": (p0, p0 + 2.0**28),
                    "timestamp": (t0, t0 + 300.0),
                    "fanout": (8.0, None),
                },
            )
        )
    return queries


def _timed(fn: Callable[[], object]) -> Tuple[float, object]:
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _timed_best_pair(
    a: Callable[[], object], b: Callable[[], object], repeats: int = 3
) -> Tuple[float, object, float, object]:
    """Interleaved best-of-N wall times for two read-only benchmarks.

    The query-scan bench gates CI on scalar-vs-vectorized speedup; at
    smoke-test scale a single run is a handful of milliseconds and
    scheduler noise alone can flip the ratio.  Min-of-N filters spikes,
    and interleaving the two sides (a, b, a, b, ...) keeps slow phases of
    the host machine from landing entirely on one of them.
    """
    best_a = best_b = float("inf")
    result_a: object = None
    result_b: object = None
    for _ in range(repeats):
        elapsed, result_a = _timed(a)
        best_a = min(best_a, elapsed)
        elapsed, result_b = _timed(b)
        best_b = min(best_b, elapsed)
    return best_a, result_a, best_b, result_b


def _entry(scalar_s: float, vectorized_s: float, **extra) -> Dict:
    entry = {
        "scalar_s": round(scalar_s, 6),
        "vectorized_s": round(vectorized_s, 6),
        "speedup": round(scalar_s / vectorized_s, 3) if vectorized_s > 0 else float("inf"),
    }
    entry.update(extra)
    return entry


# ----------------------------------------------------------------------
# Benchmarks
# ----------------------------------------------------------------------
def bench_insert(records: List[Record]) -> Dict:
    """Insert throughput: per-record scalar inserts vs one batched insert."""
    scalar_store = TimePartitionedStore(SCHEMA, vectorized=False)
    scalar_s, _ = _timed(lambda: [scalar_store.insert(r) for r in records])
    vector_store = TimePartitionedStore(SCHEMA, vectorized=True)
    vectorized_s, inserted = _timed(lambda: vector_store.insert_batch(records))
    assert inserted == len(scalar_store) == len(vector_store)
    return _entry(
        scalar_s,
        vectorized_s,
        records=len(records),
        vectorized_records_per_s=round(len(records) / vectorized_s) if vectorized_s else None,
    )


def bench_query_scan(records: List[Record], queries: List[RangeQuery]) -> Dict:
    """Rectangle-scan throughput over identical populated stores."""
    scalar_store = TimePartitionedStore(SCHEMA, vectorized=False)
    vector_store = TimePartitionedStore(SCHEMA, vectorized=True)
    for r in records:
        scalar_store.insert(r)
    vector_store.insert_batch(records)
    rects = [q.normalized_rect(SCHEMA) for q in queries]

    def run(store: TimePartitionedStore) -> int:
        hits = 0
        for rect in rects:
            hits += len(store.query(rect))
        return hits

    scalar_s, scalar_hits, vectorized_s, vector_hits = _timed_best_pair(
        lambda: run(scalar_store), lambda: run(vector_store)
    )
    assert scalar_hits == vector_hits
    scanned = len(records) * len(queries)
    return _entry(
        scalar_s,
        vectorized_s,
        records=len(records),
        queries=len(queries),
        hits=vector_hits,
        vectorized_scans_per_s=round(scanned / vectorized_s) if vectorized_s else None,
    )


def bench_histogram_build(records: List[Record]) -> Dict:
    """Daily-histogram construction: per-record adds vs one add_batch."""
    scalar_s, scalar_hist = _timed(
        lambda: histogram_from_records(SCHEMA, records, GRAINS, vectorized=False)
    )
    vectorized_s, vector_hist = _timed(
        lambda: histogram_from_records(SCHEMA, records, GRAINS, vectorized=True)
    )
    assert scalar_hist.cell_counts() == vector_hist.cell_counts()
    return _entry(
        scalar_s,
        vectorized_s,
        records=len(records),
        occupied_cells=vector_hist.occupied_cells,
    )


def bench_balanced_cut(records: List[Record], depth: int = 10) -> Dict:
    """Full balanced-cut tree derivation (weighted medians per prefix)."""
    hist = histogram_from_records(SCHEMA, records, GRAINS)
    scalar_s, scalar_cuts = _timed(lambda: derive_cut_tree(hist, depth, vectorized=False))
    vectorized_s, vector_cuts = _timed(lambda: derive_cut_tree(hist, depth, vectorized=True))
    assert scalar_cuts == vector_cuts
    return _entry(scalar_s, vectorized_s, depth=depth, cuts=len(vector_cuts))


def bench_fig9_workload(records: List[Record], queries: List[RangeQuery]) -> Dict:
    """End-to-end Fig-9-style workload at the node-local level.

    Build the day's balanced embedding, batch-code every record, then
    answer the 5-minute monitoring queries against a populated store —
    the exact per-node work a cluster-level Figure 9 run multiplies out.
    """
    def run(vectorized: bool) -> int:
        hist = histogram_from_records(SCHEMA, records, GRAINS, vectorized=vectorized)
        embedding = Embedding(SCHEMA, BalancedCuts(hist), code_depth=12)
        store = TimePartitionedStore(SCHEMA, vectorized=vectorized)
        if vectorized:
            embedding.preload_splits(derive_cut_tree(hist, 12))
            embedding.point_codes_batch([r.values for r in records], depth=12)
            store.insert_batch(records)
        else:
            for r in records:
                embedding.point_code(r.values, depth=12)
                store.insert(r)
        hits = 0
        time_attr = SCHEMA.attributes[SCHEMA.time_dimension()].name
        for query in queries:
            rect = query.normalized_rect(SCHEMA)
            hits += len(store.query(rect, time_range=query.interval(time_attr)))
        return hits

    scalar_s, scalar_hits = _timed(lambda: run(False))
    vectorized_s, vector_hits = _timed(lambda: run(True))
    assert scalar_hits == vector_hits
    return _entry(
        scalar_s,
        vectorized_s,
        records=len(records),
        queries=len(queries),
        hits=vector_hits,
    )


def bench_isolation_overhead(records: List[Record], n_messages: int = 2000) -> Dict:
    """One-shot cost of the message-isolation sanitizer per delivery.

    Times :meth:`~repro.net.message.Message.clone` on a representative
    record-carrying payload (a ``query_response`` with a batch of wire
    records) at each isolation level.  This is *not* a scalar-vs-vectorized
    regression gate — it documents what ``REPRO_ISOLATE_MESSAGES`` would
    add per message, i.e. why timed perf runs keep isolation off.
    """
    wires = [r.to_wire() for r in records[:64]]
    payload = {
        "qid": "q-bench",
        "version": 0.0,
        "region": "0101",
        "spawned": [],
        "records": wires,
        "path": [f"node-{i}" for i in range(8)],
        "responder": "node-0",
        "attempt": 1,
        "failover": False,
    }
    msg = Message(src="a", dst="b", kind="query_response", payload=payload)

    def run(level: str) -> None:
        for _ in range(n_messages):
            msg.clone(level=level)

    off_s, _ = _timed(lambda: run(ISOLATE_OFF))
    copy_s, _ = _timed(lambda: run(ISOLATE_COPY))
    freeze_s, _ = _timed(lambda: run(ISOLATE_FREEZE))
    per_us = lambda s: round(s / n_messages * 1e6, 3)  # noqa: E731
    return {
        "messages": n_messages,
        "payload_records": len(wires),
        "off_us_per_msg": per_us(off_s),
        "copy_us_per_msg": per_us(copy_s),
        "freeze_us_per_msg": per_us(freeze_s),
        "copy_overhead_us_per_msg": per_us(copy_s - off_s),
    }


def bench_schedule_fuzz_overhead(n_events: int = 50_000, num_ties: int = 50) -> Dict:
    """One-shot cost of the schedule-fuzz sanitizer per event.

    Pushes and drains a tie-heavy schedule (``n_events`` events spread
    over ``num_ties`` distinct timestamps — far denser than any real
    workload) through the event queue under each fuzz mode.  Like the
    isolation bench above, this is documentation, not a gate: it records
    what ``REPRO_SCHEDULE_FUZZ`` adds per event, i.e. why timed perf
    runs keep the fuzz off.
    """
    from repro.sim.events import EventQueue, schedule_fuzz

    times = [float(i % num_ties) for i in range(n_events)]
    noop = lambda: None  # noqa: E731

    def run(mode: str) -> None:
        with schedule_fuzz(mode, 1):
            queue = EventQueue()
        for t in times:
            queue.push(t, noop, ())
        while queue.pop() is not None:
            pass

    off_s, _ = _timed(lambda: run("off"))
    shuffle_s, _ = _timed(lambda: run("shuffle"))
    reverse_s, _ = _timed(lambda: run("reverse"))
    per_ns = lambda s: round(s / n_events * 1e9, 1)  # noqa: E731
    return {
        "events": n_events,
        "tie_slots": num_ties,
        "off_ns_per_event": per_ns(off_s),
        "shuffle_ns_per_event": per_ns(shuffle_s),
        "reverse_ns_per_event": per_ns(reverse_s),
        "shuffle_overhead_ns_per_event": per_ns(shuffle_s - off_s),
    }


def bench_resource_tracking_overhead(n_messages: int = 20_000) -> Dict:
    """One-shot cost of the resource-lifecycle ledger per delivery.

    Streams coalesced messages through a two-node :class:`SimNetwork`
    with the ledger off and on.  Every send/delivery pair crosses the
    ``net:outbox`` register/release instrumentation — the same dict-counter
    pattern the per-op tables pay — so the delta is what
    ``REPRO_TRACK_RESOURCES`` adds per message on the data plane.  Like
    the isolation and fuzz benches above, documentation rather than a
    gate: it records why timed perf runs keep tracking off.
    """
    from repro.net import protocol
    from repro.net.network import SimNetwork
    from repro.sim import resources
    from repro.sim.kernel import Simulator

    def run(tracked: bool) -> None:
        with resources.tracking(tracked), protocol.validation(False):
            sim = Simulator(seed=13)
            net = SimNetwork(sim, {}, coalesce_window_s=0.05)
            net.register("a", lambda msg: None)
            net.register("b", lambda msg: None)
            for i in range(n_messages):
                net.send("a", "b", "bench_noop", {"i": i})
            sim.run_until_idle()

    run(False)  # warm-up: first construction pays import/allocator costs
    off_s, _, on_s, _ = _timed_best_pair(lambda: run(False), lambda: run(True))
    per_ns = lambda s: round(s / n_messages * 1e9, 1)  # noqa: E731
    return {
        "messages": n_messages,
        "off_ns_per_msg": per_ns(off_s),
        "tracked_ns_per_msg": per_ns(on_s),
        "tracking_overhead_ns_per_msg": per_ns(on_s - off_s),
    }


def run_suite(
    records_n: int = 100_000, queries_n: int = 50, seed: int = 7, profiler=None
) -> Dict:
    """Run every microbenchmark; returns the BENCH_PERF payload.

    ``profiler``, when given, is called as ``profiler(name, thunk)`` for
    each benchmark and must return the thunk's result — the hook point
    for ``run.py --profile`` to wrap every bench in its own cProfile
    session without this module importing the profiler machinery.
    """
    records = make_records(records_n, seed)
    queries = make_queries(queries_n, seed + 1)
    specs = {
        "insert": lambda: bench_insert(records),
        "query_scan": lambda: bench_query_scan(records, queries),
        "histogram_build": lambda: bench_histogram_build(records),
        "balanced_cut": lambda: bench_balanced_cut(records),
        "fig9_workload": lambda: bench_fig9_workload(records, queries),
    }
    if profiler is None:
        return {name: thunk() for name, thunk in specs.items()}
    return {name: profiler(name, thunk) for name, thunk in specs.items()}
