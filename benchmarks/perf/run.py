"""Perf-regression runner: execute the microbench suite, write BENCH_PERF.json.

Usage::

    PYTHONPATH=src python benchmarks/perf/run.py [--records N] [--queries Q]
                                                 [--output PATH] [--scale]

``--scale`` additionally runs the 1000-node/1M-record scale tier
(minutes of wall clock; ``--scale-nodes``/``--scale-records`` downsize
it) and gates on its wall-clock budget and completion fraction.

Exits non-zero (loudly) if the vectorized path is slower than the scalar
fallback on the query-scan microbenchmark — the core regression guard —
and prints per-bench speedups for the rest so trajectory changes are
visible in CI logs.
"""

import argparse
import json
import platform
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT))
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from benchmarks.perf.failover_bench import run_failover_scenario  # noqa: E402
from benchmarks.perf.microbench import (  # noqa: E402
    bench_isolation_overhead,
    bench_schedule_fuzz_overhead,
    make_records,
    run_suite,
)
from repro.analysis import analyze_paths  # noqa: E402
from repro.net import message, protocol  # noqa: E402
from repro.sim import events as sim_events  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--records", type=int, default=100_000,
                        help="records per microbench (default 100k)")
    parser.add_argument("--queries", type=int, default=50,
                        help="queries for the scan/workload benches")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--output", type=Path, default=REPO_ROOT / "BENCH_PERF.json")
    parser.add_argument("--scale", action="store_true",
                        help="also run the 1000-node/1M-record scale tier "
                             "(several minutes of wall clock)")
    parser.add_argument("--scale-nodes", type=int, default=1000)
    parser.add_argument("--scale-records", type=int, default=1_000_000)
    args = parser.parse_args(argv)

    # The scale tier times the full event kernel, so it must run with the
    # modeled system cost only: refuse a baseline while either per-message
    # harness (isolation copy/freeze, wire validation) is switched on.
    # Checked before the unconditional set_validation(False) below so a
    # validation-enabled environment is refused, not silently overridden.
    if args.scale and protocol.validation_enabled():
        print(
            "protocol wire validation is ON; disable it for scale perf "
            "runs — refusing to record a scale baseline",
            file=sys.stderr,
        )
        return 1

    # A perf baseline recorded from a tree that fails static analysis is
    # poisoned: nondeterminism or protocol drift makes the numbers
    # unreproducible.  Refuse to write BENCH_PERF.json in that case.
    lint = analyze_paths([str(REPO_ROOT / "src" / "repro")], check_coverage=True)
    if not lint.ok:
        for finding in lint.active:
            print(finding.render(), file=sys.stderr)
        print(
            f"repro-lint reported {len(lint.active)} finding(s); refusing to "
            "record a perf baseline from a failing tree",
            file=sys.stderr,
        )
        return 1

    # Timed sections must run with by-reference delivery: the message-
    # isolation sanitizer (REPRO_ISOLATE_MESSAGES) deep-copies every
    # payload at delivery — a correctness harness, not part of the
    # modeled system cost — so a baseline recorded with it on would not
    # be comparable to one recorded without.
    if message.isolation_level() != message.ISOLATE_OFF:
        print(
            "message isolation is ON "
            f"(level={message.isolation_level()!r}); unset "
            "REPRO_ISOLATE_MESSAGES for timed perf runs — refusing to "
            "record a perf baseline",
            file=sys.stderr,
        )
        return 1

    # Same reasoning for the schedule-fuzz sanitizer: a perturbed
    # tie-break changes which code paths the timed scenarios take (retry
    # counts, message volumes), so a baseline recorded under
    # REPRO_SCHEDULE_FUZZ is not comparable to one recorded without.
    if sim_events.schedule_fuzz_mode() != sim_events.FUZZ_OFF:
        print(
            "schedule fuzz is ON "
            f"(mode={sim_events.schedule_fuzz_mode()!r}); unset "
            "REPRO_SCHEDULE_FUZZ for timed perf runs — refusing to "
            "record a perf baseline",
            file=sys.stderr,
        )
        return 1

    # Measure with wire validation off regardless of the environment:
    # per-message payload checks would skew the timings.
    protocol.set_validation(False)

    benches = run_suite(args.records, args.queries, args.seed)
    failure_handling = run_failover_scenario(seed=args.seed)
    # One-shot documentation benches (not gates): what copy-on-deliver
    # would cost per message if isolation were left on, and what the
    # fuzzed tie-break would cost per event if schedule fuzz were.
    isolation_overhead = bench_isolation_overhead(make_records(256, args.seed))
    schedule_fuzz_overhead = bench_schedule_fuzz_overhead()

    # The scale tier is opt-in (minutes of wall clock); when it is not
    # re-run, carry the previously recorded block forward so a quick
    # microbench refresh never silently drops the scale baseline.
    scale = None
    if args.scale:
        # The scale tier runs in a fresh interpreter.  The microbench
        # suite above allocates and frees gigabytes; timing the event
        # kernel afterwards inside that fragmented heap measurably skews
        # the wall clock, and ru_maxrss would report the microbenches'
        # high-water mark instead of the kernel's.
        import os
        import subprocess

        env = dict(os.environ)
        path_parts = [str(REPO_ROOT), str(REPO_ROOT / "src")]
        if env.get("PYTHONPATH"):
            path_parts.append(env["PYTHONPATH"])
        env["PYTHONPATH"] = os.pathsep.join(path_parts)
        proc = subprocess.run(
            [
                sys.executable, "-m", "benchmarks.perf.scale_bench",
                "--nodes", str(args.scale_nodes),
                "--records", str(args.scale_records),
                "--seed", str(args.seed),
            ],
            cwd=str(REPO_ROOT), env=env, capture_output=True, text=True,
        )
        if proc.returncode != 0:
            sys.stderr.write(proc.stderr)
            print("scale tier subprocess failed", file=sys.stderr)
            return 1
        scale = json.loads(proc.stdout)
    elif args.output.exists():
        try:
            scale = json.loads(args.output.read_text()).get("scale")
        except (ValueError, OSError):
            scale = None

    payload = {
        "meta": {
            "records": args.records,
            "queries": args.queries,
            "seed": args.seed,
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "benches": benches,
        "failure_handling": failure_handling,
        "isolation_overhead": isolation_overhead,
        "schedule_fuzz_overhead": schedule_fuzz_overhead,
    }
    if scale is not None:
        payload["scale"] = scale
    args.output.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"wrote {args.output}")
    for name, entry in benches.items():
        print(
            f"  {name:16s} scalar {entry['scalar_s']:8.3f}s"
            f"  vectorized {entry['vectorized_s']:8.3f}s"
            f"  speedup {entry['speedup']:7.2f}x"
        )

    counters = failure_handling["counters"]
    print(
        f"  failover scenario: complete {failure_handling['complete_fraction']:.0%}"
        f"  recall {failure_handling['full_recall_fraction']:.0%}"
        f"  retries {counters['query_retries']}"
        f"  failovers {counters['query_failovers']}"
        f"  replica records {counters['replica_records']}"
    )

    # At full scale the vectorized scan is several times faster than the
    # scalar fallback, but at smoke-test scale (a few thousand records)
    # the two are break-even and a hard < 1.0 threshold flips on
    # scheduler noise.  A genuine vectorization regression lands far
    # below parity, so gate with a 10% tolerance.
    scan = benches["query_scan"]
    if scan["speedup"] < 0.9:
        print(
            "PERF REGRESSION: vectorized query scan is SLOWER than the "
            f"scalar fallback ({scan['speedup']:.2f}x)",
            file=sys.stderr,
        )
        return 1
    if failure_handling["complete_fraction"] < 1.0:
        print(
            "ROBUSTNESS REGRESSION: queries failed to complete via replica "
            f"failover (complete {failure_handling['complete_fraction']:.0%})",
            file=sys.stderr,
        )
        return 1
    if args.scale:
        print(
            f"  scale tier: {scale['nodes']} nodes, {scale['records']:,} records"
            f"  wall {scale['wall_s']:.0f}s"
            f"  events/s {scale['events_per_s']:,.0f}"
            f"  messages/s {scale['messages_per_s']:,.0f}"
            f"  peak RSS {scale['peak_rss_mb']:.0f} MB"
        )
        # Regression gates for the full-size tier only: a downsized
        # --scale-records smoke run finishes fast regardless, and its
        # wall clock says nothing about the 10^6-record budget.
        if args.scale_records >= 1_000_000 and scale["wall_s"] >= 300.0:
            print(
                "PERF REGRESSION: the 1M-record scale run took "
                f"{scale['wall_s']:.0f}s (budget 300s)",
                file=sys.stderr,
            )
            return 1
        if scale["complete_fraction"] is not None and scale["complete_fraction"] < 0.999:
            print(
                "SCALE REGRESSION: inserts failed to complete "
                f"({scale['complete_fraction']:.1%})",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
