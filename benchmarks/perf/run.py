"""Perf-regression runner: execute the microbench suite, write BENCH_PERF.json.

Usage::

    PYTHONPATH=src python benchmarks/perf/run.py [--records N] [--queries Q]
                                                 [--output PATH] [--scale]

``--scale`` additionally runs the 1000-node/1M-record scale tier
(minutes of wall clock; ``--scale-nodes``/``--scale-records`` downsize
it) and gates on its wall-clock budget and completion fraction.

Exits non-zero (loudly) if the vectorized path is slower than the scalar
fallback on the query-scan microbenchmark — the core regression guard —
and prints per-bench speedups for the rest so trajectory changes are
visible in CI logs.
"""

import argparse
import json
import platform
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT))
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from benchmarks.perf.failover_bench import run_failover_scenario  # noqa: E402
from benchmarks.perf.microbench import (  # noqa: E402
    bench_isolation_overhead,
    bench_resource_tracking_overhead,
    bench_schedule_fuzz_overhead,
    make_records,
    run_suite,
)
from repro.analysis import analyze_paths  # noqa: E402
from repro.net import message, protocol  # noqa: E402
from repro.sim import events as sim_events  # noqa: E402
from repro.sim import resources  # noqa: E402

#: Regression gates for the full-size scale tier (1M records, 1000 nodes,
#: seed 7).  Embedded in the BENCH_PERF.json scale block and enforced on
#: every run that has a full-size block — fresh or carried forward — so a
#: stale baseline that breaches the budget fails loudly instead of riding
#: along unexamined.  History: PR 7 documented a 300 s budget but only
#: printed it; the recorded 399.7 s baseline predated a join-livelock fix
#: and was unreproducible on the reference box.  The data-plane
#: flattening (interned kinds, table dispatch, slot-shared delivery
#: coalescing, call wheel) brought a clean reproducible run to ~295 s /
#: ~20k messages/s; the 160 s / 37.5k msg/s target that motivated the
#: work needs ~27 µs per message end to end, and the measured floor of
#: the pure-Python hop pipeline is ~45 µs — so the budget below is the
#: measured baseline plus ~10% headroom, not the aspiration.  Tightening
#: it further means shrinking per-hop interpreter work (or moving the hop
#: loop out of Python), not more event-count trimming: events/message is
#: already down to ~0.4.
SCALE_GATES = {
    "wall_s_max": 330.0,
    "messages_per_s_min": 18_000.0,
    "complete_fraction_min": 0.999,
}


def check_scale_gates(scale, fresh: bool) -> list:
    """Breach messages for a full-size scale block (empty when healthy)."""
    if scale.get("records", 0) < 1_000_000:
        return []  # downsized smoke runs say nothing about the 1M budget
    if scale.get("profiled"):
        return []  # profiler overhead skews wall timings; numbers not gated
    origin = "fresh run" if fresh else "carried-forward baseline"
    breaches = []
    if scale["wall_s"] >= SCALE_GATES["wall_s_max"]:
        breaches.append(
            f"PERF REGRESSION ({origin}): the 1M-record scale run took "
            f"{scale['wall_s']:.0f}s (budget {SCALE_GATES['wall_s_max']:.0f}s)"
        )
    if scale["messages_per_s"] is not None and (
        scale["messages_per_s"] < SCALE_GATES["messages_per_s_min"]
    ):
        breaches.append(
            f"PERF REGRESSION ({origin}): scale tier ran at "
            f"{scale['messages_per_s']:,.0f} messages/s "
            f"(floor {SCALE_GATES['messages_per_s_min']:,.0f})"
        )
    if scale["complete_fraction"] is not None and (
        scale["complete_fraction"] < SCALE_GATES["complete_fraction_min"]
    ):
        breaches.append(
            f"SCALE REGRESSION ({origin}): inserts failed to complete "
            f"({scale['complete_fraction']:.1%})"
        )
    return breaches


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--records", type=int, default=100_000,
                        help="records per microbench (default 100k)")
    parser.add_argument("--queries", type=int, default=50,
                        help="queries for the scan/workload benches")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--output", type=Path, default=REPO_ROOT / "BENCH_PERF.json")
    parser.add_argument("--scale", action="store_true",
                        help="also run the 1000-node/1M-record scale tier "
                             "(several minutes of wall clock)")
    parser.add_argument("--scale-nodes", type=int, default=1000)
    parser.add_argument("--scale-records", type=int, default=1_000_000)
    parser.add_argument("--profile", action="store_true",
                        help="run every bench under cProfile and write a "
                             "top-N report next to BENCH_PERF.json "
                             "(profiler overhead skews timings; perf gates "
                             "are skipped)")
    args = parser.parse_args(argv)

    # The scale tier times the full event kernel, so it must run with the
    # modeled system cost only: refuse a baseline while either per-message
    # harness (isolation copy/freeze, wire validation) is switched on.
    # Checked before the unconditional set_validation(False) below so a
    # validation-enabled environment is refused, not silently overridden.
    if args.scale and protocol.validation_enabled():
        print(
            "protocol wire validation is ON; disable it for scale perf "
            "runs — refusing to record a scale baseline",
            file=sys.stderr,
        )
        return 1

    # A perf baseline recorded from a tree that fails static analysis is
    # poisoned: nondeterminism or protocol drift makes the numbers
    # unreproducible.  Refuse to write BENCH_PERF.json in that case.
    lint = analyze_paths([str(REPO_ROOT / "src" / "repro")], check_coverage=True)
    if not lint.ok:
        for finding in lint.active:
            print(finding.render(), file=sys.stderr)
        print(
            f"repro-lint reported {len(lint.active)} finding(s); refusing to "
            "record a perf baseline from a failing tree",
            file=sys.stderr,
        )
        return 1

    # Timed sections must run with by-reference delivery: the message-
    # isolation sanitizer (REPRO_ISOLATE_MESSAGES) deep-copies every
    # payload at delivery — a correctness harness, not part of the
    # modeled system cost — so a baseline recorded with it on would not
    # be comparable to one recorded without.
    if message.isolation_level() != message.ISOLATE_OFF:
        print(
            "message isolation is ON "
            f"(level={message.isolation_level()!r}); unset "
            "REPRO_ISOLATE_MESSAGES for timed perf runs — refusing to "
            "record a perf baseline",
            file=sys.stderr,
        )
        return 1

    # Same reasoning for the schedule-fuzz sanitizer: a perturbed
    # tie-break changes which code paths the timed scenarios take (retry
    # counts, message volumes), so a baseline recorded under
    # REPRO_SCHEDULE_FUZZ is not comparable to one recorded without.
    if sim_events.schedule_fuzz_mode() != sim_events.FUZZ_OFF:
        print(
            "schedule fuzz is ON "
            f"(mode={sim_events.schedule_fuzz_mode()!r}); unset "
            "REPRO_SCHEDULE_FUZZ for timed perf runs — refusing to "
            "record a perf baseline",
            file=sys.stderr,
        )
        return 1

    # And for the resource-lifecycle ledger: REPRO_TRACK_RESOURCES adds
    # a register/release dict update per op and per coalesced delivery
    # (plus quiescence checks at idle) — correctness bookkeeping, not
    # modeled system cost, so timed baselines must be recorded without it.
    if resources.tracking_enabled():
        print(
            "resource tracking is ON; unset REPRO_TRACK_RESOURCES for "
            "timed perf runs — refusing to record a perf baseline",
            file=sys.stderr,
        )
        return 1

    # Measure with wire validation off regardless of the environment:
    # per-message payload checks would skew the timings.
    protocol.set_validation(False)

    # --profile wraps every bench in its own cProfile session and writes
    # one top-N report per bench to BENCH_PROFILE.txt next to the JSON —
    # the next bottleneck should be attributable, not guessed.  Profiler
    # overhead skews the recorded timings, so profiled runs skip the
    # perf-threshold gates (correctness gates still apply).
    profile_sections = []
    profiler_hook = None
    if args.profile:
        import cProfile
        import io
        import pstats

        def profiler_hook(name, thunk):
            prof = cProfile.Profile()
            prof.enable()
            try:
                result = thunk()
            finally:
                prof.disable()
            buf = io.StringIO()
            stats = pstats.Stats(prof, stream=buf)
            stats.sort_stats("cumulative").print_stats(30)
            profile_sections.append((name, buf.getvalue()))
            return result

    benches = run_suite(args.records, args.queries, args.seed, profiler=profiler_hook)
    if profiler_hook is not None:
        failure_handling = profiler_hook(
            "failover_scenario", lambda: run_failover_scenario(seed=args.seed)
        )
    else:
        failure_handling = run_failover_scenario(seed=args.seed)
    # One-shot documentation benches (not gates): what copy-on-deliver
    # would cost per message if isolation were left on, what the fuzzed
    # tie-break would cost per event if schedule fuzz were, and what the
    # resource ledger would cost per delivery if tracking were.
    isolation_overhead = bench_isolation_overhead(make_records(256, args.seed))
    schedule_fuzz_overhead = bench_schedule_fuzz_overhead()
    resource_tracking_overhead = bench_resource_tracking_overhead()

    # The scale tier is opt-in (minutes of wall clock); when it is not
    # re-run, carry the previously recorded block forward so a quick
    # microbench refresh never silently drops the scale baseline.
    scale = None
    if args.scale:
        # The scale tier runs in a fresh interpreter.  The microbench
        # suite above allocates and frees gigabytes; timing the event
        # kernel afterwards inside that fragmented heap measurably skews
        # the wall clock, and ru_maxrss would report the microbenches'
        # high-water mark instead of the kernel's.
        import os
        import subprocess

        env = dict(os.environ)
        path_parts = [str(REPO_ROOT), str(REPO_ROOT / "src")]
        if env.get("PYTHONPATH"):
            path_parts.append(env["PYTHONPATH"])
        env["PYTHONPATH"] = os.pathsep.join(path_parts)
        cmd = [
            sys.executable, "-m", "benchmarks.perf.scale_bench",
            "--nodes", str(args.scale_nodes),
            "--records", str(args.scale_records),
            "--seed", str(args.seed),
        ]
        scale_profile_path = None
        if args.profile:
            scale_profile_path = args.output.with_name(".scale_profile.tmp")
            cmd += ["--profile-out", str(scale_profile_path)]
        proc = subprocess.run(
            cmd, cwd=str(REPO_ROOT), env=env, capture_output=True, text=True,
        )
        if proc.returncode != 0:
            sys.stderr.write(proc.stderr)
            print("scale tier subprocess failed", file=sys.stderr)
            return 1
        scale = json.loads(proc.stdout)
        if scale_profile_path is not None and scale_profile_path.exists():
            profile_sections.append(("scale_tier", scale_profile_path.read_text()))
            scale_profile_path.unlink()
    elif args.output.exists():
        try:
            scale = json.loads(args.output.read_text()).get("scale")
        except (ValueError, OSError):
            scale = None

    payload = {
        "meta": {
            "records": args.records,
            "queries": args.queries,
            "seed": args.seed,
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "benches": benches,
        "failure_handling": failure_handling,
        "isolation_overhead": isolation_overhead,
        "schedule_fuzz_overhead": schedule_fuzz_overhead,
        "resource_tracking_overhead": resource_tracking_overhead,
    }
    if scale is not None:
        scale["gates"] = SCALE_GATES
        payload["scale"] = scale
    args.output.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"wrote {args.output}")
    if args.profile:
        profile_path = args.output.with_name("BENCH_PROFILE.txt")
        profile_path.write_text(
            "".join(
                f"==== {name} ====\n{text}\n" for name, text in profile_sections
            )
        )
        print(f"wrote {profile_path}")
    for name, entry in benches.items():
        print(
            f"  {name:16s} scalar {entry['scalar_s']:8.3f}s"
            f"  vectorized {entry['vectorized_s']:8.3f}s"
            f"  speedup {entry['speedup']:7.2f}x"
        )

    counters = failure_handling["counters"]
    print(
        f"  failover scenario: complete {failure_handling['complete_fraction']:.0%}"
        f"  recall {failure_handling['full_recall_fraction']:.0%}"
        f"  retries {counters['query_retries']}"
        f"  failovers {counters['query_failovers']}"
        f"  replica records {counters['replica_records']}"
    )

    # At full scale the vectorized scan is several times faster than the
    # scalar fallback, but at smoke-test scale (a few thousand records)
    # the two are break-even and a hard < 1.0 threshold flips on
    # scheduler noise.  A genuine vectorization regression lands far
    # below parity, so gate with a 10% tolerance.
    scan = benches["query_scan"]
    if scan["speedup"] < 0.9 and not args.profile:
        print(
            "PERF REGRESSION: vectorized query scan is SLOWER than the "
            f"scalar fallback ({scan['speedup']:.2f}x)",
            file=sys.stderr,
        )
        return 1
    if failure_handling["complete_fraction"] < 1.0:
        print(
            "ROBUSTNESS REGRESSION: queries failed to complete via replica "
            f"failover (complete {failure_handling['complete_fraction']:.0%})",
            file=sys.stderr,
        )
        return 1
    if args.scale:
        print(
            f"  scale tier: {scale['nodes']} nodes, {scale['records']:,} records"
            f"  wall {scale['wall_s']:.0f}s"
            f"  events/s {scale['events_per_s']:,.0f}"
            f"  messages/s {scale['messages_per_s']:,.0f}"
            f"  peak RSS {scale['peak_rss_mb']:.0f} MB"
        )
    # The scale gates fire whenever a full-size block is present — a
    # carried-forward baseline that breaches the budget is a recorded
    # regression, not a bygone, and must fail just as loudly as a fresh
    # run.  Downsized smoke runs (records < 1M) say nothing about the
    # 10^6-record budget and are exempt.
    if scale is not None:
        breaches = check_scale_gates(scale, fresh=args.scale)
        if breaches:
            for breach in breaches:
                print(breach, file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
