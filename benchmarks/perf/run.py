"""Perf-regression runner: execute the microbench suite, write BENCH_PERF.json.

Usage::

    PYTHONPATH=src python benchmarks/perf/run.py [--records N] [--queries Q]
                                                 [--output PATH]

Exits non-zero (loudly) if the vectorized path is slower than the scalar
fallback on the query-scan microbenchmark — the core regression guard —
and prints per-bench speedups for the rest so trajectory changes are
visible in CI logs.
"""

import argparse
import json
import platform
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT))
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from benchmarks.perf.failover_bench import run_failover_scenario  # noqa: E402
from benchmarks.perf.microbench import bench_isolation_overhead, make_records, run_suite  # noqa: E402
from repro.analysis import analyze_paths  # noqa: E402
from repro.net import message, protocol  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--records", type=int, default=100_000,
                        help="records per microbench (default 100k)")
    parser.add_argument("--queries", type=int, default=50,
                        help="queries for the scan/workload benches")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--output", type=Path, default=REPO_ROOT / "BENCH_PERF.json")
    args = parser.parse_args(argv)

    # A perf baseline recorded from a tree that fails static analysis is
    # poisoned: nondeterminism or protocol drift makes the numbers
    # unreproducible.  Refuse to write BENCH_PERF.json in that case.
    lint = analyze_paths([str(REPO_ROOT / "src" / "repro")], check_coverage=True)
    if not lint.ok:
        for finding in lint.active:
            print(finding.render(), file=sys.stderr)
        print(
            f"repro-lint reported {len(lint.active)} finding(s); refusing to "
            "record a perf baseline from a failing tree",
            file=sys.stderr,
        )
        return 1

    # Timed sections must run with by-reference delivery: the message-
    # isolation sanitizer (REPRO_ISOLATE_MESSAGES) deep-copies every
    # payload at delivery — a correctness harness, not part of the
    # modeled system cost — so a baseline recorded with it on would not
    # be comparable to one recorded without.
    if message.isolation_level() != message.ISOLATE_OFF:
        print(
            "message isolation is ON "
            f"(level={message.isolation_level()!r}); unset "
            "REPRO_ISOLATE_MESSAGES for timed perf runs — refusing to "
            "record a perf baseline",
            file=sys.stderr,
        )
        return 1

    # Measure with wire validation off regardless of the environment:
    # per-message payload checks would skew the timings.
    protocol.set_validation(False)

    benches = run_suite(args.records, args.queries, args.seed)
    failure_handling = run_failover_scenario(seed=args.seed)
    # One-shot documentation bench (not a gate): what copy-on-deliver
    # would cost per message if isolation were left on.
    isolation_overhead = bench_isolation_overhead(make_records(256, args.seed))
    payload = {
        "meta": {
            "records": args.records,
            "queries": args.queries,
            "seed": args.seed,
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "benches": benches,
        "failure_handling": failure_handling,
        "isolation_overhead": isolation_overhead,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"wrote {args.output}")
    for name, entry in benches.items():
        print(
            f"  {name:16s} scalar {entry['scalar_s']:8.3f}s"
            f"  vectorized {entry['vectorized_s']:8.3f}s"
            f"  speedup {entry['speedup']:7.2f}x"
        )

    counters = failure_handling["counters"]
    print(
        f"  failover scenario: complete {failure_handling['complete_fraction']:.0%}"
        f"  recall {failure_handling['full_recall_fraction']:.0%}"
        f"  retries {counters['query_retries']}"
        f"  failovers {counters['query_failovers']}"
        f"  replica records {counters['replica_records']}"
    )

    # At full scale the vectorized scan is several times faster than the
    # scalar fallback, but at smoke-test scale (a few thousand records)
    # the two are break-even and a hard < 1.0 threshold flips on
    # scheduler noise.  A genuine vectorization regression lands far
    # below parity, so gate with a 10% tolerance.
    scan = benches["query_scan"]
    if scan["speedup"] < 0.9:
        print(
            "PERF REGRESSION: vectorized query scan is SLOWER than the "
            f"scalar fallback ({scan['speedup']:.2f}x)",
            file=sys.stderr,
        )
        return 1
    if failure_handling["complete_fraction"] < 1.0:
        print(
            "ROBUSTNESS REGRESSION: queries failed to complete via replica "
            f"failover (complete {failure_handling['complete_fraction']:.0%})",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
