"""The ``scale`` perf tier: a 1000-node / 1M-record Figure-14 regime, timed.

The regular perf tiers time isolated components (embedding batches, query
scans); this one times the full event kernel end to end at the cluster
size the paper's Section 4.3 extrapolates to.  Three things make the
million-record run tractable:

* **Lazy workload generation.**  Pre-scheduling 10^6 insert events would
  hold the whole workload in the event queue at once; instead a driver
  tick materializes one virtual second of records at a time through
  :meth:`repro.sim.kernel.Simulator.schedule_many`, keeping the pending
  set bounded by the in-flight traffic (a few thousand events).
* **GC frozen around the timed section.**  The steady state allocates and
  frees acyclically (messages, envelopes, metrics); generational GC scans
  are pure overhead at this rate — about a quarter of the run on a
  reference box — so the permanent cluster topology is frozen and
  collection disabled for the duration, then restored.
* **Aggregated metrics.**  Per-insert :class:`InsertMetric` objects are
  reduced to counters and a bounded latency reservoir on the fly rather
  than accumulated (10^6 retained dataclasses would dominate peak RSS).
"""

import gc
import random
import resource
import time
from typing import Dict, List, Optional

from repro.core.cluster import ClusterConfig, MindCluster
from repro.core.mind_node import MindConfig
from repro.core.records import Record
from repro.net.topology import synthetic_planetlab_sites
from repro.overlay.node import OverlayConfig
from repro.traffic.indices import index1_schema

#: Default bound on retained latency samples.  The reservoir takes every
#: stride-th successful insert with ``stride = records // cap``, so the
#: retained set is a uniform systematic sample of the whole run (not a
#: prefix) and its memory is capped independently of workload size.
_LATENCY_SAMPLE_CAP = 20_000

#: Records issued per workload-driver event.  One driver event per record
#: would add 10^6 kernel events that model nothing; batches of a few keep
#: the arrival process fine-grained (batch members target different
#: origin nodes, so no queueing artifact) while shedding that overhead.
_DRIVER_BATCH = 4


def _percentile(sorted_values: List[float], frac: float) -> Optional[float]:
    if not sorted_values:
        return None
    idx = min(len(sorted_values) - 1, int(frac * len(sorted_values)))
    return sorted_values[idx]


def run_scale_scenario(
    nodes: int = 1000,
    records: int = 1_000_000,
    rate_per_node: float = 2.0,
    seed: int = 11,
    hb_interval_s: float = 10.0,
    replication: int = 0,
    churn_min_live: Optional[int] = None,
    drain_s: float = 60.0,
    coalesce_window_s: float = 0.001,
    latency_sample_cap: int = _LATENCY_SAMPLE_CAP,
) -> Dict[str, object]:
    """Run the scaled Fig-14 insert workload; return perf + sanity metrics.

    ``churn_min_live`` switches on the stationary churn process (never
    fewer than that many nodes live) for the robustness variant; the
    timed perf tier runs without churn so the numbers are comparable
    across commits.  The timed tier also defaults to ``replication=0``:
    replica fan-out adds ~20% more events without exercising any code the
    failover tier doesn't already gate, and the churn variant — where
    replicas actually matter — passes ``replication=1`` explicitly.

    ``coalesce_window_s`` batches same-link deliveries that land in the
    same 1 ms arrival slot into one drain event — a bounded timing
    perturbation (each delivery defers < 1 ms, far below the modeled WAN
    latencies) that cuts kernel events per message.  Pass ``0.0`` for
    bit-exact uncoalesced delivery.  ``latency_sample_cap`` bounds the
    latency reservoir; the effective stride is recorded in the output.
    """
    build_t0 = time.perf_counter()
    sites = synthetic_planetlab_sites(nodes, random.Random(7))
    config = ClusterConfig(
        seed=seed,
        overlay=OverlayConfig(
            service_time_s=0.01,
            service_jitter_sigma=0.8,
            liveness_enabled=True,
            hb_interval_s=hb_interval_s,
            # Piggyback heartbeats on the insert traffic for the clean
            # timed run: at 2 inserts/s/node every hypercube link carries
            # routed messages well inside any heartbeat window, so nearly
            # the whole heartbeat volume is redundant liveness signal.
            # Churn runs keep explicit heartbeats (code changes propagate
            # through them).
            hb_suppress_s=(hb_interval_s if churn_min_live is None else None),
            hb_timeout_s=4.0 * hb_interval_s,
            adoption_delay_s=3.0,
            # Vectorized jitter draws: the stdlib lognormvariate costs a
            # Python-level rejection loop per message; at 10^7 messages
            # block draws of the same distribution are a measurable slice
            # of the whole run.
            service_draw_block=1024,
        ),
        mind=MindConfig(),
        slow_factor=3.0,
        track_ground_truth=False,
        latency_draw_block=4096,
        coalesce_window_s=coalesce_window_s,
    )
    cluster = MindCluster(sites, config)
    cluster.build()
    # Settle-predicate evaluation scans every node; at cluster scale
    # checking it on every event dominates the build, so thin it out.
    cluster.create_index(
        index1_schema(86400.0), replication=replication, settle_poll_events=64
    )
    build_wall_s = time.perf_counter() - build_t0

    sim = cluster.sim
    by_address = cluster.by_address
    addrs = [n.address for n in cluster.nodes]
    rng = random.Random(13)
    per_second = max(1, int(rate_per_node * nodes))

    # Pre-draw the record values outside the timed section: the workload
    # generator's RNG cost is bench overhead, not system cost.  Kept as
    # one float64 array (3 columns) and converted a virtual second at a
    # time, so peak RSS grows by 24 bytes/record, not a Record object.
    import numpy as np

    _np_rng = np.random.default_rng(13)
    values_arr = np.column_stack(
        [
            _np_rng.uniform(0, 2**32, records),
            _np_rng.uniform(0, 86400.0, records),
            _np_rng.uniform(0, 5024.0, records),
        ]
    )

    stats = {
        "issued": 0,
        "completed": 0,
        "succeeded": 0,
        "hops_sum": 0,
        "hops_n": 0,
    }
    latency_reservoir: List[float] = []
    latency_stride = max(1, records // max(1, latency_sample_cap))

    def on_done(metric) -> None:
        stats["completed"] += 1
        if metric.success:
            stats["succeeded"] += 1
            if metric.latency is not None and stats["succeeded"] % latency_stride == 0:
                latency_reservoir.append(metric.latency)
            if metric.hops is not None:
                stats["hops_sum"] += metric.hops
                stats["hops_n"] += 1

    def do_insert(pairs) -> None:
        for record, origin in pairs:
            node = by_address[origin]
            if node.in_overlay() and node.has_index("index1"):
                stats["issued"] += 1
                node.insert_record("index1", record, callback=on_done)

    def tick(second: int) -> None:
        base = sim.now
        start = second * per_second
        stop = min(start + per_second, records)
        values = values_arr[start:stop].tolist()
        items = []
        i = start
        while i < stop:
            j = min(i + _DRIVER_BATCH, stop)
            pairs = []
            for k in range(i, j):
                record = Record(values[k - start], key=k + 1)
                pairs.append((record, addrs[k % nodes]))
            items.append((base + rng.random(), do_insert, (pairs,)))
            i = j
        sim.schedule_many(items)
        if stop < records:
            sim.schedule_at(base + 1.0, tick, second + 1)

    if churn_min_live is not None:
        cluster.failures.start_churn(
            addrs[1:],
            mean_uptime_s=60.0,
            mean_downtime_s=30.0,
            min_live=churn_min_live,
        )

    duration_s = records / per_second

    ev0 = sim.events_processed
    msg0 = cluster.network.messages_sent
    tick(0)
    gc.collect()
    gc.freeze()
    gc.disable()
    wall_t0 = time.perf_counter()
    cpu_t0 = time.process_time()
    try:
        cluster.advance(duration_s + drain_s)
    finally:
        gc.enable()
        gc.unfreeze()
    wall_s = time.perf_counter() - wall_t0
    cpu_s = time.process_time() - cpu_t0

    events = sim.events_processed - ev0
    messages = cluster.network.messages_sent - msg0
    latency_reservoir.sort()
    peak_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

    return {
        "nodes": nodes,
        "records": records,
        "rate_per_node": rate_per_node,
        "replication": replication,
        "hb_interval_s": hb_interval_s,
        "churn_min_live": churn_min_live,
        "coalesce_window_s": coalesce_window_s,
        "seed": seed,
        "build_wall_s": round(build_wall_s, 2),
        "wall_s": round(wall_s, 2),
        "cpu_s": round(cpu_s, 2),
        "events": events,
        "events_per_s": round(events / wall_s, 1) if wall_s else None,
        "messages": messages,
        "messages_per_s": round(messages / wall_s, 1) if wall_s else None,
        "peak_rss_mb": round(peak_rss_kb / 1024.0, 1),
        "inserts_issued": stats["issued"],
        "inserts_completed": stats["completed"],
        "inserts_succeeded": stats["succeeded"],
        "complete_fraction": (
            round(stats["completed"] / stats["issued"], 4) if stats["issued"] else None
        ),
        "mean_hops": (
            round(stats["hops_sum"] / stats["hops_n"], 2) if stats["hops_n"] else None
        ),
        "latency_median_s": _percentile(latency_reservoir, 0.5),
        "latency_p90_s": _percentile(latency_reservoir, 0.9),
        "latency_p99_s": _percentile(latency_reservoir, 0.99),
        "latency_samples": len(latency_reservoir),
        "latency_sample_cap": latency_sample_cap,
        "latency_sample_stride": latency_stride,
    }


def main(argv=None) -> int:
    """CLI face: run the scenario, print its metrics as JSON on stdout.

    ``run.py --scale`` invokes this in a fresh interpreter so the timed
    section runs on a clean heap (and ``ru_maxrss`` reports the kernel's
    high-water mark, not whatever the parent process did before).
    """
    import argparse
    import json
    import sys

    from repro.net import message, protocol

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=1000)
    parser.add_argument("--records", type=int, default=1_000_000)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--replication", type=int, default=0)
    parser.add_argument("--churn-min-live", type=int, default=None)
    parser.add_argument("--coalesce-window", type=float, default=0.001,
                        help="link-delivery coalescing window in seconds "
                             "(0 disables coalescing)")
    parser.add_argument("--latency-sample-cap", type=int,
                        default=_LATENCY_SAMPLE_CAP,
                        help="max retained latency samples (stride-sampled)")
    parser.add_argument("--profile-out", type=str, default=None,
                        help="write a cProfile top-N report of the timed "
                             "section to this path (skews wall timings)")
    args = parser.parse_args(argv)

    if message.isolation_level() != message.ISOLATE_OFF:
        print(
            "message isolation is ON; unset REPRO_ISOLATE_MESSAGES for "
            "timed scale runs",
            file=sys.stderr,
        )
        return 1
    protocol.set_validation(False)

    profiler = None
    if args.profile_out:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    metrics = run_scale_scenario(
        nodes=args.nodes,
        records=args.records,
        seed=args.seed,
        replication=args.replication,
        churn_min_live=args.churn_min_live,
        coalesce_window_s=args.coalesce_window,
        latency_sample_cap=args.latency_sample_cap,
    )
    if profiler is not None:
        import io
        import pstats

        profiler.disable()
        buf = io.StringIO()
        pstats.Stats(profiler, stream=buf).sort_stats("cumulative").print_stats(30)
        with open(args.profile_out, "w") as fh:
            fh.write(buf.getvalue())
        metrics["profiled"] = True
    json.dump(metrics, sys.stdout, indent=2)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
