"""Perf-marked regression tests over the microbench suite.

Not part of the default test run (``testpaths`` excludes ``benchmarks/``);
run explicitly with::

    PYTHONPATH=src python -m pytest benchmarks/perf -m perf -s

Asserts the acceptance floor: the vectorized columnar paths must beat the
scalar reference by >= 3x on the query-scan and histogram-build
microbenchmarks at 100k records, and must never be slower anywhere.
"""

import pytest

from benchmarks.perf.microbench import (
    bench_balanced_cut,
    bench_fig9_workload,
    bench_histogram_build,
    bench_insert,
    bench_query_scan,
    make_queries,
    make_records,
)

pytestmark = pytest.mark.perf


@pytest.fixture(scope="module")
def workload():
    return make_records(100_000), make_queries(50)


def test_query_scan_speedup_floor(workload):
    records, queries = workload
    entry = bench_query_scan(records, queries)
    assert entry["speedup"] >= 3.0, entry


def test_histogram_build_speedup_floor(workload):
    records, _ = workload
    entry = bench_histogram_build(records)
    assert entry["speedup"] >= 3.0, entry


def test_insert_batch_not_slower(workload):
    records, _ = workload
    entry = bench_insert(records)
    assert entry["speedup"] >= 1.0, entry


def test_balanced_cut_not_slower(workload):
    records, _ = workload
    entry = bench_balanced_cut(records, depth=8)
    assert entry["speedup"] >= 1.0, entry


def test_fig9_workload_not_slower(workload):
    records, queries = workload
    entry = bench_fig9_workload(records[:30_000], queries[:20])
    assert entry["speedup"] >= 1.0, entry
