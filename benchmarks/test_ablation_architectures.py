"""Ablation: MIND vs query flooding vs centralized vs uniform-hash DHT.

Section 2.1 argues the architecture choice qualitatively; this benchmark
measures it.  The same insertion and query workload runs over MIND and the
three baselines on identical 34-site WANs:

* flooding — free inserts, every query visits every node;
* centralized — 1-node queries, but the server's links carry all inserts;
* uniform-hash DHT — balanced storage, yet range queries still visit all
  nodes because hashing destroys attribute-space locality;
* MIND — few-node queries *and* spread insertion traffic.
"""

import random

from benchmarks.helpers import planetlab_calibration, run_once

from repro.baselines.centralized import CentralizedSystem
from repro.baselines.dht import UniformHashSystem
from repro.baselines.flooding import QueryFloodingSystem
from repro.bench.stats import format_table, summarize
from repro.core.cluster import MindCluster
from repro.core.query import RangeQuery
from repro.core.records import Record
from repro.core.schema import AttributeSpec, IndexSchema
from repro.net.topology import backbone_sites

RECORDS = 500
QUERIES = 40


def make_schema():
    return IndexSchema(
        "arch",
        attributes=[
            AttributeSpec("dest", 0.0, 2.0**32),
            AttributeSpec("timestamp", 0.0, 86400.0, is_time=True),
            AttributeSpec("octets", 0.0, 2e6),
        ],
    )


def workload(seed: int):
    rng = random.Random(seed)
    records = [
        Record([rng.uniform(0, 2**32), rng.uniform(0, 86400), rng.uniform(0, 2e6)])
        for _ in range(RECORDS)
    ]
    queries = []
    for _ in range(QUERIES):
        t0 = rng.uniform(0, 86400 - 300)
        lo, hi = sorted(rng.uniform(0, 2e6) for _ in range(2))
        queries.append(RangeQuery("arch", {"timestamp": (t0, t0 + 300), "octets": (lo, hi)}))
    origins = [s.name for s in backbone_sites()]
    origin_seq = [rng.choice(origins) for _ in range(RECORDS + QUERIES)]
    return records, queries, origin_seq


def drive(system, records, queries, origin_seq, sim, link_stats):
    base = sim.now + 10.0
    for i, record in enumerate(records):
        system.schedule_insert(record, origin_seq[i], base + i * 0.05)
    q_base = base + RECORDS * 0.05 + 10.0
    for j, query in enumerate(queries):
        system.schedule_query(query, origin_seq[RECORDS + j], q_base + j * 1.0)
    sim.run_until(q_base + QUERIES * 1.0 + 120.0)
    ins = [m.latency for m in system.metrics.inserts if m.latency is not None]
    qlat = [m.latency for m in system.metrics.queries if m.latency is not None]
    qcost = [m.cost for m in system.metrics.queries if m.end is not None]
    ingress = {}
    for (src, dst), stats in link_stats().items():
        ingress[dst] = ingress.get(dst, 0) + stats.messages
    return {
        "insert_median": summarize(ins)["median"] if ins else 0.0,
        "query_median": summarize(qlat)["median"] if qlat else 0.0,
        "query_cost_mean": sum(qcost) / len(qcost) if qcost else 0.0,
        "query_cost_max": max(qcost) if qcost else 0,
        "max_node_ingress": max(ingress.values(), default=0),
        "queries_done": len(qcost),
    }


def experiment():
    schema = make_schema()
    records, queries, origin_seq = workload(760)
    results = {}

    # MIND
    cluster = MindCluster(backbone_sites(), planetlab_calibration(seed=761))
    cluster.build()
    cluster.create_index(schema)
    mind_adapter = _MindAdapter(cluster)
    results["MIND"] = drive(
        mind_adapter, records, queries, origin_seq,
        cluster.sim,
        lambda: cluster.network.link_stats,
    )

    for name, cls in (
        ("flooding", QueryFloodingSystem),
        ("centralized", CentralizedSystem),
        ("uniform DHT", UniformHashSystem),
    ):
        system = cls(backbone_sites(), schema, seed=762)
        results[name] = drive(
            system, records, queries, origin_seq,
            system.sim,
            lambda s=system: s.network.link_stats,
        )
    return results


class _MindAdapter:
    """Gives MindCluster the baseline scheduling interface."""

    def __init__(self, cluster: MindCluster) -> None:
        self.cluster = cluster
        self.metrics = cluster.metrics

    def schedule_insert(self, record, origin, at):
        self.cluster.schedule_insert("arch", record, origin, at)

    def schedule_query(self, query, origin, at):
        self.cluster.schedule_query(query, origin, at)


def test_ablation_architectures(benchmark):
    results = run_once(benchmark, experiment)
    rows = [
        [
            name,
            f"{r['insert_median']:.2f}",
            f"{r['query_median']:.2f}",
            f"{r['query_cost_mean']:.1f}",
            r["query_cost_max"],
            r["max_node_ingress"],
        ]
        for name, r in results.items()
    ]
    print(f"\nArchitecture ablation ({RECORDS} inserts, {QUERIES} range queries, 34 sites)")
    print(format_table(
        ["architecture", "ins med (s)", "qry med (s)", "qry nodes avg", "qry nodes max", "hottest node (msgs in)"],
        rows,
    ))

    mind, flood = results["MIND"], results["flooding"]
    central, dht = results["centralized"], results["uniform DHT"]
    # Locality: MIND's range queries touch far fewer nodes than flooding
    # or a uniform-hash DHT (which must broadcast).
    assert mind["query_cost_mean"] < 0.5 * flood["query_cost_mean"]
    assert mind["query_cost_mean"] < 0.5 * dht["query_cost_mean"]
    assert flood["query_cost_mean"] >= 30 and dht["query_cost_mean"] >= 30
    # Centralized funnels every record through one node.
    assert central["max_node_ingress"] > 2 * mind["max_node_ingress"]
    # Every system completed the workload.
    for r in results.values():
        assert r["queries_done"] == QUERIES
