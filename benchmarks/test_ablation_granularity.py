"""Ablation: balanced-cut quality vs histogram granularity.

Section 3.7 notes "the efficiency of load balancing depends upon the
granularity of the bins in the histogram".  This benchmark quantifies it:
the same skewed record stream is embedded with balanced cuts derived from
histograms of increasing resolution, and the resulting leaf-level storage
imbalance is measured (even cuts included as the zero-information
baseline).
"""

import random

from benchmarks.helpers import run_once

from repro.bench.stats import format_table
from repro.core.cuts import BalancedCuts, EvenCuts
from repro.core.embedding import Embedding
from repro.core.histogram import MultiDimHistogram
from repro.core.schema import AttributeSpec, IndexSchema

DEPTH = 5  # 32 leaf regions, about a 32-node overlay
POINTS = 6000
GRANULARITIES = [2, 8, 32, 256, 4096, 65536]


def make_schema():
    return IndexSchema(
        "g",
        attributes=[
            AttributeSpec("dest", 0.0, 2.0**32),
            AttributeSpec("octets", 0.0, 2e6),
        ],
    )


def skewed_points(seed: int):
    rng = random.Random(seed)
    points = []
    for _ in range(POINTS):
        dest = (128 << 24) + int(rng.paretovariate(0.8) * 65536) % (192 << 16)
        octets = min(2e6 - 1, rng.lognormvariate(11.5, 1.2))
        points.append([dest, octets])
    return points


def leaf_imbalance(embedding, points):
    counts = {}
    for p in points:
        code = embedding.point_code(p, depth=DEPTH).bits
        counts[code] = counts.get(code, 0) + 1
    top = max(counts.values())
    return top / (POINTS / 2**DEPTH), len(counts)


def experiment():
    schema = make_schema()
    points = skewed_points(770)
    rows = []
    even = Embedding(schema, EvenCuts(), code_depth=DEPTH)
    ratio, leaves = leaf_imbalance(even, points)
    rows.append(["even (none)", f"{ratio:.1f}x", leaves])
    results = {"even": ratio}
    for k in GRANULARITIES:
        hist = MultiDimHistogram(2, k)
        for p in points:
            hist.add(schema.normalize(p))
        emb = Embedding(schema, BalancedCuts(hist), code_depth=DEPTH)
        ratio, leaves = leaf_imbalance(emb, points)
        rows.append([f"balanced k={k}", f"{ratio:.1f}x", leaves])
        results[k] = ratio
    return rows, results


def test_ablation_histogram_granularity(benchmark):
    rows, results = run_once(benchmark, experiment)
    print(f"\nAblation — leaf-storage imbalance (top leaf / uniform share) "
          f"vs histogram granularity; {POINTS} skewed records, {2**DEPTH} regions")
    print(format_table(["cut strategy", "imbalance", "occupied leaves"], rows))

    # Even cuts on Pareto-skewed data are badly imbalanced.
    assert results["even"] > 4.0
    # Granularity buys balance; the finest histogram should approach the
    # ideal (every leaf near the uniform share).
    assert results[65536] < results[2]
    assert results[65536] < 2.5
    assert results[65536] <= results["even"] / 3.0
