"""Figure 1: flow-record reduction from aggregation and filtering.

Paper: one day of sampled NetFlow from one Abilene router, aggregated over
a 30-second window with a 50 KB filter threshold, shrinks by almost two
orders of magnitude; the figure sweeps windows and thresholds.

Here: a 2-hour midday slice from the IPLS router (documented scale-down;
rates are per-window stationary so the reduction *ratios* are unchanged),
sweeping the same axes.
"""

from benchmarks.helpers import run_once

from repro.bench.stats import format_table
from repro.traffic.aggregation import AggregationConfig, aggregate_flows
from repro.traffic.datasets import abilene_generator
from repro.traffic.generator import TrafficConfig

WINDOWS = [1.0, 10.0, 30.0, 60.0, 300.0]
THRESHOLDS = [0, 10_000, 50_000, 100_000]
MONITOR = "IPLS"
START, DURATION = 39600.0, 7200.0


def experiment():
    # Size distribution tuned to sampled-NetFlow reality: the vast
    # majority of sampled flows are small, a thin tail is large.
    gen = abilene_generator(
        seed=101,
        config=TrafficConfig(
            seed=101, flows_per_second=6.0, size_mu=6.8, size_sigma=1.7, short_flow_fraction=0.45
        ),
    )
    flows = []
    for batch in gen.generate(0, START, DURATION, 30.0, monitors=[MONITOR]):
        flows.extend(batch)

    rows = []
    for window in WINDOWS:
        aggregates = aggregate_flows(flows, AggregationConfig(window_s=window))
        for threshold in THRESHOLDS:
            kept = [a for a in aggregates if a.octets >= threshold]
            reduction = len(flows) / max(1, len(kept))
            rows.append(
                [f"{window:.0f}s", f"{threshold // 1000}KB", len(flows), len(kept), f"{reduction:.1f}x"]
            )
    return len(flows), rows


def test_fig01_aggregation_reduction(benchmark):
    raw, rows = run_once(benchmark, experiment)
    print("\nFigure 1 — flow records after aggregation + filtering "
          f"(1 router, 2h slice, {raw} raw sampled flows)")
    print(format_table(["window", "threshold", "raw", "kept", "reduction"], rows))

    by_key = {(r[0], r[1]): r for r in rows}
    # Paper's headline: 30 s window + 50 KB threshold ≈ two orders of
    # magnitude fewer records.
    kept_30_50 = by_key[("30s", "50KB")][3]
    assert raw / kept_30_50 > 30, "30s/50KB should reduce records by >30x"
    # Higher thresholds keep fewer records at a fixed window.
    assert by_key[("30s", "100KB")][3] <= kept_30_50
    # Without a filter, longer windows aggregate monotonically harder.
    # (With a threshold the trend can invert: longer windows accumulate
    # more octets per group, lifting more groups over the bar.)
    assert by_key[("1s", "0KB")][3] >= by_key[("30s", "0KB")][3] >= by_key[("300s", "0KB")][3]
