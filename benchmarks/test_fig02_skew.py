"""Figure 2: storage skew of a 64-bin histogram over the three indices.

Paper: a 64-bin multi-dimensional histogram over one day of Abilene+GÉANT
traffic summaries shows bin populations varying by an order of magnitude
for every index — the motivation for balanced cuts.

Here: a 1-hour slice over all 34 monitors, same 64-bin (4 per dimension,
3 dimensions) histogram per index.
"""

from benchmarks.helpers import run_once

from repro.bench.stats import format_table
from repro.core.histogram import MultiDimHistogram
from repro.traffic.datasets import baseline_generator
from repro.traffic.generator import TrafficConfig
from repro.traffic.aggregation import aggregate_flows
from repro.traffic.indices import (
    index1_records,
    index1_schema,
    index2_records,
    index2_schema,
    index3_records,
    index3_schema,
)

START, DURATION = 39600.0, 3600.0
HORIZON = 86400.0


def experiment():
    gen = baseline_generator(seed=102, config=TrafficConfig(seed=102, flows_per_second=3.0))
    aggregates = []
    for batch in gen.generate(0, START, DURATION, 30.0):
        aggregates.extend(aggregate_flows(batch))

    builders = [
        ("index1", index1_schema(HORIZON), index1_records(aggregates, min_fanout=2)),
        ("index2", index2_schema(HORIZON), index2_records(aggregates, min_octets=10_000)),
        ("index3", index3_schema(HORIZON), index3_records(aggregates, min_flow_size=500)),
    ]
    rows = []
    for name, schema, records in builders:
        hist = MultiDimHistogram(3, 4)  # 4^3 = 64 bins, as in the paper
        for record in records:
            hist.add(schema.normalize(record.values))
        counts = sorted(hist.cell_counts().values(), reverse=True)
        nonzero_min = counts[-1] if counts else 0
        rows.append(
            [
                name,
                len(records),
                hist.occupied_cells,
                int(counts[0]) if counts else 0,
                int(nonzero_min),
                f"{counts[0] / max(1.0, nonzero_min):.0f}x" if counts else "-",
                f"{100 * counts[0] / max(1.0, hist.total):.0f}%" if counts else "-",
            ]
        )
    return rows


def test_fig02_data_skew(benchmark):
    rows = run_once(benchmark, experiment)
    print("\nFigure 2 — 64-bin histogram occupancy per index (34 monitors, 1h slice)")
    print(format_table(
        ["index", "records", "bins used", "max bin", "min bin", "max/min", "top-bin share"], rows
    ))
    for row in rows:
        name, records, bins_used, max_bin = row[0], row[1], row[2], row[3]
        uniform_share = records / 64.0
        # Order-of-magnitude skew: the hottest bin carries >=10x what a
        # uniform distribution would put there (most bins are empty).
        assert max_bin >= 10 * uniform_share, (
            f"{name}: top bin {max_bin} vs uniform share {uniform_share:.0f}"
        )
        assert bins_used < 64
