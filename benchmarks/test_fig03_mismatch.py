"""Figure 3: day-to-day vs hour-to-hour distribution mismatch.

Paper: two weeks of Abilene+GÉANT records aggregated on six attributes.
Day-to-day mismatch stays under ~20% even at the finest histogram
granularity, while hour-to-hour mismatch approaches 1 at granularity 64+
— the evidence that daily (not continuous) rebalancing is the right
design.

Here: seven synthetic days, same six-attribute record shape (source
prefix, destination prefix, time of day, octets, connections, average
flow size), granularities 2/4/8/16 per dimension.  The timestamp
attribute is time-of-day, which is what makes hourly histograms diverge
while daily histograms align.
"""

from benchmarks.helpers import run_once

from repro.bench.stats import format_table
from repro.core.histogram import MultiDimHistogram, mismatch
from repro.traffic.aggregation import aggregate_flows
from repro.traffic.datasets import baseline_generator
from repro.traffic.generator import TrafficConfig

GRANULARITIES = [2, 4, 8, 16, 64]
DAYS = 7
SLICE_START, SLICE_LEN = 39600.0, 1800.0  # the same 30 minutes each day
PREFIX_SPAN = 2.0**32


def _points(aggregates):
    for a in aggregates:
        yield (
            a.src_prefix / PREFIX_SPAN,
            a.dst_prefix / PREFIX_SPAN,
            (a.window_start % 86400.0) / 86400.0,
            min(a.octets / 2e6, 0.999999),
            min(a.connections / 1024.0, 0.999999),
            min(a.flow_size / 128e3, 0.999999),
        )


def _histogram(aggregates, k):
    hist = MultiDimHistogram(6, k)
    for point in _points(aggregates):
        hist.add(point)
    return hist


def experiment():
    gen = baseline_generator(seed=103, config=TrafficConfig(seed=103, flows_per_second=2.0))
    daily = []
    for day in range(DAYS):
        aggregates = []
        for batch in gen.generate(day, SLICE_START, SLICE_LEN, 30.0):
            aggregates.extend(aggregate_flows(batch))
        daily.append(aggregates)
    # Two adjacent hours of day 0 for the hourly comparison.
    hour_a, hour_b = [], []
    for batch in gen.generate(0, 32400.0, 1800.0, 30.0):
        hour_a.extend(aggregate_flows(batch))
    for batch in gen.generate(0, 36000.0, 1800.0, 30.0):
        hour_b.extend(aggregate_flows(batch))

    rows = []
    for k in GRANULARITIES:
        day_hists = [_histogram(day, k) for day in daily]
        day_mismatches = [
            mismatch(day_hists[i], day_hists[i + 1]) for i in range(DAYS - 1)
        ]
        hourly = mismatch(_histogram(hour_a, k), _histogram(hour_b, k))
        rows.append(
            [
                k,
                f"{sum(day_mismatches) / len(day_mismatches):.3f}",
                f"{max(day_mismatches):.3f}",
                f"{hourly:.3f}",
            ]
        )
    return rows


def test_fig03_mismatch(benchmark):
    rows = run_once(benchmark, experiment)
    print("\nFigure 3 — histogram mismatch: day-to-day vs hour-to-hour")
    print(format_table(["granularity", "day avg", "day max", "hourly"], rows))
    by_k = {row[0]: row for row in rows}
    # Day-to-day mismatch stays moderate even at the paper's finest
    # granularity (64), where hour-to-hour approaches 1 because the time
    # bins now resolve within a day.
    assert float(by_k[64][2]) < 0.6, "day-to-day mismatch should stay moderate"
    assert float(by_k[64][3]) > 0.9, "hour-to-hour mismatch should approach 1 at k=64"
    assert float(by_k[64][3]) > float(by_k[64][1])
    # At coarse granularity hourly histograms still look alike — exactly
    # why the paper calls out 64+ as the divergence point.
    assert float(by_k[2][3]) < 0.3


def test_fig03_same_day_mismatch_is_zero(benchmark):
    def identical():
        gen = baseline_generator(seed=104, config=TrafficConfig(seed=104, flows_per_second=1.0))
        aggregates = []
        for batch in gen.generate(0, SLICE_START, 600.0, 30.0):
            aggregates.extend(aggregate_flows(batch))
        h = _histogram(aggregates, 8)
        return mismatch(h, _histogram(aggregates, 8))

    assert run_once(benchmark, identical) == 0.0
