"""Figure 4: the deadlock-free concurrent join procedure.

Paper: Figure 4 illustrates (not measures) how simultaneous joins to the
same neighborhood serialize — a join to a shallower node preempts an
uncommitted deeper one.  This bench quantifies the behaviour: all
concurrent joiners eventually enter, the prefix-free cover invariant
holds, and the resulting hypercube is balanced with high probability.
"""

from benchmarks.helpers import run_once

from repro.bench.stats import format_table
from repro.net.network import SimNetwork
from repro.overlay.node import OverlayConfig, OverlayNode
from repro.sim.kernel import Simulator

SIZES = [8, 16, 34, 64]


def build_concurrently(count: int, seed: int):
    sim = Simulator(seed)
    network = SimNetwork(sim, {})
    nodes = [OverlayNode(sim, network, f"n{i}", config=OverlayConfig()) for i in range(count)]
    rng = sim.rng("bootstrap")

    def provider(addr):
        live = sorted(n.address for n in nodes if n.in_overlay() and n.address != addr)
        return rng.choice(live) if live else None

    for node in nodes:
        node.bootstrap_provider = provider
    nodes[0].activate_as_root()
    start_rng = sim.rng("starts")
    for node in nodes[1:]:
        sim.schedule(start_rng.random() * 0.05, lambda n=node: n.start_join(provider(n.address)))
    converged = sim.run_until_predicate(
        lambda: all(n.in_overlay() for n in nodes), timeout=1200.0
    )
    return sim, nodes, converged


def experiment():
    rows = []
    for count in SIZES:
        sim, nodes, converged = build_concurrently(count, seed=400 + count)
        assert converged, f"{count}-node concurrent join did not converge"
        codes = [n.code for n in nodes]
        cover = sum(2.0 ** -len(c) for c in codes)
        lengths = sorted(len(c) for c in codes)
        rows.append(
            [
                count,
                f"{sim.now:.1f}s",
                lengths[0],
                lengths[-1],
                lengths[-1] - lengths[0],
                f"{cover:.6f}",
            ]
        )
        assert abs(cover - 1.0) < 1e-9, "codes must partition the space"
        for i, a in enumerate(codes):
            for b in codes[i + 1 :]:
                assert not a.comparable(b), "two live nodes share a region"
    return rows


def test_fig04_concurrent_join(benchmark):
    rows = run_once(benchmark, experiment)
    print("\nFigure 4 — concurrent joins: convergence and balance")
    print(format_table(
        ["nodes", "converge time", "min code", "max code", "spread", "cover"], rows
    ))
    for row in rows:
        # Adler's procedure keeps the cube balanced w.h.p.: code lengths
        # stay within a small band around log2(N).
        assert row[4] <= 4, f"{row[0]} nodes: code-length spread {row[4]} too wide"
