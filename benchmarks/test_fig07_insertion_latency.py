"""Figure 7: insertion latency over six hour-long slots (34-node overlay).

Paper: median insertion latency 1-2 s, mean 1-5 s, with a long tail
(high 99th percentiles) from queuing at transient hotspots and network
dynamics, across 11am and 11pm slots on three days.

Here: the same six slots on the shared scaled baseline run.
"""

from benchmarks.baseline_run import get_baseline_run
from benchmarks.helpers import run_once

from repro.bench.stats import format_table, summarize


def test_fig07_insertion_latency(benchmark):
    run = run_once(benchmark, get_baseline_run)
    rows = []
    for label, inserts in run.slot_inserts.items():
        latencies = [m.latency for m in inserts if m.latency is not None and m.success]
        assert latencies, f"slot {label} recorded no successful inserts"
        s = summarize(latencies)
        rows.append([
            label, s["count"], f"{s['median']:.2f}", f"{s['mean']:.2f}",
            f"{s['p90']:.2f}", f"{s['p99']:.2f}", f"{s['max']:.2f}",
        ])
    print(f"\nFigure 7 — insertion latency per slot (s); {run.total_records} records total")
    print(format_table(["slot", "inserts", "median", "mean", "p90", "p99", "max"], rows))

    all_lat = [m.latency for m in run.all_inserts if m.latency is not None and m.success]
    s = summarize(all_lat)
    # Paper regime: sub-couple-of-seconds medians, long tails (p99 well
    # above the median), means pulled above medians by the tail.
    assert 0.05 < s["median"] < 3.0
    assert s["p99"] > 2.5 * s["median"], "expected a long latency tail"
    assert s["mean"] > s["median"], "tail should pull the mean above the median"

    success = sum(1 for m in run.all_inserts if m.success)
    assert success / len(run.all_inserts) > 0.99, "inserts should essentially all complete"
