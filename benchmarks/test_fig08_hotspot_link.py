"""Figure 8: transmission delays on the slowest (hotspot) overlay link.

Paper: a pathological insertion was delayed 48 s by queuing at successive
links; the figure plots the transmission delays observed on the slowest
link over an hour, showing spikes well above the propagation floor.

Here: per-link (send time, delay) samples from the shared baseline run;
we report the busiest link's delay profile and confirm queueing spikes of
an order of magnitude over its own floor.
"""

from benchmarks.baseline_run import get_baseline_run
from benchmarks.helpers import run_once

from repro.bench.stats import format_table, summarize


def test_fig08_hotspot_link_delays(benchmark):
    run = run_once(benchmark, get_baseline_run)
    stats = run.cluster.network.link_stats
    sampled = {k: v for k, v in stats.items() if len(v.delay_samples) >= 50}
    assert sampled, "no links accumulated enough samples"

    # Rank links by worst observed delay — the paper picked the slowest
    # link on the pathological insertion's path.
    ranked = sorted(
        sampled.items(), key=lambda kv: max(d for _, d in kv[1].delay_samples), reverse=True
    )
    rows = []
    for (src, dst), link in ranked[:5]:
        delays = [d for _, d in link.delay_samples]
        s = summarize(delays)
        rows.append([
            f"{src}->{dst}", len(delays), f"{s['median'] * 1e3:.0f}ms",
            f"{s['p90'] * 1e3:.0f}ms", f"{s['max']:.2f}s",
            f"{s['max'] / s['median']:.0f}x",
        ])
    print("\nFigure 8 — delay profile of the five worst overlay links")
    print(format_table(["link", "msgs", "median", "p90", "max", "max/median"], rows))

    worst_delays = [d for _, d in ranked[0][1].delay_samples]
    s = summarize(worst_delays)
    # Queuing spikes: the worst delay dwarfs the link's own typical delay.
    assert s["max"] > 8 * s["median"], "hotspot link should show queueing spikes"
    assert s["max"] > 0.5, "expected multi-hundred-ms pathological delays"
