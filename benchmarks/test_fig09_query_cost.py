"""Figure 9: query cost — the number of overlay nodes visited per query.

Paper: with uniformly random attribute ranges and 5-minute time windows
over all three indices, MIND's locality preservation keeps over 90% of
queries at 4 visited nodes or fewer.

Here: the query workload of the shared baseline run, same definition of
cost (every node a query or sub-query touched, forwarding or resolving).
"""

from benchmarks.baseline_run import get_baseline_run
from benchmarks.helpers import run_once

from repro.bench.stats import format_table


def test_fig09_query_cost(benchmark):
    run = run_once(benchmark, get_baseline_run)
    costs = [m.cost for m in run.all_queries if m.end is not None]
    assert len(costs) >= 100, "need a meaningful query sample"

    rows = []
    for bound in (1, 2, 3, 4, 6, 8, 12):
        frac = sum(1 for c in costs if c <= bound) / len(costs)
        rows.append([f"<= {bound}", f"{100 * frac:.1f}%"])
    print(f"\nFigure 9 — query cost distribution ({len(costs)} queries)")
    print(format_table(["nodes visited", "fraction of queries"], rows))
    print(f"max nodes visited: {max(costs)}")

    frac_le4 = sum(1 for c in costs if c <= 4) / len(costs)
    assert frac_le4 >= 0.8, f"locality should keep most queries cheap, got {frac_le4:.2f} <= 4 nodes"
    assert max(costs) <= 34, "cost can never exceed the overlay size"


def test_fig09_small_queries_cost_less(benchmark):
    run = run_once(benchmark, get_baseline_run)
    # Queries that matched nothing tend to be small volumes; compare their
    # cost against queries that returned records.
    finished = [m for m in run.all_queries if m.end is not None and m.complete]
    empty = [m.cost for m in finished if m.records == 0]
    nonempty = [m.cost for m in finished if m.records > 0]
    assert finished
    if not empty or not nonempty:
        print("\n(skipping empty-vs-nonempty comparison: one bucket empty)")
        return
    avg_empty = sum(empty) / len(empty)
    avg_nonempty = sum(nonempty) / len(nonempty)
    print(f"\navg cost: empty-result queries {avg_empty:.2f} nodes, "
          f"record-returning queries {avg_nonempty:.2f} nodes")
    assert avg_empty <= avg_nonempty + 1.0
