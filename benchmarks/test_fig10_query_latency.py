"""Figure 10: query latency on the 34-node baseline deployment.

Paper: median query latency around 500 ms — encouraging for on-line
detection — but the distribution is skewed, with high 90th percentiles
and means (routing transients, responders unable to reach originators).

Here: the same statistics over the shared baseline run's query workload.
"""

from benchmarks.baseline_run import get_baseline_run
from benchmarks.helpers import run_once

from repro.bench.stats import format_table, summarize


def test_fig10_query_latency(benchmark):
    run = run_once(benchmark, get_baseline_run)
    rows = []
    for label, queries in run.slot_queries.items():
        latencies = [m.latency for m in queries if m.latency is not None and m.complete]
        if not latencies:
            continue
        s = summarize(latencies)
        rows.append([
            label, s["count"], f"{s['median']:.2f}", f"{s['mean']:.2f}",
            f"{s['p90']:.2f}", f"{s['max']:.2f}",
        ])
    print("\nFigure 10 — query latency per slot (s)")
    print(format_table(["slot", "queries", "median", "mean", "p90", "max"], rows))

    latencies = [m.latency for m in run.all_queries if m.latency is not None and m.complete]
    assert len(latencies) >= 100
    s = summarize(latencies)
    print(f"overall: median={s['median']:.2f}s mean={s['mean']:.2f}s p90={s['p90']:.2f}s")

    # Paper regime: sub-second median, right-skewed distribution.
    assert s["median"] < 1.5, f"median query latency {s['median']:.2f}s too slow"
    assert s["p90"] > s["median"] * 1.5, "expected a skewed latency distribution"
    assert s["mean"] > s["median"], "tail should pull the mean above the median"

    complete = sum(1 for m in run.all_queries if m.complete)
    assert complete / len(run.all_queries) > 0.95, "queries should essentially all complete"
