"""Figure 11: query processing delay spikes during a network outage.

Paper: during a routing outage between a query responder and the
originator it took 45 s to re-establish the overlay links; the per-query
time series at the hotspot node shows two back-to-back spikes (one query
also queued behind the other, since database access is not interleaved
with network transmission).

Here: a dedicated small run — steady queries between two nodes while
their direct link is down for 45 s.  Queries issued during the outage show
the reconnection spike; queries before and after stay fast.
"""

from benchmarks.helpers import planetlab_calibration, run_once

from repro.bench.stats import format_table
from repro.core.cluster import MindCluster
from repro.core.query import RangeQuery
from repro.core.records import Record
from repro.core.schema import AttributeSpec, IndexSchema
from repro.net.topology import ABILENE_SITES

OUTAGE_START = 30.0
OUTAGE_LEN = 45.0


def experiment():
    config = planetlab_calibration(seed=711, slow_node_fraction=0.0)
    cluster = MindCluster(ABILENE_SITES, config)
    cluster.build()
    schema = IndexSchema(
        "out",
        attributes=[
            AttributeSpec("x", 0.0, 1000.0),
            AttributeSpec("timestamp", 0.0, 86400.0, is_time=True),
        ],
    )
    cluster.create_index(schema)
    rng = cluster.sim.rng("fig11")
    base = cluster.sim.now
    for i in range(300):
        record = Record([rng.uniform(0, 1000), rng.uniform(0, 86400)])
        cluster.schedule_insert("out", record, ABILENE_SITES[i % 11].name, base + i * 0.05)
    cluster.advance(20.0)

    # Find the owner of a specific small region and an origin whose only
    # greedy path crosses the victim link's endpoint.
    probe = RangeQuery("out", {"x": (100.0, 140.0), "timestamp": (0.0, 86400.0)})
    warm = cluster.query_now(probe, origin="NYCM")
    responder = sorted(warm.nodes_visited)[0] if warm.nodes_visited else "CHIN"
    origin = "NYCM" if responder != "NYCM" else "ATLA"

    start = cluster.sim.now
    cluster.sim.schedule(OUTAGE_START, cluster.network.set_link_down, responder, origin, OUTAGE_LEN)
    samples = []
    for i in range(24):
        at = start + 5.0 * i
        cluster.sim.schedule_at(at, lambda a=at: cluster.by_address[origin].query_index(
            probe, callback=lambda m, a=a: samples.append((a - start, m.latency, m.complete))
        ))
    cluster.advance(OUTAGE_START + OUTAGE_LEN + 120.0 + 120.0)
    return samples


def test_fig11_outage_spikes(benchmark):
    samples = run_once(benchmark, experiment)
    assert len(samples) >= 20
    rows = [[f"t+{int(t)}s", f"{lat:.2f}s" if lat is not None else "-", ok]
            for t, lat, ok in sorted(samples)]
    print("\nFigure 11 — per-query response time around a 45 s link outage "
          f"(outage at t+{OUTAGE_START:.0f}s..t+{OUTAGE_START + OUTAGE_LEN:.0f}s)")
    print(format_table(["issued", "latency", "complete"], rows))

    before = [lat for t, lat, ok in samples if t < OUTAGE_START and ok and lat is not None]
    during = [lat for t, lat, ok in samples
              if OUTAGE_START <= t < OUTAGE_START + OUTAGE_LEN and lat is not None]
    after = [lat for t, lat, ok in samples
             if t >= OUTAGE_START + OUTAGE_LEN + 10 and ok and lat is not None]
    assert before and during and after
    base_median = sorted(before)[len(before) // 2]
    # The outage produces spikes: some query during the window takes far
    # longer than the steady-state median (reconnect/alternate routing).
    assert max(during) > 4 * base_median, (
        f"expected outage spikes, base {base_median:.2f}s vs during max {max(during):.2f}s"
    )
    after_median = sorted(after)[len(after) // 2]
    assert after_median < 3 * base_median, "latency should recover after the outage"
