"""Figure 12: insertion tuples traversing each overlay link.

Paper: the per-link tuple counts over one day are not perfectly balanced
— Abilene nodes inject more tuples than GÉANT nodes (sampling-rate
asymmetry) — but every link carries far less than a centralized solution
would concentrate on the links around one server.

Here: per-link tuple counters from the shared baseline run, plus the
centralized-equivalent concentration for contrast.
"""

from benchmarks.baseline_run import get_baseline_run
from benchmarks.helpers import run_once

from repro.bench.stats import format_table, summarize


def test_fig12_link_traffic(benchmark):
    run = run_once(benchmark, get_baseline_run)
    stats = run.cluster.network.link_stats
    tuple_counts = {k: v.tuples for k, v in stats.items() if v.tuples > 0}
    assert tuple_counts, "no tuple-carrying links recorded"

    counts = sorted(tuple_counts.values(), reverse=True)
    s = summarize([float(c) for c in counts])
    rows = [[f"{src}->{dst}", n] for (src, dst), n in
            sorted(tuple_counts.items(), key=lambda kv: kv[1], reverse=True)[:8]]
    print(f"\nFigure 12 — tuples per overlay link ({len(counts)} active links)")
    print(format_table(["link", "tuples"], rows))
    print(f"per-link tuples: median={s['median']:.0f} max={s['max']:.0f} "
          f"(total inserted: {run.total_records})")

    # A centralized design would push every tuple over the server's links;
    # MIND's busiest link carries a small fraction of the total volume.
    assert s["max"] < 0.5 * run.total_records, (
        "no single link should carry most of the insertion volume"
    )

    # Abilene origins inject more tuples than GÉANT origins (sampling
    # asymmetry): compare tuples leaving each population's nodes.
    from repro.net.topology import ABILENE_SITES, GEANT_SITES

    abilene_names = {s_.name for s_ in ABILENE_SITES}
    geant_names = {s_.name for s_ in GEANT_SITES}
    abilene_out = sum(n for (src, _), n in tuple_counts.items() if src in abilene_names)
    geant_out = sum(n for (src, _), n in tuple_counts.items() if src in geant_names)
    print(f"tuples leaving Abilene nodes: {abilene_out}, GÉANT nodes: {geant_out}")
    assert abilene_out > geant_out, "Abilene should inject more tuples (1/100 vs 1/1000 sampling)"
