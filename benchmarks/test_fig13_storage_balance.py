"""Figure 13: per-node storage distribution — balanced vs even cuts.

Paper: Figure 13 shows the data distribution across MIND nodes; with the
histogram-derived balanced cuts, storage is far more even than the
order-of-magnitude imbalance the raw (even-cut) embedding would produce
on skewed traffic (Figure 2).  This bench runs the same workload under
both embeddings and compares the imbalance directly — also the ablation
for the balanced-cuts design decision.
"""

from benchmarks.helpers import planetlab_calibration, run_once

from repro.bench.stats import format_table
from repro.bench.workload import replay, timed_index_records
from repro.core.cluster import MindCluster
from repro.core.cuts import BalancedCuts, EvenCuts
from repro.core.histogram import MultiDimHistogram
from repro.net.topology import ABILENE_SITES
from repro.traffic.datasets import abilene_generator
from repro.traffic.generator import TrafficConfig
from repro.traffic.indices import index2_schema

START, DURATION = 39600.0, 600.0
THRESHOLDS = {"index2": 10_000.0}
HORIZON = 86400.0


def imbalance_stats(distribution):
    counts = sorted(distribution.values())
    total = sum(counts)
    nonempty = [c for c in counts if c > 0]
    return {
        "total": total,
        "empty_nodes": sum(1 for c in counts if c == 0),
        "max": counts[-1],
        "top_share": counts[-1] / max(1, total),
        "max_over_mean": counts[-1] / max(1.0, total / len(counts)),
    }


def run_with(strategy_factory, seed):
    config = planetlab_calibration(seed=seed, slow_node_fraction=0.0)
    cluster = MindCluster(ABILENE_SITES, config)
    cluster.build()
    gen = abilene_generator(seed=720, config=TrafficConfig(seed=720, flows_per_second=3.0))
    timed = timed_index_records(gen, 0, START, DURATION, indices=("index2",), thresholds=THRESHOLDS)
    schema = index2_schema(HORIZON)
    cluster.create_index(schema, strategy=strategy_factory(schema, timed))
    start, end = replay(cluster, timed)
    cluster.advance((end - start) + 120.0)
    return cluster.storage_distribution("index2"), len(timed)


def even_strategy(schema, timed):
    return EvenCuts()


def balanced_strategy(schema, timed):
    hist = MultiDimHistogram(3, (65536, 4096, 64))
    for item in timed:
        hist.add(schema.normalize(item.record.values))
    return BalancedCuts(hist)


def experiment():
    even_dist, n = run_with(even_strategy, seed=721)
    balanced_dist, _ = run_with(balanced_strategy, seed=722)
    return even_dist, balanced_dist, n


def test_fig13_storage_balance(benchmark):
    even_dist, balanced_dist, n = run_once(benchmark, experiment)
    even = imbalance_stats(even_dist)
    balanced = imbalance_stats(balanced_dist)

    rows = []
    for address in sorted(even_dist):
        rows.append([address, even_dist[address], balanced_dist.get(address, 0)])
    print(f"\nFigure 13 — records per node, even vs balanced cuts ({n} records)")
    print(format_table(["node", "even cuts", "balanced cuts"], rows))
    print(f"even:     top node holds {100 * even['top_share']:.0f}% "
          f"({even['max_over_mean']:.1f}x the mean), {even['empty_nodes']} empty nodes")
    print(f"balanced: top node holds {100 * balanced['top_share']:.0f}% "
          f"({balanced['max_over_mean']:.1f}x the mean), {balanced['empty_nodes']} empty nodes")

    # Both runs stored everything (replication off, no failures).
    assert even["total"] == balanced["total"] == n
    # The paper's claim: balanced cuts remove the order-of-magnitude skew.
    assert even["max_over_mean"] > 2.5, "even cuts should be visibly imbalanced"
    assert balanced["max_over_mean"] < even["max_over_mean"] / 1.8, (
        "balanced cuts should reduce the imbalance substantially"
    )
    assert balanced["empty_nodes"] <= even["empty_nodes"]
