"""Figure 14 (and Section 4.3): the 102-node large-scale experiment.

Paper: 102 arbitrarily chosen PlanetLab nodes with churn (70-102 live),
Index-1 records inserted at ~1 record/s/node.  Median insertion latency
below 1 s with a long tail; ~90% of insertions take <= 5 overlay hops but
some take 1-2 hops more than the network diameter because MIND re-routes
around failures; queries visit at most ~12 nodes.

Here: 102 synthetic NA/EU PlanetLab sites, churn via the failure
injector, a few minutes of Index-1 insertions at the paper's per-node
rate, and the same latency/hop/query-cost statistics.
"""

import random

import pytest

from benchmarks.helpers import planetlab_calibration, run_once

from repro.bench.stats import cdf_points, format_table, summarize
from repro.core.cluster import MindCluster
from repro.core.query import RangeQuery
from repro.core.records import Record
from repro.net.topology import synthetic_planetlab_sites
from repro.overlay.node import OverlayConfig
from repro.traffic.indices import index1_schema

NODES = 102
RUN_S = 240.0
RATE_PER_NODE = 1.0  # records per second per node, as in the paper


def experiment():
    site_rng = random.Random(730)
    sites = synthetic_planetlab_sites(NODES, site_rng)
    config = planetlab_calibration(seed=731)
    # At 102 inserts/s the per-message dispatch cost must stay well below
    # saturation even on the slow nodes, or false failure declarations
    # cascade (the paper's prototype handled this rate on PlanetLab).
    config.overlay = OverlayConfig(
        service_time_s=0.01,
        service_jitter_sigma=0.8,
        liveness_enabled=True,
        hb_interval_s=5.0,
        hb_timeout_s=25.0,
        adoption_delay_s=3.0,
    )
    config.slow_factor = 3.0
    cluster = MindCluster(sites, config)
    cluster.build()
    schema = index1_schema(86400.0)
    cluster.create_index(schema, replication=1)

    # Churn: nodes crash and rejoin; the live population floats below 102.
    addresses = [n.address for n in cluster.nodes]
    cluster.failures.start_churn(
        addresses, mean_uptime_s=60.0, mean_downtime_s=30.0, min_live=70
    )

    rng = random.Random(732)
    base = cluster.sim.now
    total = 0
    for second in range(int(RUN_S)):
        for address in addresses:
            if rng.random() < RATE_PER_NODE:
                record = Record(
                    [rng.uniform(0, 2**32), rng.uniform(0, 86400), rng.uniform(0, 5024)],
                    payload={"node": address},
                )
                cluster.schedule_insert("index1", record, address, base + second + rng.random())
                total += 1
    for i in range(40):
        t0 = rng.uniform(0, 86400 - 300)
        # Monitoring-style queries: a 5-minute window and a thin fanout
        # slice (the "fanout > F" threshold region of real, heavy-tailed
        # data; our synthetic values are uniform, so equivalent selectivity
        # means a narrow range).
        lo = rng.uniform(0, 4500)
        query = RangeQuery(
            "index1", {"timestamp": (t0, t0 + 300), "fanout": (lo, lo + rng.uniform(50, 500))}
        )
        cluster.schedule_query(query, rng.choice(addresses), base + rng.uniform(30, RUN_S))
    cluster.advance(RUN_S + 120.0)
    return cluster, total


def test_fig14_large_scale(benchmark):
    cluster, total = run_once(benchmark, experiment)
    inserts = [m for m in cluster.metrics.inserts if m.latency is not None and m.success]
    attempted = len(cluster.metrics.inserts)
    assert attempted > 0.5 * total, "most scheduled inserts should have been issued"
    # Inserts racing a takeover window can fail; the vast majority land.
    assert len(inserts) / attempted > 0.85, (
        f"churn should not sink inserts: {len(inserts)}/{attempted}"
    )

    latencies = [m.latency for m in inserts]
    s = summarize(latencies)
    print(f"\nFigure 14 — insertion latency CDF at {NODES} nodes with churn "
          f"({len(inserts)}/{attempted} inserts completed; "
          f"{len(cluster.live_nodes())} nodes live at the end)")
    rows = [[f"{int(frac * 100)}%", f"{val:.2f}s"] for frac, val in cdf_points(latencies)]
    print(format_table(["percentile", "latency"], rows))
    assert s["median"] < 1.5, f"median insertion latency {s['median']:.2f}s"
    assert s["p99"] > 2 * s["median"], "expected a long tail under churn"

    hops = [m.hops for m in inserts if m.hops is not None]
    frac_le5 = sum(1 for h in hops if h <= 5) / len(hops)
    print(f"hops: <=5 for {100 * frac_le5:.1f}% of inserts, max {max(hops)}")
    assert frac_le5 > 0.75, "most insertions should take few hops"
    # Re-routing around churn can exceed the balanced-cube diameter (the
    # paper saw inserts 12 hops over it); the route TTL bounds the worst.
    assert max(hops) <= 24

    queries = [m for m in cluster.metrics.queries if m.end is not None]
    if queries:
        costs = [m.cost for m in queries]
        print(f"queries: {len(queries)} issued, max nodes visited {max(costs)}")
        # Routing tie-breaks vary with the process hash seed, so the exact
        # worst case moves a little between runs; it stays a small
        # fraction of the 102-node overlay.
        assert max(costs) <= 35


# ----------------------------------------------------------------------
# The 1000-node / 1M-record parameterization (ROADMAP item 1).  Marked
# ``scale`` — several minutes of wall clock each — so neither tier-1 nor
# a default benchmark run picks them up; run with ``-m scale``.
# ----------------------------------------------------------------------


@pytest.mark.scale
def test_fig14_scale_thousand_nodes():
    """Clean 1000-node / 1M-record run: the wall-clock budget gate."""
    from benchmarks.perf.scale_bench import run_scale_scenario

    m = run_scale_scenario(nodes=1000, records=1_000_000)
    print(
        f"\nFigure 14 at scale — {m['nodes']} nodes, {m['records']:,} records: "
        f"wall {m['wall_s']:.0f}s, {m['events_per_s']:,.0f} events/s, "
        f"{m['messages_per_s']:,.0f} messages/s, peak RSS {m['peak_rss_mb']:.0f} MB"
    )
    assert m["complete_fraction"] >= 0.999, m
    assert m["latency_median_s"] < 1.5, m
    # log2(1000)-ish greedy paths; the mean stays well under the diameter.
    assert m["mean_hops"] < 9, m
    assert m["wall_s"] < 300.0, f"1M-record run blew the 5-minute budget: {m['wall_s']:.0f}s"


@pytest.mark.scale
def test_fig14_scale_thousand_nodes_churn():
    """Churn harness at 1000 nodes (>= 700 live), million-record load."""
    from benchmarks.perf.scale_bench import run_scale_scenario

    m = run_scale_scenario(
        nodes=1000, records=1_000_000, replication=1, churn_min_live=700
    )
    print(
        f"\nFigure 14 at scale with churn — completed {m['complete_fraction']:.1%}, "
        f"median latency {m['latency_median_s']:.2f}s, wall {m['wall_s']:.0f}s"
    )
    # Inserts racing crashes can fail; the vast majority must still land.
    assert m["complete_fraction"] > 0.9, m
    assert m["latency_median_s"] < 2.5, m
