"""Figure 16: query success vs node failures at replication 0 / 1 / full.

Paper (102 instances on a local cluster, Index-1 data, controlled random
kills): without replication the fraction of successful queries decreases
almost linearly with failures; with one replica MIND survives 15% failures
without loss; with full replication it survives over 50%.

Here: a 48-node co-located cluster (documented scale-down), the same
three replication levels, failure fractions up to 50%, success = perfect
recall against the centralized ground truth.
"""

from benchmarks.helpers import run_once

from repro.bench.stats import format_table
from repro.core.cluster import ClusterConfig, MindCluster
from repro.core.query import RangeQuery
from repro.core.records import Record
from repro.core.replication import FULL_REPLICATION
from repro.core.schema import AttributeSpec, IndexSchema
from repro.overlay.node import OverlayConfig

NODES = 48
RECORDS = 400
QUERIES = 24
FAILURE_FRACTIONS = [0.0, 0.05, 0.10, 0.15, 0.25, 0.50]
LEVELS = [("none", 0), ("1 replica", 1), ("full", FULL_REPLICATION)]


def run_cell(replication: int, failure_fraction: float, seed: int) -> float:
    overlay = OverlayConfig(
        liveness_enabled=True, hb_interval_s=2.0, hb_timeout_s=7.0, adoption_delay_s=2.0
    )
    config = ClusterConfig(
        seed=seed, overlay=overlay, track_ground_truth=True, slow_node_fraction=0.0
    )
    cluster = MindCluster(NODES, config)
    cluster.build()
    schema = IndexSchema(
        "r",
        attributes=[
            AttributeSpec("dest", 0.0, 1000.0),
            AttributeSpec("timestamp", 0.0, 86400.0, is_time=True),
            AttributeSpec("fanout", 0.0, 5024.0),
        ],
    )
    cluster.create_index(schema, replication=replication)

    rng = cluster.sim.rng("fig16.workload")
    addresses = [n.address for n in cluster.nodes]
    base = cluster.sim.now
    for i in range(RECORDS):
        record = Record([rng.uniform(0, 1000), rng.uniform(0, 86400), rng.uniform(0, 5024)])
        cluster.schedule_insert("r", record, rng.choice(addresses), base + i * 0.03)
    cluster.advance(30.0)

    # Selective monitoring queries, as in the paper's workload: each
    # touches one or two regions, so success declines roughly linearly in
    # the fraction of (unreplicated) regions lost.
    queries = []
    for i in range(QUERIES):
        lo = rng.uniform(0, 970)
        queries.append(RangeQuery("r", {"dest": (lo, lo + 30), "timestamp": (0, 86400)}))
    expected = {i: cluster.reference_answer(q) for i, q in enumerate(queries)}

    kill_count = int(round(failure_fraction * NODES))
    kill_rng = cluster.sim.rng("fig16.kills")
    victims = sorted(addresses, key=lambda a: kill_rng.random())[:kill_count]
    for victim in victims:
        cluster.failures.crash_node(victim, at_in_s=1.0)
    cluster.advance(120.0)

    survivors = [a for a in addresses if a not in victims]
    good = 0
    for i, query in enumerate(queries):
        try:
            metric = cluster.query_now(query, origin=survivors[i % len(survivors)], timeout_s=150.0)
        except TimeoutError:
            continue
        if metric.record_keys >= expected[i]:
            good += 1
    return good / len(queries)


def experiment():
    table = {}
    for label, level in LEVELS:
        for frac in FAILURE_FRACTIONS:
            table[(label, frac)] = run_cell(level, frac, seed=740 + int(frac * 100))
    return table


def test_fig16_robustness(benchmark):
    table = run_once(benchmark, experiment)
    rows = []
    for frac in FAILURE_FRACTIONS:
        rows.append(
            [f"{int(frac * 100)}%"]
            + [f"{table[(label, frac)]:.2f}" for label, _ in LEVELS]
        )
    print(f"\nFigure 16 — fraction of successful queries vs failed nodes "
          f"({NODES} co-located nodes, {RECORDS} records, {QUERIES} queries/cell)")
    print(format_table(["failed", "no replication", "1 replica", "full"], rows))

    # No failures: everything succeeds at every level.
    for label, _ in LEVELS:
        assert table[(label, 0.0)] == 1.0

    # Without replication success degrades markedly by 25-50% failures.
    assert table[("none", 0.25)] < 0.9
    assert table[("none", 0.50)] < table[("none", 0.10)]

    # One replica: no loss through 15% failures (the paper's headline).
    for frac in (0.05, 0.10, 0.15):
        assert table[("1 replica", frac)] >= 0.95, (
            f"1 replica at {frac:.0%} failures: {table[('1 replica', frac)]:.2f}"
        )

    # Full replication: survives 50% failures essentially unharmed.
    assert table[("full", 0.50)] >= 0.9

    # Ordering: more replication never hurts.
    for frac in FAILURE_FRACTIONS:
        assert table[("full", frac)] >= table[("none", frac)] - 0.05
