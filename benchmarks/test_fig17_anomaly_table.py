"""Figure 17 (table): capturing real-world anomalies with MIND queries.

Paper: an 11-node MIND overlay congruent to Abilene replays ~25 minutes of
the December 18th, 2003 trace in which an independent off-line analysis
found anomalies at 13:30, 15:45, 15:55 (alpha flows) and 19:50, 19:55
(DoS/scans).  For each anomaly MIND returned a small superset of the
constituent records with average response times (queried from every node)
on the order of a second; the returned tuples for the 19:55 DoS flows
named the backbone routers on the attack paths.

Here: the same five episodes with the synthetic Lakhina anomaly set, the
same two query templates, queried from all 11 nodes.
"""

from benchmarks.helpers import planetlab_calibration, run_once

from repro.anomaly.queries import alpha_flow_query, fanout_query, monitors_in_results
from repro.bench.stats import format_table
from repro.bench.workload import replay, timed_index_records
from repro.core.cluster import MindCluster
from repro.net.topology import ABILENE_SITES
from repro.traffic.datasets import abilene_generator, lakhina_anomalies
from repro.traffic.generator import TrafficConfig
from repro.traffic.indices import index1_schema, index2_schema

EPISODES = [
    ("13:30", "alpha", 13 * 3600 + 30 * 60),
    ("15:45", "alpha", 15 * 3600 + 45 * 60),
    ("15:55", "alpha", 15 * 3600 + 55 * 60),
    ("19:50", "fanout", 19 * 3600 + 50 * 60),
    ("19:55", "fanout", 19 * 3600 + 55 * 60),
]
ACTUAL = {
    "13:30": "2 alpha flows",
    "15:45": "2 alpha flows",
    "15:55": "2 alpha flows",
    "19:50": "2 DoS, 1 scan",
    "19:55": "2 DoS",
}


def experiment():
    gen = abilene_generator(seed=750, config=TrafficConfig(seed=750, flows_per_second=1.0))
    gen.anomalies.extend(lakhina_anomalies(gen))

    config = planetlab_calibration(seed=751, track_ground_truth=True)
    cluster = MindCluster(ABILENE_SITES, config)
    cluster.build()
    cluster.create_index(index1_schema(86400.0))
    cluster.create_index(index2_schema(86400.0))

    results = []
    for label, kind, t_secs in EPISODES:
        window_start = (t_secs // 300) * 300.0
        # Replay the anomaly's 10-minute neighbourhood (the paper replayed
        # a contiguous 25 minutes; the episodes are what matters).
        timed = timed_index_records(
            gen, 0, window_start - 60.0, 540.0, indices=("index1", "index2")
        )
        if timed:
            start, end = replay(cluster, timed)
            cluster.advance((end - start) + 60.0)

        query = (
            fanout_query(window_start, 300.0)
            if kind == "fanout"
            else alpha_flow_query(window_start, 300.0)
        )
        expected = cluster.reference_answer(query)
        latencies, sizes, monitors, recall_ok = [], [], set(), True
        for site in ABILENE_SITES:
            metric = cluster.query_now(query, origin=site.name, timeout_s=200.0)
            latencies.append(metric.latency)
            sizes.append(metric.records)
            monitors |= set(monitors_in_results(metric.results))
            if not metric.record_keys >= expected:
                recall_ok = False
        results.append(
            {
                "label": label,
                "kind": kind,
                "result_size": max(sizes),
                "expected": len(expected),
                "avg_latency": sum(latencies) / len(latencies),
                "monitors": tuple(sorted(monitors)),
                "recall_ok": recall_ok and len(expected) > 0,
            }
        )
    return results, [e for e in gen.anomalies if e.name.startswith("dos-1955")]


def test_fig17_anomaly_table(benchmark):
    results, dos_1955 = run_once(benchmark, experiment)
    rows = [
        [r["label"], r["result_size"], ACTUAL[r["label"]], f"{r['avg_latency']:.2f}"]
        for r in results
    ]
    print("\nFigure 17 — anomaly capture on the 11-node Abilene-congruent overlay")
    print(format_table(
        ["anomaly time", "result size", "actual", "avg response time (s)"], rows
    ))

    for r in results:
        assert r["recall_ok"], f"{r['label']}: MIND missed anomaly records (recall < 1)"
        # A small superset: tens of records, not thousands.
        assert r["expected"] <= r["result_size"] < 500
        # Response times on the order of a second.
        assert r["avg_latency"] < 6.0

    # The by-product: the 19:55 DoS tuples name the routers on the paths.
    last = results[-1]
    for event in dos_1955:
        assert set(event.monitors) <= set(last["monitors"]), (
            f"{event.name}: path {event.monitors} not fully visible in {last['monitors']}"
        )
    print(f"19:55 DoS paths observed at: {last['monitors']}")
