"""Alpha-flow detection with drill-down on the 34-node backbone.

Run with::

    python examples/alpha_flow_detection.py

Reproduces the paper's driving scenario end to end: the full 34-monitor
Abilene+GÉANT deployment, a synthetic trace with two injected alpha flows,
the Index-2 monitoring query, and the programmatic drill-down an operator
would script to isolate the anomaly.
"""

from repro.anomaly.drilldown import drill_down
from repro.anomaly.queries import alpha_flow_query, monitors_in_results
from repro.bench.workload import replay, timed_index_records
from repro.core.cluster import ClusterConfig, MindCluster
from repro.net.topology import backbone_sites
from repro.traffic.anomalies import AlphaFlowEvent
from repro.traffic.generator import BackboneTrafficGenerator, TrafficConfig
from repro.traffic.indices import index2_schema

TRACE_START = 3000.0
TRACE_LEN = 600.0


def main() -> None:
    sites = backbone_sites()
    gen = BackboneTrafficGenerator(sites, TrafficConfig(seed=11, flows_per_second=0.8))
    pool = gen.pools["abilene"]
    alpha = AlphaFlowEvent(
        "alpha-demo", TRACE_START + 240.0, 150.0, pool.prefixes[40], pool.prefixes[41],
        ("NYCM", "CHIN", "DNVR"), octets_per_window=7_000_000,
    )
    gen.anomalies.append(alpha)

    cluster = MindCluster(sites, ClusterConfig(seed=12))
    cluster.build()
    cluster.create_index(index2_schema(86400.0))

    print("replaying 10 minutes of backbone traffic into Index-2 ...")
    timed = timed_index_records(gen, 0, TRACE_START, TRACE_LEN, indices=("index2",))
    start, end = replay(cluster, timed)
    cluster.advance((end - start) + 60.0)
    print(f"inserted {len(timed)} filtered flow records "
          f"(median insert latency "
          f"{sorted(cluster.metrics.insert_latencies())[len(cluster.metrics.inserts) // 2]:.2f}s)")

    # The periodic monitoring query: alpha flows in the event's 5 minutes.
    t0 = (alpha.start // 300.0) * 300.0
    query = alpha_flow_query(t0, 300.0)
    result = cluster.query_now(query, origin="UK-London")
    print(f"\nmonitoring query: {result.records} records in {result.latency:.2f}s "
          f"({result.cost} nodes visited)")
    print(f"observing monitors: {monitors_in_results(result.results)}")

    # Drill down around the hottest destination until few records remain.
    session = drill_down(cluster, query, origin="UK-London", value_attribute="octets", target_size=5)
    print(f"\ndrill-down: {session.queries_issued} queries, "
          f"{session.total_latency:.2f}s total")
    for step in session.steps:
        lo, hi = step.query.interval("dest_prefix")
        span = "all" if lo is None else f"{int(hi - lo):,} addrs"
        print(f"  dest range {span:>16s}: {step.records} records")
    for record in session.final_records:
        print(f"  -> dest={int(record.values[0]):#x} octets={record.values[2]:,.0f} "
              f"at {record.payload['node']}")


if __name__ == "__main__":
    main()
