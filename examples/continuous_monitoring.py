"""Continuous monitoring with triggers: alerts instead of polling.

Run with::

    python examples/continuous_monitoring.py

The paper notes that triggers (standing queries) are supported by the same
machinery as queries.  Here a security console at one PoP registers two
standing queries — high-fanout aggregates (DoS/scan) and alpha-flow-sized
aggregates — and gets notified the moment matching traffic summaries are
inserted anywhere in the overlay, instead of polling every five minutes.
"""

from repro.bench.workload import replay, timed_index_records
from repro.core.cluster import ClusterConfig, MindCluster
from repro.core.query import RangeQuery
from repro.net.topology import ABILENE_SITES
from repro.traffic.anomalies import DoSEvent
from repro.traffic.generator import BackboneTrafficGenerator, TrafficConfig
from repro.traffic.indices import index1_schema

TRACE_START = 54000.0
TRACE_LEN = 420.0
CONSOLE = "WASH"


def main() -> None:
    gen = BackboneTrafficGenerator(ABILENE_SITES, TrafficConfig(seed=55, flows_per_second=1.0))
    pool = gen.pools["abilene"]
    dos = DoSEvent(
        "dos-live", TRACE_START + 180.0, 120.0, pool.prefixes[25], pool.prefixes[26],
        ("CHIN", "KSCY"), attempts_per_window=2400,
    )
    gen.anomalies.append(dos)

    cluster = MindCluster(ABILENE_SITES, ClusterConfig(seed=56))
    cluster.build()
    cluster.create_index(index1_schema(86400.0))

    # The console registers a standing query: fanout above 1500, anywhere.
    alerts = []
    installed = []
    console = cluster.by_address[CONSOLE]
    console.create_trigger(
        RangeQuery("index1", {"fanout": (1500.0, None)}),
        callback=lambda record: alerts.append((cluster.sim.now, record)),
        installed=installed.append,
    )
    cluster.sim.run_until_predicate(lambda: bool(installed), timeout=60.0)
    print(f"trigger installed across the overlay (success={installed[0]})")

    print("replaying traffic; the console is idle, not polling ...")
    timed = timed_index_records(gen, 0, TRACE_START, TRACE_LEN, indices=("index1",))
    start, end = replay(cluster, timed, trace_start=TRACE_START)
    cluster.advance((end - start) + 60.0)

    print(f"\n{len(alerts)} alerts pushed to {CONSOLE}:")
    for t, record in alerts[:8]:
        print(f"  t={t:7.1f}s  fanout={record.values[2]:6.0f}  "
              f"dest={int(record.values[0]):#x}  seen at {record.payload['node']}")
    if len(alerts) > 8:
        print(f"  ... and {len(alerts) - 8} more")

    assert alerts, "the DoS burst must raise alerts"
    reporting = {record.payload["node"] for _, record in alerts}
    assert set(dos.monitors) <= reporting
    print(f"\nattack path reported by: {sorted(reporting)}")
    first_alert = min(t for t, _ in alerts)
    attack_offset = dos.start - TRACE_START
    alert_offset = first_alert - start
    print(f"attack began {attack_offset:.0f}s into the trace; first alert at "
          f"{alert_offset:.1f}s — {alert_offset - attack_offset:.1f}s after onset "
          f"(one 30 s aggregation window + delivery)")
    assert alert_offset >= attack_offset


if __name__ == "__main__":
    main()
