"""Histogram-balanced cuts vs even cuts under skewed backbone traffic.

Run with::

    python examples/load_balancing_demo.py

Demonstrates Section 3.7 end to end: insert one trace slice under the
naive even-cut embedding and under balanced cuts derived from the previous
day's histogram (collected *on-line* across the overlay, the paper's
planned extension), then compare per-node storage.  This is the Figure
5/13 story in miniature, plus a daily version install.
"""

from repro.bench.workload import replay, timed_index_records
from repro.core.balance import next_day_embedding
from repro.core.cluster import ClusterConfig, MindCluster
from repro.net.topology import ABILENE_SITES
from repro.traffic.generator import BackboneTrafficGenerator, TrafficConfig
from repro.traffic.indices import index2_schema

TRACE_START = 43200.0
TRACE_LEN = 900.0


def storage_report(cluster: MindCluster, index: str) -> str:
    dist = sorted(cluster.storage_distribution(index).items())
    total = sum(count for _, count in dist) or 1
    lines = []
    for address, count in dist:
        bar = "#" * int(40 * count / total)
        lines.append(f"  {address:6s} {count:5d} {bar}")
    counts = [c for _, c in dist if c]
    spread = (max(counts) / max(1, min(counts))) if counts else 0.0
    lines.append(f"  max/min imbalance: {spread:.1f}x")
    return "\n".join(lines)


def main() -> None:
    gen = BackboneTrafficGenerator(ABILENE_SITES, TrafficConfig(seed=41, flows_per_second=3.0))
    cluster = MindCluster(ABILENE_SITES, ClusterConfig(seed=42))
    cluster.build()

    schema = index2_schema(7 * 86400.0)
    cluster.create_index(schema)  # day 0: even cuts (no histogram yet)

    print("day 0: inserting under EVEN cuts ...")
    day0 = timed_index_records(gen, 0, TRACE_START, TRACE_LEN, indices=("index2",))
    start, end = replay(cluster, day0)
    cluster.advance((end - start) + 60.0)
    print(storage_report(cluster, "index2"))

    # Collect the day-0 distribution on-line: the designated node floods a
    # histogram request and merges every node's local histogram.
    print("\ncollecting day-0 histogram across the overlay ...")
    collector = cluster.nodes[0]
    merged = []
    collector.collect_histogram(
        "index2",
        # /16-resolution bins on the destination prefix, fine bins on the
        # timestamp (so a 15-minute trace slice is resolved), coarse bins
        # on the octet count.
        granularity=[65536, 4096, 64],
        time_range=(0.0, 86400.0),
        expected_replies=len(cluster.nodes),
        callback=merged.append,
    )
    cluster.sim.run_until_predicate(lambda: bool(merged), timeout=120.0)
    histogram = merged[0]
    print(f"histogram: {histogram.occupied_cells} occupied cells, "
          f"{histogram.total:.0f} records")

    # Install the day-1 version with balanced cuts (valid from t=86400).
    # next_day_embedding advances the histogram's timestamp dimension by
    # one day first: stationarity is about the mix, not the absolute time.
    balanced = next_day_embedding(schema, histogram)
    cluster.install_version("index2", 86400.0, balanced)

    print("\nday 1: inserting the same traffic profile under BALANCED cuts ...")
    day1 = timed_index_records(gen, 1, TRACE_START, TRACE_LEN, indices=("index2",))
    before = cluster.storage_distribution("index2")
    start, end = replay(cluster, day1)
    cluster.advance((end - start) + 60.0)
    after = cluster.storage_distribution("index2")

    print("day-1 records per node (balanced cuts only):")
    day1_only = {a: after[a] - before.get(a, 0) for a in after}
    total = sum(day1_only.values()) or 1
    counts = [c for c in day1_only.values() if c]
    for address in sorted(day1_only):
        count = day1_only[address]
        print(f"  {address:6s} {count:5d} {'#' * int(40 * count / total)}")
    print(f"  max/min imbalance: {max(counts) / max(1, min(counts)):.1f}x")


if __name__ == "__main__":
    main()
