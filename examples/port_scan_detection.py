"""Port-scan and DoS detection via Index-1 fanout queries.

Run with::

    python examples/port_scan_detection.py

Shows the second anomaly class of the paper: a port scan (one source
probing thousands of hosts in a destination prefix) and a DoS attack
(thousands of sources hammering one host) both produce high-*fanout*
aggregates, caught by a single Index-1 range query.  The returned tuples
identify exactly which backbone routers saw the attack traffic — the
paper's Figure 17 by-product.
"""

from repro.anomaly.offline import OfflineDetector
from repro.anomaly.queries import fanout_query, monitors_in_results
from repro.bench.workload import collect_aggregates, replay, timed_index_records
from repro.core.cluster import ClusterConfig, MindCluster
from repro.net.topology import ABILENE_SITES
from repro.traffic.anomalies import DoSEvent, PortScanEvent
from repro.traffic.generator import BackboneTrafficGenerator, TrafficConfig
from repro.traffic.indices import index1_schema

TRACE_START = 71400.0   # 19:50, like the paper's evening anomalies
TRACE_LEN = 600.0


def main() -> None:
    gen = BackboneTrafficGenerator(ABILENE_SITES, TrafficConfig(seed=31, flows_per_second=1.0))
    pool = gen.pools["abilene"]
    scan = PortScanEvent(
        "scan-3306", TRACE_START + 120.0, 150.0, pool.prefixes[20], pool.prefixes[21],
        ("CHIN", "IPLS"), attempts_per_window=1900, dst_port=3306,
    )
    dos = DoSEvent(
        "dos-web", TRACE_START + 300.0, 150.0, pool.prefixes[22], pool.prefixes[23],
        ("CHIN", "DNVR", "IPLS", "KSCY", "LOSA", "SNVA"), attempts_per_window=2600,
    )
    gen.anomalies.extend([scan, dos])

    cluster = MindCluster(ABILENE_SITES, ClusterConfig(seed=32))
    cluster.build()
    cluster.create_index(index1_schema(86400.0))

    timed = timed_index_records(gen, 0, TRACE_START, TRACE_LEN, indices=("index1",))
    start, end = replay(cluster, timed)
    cluster.advance((end - start) + 60.0)
    print(f"inserted {len(timed)} Index-1 records (fanout >= 16 after filtering)")

    # Off-line ground truth, as an independent detector would produce.
    truth = OfflineDetector().detect(collect_aggregates(gen, 0, TRACE_START, TRACE_LEN))
    print(f"offline detector flagged {len(truth)} anomalous (window, prefix-pair) episodes")

    for label, event in (("port scan", scan), ("DoS attack", dos)):
        t0 = (event.start // 300.0) * 300.0
        result = cluster.query_now(fanout_query(t0, 300.0), origin="ATLA")
        monitors = monitors_in_results(result.results)
        print(f"\n{label}: query returned {result.records} records "
              f"in {result.latency:.2f}s ({result.cost} nodes)")
        print(f"  attack path seen by: {monitors}")
        assert set(event.monitors) <= set(monitors), "missed part of the attack path"
        hottest = max(result.results, key=lambda r: r.values[2])
        print(f"  hottest aggregate: fanout={hottest.values[2]:.0f} "
              f"dest={int(hottest.values[0]):#x}")


if __name__ == "__main__":
    main()
