"""Quickstart: deploy MIND, create an index, insert records, range-query.

Run with::

    python examples/quickstart.py

This walks the paper's core loop on a small Abilene-shaped deployment:
an 11-node hypercube overlay, one multi-dimensional index, a handful of
traffic summaries, and a multi-dimensional range query answered with
sub-second median latency.
"""

from repro import ClusterConfig, MindCluster, RangeQuery, Record
from repro.net.topology import ABILENE_SITES
from repro.traffic.indices import index2_schema


def main() -> None:
    # 1. Deploy: 11 MIND nodes placed at the Abilene PoPs, joined into a
    #    balanced hypercube over a simulated WAN.
    cluster = MindCluster(ABILENE_SITES, ClusterConfig(seed=7))
    cluster.build()
    print("overlay codes:")
    for address, code in sorted(cluster.node_codes().items()):
        print(f"  {address:6s} -> {code}")

    # 2. Create Index-2: (dest_prefix, timestamp, octets) for alpha flows.
    schema = index2_schema(horizon_s=86400.0)
    cluster.create_index(schema, replication=1)

    # 3. Insert traffic summaries from several monitors.
    flows = [
        ("CHIN", Record([0x80100000, 600.0, 120_000.0], payload={"source_prefix": 0x80000000, "node": "CHIN"})),
        ("NYCM", Record([0x80100000, 615.0, 5_500_000.0], payload={"source_prefix": 0x80010000, "node": "NYCM"})),
        ("LOSA", Record([0x80200000, 630.0, 95_000.0], payload={"source_prefix": 0x80020000, "node": "LOSA"})),
    ]
    for origin, record in flows:
        metric = cluster.insert_now("index2", record, origin=origin)
        print(f"insert from {origin}: {metric.hops} hops, {metric.latency * 1e3:.0f} ms")

    # 4. Ask the paper's alpha-flow question: flows to any destination that
    #    carried at least 4,000,000 octets in the last 5 minutes.
    query = RangeQuery("index2", {"octets": (4_000_000, None), "timestamp": (600.0, 900.0)})
    result = cluster.query_now(query, origin="ATLA")
    print(f"\nquery complete={result.complete} latency={result.latency:.3f}s "
          f"nodes_visited={result.cost}")
    for record in result.results:
        print(f"  alpha flow: dest={int(record.values[0]):#x} octets={record.values[2]:,.0f} "
              f"seen at {record.payload['node']}")


if __name__ == "__main__":
    main()
