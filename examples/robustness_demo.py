"""Node failures, sibling takeover and replication-backed recovery.

Run with::

    python examples/robustness_demo.py

A co-located MIND cluster (as in the paper's controlled robustness
experiment) with one replica per record: nodes are killed, heartbeats
detect the failures, siblings shorten their codes to take over the dead
regions, and queries keep returning complete answers from the replicas.
"""

from repro.core.cluster import ClusterConfig, MindCluster
from repro.core.query import RangeQuery
from repro.core.records import Record
from repro.core.schema import AttributeSpec, IndexSchema
from repro.overlay.node import OverlayConfig


def main() -> None:
    overlay = OverlayConfig(
        liveness_enabled=True, hb_interval_s=2.0, hb_timeout_s=7.0, adoption_delay_s=2.0
    )
    config = ClusterConfig(seed=51, overlay=overlay, track_ground_truth=True, slow_node_fraction=0.0)
    cluster = MindCluster(20, config)
    cluster.build()

    schema = IndexSchema(
        "flows",
        attributes=[
            AttributeSpec("dest", 0.0, 1000.0),
            AttributeSpec("timestamp", 0.0, 86400.0, is_time=True),
            AttributeSpec("size", 0.0, 1e6),
        ],
    )
    cluster.create_index(schema, replication=1)

    rng = cluster.sim.rng("demo")
    addresses = [n.address for n in cluster.nodes]
    base = cluster.sim.now
    for i in range(300):
        record = Record([rng.uniform(0, 1000), rng.uniform(0, 86400), rng.uniform(0, 1e6)])
        cluster.schedule_insert("flows", record, rng.choice(addresses), base + i * 0.02)
    cluster.advance(30.0)
    print(f"inserted {len(cluster.ground_truth['flows'])} records with 1 replica each")

    query = RangeQuery("flows", {"size": (5e5, None), "timestamp": (0, 86400)})
    expected = cluster.reference_answer(query)
    before = cluster.query_now(query, origin=addresses[0])
    print(f"before failures: {before.records} records "
          f"(expected {len(expected)}), complete={before.complete}")

    victims = addresses[3], addresses[11], addresses[17]
    print(f"\nkilling {victims} ...")
    for victim in victims:
        cluster.failures.crash_node(victim, at_in_s=0.5)
    cluster.advance(60.0)

    takeovers = sum(node.takeovers for node in cluster.nodes)
    print(f"failure detection + recovery done: {takeovers} takeover/adoption actions")
    survivors = [a for a in addresses if a not in victims]
    after = cluster.query_now(query, origin=survivors[0])
    recall = len(after.record_keys & expected) / max(1, len(expected))
    print(f"after failures:  {after.records} records, recall={recall:.2%}")
    assert recall == 1.0, "replication level 1 should mask three failures"
    print("replicas fully masked the failures — perfect recall, as in Figure 16")


if __name__ == "__main__":
    main()
