"""repro — a reproduction of MIND, the distributed multi-dimensional index
for wide-area network monitoring ("Advanced Indexing Techniques for
Wide-Area Network Monitoring", ICDE 2005).

Public API tour
---------------
Deploy a MIND system on a simulated wide-area network::

    from repro import MindCluster, ClusterConfig
    from repro.net import backbone_sites

    cluster = MindCluster(backbone_sites(), ClusterConfig(seed=1))
    cluster.build()

Create an index, insert traffic summaries, run range queries::

    from repro import RangeQuery
    from repro.traffic import index2_schema

    cluster.create_index(index2_schema(horizon_s=86400.0))
    cluster.insert_now("index2", record, origin="CHIN")
    result = cluster.query_now(
        RangeQuery("index2", {"octets": (4_000_000, None),
                              "timestamp": (t0, t0 + 300)}),
        origin="NYCM",
    )

Sub-packages: ``sim`` (event kernel), ``net`` (WAN model), ``overlay``
(hypercube), ``core`` (indexing), ``storage``, ``traffic`` (synthetic
backbone workloads), ``anomaly`` (detection on top of MIND), ``baselines``
(flooding / centralized / uniform-hash DHT) and ``bench`` (experiment
harness helpers).
"""

from repro.core import (
    AttributeSpec,
    BalancedCuts,
    ClusterConfig,
    Embedding,
    EvenCuts,
    FULL_REPLICATION,
    IndexSchema,
    MetricsCollector,
    MindCluster,
    MindConfig,
    MindNode,
    MultiDimHistogram,
    RangeQuery,
    Record,
    mismatch,
)
from repro.overlay import Code

__version__ = "1.0.0"

__all__ = [
    "AttributeSpec",
    "BalancedCuts",
    "ClusterConfig",
    "Code",
    "Embedding",
    "EvenCuts",
    "FULL_REPLICATION",
    "IndexSchema",
    "MetricsCollector",
    "MindCluster",
    "MindConfig",
    "MindNode",
    "MultiDimHistogram",
    "RangeQuery",
    "Record",
    "__version__",
    "mismatch",
]
