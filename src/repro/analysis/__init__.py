"""repro-lint / repro-san: static analysis over the repo's own AST.

Three linters guard the invariants the paper's protocols rest on:

* the **protocol linter** (:mod:`repro.analysis.protocol_lint`)
  cross-checks every send site and handler registration in the code
  against the wire-protocol registry in :mod:`repro.net.protocol` —
  unknown kinds, kinds nobody handles, handlers nobody sends to, and
  payload keys that drifted from their declaration are all analysis-time
  errors;
* the **determinism linter** (:mod:`repro.analysis.determinism_lint`)
  forbids ambient randomness and wall-clock time in the simulated
  subsystems — every draw must come from the seeded streams of
  :mod:`repro.sim.randomness` and every timestamp from the sim clock, so
  a single master seed reproduces an entire experiment;
* the **aliasing analyzer** (:mod:`repro.analysis.aliasing_lint`, aka
  *repro-san*) proves message handlers never mutate, retain, or re-send
  payload objects by reference — the cross-node aliasing the paper's
  TCP-serialized deployment made impossible, backstopped at runtime by
  the ``REPRO_ISOLATE_MESSAGES`` delivery sanitizer in
  :mod:`repro.net.message`.

Run it as ``python -m repro.analysis [paths...]`` (``--only`` selects one
analysis, ``--format=json`` emits machine-readable findings) or through
the tier-1 pytest gate in ``tests/test_analysis.py``.  Individual
findings can be suppressed with a ``# repro-lint: ignore[rule]`` (or
``# repro-san: ignore[rule]``) comment on (or above) the offending line;
repo-wide accepted findings live, with justification, in
:mod:`repro.analysis.baseline`.
"""

from repro.analysis.findings import Finding, RULES
from repro.analysis.runner import LINTS, analyze_paths, main

__all__ = ["Finding", "LINTS", "RULES", "analyze_paths", "main"]
