"""repro-lint / repro-san / repro-race / repro-leak: static analysis over
the repo's own AST.

Five linters guard the invariants the paper's protocols rest on:

* the **protocol linter** (:mod:`repro.analysis.protocol_lint`)
  cross-checks every send site and handler registration in the code
  against the wire-protocol registry in :mod:`repro.net.protocol` —
  unknown kinds, kinds nobody handles, handlers nobody sends to, and
  payload keys that drifted from their declaration are all analysis-time
  errors;
* the **determinism linter** (:mod:`repro.analysis.determinism_lint`)
  forbids ambient randomness and wall-clock time in the simulated
  subsystems — every draw must come from the seeded streams of
  :mod:`repro.sim.randomness` and every timestamp from the sim clock, so
  a single master seed reproduces an entire experiment;
* the **aliasing analyzer** (:mod:`repro.analysis.aliasing_lint`, aka
  *repro-san*) proves message handlers never mutate, retain, or re-send
  payload objects by reference — the cross-node aliasing the paper's
  TCP-serialized deployment made impossible, backstopped at runtime by
  the ``REPRO_ISOLATE_MESSAGES`` delivery sanitizer in
  :mod:`repro.net.message`;
* the **event-ordering analyzer** (:mod:`repro.analysis.ordering_lint`,
  aka *repro-race*) flags code whose behaviour depends on the kernel's
  same-timestamp tie-break order — zero-delay read-modify-writes, float
  equality against the clock, ``.seq`` reads, non-commuting handlers —
  backstopped at runtime by the ``REPRO_SCHEDULE_FUZZ`` perturbation
  sanitizer in :mod:`repro.sim.events`;
* the **lifecycle analyzer** (:mod:`repro.analysis.lifecycle_lint`, aka
  *repro-leak*) proves per-op and per-node state is reclaimed: keyed
  ``self.*`` entries need a removal path, scheduled callbacks need a
  cancel handle or staleness guard, teardown must prune every table it
  owns — backstopped at runtime by the ``REPRO_TRACK_RESOURCES``
  quiescence ledger in :mod:`repro.sim.resources`.

Run it as ``python -m repro.analysis [paths...]`` (``--only`` selects one
analysis, ``--format=json`` emits machine-readable findings,
``--fail-on-new`` gates only findings absent from the baseline) or
through the tier-1 pytest gate in ``tests/test_analysis.py``.  Individual
findings can be suppressed with a ``# repro-lint: ignore[rule]`` (or
``# repro-san: ignore[rule]``, ``# repro-race: ignore[rule]``,
``# repro-leak: ignore[rule]``) comment on (or above) the offending line;
repo-wide accepted findings live, with justification, in
:mod:`repro.analysis.baseline`.
"""

from repro.analysis.findings import Finding, RULES
from repro.analysis.runner import LINTS, analyze_paths, main

__all__ = ["Finding", "LINTS", "RULES", "analyze_paths", "main"]
