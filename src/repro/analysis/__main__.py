"""Entry point for ``python -m repro.analysis``."""

import sys

from repro.analysis.runner import main

sys.exit(main())
