"""repro-san: cross-node aliasing analysis of message handlers.

The simulated network hands :class:`~repro.net.message.Message` objects to
receivers **by reference** (unless runtime isolation is on), while the
paper's deployment serialized every message over TCP.  Any handler that
mutates ``msg.payload``, retains a payload-reachable mutable into node
state, or sends a live container as a payload is therefore sharing state
across "wide-area" nodes in a way the real system makes physically
impossible.  This pass proves the absence of those idioms statically.

Taint model
-----------
Within a registered handler (``self._handlers``/``extra_handlers``/
``node.handlers[...] = fn`` registrations, reusing the recognizers of
:mod:`repro.analysis.protocol_lint`) the message parameter's ``.payload``
is the taint source.  Taint flows through name bindings, subscript reads
(``payload["rect"]``), and ``.get(...)`` calls — i.e. through everything
*reachable* from the payload — and stops at any other call: ``dict(...)``,
``list(...)``, ``thaw_payload(...)``, ``Record.from_wire(...)`` and every
other constructor produce fresh objects, which is exactly the copy
discipline the rules ask for.  Taint also propagates one level into
same-module helpers that receive a tainted argument
(``self._apply_x(msg.payload)``), mirroring the protocol linter.

Rules
-----
* ``alias-payload-mutation`` — a store, aug-assign, ``del``, or mutating
  method call (``.append``/``.update``/``.pop``/...) whose target is
  payload-reachable.
* ``alias-payload-retention`` — a payload-reachable value (or a container
  literal embedding one) stored into ``self.*`` state without a
  ``dict(...)``/``list(...)``/copy wrap.  ``.update(...)``/``.extend(...)``
  *into* node state are accepted: they copy elements into the receiver.
* ``alias-send-live-state`` — a send site (``_send``/``send``/``_flood``/
  ``route``/``Message(payload=...)``) whose payload is the received
  payload itself (a reflood by reference) or whose payload (value) is a
  live mutable ``self.*`` container, without a copy wrap.

Known limits (each documented here so reviewers know what the pass does
*not* prove): loop variables are not tainted (elements of payload lists
are usually scalars; tainting them drowns the signal), callback
indirection (``dac.submit(..., fn, payload)``) is not followed, and
helper propagation is same-module only.  The runtime sanitizer
(``REPRO_ISOLATE_MESSAGES``) backstops all three at test time.

Suppression: ``# repro-san: ignore[rule] reason`` on (or above) the line,
or a justified entry in :mod:`repro.analysis.baseline`.
"""

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.protocol_lint import (
    ModuleInfo,
    _attr_name,
    _const_str,
    _nested_handler,
)

#: method calls that mutate their receiver in place
_MUTATORS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "clear", "update",
        "setdefault", "popitem", "add", "discard", "sort", "reverse",
    }
)

#: receiver methods that *store* an argument into the receiver (the value
#: becomes reachable from the receiver afterwards)
_STORING_MUTATORS = frozenset({"append", "add", "insert", "setdefault"})

#: constructors whose results are freshly allocated mutable containers —
#: ``self.x = set()`` marks ``x`` as live mutable node state
_MUTABLE_CTORS = frozenset({"dict", "list", "set", "defaultdict", "OrderedDict", "Counter", "deque"})

_MUTABLE_ANNOTATIONS = frozenset({"Dict", "List", "Set", "dict", "list", "set", "DefaultDict", "Deque"})


def _describe(node: ast.AST) -> str:
    """Short stable rendering of an expression for finding contexts."""
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse covers all real inputs
        text = type(node).__name__
    return text if len(text) <= 60 else text[:57] + "..."


def _annotation_is_mutable(node: Optional[ast.AST]) -> bool:
    if node is None:
        return False
    if isinstance(node, ast.Subscript):
        return _annotation_is_mutable(node.value)
    name = _attr_name(node)
    return name in _MUTABLE_ANNOTATIONS


def collect_mutable_attrs(tree: ast.Module) -> Set[str]:
    """Names of ``self.<attr>`` slots holding mutable containers.

    An attribute counts when any ``self.x = ...`` assignment (or
    annotation) in the module gives it a dict/list/set literal,
    comprehension, or container constructor — those are the "live
    containers" the send-side rule refuses to see in payloads.
    """
    attrs: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
            value = node.value
            if _annotation_is_mutable(node.annotation):
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        attrs.add(target.attr)
        else:
            continue
        if value is None:
            continue
        mutable = isinstance(
            value, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)
        ) or (isinstance(value, ast.Call) and _attr_name(value.func) in _MUTABLE_CTORS)
        if not mutable:
            continue
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                attrs.add(target.attr)
    return attrs


def _send_payload_arg(node: ast.Call) -> Optional[ast.AST]:
    """The payload expression of a send-site call, if this is one.

    Mirrors the send shapes :mod:`repro.analysis.protocol_lint` collects;
    the kind need not be a constant here — aliasing is about the payload
    object, not the kind string.
    """
    func_name = _attr_name(node.func)
    if func_name == "_send" and len(node.args) > 2:
        return node.args[2]
    if func_name == "send":
        if len(node.args) > 3:
            return node.args[3]
        if len(node.args) > 2 and _const_str(node.args[1]) is not None:
            return node.args[2]
        return None
    if func_name == "_flood" and len(node.args) > 1:
        return node.args[1]
    if func_name == "route" and len(node.args) > 2:
        return node.args[2]
    if func_name == "Message":
        for keyword in node.keywords:
            if keyword.arg == "payload":
                return keyword.value
    return None


class _HandlerScope(ast.NodeVisitor):
    """Taint-tracking walk of one handler (or taint-receiving helper)."""

    def __init__(
        self,
        lint: "_AliasingLint",
        fn: ast.FunctionDef,
        payload_names: Set[str],
        msg_names: Set[str],
        depth: int,
        seen: Set[str],
    ) -> None:
        self.lint = lint
        self.fn = fn
        self.tainted = set(payload_names)
        self.msg_names = set(msg_names)
        self.self_aliases: Set[str] = set()
        self.depth = depth
        self.seen = seen

    # -- taint predicates ----------------------------------------------
    def _is_tainted(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self.tainted
        if isinstance(node, ast.Attribute):
            return (
                node.attr == "payload"
                and isinstance(node.value, ast.Name)
                and node.value.id in self.msg_names
            )
        if isinstance(node, ast.Subscript):
            return self._is_tainted(node.value)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "get":
                return self._is_tainted(func.value)
        return False

    def _contains_tainted(self, node: ast.AST) -> bool:
        if self._is_tainted(node):
            return True
        if isinstance(node, ast.Dict):
            return any(v is not None and self._contains_tainted(v) for v in node.values)
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            return any(self._contains_tainted(elt) for elt in node.elts)
        return False

    def _is_self_rooted(self, node: ast.AST) -> bool:
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        return isinstance(node, ast.Name) and (
            node.id == "self" or node.id in self.self_aliases
        )

    def _finding(self, rule: str, node: ast.AST, message: str, detail: str) -> None:
        self.lint.add(
            Finding(
                path=self.lint.module.path,
                line=node.lineno,
                rule=rule,
                message=message,
                context=f"{self.fn.name}:{detail}",
            )
        )

    # -- statements ----------------------------------------------------
    def _check_store(self, target: ast.AST, value: Optional[ast.AST], node: ast.AST) -> None:
        if isinstance(target, (ast.Subscript, ast.Attribute)) and self._is_tainted(target.value):
            self._finding(
                "alias-payload-mutation",
                node,
                f"handler stores into payload-reachable {_describe(target)} "
                "(mutates the sender's object when isolation is off)",
                _describe(target),
            )
            return
        if value is None:
            return
        if self._is_self_rooted(target) and self._contains_tainted(value):
            self._finding(
                "alias-payload-retention",
                node,
                f"payload-reachable value retained into node state "
                f"{_describe(target)} without a copy wrap",
                _describe(target),
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Name):
                # propagate / clear taint through plain name bindings
                if self._is_tainted(node.value):
                    self.tainted.add(target.id)
                else:
                    self.tainted.discard(target.id)
                    if (
                        isinstance(node.value, ast.Attribute)
                        and isinstance(node.value.value, ast.Name)
                        and node.value.value.id == "self"
                    ):
                        self.self_aliases.add(target.id)
                    else:
                        self.self_aliases.discard(target.id)
            else:
                self._check_store(target, node.value, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name):
            if node.value is not None and self._is_tainted(node.value):
                self.tainted.add(node.target.id)
        else:
            self._check_store(node.target, node.value, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        target = node.target
        if isinstance(target, (ast.Subscript, ast.Attribute)) and self._is_tainted(target.value):
            self._finding(
                "alias-payload-mutation",
                node,
                f"aug-assign mutates payload-reachable {_describe(target)}",
                _describe(target),
            )
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if isinstance(target, (ast.Subscript, ast.Attribute)) and self._is_tainted(
                target.value
            ):
                self._finding(
                    "alias-payload-mutation",
                    node,
                    f"del mutates payload-reachable {_describe(target)}",
                    _describe(target),
                )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        # mutating method on a payload-reachable receiver
        if isinstance(func, ast.Attribute) and func.attr in _MUTATORS and self._is_tainted(
            func.value
        ):
            self._finding(
                "alias-payload-mutation",
                node,
                f".{func.attr}() mutates payload-reachable {_describe(func.value)}",
                f"{_describe(func.value)}.{func.attr}",
            )
        # value-storing method call that retains a tainted value in self state
        elif (
            isinstance(func, ast.Attribute)
            and func.attr in _STORING_MUTATORS
            and self._is_self_rooted(func.value)
            and any(self._contains_tainted(arg) for arg in node.args)
        ):
            self._finding(
                "alias-payload-retention",
                node,
                f".{func.attr}() retains a payload-reachable value in node "
                f"state {_describe(func.value)} without a copy wrap",
                f"{_describe(func.value)}.{func.attr}",
            )
        # reflood / re-send of the received payload by reference
        payload_arg = _send_payload_arg(node)
        if payload_arg is not None and self._is_tainted(payload_arg):
            self._finding(
                "alias-send-live-state",
                node,
                f"send re-uses the received payload {_describe(payload_arg)} "
                "by reference; wrap it in dict(...)/thaw_payload(...) first",
                f"send:{_describe(payload_arg)}",
            )
        # one level of helper propagation for tainted arguments
        callee = _attr_name(func)
        if callee is not None and self.depth < 2:
            positions = [i for i, arg in enumerate(node.args) if self._is_tainted(arg)]
            if positions:
                target_fn = self.lint.module.functions.get(callee)
                if target_fn is not None and target_fn.name not in self.seen:
                    self.lint.analyze_function(
                        target_fn,
                        tainted_positions=positions,
                        depth=self.depth + 1,
                        seen=self.seen,
                    )
        self.generic_visit(node)


class _AliasingLint:
    def __init__(self, module: ModuleInfo) -> None:
        self.module = module
        self.mutable_attrs = collect_mutable_attrs(module.tree)
        self._findings: Dict[Tuple[str, int, str], Finding] = {}

    def add(self, finding: Finding) -> None:
        self._findings.setdefault((finding.rule, finding.line, finding.message), finding)

    # -- handler-side taint analysis -----------------------------------
    def analyze_function(
        self,
        fn: ast.FunctionDef,
        *,
        as_msg: bool = False,
        tainted_positions: Optional[Sequence[int]] = None,
        depth: int = 0,
        seen: Optional[Set[str]] = None,
    ) -> None:
        seen = set() if seen is None else seen
        seen.add(fn.name)
        params = [a.arg for a in fn.args.args if a.arg not in ("self", "cls")]
        if not params:
            return
        if as_msg:
            scope = _HandlerScope(self, fn, set(), {params[0]}, depth, seen)
        else:
            positions = [0] if tainted_positions is None else tainted_positions
            names = {params[i] for i in positions if i < len(params)}
            if not names:
                return
            scope = _HandlerScope(self, fn, names, set(), depth, seen)
        for stmt in fn.body:
            scope.visit(stmt)

    def run_handlers(self) -> None:
        for reg in self.module.handlers:
            if reg.routed:
                # Routed arrival handlers receive a private envelope: the
                # "route" handler is itself checked by the mutation rule,
                # which forces it to thaw msg.payload before routing.
                continue
            if reg.func_name is None:
                continue
            fn = self.module.functions.get(reg.func_name)
            if fn is None:
                continue
            if reg.factory:
                fn = _nested_handler(fn)
                if fn is None:
                    continue
            self.analyze_function(fn, as_msg=True)

    # -- send-side live-state analysis ---------------------------------
    def _live_self_container(self, node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
        """The mutable attr name if ``node`` is a live ``self.<attr>``."""
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr in self.mutable_attrs
        ):
            return node.attr
        if isinstance(node, ast.Name) and node.id in aliases:
            return aliases[node.id]
        return None

    def run_sends(self) -> None:
        for site in self.module.sends:
            payload = site.payload
            if payload is None or site.func is None:
                continue
            aliases: Dict[str, str] = {}
            literals: List[ast.Dict] = []
            for stmt in ast.walk(site.func):
                if not isinstance(stmt, ast.Assign):
                    continue
                for target in stmt.targets:
                    if not isinstance(target, ast.Name):
                        continue
                    attr = None
                    if (
                        isinstance(stmt.value, ast.Attribute)
                        and isinstance(stmt.value.value, ast.Name)
                        and stmt.value.value.id == "self"
                        and stmt.value.attr in self.mutable_attrs
                    ):
                        attr = stmt.value.attr
                    if attr is not None:
                        aliases[target.id] = attr
                    if (
                        isinstance(payload, ast.Name)
                        and target.id == payload.id
                        and isinstance(stmt.value, ast.Dict)
                    ):
                        literals.append(stmt.value)
            candidates: List[ast.AST] = []
            if isinstance(payload, ast.Dict):
                literals.append(payload)
            else:
                candidates.append(payload)
            for literal in literals:
                candidates.extend(v for v in literal.values if v is not None)
            for expr in candidates:
                attr = self._live_self_container(expr, aliases)
                if attr is None:
                    continue
                self.add(
                    Finding(
                        path=self.module.path,
                        line=expr.lineno,
                        rule="alias-send-live-state",
                        message=(
                            f"payload for {site.kind!r} carries the live "
                            f"container self.{attr}; send a dict(...)/list(...) "
                            "copy so later local mutation cannot leak across nodes"
                        ),
                        context=f"{site.context}:self.{attr}",
                    )
                )

    def findings(self) -> List[Finding]:
        return list(self._findings.values())


def lint_aliasing(module: ModuleInfo) -> List[Finding]:
    """Run the aliasing rules over one collected module."""
    lint = _AliasingLint(module)
    lint.run_handlers()
    lint.run_sends()
    return lint.findings()
