"""Accepted repro-lint findings, each with a written justification.

Every entry names a finding by its stable ``rule:path:context`` key (see
:attr:`repro.analysis.findings.Finding.key`) and says *why* it is
acceptable.  The analysis gate fails on any finding not listed here and
not suppressed inline — and the baseline is expected to shrink, not
grow: add an entry only when the flagged behaviour is provably
order-insensitive or deliberately non-deterministic, and say so.

Kept deliberately empty at the moment: every finding the linters raised
on the current tree was either fixed outright or is annotated inline at
the site with a one-line justification, which keeps the reason next to
the code it excuses.
"""

from typing import Dict, List

#: list of {"key": "rule:path:context", "reason": "..."} entries.
BASELINE: List[Dict[str, str]] = []
