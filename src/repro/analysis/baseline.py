"""Accepted repro-lint / repro-san findings, each with a justification.

Every entry names a finding by its stable ``rule:path:context`` key (see
:attr:`repro.analysis.findings.Finding.key`) and says *why* it is
acceptable.  The analysis gate fails on any finding not listed here and
not suppressed inline — and the baseline is expected to shrink, not
grow: add an entry only when the flagged behaviour is provably safe
(e.g. the retained value is an immutable scalar) or deliberately
non-deterministic, and say so.

Paths in keys are as reported by the runner: cwd-relative POSIX paths
for the normal ``python -m repro.analysis`` invocation from the repo
root (``src/repro/...``).
"""

from typing import Dict, List

#: list of {"key": "rule:path:context", "reason": "..."} entries.
BASELINE: List[Dict[str, str]] = [
    {
        # _declare_dead(addr) is reached from the suspect_dead handler
        # with addr = msg.payload["suspect"]; the analyzer cannot see
        # types, but an address is an immutable string, so retaining it
        # in the _declared_dead set cannot alias sender state.
        "key": (
            "alias-payload-retention:src/repro/overlay/node.py:"
            "_declare_dead:self._declared_dead.add"
        ),
        "reason": "retained value is an immutable address string, not a container",
    },
    # The split two-phase protocol keeps one PendingPrepare slot; three
    # handlers write it, so order-handler-commute flags all three pairs.
    # The races are convergent: _on_split_abort and _on_split_commit_notify
    # only clear the slot after matching (host, round) — a pending entry
    # matches at most one of them, and both write None, which commutes —
    # and a same-instant prepare-vs-abort reorder at worst nacks one
    # prepare, which the host's split retry absorbs.  The schedule-fuzz
    # equivalence suite exercises these interleavings end to end.
    {
        "key": (
            "order-handler-commute:src/repro/overlay/node.py:"
            "_on_split_abort~_on_split_commit_notify:_pending_prepare"
        ),
        "reason": "both clear to None only after a (host, round) match; commutative",
    },
    {
        "key": (
            "order-handler-commute:src/repro/overlay/node.py:"
            "_on_split_abort~_on_split_prepare:_pending_prepare"
        ),
        "reason": "reorder at worst nacks the prepare; split retry converges",
    },
    {
        "key": (
            "order-handler-commute:src/repro/overlay/node.py:"
            "_on_split_commit_notify~_on_split_prepare:_pending_prepare"
        ),
        "reason": "commit clears only its own (host, round); prepare then lands cleanly",
    },
    # Retention is the point of these two: the recall evaluation of
    # Figure 16 compares query results against the central ground-truth
    # copy, and the churn summary counts crash/restore events after the
    # fact.  Both are bounded by the experiment's own inputs (workload
    # size; churn duration), not by run-forever service state.
    {
        "key": (
            "leak-op-state:src/repro/core/cluster.py:"
            "create_index:self.ground_truth"
        ),
        "reason": "central reference copy for recall scoring; bounded by the workload",
    },
    {
        "key": (
            "leak-unbounded-growth:src/repro/net/failures.py:"
            "_do_crash:self.crash_log"
        ),
        "reason": "experiment log consumed by churn summaries; bounded by churn duration",
    },
]
