"""Forbid ambient nondeterminism in the simulated subsystems.

Every experiment must replay bit-identically from one master seed, so
inside ``src/repro/{overlay,core,net,sim,baselines}`` the linter rejects:

* the process-global ``random`` module (``random.random()``,
  ``from random import choice``, ...) — draws must come from the named,
  seeded streams of :mod:`repro.sim.randomness`.  Constructing an
  explicitly seeded ``random.Random(seed)`` instance is allowed; that is
  exactly what the randomness registry does;
* wall-clock time (``time.time``, ``datetime.now``, ...) — timestamps
  must come from the simulation clock;
* OS entropy (``os.urandom``, ``uuid.uuid4``, ``secrets.*``);
* numpy's process-global RNG (``np.random.random()`` etc.); seeded
  constructions — ``default_rng(seed)``, ``Generator``, ``SeedSequence``,
  ``RandomState(seed)`` with at least one argument — are allowed;
* bare iteration over a ``set`` in a ``for`` loop or list comprehension,
  whose order depends on ``PYTHONHASHSEED``.  Order leaks straight into
  message send order, so wrap the set in ``sorted(...)``.  Set-typed
  *attributes* are recognised across the whole analyzed tree: a field
  declared ``Set[str]`` in one module is still flagged when iterated in
  another.  Order-insensitive reductions (``any``/``all``/``sum``/
  ``len``/``min``/``max``/``sorted``/``set``/``frozenset``) and set
  comprehensions are deliberately not flagged.
"""

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.findings import Finding

_WALL_CLOCK = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "perf_counter"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}
_OS_ENTROPY = {("os", "urandom"), ("uuid", "uuid1"), ("uuid", "uuid4")}
_NUMPY_SEEDED = {"default_rng", "Generator", "SeedSequence", "RandomState"}
_SET_ANNOTATIONS = {"Set", "set", "FrozenSet", "frozenset", "MutableSet"}
_ORDER_INSENSITIVE_CALLS = {
    "any", "all", "sum", "len", "min", "max", "sorted", "set", "frozenset",
}


def _call_path(func: ast.AST) -> Tuple[str, ...]:
    """Dotted path of a call target: ``np.random.random`` -> its parts."""
    parts: List[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    else:
        return ()
    return tuple(reversed(parts))


def _annotation_is_set(node: Optional[ast.AST]) -> bool:
    if node is None:
        return False
    if isinstance(node, ast.Name):
        return node.id in _SET_ANNOTATIONS
    if isinstance(node, ast.Subscript):
        return _annotation_is_set(node.value)
    if isinstance(node, ast.Attribute):
        return node.attr in _SET_ANNOTATIONS
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        head = node.value.split("[", 1)[0].strip()
        return head.split(".")[-1] in _SET_ANNOTATIONS
    return False


def _value_is_set(node: ast.AST) -> bool:
    if isinstance(node, ast.SetComp) or isinstance(node, ast.Set):
        return True
    if isinstance(node, ast.Call):
        path = _call_path(node.func)
        return bool(path) and path[-1] in ("set", "frozenset")
    return False


# ----------------------------------------------------------------------
# Cross-module pass: which attribute names are set-typed anywhere?
# ----------------------------------------------------------------------
def collect_set_attrs(trees: Iterable[ast.Module]) -> Set[str]:
    """Attribute names assigned or annotated as sets in any module.

    Name-based, not type-based: a field called ``acked`` declared
    ``Set[str]`` in ``join.py`` marks every ``*.acked`` iteration in the
    tree.  Collisions are possible but have not occurred; a false match
    can always be annotated inline.
    """
    attrs: Set[str] = set()
    for tree in trees:
        for node in ast.walk(tree):
            if isinstance(node, ast.AnnAssign) and _annotation_is_set(node.annotation):
                if isinstance(node.target, ast.Attribute):
                    attrs.add(node.target.attr)
                elif isinstance(node.target, ast.Name):
                    attrs.add(node.target.id)
            elif isinstance(node, ast.Assign) and _value_is_set(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Attribute):
                        attrs.add(target.attr)
    return attrs


# ----------------------------------------------------------------------
# Per-module visitor
# ----------------------------------------------------------------------
class DeterminismVisitor(ast.NodeVisitor):
    def __init__(self, path: str, set_attrs: Set[str]) -> None:
        self.path = path
        self.set_attrs = set_attrs
        self.findings: List[Finding] = []
        #: local alias -> canonical module name ("random", "numpy", ...)
        self.module_aliases: Dict[str, str] = {}
        #: bare name -> (module, original name) for ``from x import y``
        self.from_imports: Dict[str, Tuple[str, str]] = {}
        self._func_stack: List[str] = []
        #: per-function names known to hold sets (stack of scopes)
        self._set_locals: List[Set[str]] = [set()]

    # -- bookkeeping -----------------------------------------------------
    def _context(self, detail: str) -> str:
        func = self._func_stack[-1] if self._func_stack else "<module>"
        return f"{func}:{detail}"

    def _add(self, node: ast.AST, rule: str, message: str, detail: str) -> None:
        self.findings.append(
            Finding(
                path=self.path,
                line=node.lineno,
                rule=rule,
                message=message,
                context=self._context(detail),
            )
        )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.module_aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name.split(".")[0]
            )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None:
            return
        root = node.module.split(".")[0]
        for alias in node.names:
            self.from_imports[alias.asname or alias.name] = (root, alias.name)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._func_stack.append(node.name)
        scope: Set[str] = set()
        for arg in list(node.args.args) + list(node.args.kwonlyargs):
            if _annotation_is_set(arg.annotation):
                scope.add(arg.arg)
        self._set_locals.append(scope)
        self.generic_visit(node)
        self._set_locals.pop()
        self._func_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Assign(self, node: ast.Assign) -> None:
        if _value_is_set(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._set_locals[-1].add(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if _annotation_is_set(node.annotation) and isinstance(node.target, ast.Name):
            self._set_locals[-1].add(node.target.id)
        self.generic_visit(node)

    # -- randomness / clock / entropy ------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        path = _call_path(node.func)
        if path:
            self._check_call(node, path)
        self.generic_visit(node)

    def _resolve_root(self, name: str) -> Optional[str]:
        return self.module_aliases.get(name)

    def _check_call(self, node: ast.Call, path: Tuple[str, ...]) -> None:
        head = path[0]
        # from-imported bare names: choice(...), time(...), urandom(...)
        if len(path) == 1 and head in self.from_imports:
            module, original = self.from_imports[head]
            path = (module, original)
            head = module
            if module == "random" and original == "Random":
                if not (node.args or node.keywords):
                    self._add(
                        node, "det-global-random",
                        "unseeded random.Random(); pass an explicit seed",
                        "Random",
                    )
                return
        root = self._resolve_root(head)

        if root == "random" or (head == "random" and root is None and len(path) > 1):
            if len(path) > 1:
                if path[1] == "Random":
                    if not (node.args or node.keywords):
                        self._add(
                            node, "det-global-random",
                            "unseeded random.Random(); pass an explicit seed",
                            "Random",
                        )
                else:
                    self._add(
                        node, "det-global-random",
                        f"call to process-global random.{path[1]}(); draw "
                        "from a named stream via repro.sim.randomness",
                        path[1],
                    )
            return
        if path[-2:] in _WALL_CLOCK or (
            len(path) == 2 and root in ("time", "datetime") and path[-2:] in _WALL_CLOCK
        ):
            # `datetime.datetime.now()` has path ("datetime","datetime","now")
            self._add(
                node, "det-wall-clock",
                f"wall-clock call {'.'.join(path)}(); use the simulation clock",
                path[-1],
            )
            return
        if path[-2:] in _OS_ENTROPY or (
            len(path) == 1 and head in self.from_imports
            and self.from_imports[head] in _OS_ENTROPY
        ):
            self._add(
                node, "det-os-entropy",
                f"OS entropy call {'.'.join(path)}(); derive from seeded "
                "streams or counters",
                path[-1],
            )
            return
        if root == "secrets" or (
            head in self.from_imports and self.from_imports[head][0] == "secrets"
        ):
            self._add(
                node, "det-os-entropy",
                "the secrets module is OS entropy by design; use seeded streams",
                path[-1],
            )
            return
        if len(path) >= 3 and self._resolve_root(path[0]) == "numpy" and path[1] == "random":
            fn = path[2]
            if fn not in _NUMPY_SEEDED or not (node.args or node.keywords):
                self._add(
                    node, "det-numpy-global-rng",
                    f"numpy global/unseeded RNG {'.'.join(path)}(); use a "
                    "seeded Generator",
                    fn,
                )
            return
        if len(path) == 1 and head in self.from_imports:
            module, original = self.from_imports[head]
            if module == "numpy" and original in _NUMPY_SEEDED:
                if not (node.args or node.keywords):
                    self._add(
                        node, "det-numpy-global-rng",
                        f"unseeded numpy {original}(); pass a seed",
                        original,
                    )

    # -- set iteration ----------------------------------------------------
    def _set_expr_detail(self, node: ast.AST) -> Optional[str]:
        """A short description if ``node`` is known to evaluate to a set."""
        if isinstance(node, ast.Name):
            if any(node.id in scope for scope in self._set_locals):
                return node.id
            return None
        if isinstance(node, ast.Attribute) and node.attr in self.set_attrs:
            return node.attr
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "<set literal>"
        if isinstance(node, ast.Call):
            path = _call_path(node.func)
            if path and path[-1] in ("set", "frozenset"):
                return path[-1]
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in (
                    "union", "intersection", "difference", "symmetric_difference",
                )
                and self._set_expr_detail(node.func.value) is not None
            ):
                return f"{self._set_expr_detail(node.func.value)}.{node.func.attr}"
            return None
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            left = self._set_expr_detail(node.left)
            right = self._set_expr_detail(node.right)
            if left is not None and right is not None:
                return f"{left}|{right}"
        return None

    def _flag_set_iter(self, iterable: ast.AST) -> None:
        detail = self._set_expr_detail(iterable)
        if detail is not None:
            self._add(
                iterable, "det-set-iteration",
                f"iteration over set {detail!r}: order depends on "
                "PYTHONHASHSEED; wrap in sorted(...)",
                detail,
            )

    def visit_For(self, node: ast.For) -> None:
        self._flag_set_iter(node.iter)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        for gen in node.generators:
            self._flag_set_iter(gen.iter)
        self.generic_visit(node)


def lint_determinism(
    path: str, tree: ast.Module, set_attrs: Set[str]
) -> List[Finding]:
    visitor = DeterminismVisitor(path, set_attrs)
    visitor.visit(tree)
    return visitor.findings
