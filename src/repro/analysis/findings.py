"""Finding records and the rule catalog."""

from dataclasses import dataclass, field

#: Rule id -> one-line description.  The ids double as suppression tags:
#: ``# repro-lint: ignore[det-set-iteration]``.
RULES = {
    "protocol-unknown-kind": (
        "a send site uses a message kind that is not declared in "
        "repro.net.protocol (typo'd kinds diverge peers silently)"
    ),
    "protocol-unhandled-kind": (
        "a message kind is sent but no handler for it is registered "
        "anywhere in the analyzed code"
    ),
    "protocol-unsent-kind": (
        "a handler is registered for a kind that nothing ever sends "
        "(dead protocol surface)"
    ),
    "protocol-unregistered-handler": (
        "a handler is registered for a kind missing from the registry"
    ),
    "protocol-dead-kind": (
        "a registry entry is neither sent nor handled anywhere"
    ),
    "protocol-undeclared-key": (
        "a handler reads a payload key the kind's declaration does not "
        "list as required or optional"
    ),
    "protocol-extra-send-key": (
        "a send site's payload literal carries a key the kind's "
        "declaration does not list"
    ),
    "protocol-missing-send-key": (
        "a send site's payload literal omits a key the kind's "
        "declaration requires"
    ),
    "det-global-random": (
        "call into the process-global random module; draw from a named "
        "stream via sim.rng(...) / repro.sim.randomness instead"
    ),
    "det-wall-clock": (
        "wall-clock time (time.time, datetime.now, ...); use the "
        "simulation clock (sim.now) instead"
    ),
    "det-os-entropy": (
        "OS entropy (os.urandom, uuid.uuid4, secrets); derive ids from "
        "seeded streams or counters instead"
    ),
    "det-numpy-global-rng": (
        "numpy's process-global RNG; use a seeded numpy Generator or a "
        "named random stream instead"
    ),
    "det-set-iteration": (
        "iteration over a set, whose order depends on PYTHONHASHSEED; "
        "wrap in sorted(...) or iterate a deterministic container"
    ),
    "alias-payload-mutation": (
        "a handler mutates msg.payload or a value reached through it; "
        "with by-reference delivery that edits the sender's object — "
        "work on a thaw_payload(...)/dict(...) copy instead"
    ),
    "alias-payload-retention": (
        "a handler retains a payload-reachable mutable into self.* state "
        "without a dict(...)/list(...)/copy wrap, so later sender-side "
        "mutation leaks into this node"
    ),
    "alias-send-live-state": (
        "a send site passes a live mutable container (node state or the "
        "received payload) as payload without copying; every receiver "
        "would alias the same object"
    ),
    "order-zero-delay": (
        "a zero-delay schedule/schedule_at(now) site whose callback "
        "read-modify-writes self.* state (or cannot be resolved); the "
        "callback's effect depends on same-timestamp tie-break order"
    ),
    "order-float-time-eq": (
        "float ==/!= against the simulation clock (*.now) or an event "
        "timestamp for control flow; exact-tie tests fork behaviour on "
        "float rounding and tie order"
    ),
    "order-seq-dependence": (
        "a read of .seq outside the queue internals observes event "
        "insertion order, which the deployed WAN does not provide"
    ),
    "order-handler-commute": (
        "two handlers of the same node plain-overwrite the same self.* "
        "attribute; two same-timestamp messages make the final value "
        "last-writer-wins"
    ),
    "leak-op-state": (
        "a handler writes per-op-keyed entries into a self.* dict/set "
        "but no method of the class ever removes them; under churn the "
        "table grows for every op that dies mid-flight"
    ),
    "leak-timer-unguarded": (
        "a scheduled callback writes self.* state, keeps no cancel "
        "handle, and has no staleness/liveness guard; it fires after a "
        "crash or completion and resurrects state that was torn down"
    ),
    "leak-node-retention": (
        "a keyed table of a class with an unregister/teardown method "
        "accumulates entries the teardown path never removes; entries "
        "for departed nodes are retained forever"
    ),
    "leak-unbounded-growth": (
        "appends to a long-lived self.* list with no bound, eviction, "
        "or consumption anywhere in the class; memory grows with run "
        "length (metrics and logs included)"
    ),
}


@dataclass(frozen=True, order=True)
class Finding:
    """One analyzer finding, sortable into (path, line, rule) order."""

    path: str  #: path relative to the analysis root, POSIX separators
    line: int
    rule: str
    message: str
    #: Stable anchor for baseline matching: enclosing function (or
    #: ``<module>``) plus a short detail, e.g. ``links:self.adopted``.
    #: Line numbers churn with unrelated edits; context keys do not.
    context: str = field(default="", compare=False)

    @property
    def key(self) -> str:
        return f"{self.rule}:{self.path}:{self.context}"

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"
