"""repro-leak: resource-lifecycle analysis of long-lived node state.

Under churn the simulator's nodes, network, and cluster tables live for
the whole run while the operations they track die constantly — crashed
originators, unregistered endpoints, timed-out ops.  Any per-op or
per-node entry without a matching removal path is a leak that grows with
run length, and an orphaned watchdog timer resurrects state that was
already torn down.  This pass proves the *static* half of the resource
lifecycle discipline; the runtime ledger (``REPRO_TRACK_RESOURCES=1``,
:mod:`repro.sim.resources`) proves the dynamic half at quiescence.

Model
-----
Analysis is per-class.  Every ``self.<attr>`` slot assigned a dict/set/
list literal, comprehension, constructor, or mutable annotation anywhere
in the class is a *long-lived container*.  Within each class the pass
collects, per container:

* **add sites** — keyed writes outside ``__init__``: ``self.a[k] = v``
  with a non-constant key, ``.setdefault(...)``, or ``.add(x)`` with a
  non-constant element.  Growth sites for lists are ``.append``/
  ``.extend``/``+=``.
* **removal evidence** — ``.pop``/``.popitem``/``.remove``/``.discard``/
  ``.clear``, ``del self.a[...]``, ``-=``, or a wholesale reassignment
  outside ``__init__``.  Evidence counts anywhere in the class
  (cross-handler add/remove matching) and through a one-level local
  alias (``table = self.a; table.pop(k)``), mirroring the aliasing
  lint's helper discipline.

Rules
-----
* ``leak-op-state`` — a keyed dict/set container with add sites and *no*
  removal evidence anywhere in the class.
* ``leak-timer-unguarded`` — a ``schedule``/``schedule_at``/
  ``call_in_slot``/``_schedule_coarse`` call whose handle is discarded,
  whose callback resolves locally, writes ``self.*`` state, and has no
  early-return staleness guard — so it cannot be cancelled on node kill
  and fires unconditionally into whatever state remains.
* ``leak-node-retention`` — in a class with a teardown method
  (``unregister``/``deregister``/``remove_node``/``teardown``), a keyed
  container with add sites that the teardown path (including one-level
  ``self._helper()`` callees) never removes from; entries for departed
  nodes are retained forever.
* ``leak-unbounded-growth`` — a list container with growth sites and no
  bound: no removal evidence, no slot-recycling subscript write, and no
  ``len(self.a)`` comparison anywhere in the class.

Known limits: removal through module-level helpers or through a second
object (``other.table.pop``) is invisible, callbacks reached through
non-``self`` receivers are not resolved, and the staleness-guard check
accepts any early-return ``if`` — the runtime ledger backstops all of
these at test time.

Suppression: ``# repro-leak: ignore[rule] reason`` on (or above) the
line, or a justified entry in :mod:`repro.analysis.baseline`.
"""

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.protocol_lint import ModuleInfo, _attr_name

#: scheduler entry points whose second positional argument is a callback
_SCHEDULERS = frozenset({"schedule", "schedule_at", "call_in_slot", "_schedule_coarse"})

_REMOVAL_METHODS = frozenset({"pop", "popitem", "remove", "discard", "clear"})
_GROWTH_METHODS = frozenset({"append", "extend"})

_DICT_CTORS = frozenset({"dict", "defaultdict", "OrderedDict", "Counter"})
_SET_CTORS = frozenset({"set", "frozenset"})
_LIST_CTORS = frozenset({"list", "deque"})

_DICT_ANNOTATIONS = frozenset({"Dict", "dict", "DefaultDict", "OrderedDict"})
_SET_ANNOTATIONS = frozenset({"Set", "set", "FrozenSet"})
_LIST_ANNOTATIONS = frozenset({"List", "list", "Deque", "deque"})

_TEARDOWN_NAMES = ("unregister", "deregister", "remove_node", "teardown")


def _describe(node: ast.AST) -> str:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse covers all real inputs
        text = type(node).__name__
    return text if len(text) <= 60 else text[:57] + "..."


def _self_attr(node: ast.AST) -> Optional[str]:
    """``attr`` when ``node`` is exactly ``self.<attr>``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _container_kind(value: Optional[ast.AST], annotation: Optional[ast.AST]) -> Optional[str]:
    """'dict' | 'set' | 'list' for a ``self.x = ...`` / annotated slot."""
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(value, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(value, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(value, ast.Call):
        ctor = _attr_name(value.func)
        if ctor in _DICT_CTORS:
            return "dict"
        if ctor in _SET_CTORS:
            return "set"
        if ctor in _LIST_CTORS:
            return "list"
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    if node is not None:
        name = _attr_name(node)
        if name in _DICT_ANNOTATIONS:
            return "dict"
        if name in _SET_ANNOTATIONS:
            return "set"
        if name in _LIST_ANNOTATIONS:
            return "list"
    return None


def _is_constant_key(node: ast.AST) -> bool:
    """Constant subscripts/elements address a fixed slot, not a per-op key."""
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, ast.Tuple):
        return all(_is_constant_key(elt) for elt in node.elts)
    if isinstance(node, ast.UnaryOp):
        return _is_constant_key(node.operand)
    return False


class _MethodScan(ast.NodeVisitor):
    """One method's container events, with one-level local alias tracking."""

    def __init__(self, cls: "_ClassScan", fn: ast.FunctionDef) -> None:
        self.cls = cls
        self.fn = fn
        self.aliases: Dict[str, str] = {}

    def _resolve(self, node: ast.AST) -> Optional[str]:
        """Container attr addressed by ``node`` (``self.a`` or an alias)."""
        attr = _self_attr(node)
        if attr is not None:
            return attr if attr in self.cls.containers else None
        if isinstance(node, ast.Name):
            return self.aliases.get(node.id)
        return None

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            attr = _self_attr(target)
            if attr is not None:
                # wholesale reassignment — also (re)classifies the slot
                if self.fn.name != "__init__" and attr in self.cls.containers:
                    self.cls.removal_evidence.add(attr)
                continue
            if isinstance(target, ast.Name):
                source = self._resolve(node.value)
                if source is not None:
                    self.aliases[target.id] = source
                else:
                    self.aliases.pop(target.id, None)
                continue
            if isinstance(target, ast.Subscript):
                attr = self._resolve(target.value)
                if attr is None:
                    continue
                if self.cls.containers.get(attr) == "list" or _is_constant_key(
                    target.slice
                ):
                    # an index write cannot grow a list (slot recycling,
                    # e.g. interned-id arrays); a constant key addresses
                    # a fixed slot, not a per-op entry
                    self.cls.bound_evidence.add(attr)
                elif self.fn.name != "__init__":
                    # construction-time population runs once per instance
                    # and is bounded by the constructor's inputs
                    self.cls.note_add(attr, self.fn.name, node, f"self.{attr}[...]")
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        attr = _self_attr(node.target)
        if attr is not None and attr in self.cls.containers:
            if isinstance(node.op, ast.Sub):
                self.cls.removal_evidence.add(attr)
            elif isinstance(node.op, ast.Add) and self.fn.name != "__init__":
                self.cls.note_growth(attr, self.fn.name, node, f"self.{attr} += ...")
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                attr = self._resolve(target.value)
                if attr is not None:
                    self.cls.removal_evidence.add(attr)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            attr = self._resolve(func.value)
            if attr is not None:
                method = func.attr
                if method in _REMOVAL_METHODS:
                    self.cls.removal_evidence.add(attr)
                elif self.fn.name != "__init__":
                    if method == "setdefault":
                        self.cls.note_add(
                            attr, self.fn.name, node, f"self.{attr}.setdefault"
                        )
                    elif method == "add" and node.args and not _is_constant_key(node.args[0]):
                        self.cls.note_add(attr, self.fn.name, node, f"self.{attr}.add")
                    elif method in _GROWTH_METHODS:
                        self.cls.note_growth(
                            attr, self.fn.name, node, f"self.{attr}.{method}"
                        )
        if (
            isinstance(func, ast.Name)
            and func.id == "len"
            and node.args
            and self._resolve(node.args[0]) is not None
        ):
            # a len() read is only a *bound* when something compares it;
            # conservatively accept any len() of the container outside
            # __init__ as bound evidence (every real cap reads it).
            self.cls.bound_evidence.add(self._resolve(node.args[0]))
        self.cls.note_scheduler_call(self.fn, node)
        self.generic_visit(node)


class _ClassScan:
    """Lifecycle facts for one class."""

    def __init__(self, lint: "_LifecycleLint", node: ast.ClassDef) -> None:
        self.lint = lint
        self.node = node
        self.methods: Dict[str, ast.FunctionDef] = {
            stmt.name: stmt
            for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        #: attr -> 'dict' | 'set' | 'list'
        self.containers: Dict[str, str] = {}
        #: attr -> first (method, lineno, detail) keyed-add site
        self.add_sites: Dict[str, Tuple[str, int, str]] = {}
        #: methods contributing add sites per attr (teardown exemption)
        self.add_methods: Dict[str, Set[str]] = {}
        #: attr -> first (method, lineno, detail) list-growth site
        self.growth_sites: Dict[str, Tuple[str, int, str]] = {}
        self.removal_evidence: Set[str] = set()
        self.bound_evidence: Set[str] = set()
        #: discarded-handle scheduler calls: (method, call node)
        self.timer_sites: List[Tuple[ast.FunctionDef, ast.Call]] = []
        self._discarded_calls: Set[int] = set()

        self._classify_containers()
        for fn in self.methods.values():
            for stmt in ast.walk(fn):
                if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
                    self._discarded_calls.add(id(stmt.value))
            _MethodScan(self, fn).visit(fn)

    def _classify_containers(self) -> None:
        for fn in self.methods.values():
            for stmt in ast.walk(fn):
                if isinstance(stmt, ast.Assign):
                    targets, value, annotation = stmt.targets, stmt.value, None
                elif isinstance(stmt, ast.AnnAssign):
                    targets, value, annotation = [stmt.target], stmt.value, stmt.annotation
                else:
                    continue
                kind = _container_kind(value, annotation)
                if kind is None:
                    continue
                for target in targets:
                    attr = _self_attr(target)
                    if attr is not None:
                        self.containers.setdefault(attr, kind)

    def note_add(self, attr: str, method: str, node: ast.AST, detail: str) -> None:
        if self.containers.get(attr) in ("dict", "set"):
            self.add_sites.setdefault(attr, (method, node.lineno, detail))
            self.add_methods.setdefault(attr, set()).add(method)

    def note_growth(self, attr: str, method: str, node: ast.AST, detail: str) -> None:
        if self.containers.get(attr) == "list":
            self.growth_sites.setdefault(attr, (method, node.lineno, detail))

    # -- timers --------------------------------------------------------
    def note_scheduler_call(self, fn: ast.FunctionDef, node: ast.Call) -> None:
        name = None
        if isinstance(node.func, ast.Attribute):
            name = node.func.attr
        elif isinstance(node.func, ast.Name):
            name = node.func.id
        if name in _SCHEDULERS and len(node.args) >= 2 and id(node) in self._discarded_calls:
            self.timer_sites.append((fn, node))

    def _resolve_callback(self, node: ast.AST) -> Optional[ast.AST]:
        """The local function/lambda a scheduler callback argument names."""
        if isinstance(node, ast.Lambda):
            return node
        attr = _self_attr(node)
        if attr is not None:
            return self.methods.get(attr)
        if isinstance(node, ast.Name):
            return self.lint.module.functions.get(node.id)
        return None

    @staticmethod
    def _writes_self_state(fn: ast.AST) -> bool:
        body = fn.body if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)) else [fn]
        for node in ast.walk(ast.Module(body=body, type_ignores=[])):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    root = target
                    while isinstance(root, (ast.Attribute, ast.Subscript)):
                        root = root.value
                    if isinstance(root, ast.Name) and root.id == "self" and target is not root:
                        return True
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                receiver = node.func.value
                root = receiver
                while isinstance(root, (ast.Attribute, ast.Subscript)):
                    root = root.value
                if (
                    isinstance(root, ast.Name)
                    and root.id == "self"
                    and node.func.attr
                    in (_REMOVAL_METHODS | _GROWTH_METHODS | {"add", "setdefault", "update", "insert"})
                ):
                    return True
        return False

    @staticmethod
    def _has_staleness_guard(fn: ast.AST) -> bool:
        if isinstance(fn, ast.Lambda):
            return False
        for node in ast.walk(fn):
            if isinstance(node, ast.If):
                for stmt in node.body:
                    if isinstance(stmt, ast.Return):
                        return True
        return False

    # -- rule evaluation -----------------------------------------------
    def teardown_method(self) -> Optional[ast.FunctionDef]:
        for name in _TEARDOWN_NAMES:
            fn = self.methods.get(name)
            if fn is not None:
                return fn
        return None

    def _teardown_scope(self, teardown: ast.FunctionDef) -> List[ast.FunctionDef]:
        """The teardown method plus its one-level ``self._helper()`` callees."""
        scope = [teardown]
        for node in ast.walk(teardown):
            if isinstance(node, ast.Call):
                attr = _self_attr(node.func)
                if attr is not None and attr in self.methods:
                    scope.append(self.methods[attr])
        return scope

    def _removals_within(self, fns: List[ast.FunctionDef]) -> Set[str]:
        removed: Set[str] = set()
        for fn in fns:
            aliases: Dict[str, str] = {}
            for node in ast.walk(fn):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        attr = _self_attr(target)
                        if attr is not None and attr in self.containers:
                            removed.add(attr)
                        elif isinstance(target, ast.Name):
                            src = _self_attr(node.value)
                            if src in self.containers:
                                aliases[target.id] = src
                elif isinstance(node, ast.Delete):
                    for target in node.targets:
                        if isinstance(target, ast.Subscript):
                            attr = _self_attr(target.value)
                            if attr is None and isinstance(target.value, ast.Name):
                                attr = aliases.get(target.value.id)
                            if attr in self.containers:
                                removed.add(attr)
                elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                    if node.func.attr in _REMOVAL_METHODS:
                        attr = _self_attr(node.func.value)
                        if attr is None and isinstance(node.func.value, ast.Name):
                            attr = aliases.get(node.func.value.id)
                        if attr in self.containers:
                            removed.add(attr)
        return removed

    def findings(self) -> None:
        add = self.lint.add
        path = self.lint.module.path
        flagged_op_state: Set[str] = set()
        for attr, (method, lineno, detail) in sorted(self.add_sites.items()):
            if attr in self.removal_evidence:
                continue
            flagged_op_state.add(attr)
            add(
                Finding(
                    path=path,
                    line=lineno,
                    rule="leak-op-state",
                    message=(
                        f"{self.node.name}.{attr} gains per-key entries here "
                        f"({detail}) but no method of the class ever removes "
                        "them; ops that die mid-flight leak their entry"
                    ),
                    context=f"{method}:self.{attr}",
                )
            )

        teardown = self.teardown_method()
        if teardown is not None:
            torn_down = self._removals_within(self._teardown_scope(teardown))
            for attr, (method, lineno, detail) in sorted(self.add_sites.items()):
                if attr in flagged_op_state or attr in torn_down:
                    continue
                add_methods = self.add_methods.get(attr, set())
                if add_methods <= {teardown.name}:
                    continue
                add(
                    Finding(
                        path=path,
                        line=lineno,
                        rule="leak-node-retention",
                        message=(
                            f"{self.node.name}.{attr} accumulates keyed entries "
                            f"({detail}) that {teardown.name}() never removes; "
                            "entries for departed nodes are retained"
                        ),
                        context=f"{teardown.name}:self.{attr}",
                    )
                )

        for attr, (method, lineno, detail) in sorted(self.growth_sites.items()):
            if attr in self.removal_evidence or attr in self.bound_evidence:
                continue
            add(
                Finding(
                    path=path,
                    line=lineno,
                    rule="leak-unbounded-growth",
                    message=(
                        f"{self.node.name}.{attr} grows here ({detail}) with no "
                        "bound, eviction, or consumption anywhere in the class; "
                        "memory grows with run length"
                    ),
                    context=f"{method}:self.{attr}",
                )
            )

        for fn, call in self.timer_sites:
            callback = self._resolve_callback(call.args[1])
            if callback is None:
                continue
            if not self._writes_self_state(callback):
                continue
            if self._has_staleness_guard(callback):
                continue
            cb_name = _describe(call.args[1])
            add(
                Finding(
                    path=path,
                    line=call.lineno,
                    rule="leak-timer-unguarded",
                    message=(
                        f"scheduled callback {cb_name} writes self.* state but "
                        "the handle is discarded and the callback has no "
                        "early-return staleness guard; it fires after a crash "
                        "or completion and resurrects torn-down state"
                    ),
                    context=f"{fn.name}:{cb_name}",
                )
            )


class _LifecycleLint:
    def __init__(self, module: ModuleInfo) -> None:
        self.module = module
        self._findings: Dict[Tuple[str, int, str], Finding] = {}

    def add(self, finding: Finding) -> None:
        self._findings.setdefault((finding.rule, finding.line, finding.message), finding)

    def run(self) -> None:
        for node in ast.walk(self.module.tree):
            if isinstance(node, ast.ClassDef):
                _ClassScan(self, node).findings()

    def findings(self) -> List[Finding]:
        return list(self._findings.values())


def lint_lifecycle(module: ModuleInfo) -> List[Finding]:
    """Run the resource-lifecycle rules over one collected module."""
    lint = _LifecycleLint(module)
    lint.run()
    return lint.findings()
