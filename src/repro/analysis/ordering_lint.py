"""repro-race: static detection of event-order dependence.

The kernel delivers same-timestamp events in insertion (``seq``) order,
but the deployed WAN the simulation stands in for gives no such
guarantee — and the schedule-fuzz sanitizer (``REPRO_SCHEDULE_FUZZ``)
actively perturbs it.  Code is only correct if every same-timestamp
interleaving produces the same semantics, so this linter flags the four
ways the tree can smuggle in an ordering assumption:

* ``order-zero-delay`` — a ``schedule(0, ...)`` / ``schedule_at(now,
  ...)`` site whose callback read-modify-writes ``self.*`` state.  A
  zero delay manufactures a same-timestamp tie on purpose; if the
  callback then RMWs shared state (``self.x += ...``, ``self.x =
  f(self.x)``, ``self.xs.append(...)``), its result depends on where the
  tie-break lands it relative to other handlers of the same instant.
  Sites whose callback cannot be resolved statically (a parameter, a
  dynamic attribute) are flagged too: the analyzer cannot prove the
  callback commutes, and the fuzz sanitizer is the tool that can.
* ``order-float-time-eq`` — ``==`` / ``!=`` against the simulation
  clock (``*.now``) or an event timestamp (``event.time``) used for
  control flow.  Two events "at the same time" are only equal until one
  of them is rescheduled through a float round-trip; exact-tie tests
  turn that rounding into a behavioural fork.  Ordering-safe inequality
  comparisons (``deadline <= now``) are deliberately not flagged.
* ``order-seq-dependence`` — a read of ``.seq`` outside the queue
  internals.  ``Event.seq`` *is* the insertion order; observing it is
  observing the tie-break the WAN does not provide.  (The fuzzed tie
  key deliberately lives in a separate slot, ``Event.key``, so the
  queue itself never trips this.)
* ``order-handler-commute`` — two message handlers of the same node
  both plain-assign the same ``self.*`` attribute.  Handlers fire in
  message-arrival order, two messages can share a timestamp, and a
  plain overwrite makes the attribute last-writer-wins.  Commutative
  updates (``+=`` on counters, ``.add`` on sets) are not flagged —
  only the write/write race where the final value depends on the tie.
  Handler tables are taken from the protocol linter's registry walk.

Scope (see :mod:`repro.analysis.runner`): the simulated subsystems,
minus the event queue and kernel themselves — they implement the
tie-break and legitimately touch ``seq``, ``now`` and zero delays.
"""

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.protocol_lint import ModuleInfo

#: container methods that mutate in place — an RMW when called on state
_MUTATORS = {
    "append", "extend", "insert", "add", "update", "remove", "discard",
    "pop", "popitem", "clear", "setdefault", "appendleft",
}

#: names an event object usually travels under; ``.time`` reads on these
#: are treated as event timestamps
_EVENT_NAMES = {"event", "ev", "evt", "entry"}


def _const_zero(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
        and node.value == 0
    )


def _contains_now(node: ast.AST) -> bool:
    return any(
        isinstance(sub, ast.Attribute) and sub.attr == "now"
        for sub in ast.walk(node)
    )


def _is_time_expr(node: ast.AST) -> bool:
    """``*.now`` or ``<event>.time`` — a float simulation timestamp."""
    if not isinstance(node, ast.Attribute):
        return False
    if node.attr == "now":
        return True
    if node.attr == "time":
        base = node.value
        return isinstance(base, ast.Name) and base.id in _EVENT_NAMES
    return False


def _self_attr(node: ast.AST) -> Optional[str]:
    """``self.x`` -> ``"x"``; anything else -> None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _reads_attr(tree: ast.AST, attr: str) -> bool:
    return any(
        _self_attr(sub) == attr and isinstance(sub.ctx, ast.Load)
        for sub in ast.walk(tree)
        if isinstance(sub, ast.Attribute)
    )


def _rmw_sites(fn: ast.AST) -> List[Tuple[str, int]]:
    """(attribute, line) pairs where ``fn`` read-modify-writes self state."""
    sites: List[Tuple[str, int]] = []
    for node in ast.walk(fn):
        if isinstance(node, ast.AugAssign):
            attr = _self_attr(node.target)
            if attr is None and isinstance(node.target, ast.Subscript):
                attr = _self_attr(node.target.value)
            if attr is not None:
                sites.append((attr, node.lineno))
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                attr = _self_attr(target)
                if attr is not None and _reads_attr(node.value, attr):
                    sites.append((attr, node.lineno))
                if isinstance(target, ast.Subscript):
                    attr = _self_attr(target.value)
                    if attr is not None:
                        sites.append((attr, node.lineno))
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATORS:
                attr = _self_attr(node.func.value)
                if attr is not None:
                    sites.append((attr, node.lineno))
    return sites


def _plain_writes(fn: ast.AST) -> Dict[str, int]:
    """self attributes ``fn`` plain-assigns (overwrites), with first line.

    Augmented assignments and container mutations are excluded: they
    fold the previous value in and commute for the count/set shapes the
    tree uses them on.  A plain ``self.x = <expr not reading self.x>``
    is the last-writer-wins shape the commute rule is after.
    """
    writes: Dict[str, int] = {}
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                attr = _self_attr(target)
                if attr is not None and not _reads_attr(node.value, attr):
                    writes.setdefault(attr, node.lineno)
    return writes


class _OrderingVisitor(ast.NodeVisitor):
    def __init__(self, module: ModuleInfo) -> None:
        self.module = module
        self.findings: List[Finding] = []
        self._func_stack: List[ast.FunctionDef] = []

    # -- bookkeeping -----------------------------------------------------
    def _context(self, detail: str) -> str:
        func = self._func_stack[-1].name if self._func_stack else "<module>"
        return f"{func}:{detail}"

    def _add(self, line: int, rule: str, message: str, detail: str) -> None:
        self.findings.append(
            Finding(
                path=self.module.path,
                line=line,
                rule=rule,
                message=message,
                context=self._context(detail),
            )
        )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._func_stack.append(node)
        self.generic_visit(node)
        self._func_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    # -- order-zero-delay ------------------------------------------------
    def _delay_can_be_zero(self, node: ast.AST) -> bool:
        if _const_zero(node):
            return True
        if isinstance(node, ast.IfExp):
            return self._delay_can_be_zero(node.body) or self._delay_can_be_zero(
                node.orelse
            )
        if isinstance(node, ast.Name) and self._func_stack:
            for stmt in ast.walk(self._func_stack[-1]):
                if isinstance(stmt, ast.Assign) and any(
                    isinstance(t, ast.Name) and t.id == node.id for t in stmt.targets
                ):
                    if self._delay_can_be_zero(stmt.value):
                        return True
        return False

    def _callback_verdict(self, callback: ast.AST) -> Optional[str]:
        """Why the callback is order-sensitive, or None if provably not.

        Resolvable callbacks (``self._method`` / bare local function /
        lambda) are inspected for self-state RMW; anything else is
        opaque and reported as such.
        """
        fn: Optional[ast.AST] = None
        name: Optional[str] = None
        if isinstance(callback, ast.Attribute):
            name = callback.attr
            fn = self.module.functions.get(name)
        elif isinstance(callback, ast.Name):
            name = callback.id
            fn = self.module.functions.get(name)
        elif isinstance(callback, ast.Lambda):
            name = "<lambda>"
            fn = callback
        if fn is None:
            return f"opaque callback {ast.dump(callback)[:40]!r}" if name is None else (
                f"callback {name!r} not resolvable statically"
            )
        sites = _rmw_sites(fn)
        if sites:
            attrs = sorted({attr for attr, _ in sites})
            return f"callback {name!r} read-modify-writes self.{attrs[0]}"
        return None

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        attr = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if attr == "schedule" and len(node.args) >= 2:
            if self._delay_can_be_zero(node.args[0]):
                why = self._callback_verdict(node.args[1])
                if why is not None:
                    self._add(
                        node.lineno, "order-zero-delay",
                        f"zero-delay schedule creates a same-timestamp tie and {why}; "
                        "the callback's effect depends on tie-break order",
                        f"schedule:{_cb_detail(node.args[1])}",
                    )
        elif attr == "schedule_at" and len(node.args) >= 2:
            if _contains_now(node.args[0]):
                why = self._callback_verdict(node.args[1])
                if why is not None:
                    self._add(
                        node.lineno, "order-zero-delay",
                        f"schedule_at(now) creates a same-timestamp tie and {why}; "
                        "the callback's effect depends on tie-break order",
                        f"schedule_at:{_cb_detail(node.args[1])}",
                    )
        self.generic_visit(node)

    # -- order-float-time-eq ---------------------------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            timeish = next(
                (x for x in (left, right) if _is_time_expr(x)), None
            )
            if timeish is not None:
                detail = timeish.attr  # type: ignore[union-attr]
                self._add(
                    node.lineno, "order-float-time-eq",
                    f"float equality against {detail!r}: same-timestamp is a "
                    "race, not a state; compare with tolerance or restructure",
                    detail,
                )
        self.generic_visit(node)

    # -- order-seq-dependence --------------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr == "seq" and isinstance(node.ctx, ast.Load):
            self._add(
                node.lineno, "order-seq-dependence",
                "read of .seq observes event insertion order, which the "
                "deployed WAN does not provide; key on explicit state instead",
                "seq",
            )
        self.generic_visit(node)


def _cb_detail(callback: ast.AST) -> str:
    if isinstance(callback, ast.Attribute):
        return callback.attr
    if isinstance(callback, ast.Name):
        return callback.id
    if isinstance(callback, ast.Lambda):
        return "<lambda>"
    return "<dynamic>"


def _lint_handler_commute(module: ModuleInfo) -> List[Finding]:
    findings: List[Finding] = []
    # handler kind -> (function name, plain writes) for resolvable handlers
    resolved: Dict[str, Tuple[str, Dict[str, int]]] = {}
    for reg in module.handlers:
        if reg.func_name is None:
            continue
        fn = module.functions.get(reg.func_name)
        if fn is None:
            continue
        resolved.setdefault(reg.kind, (reg.func_name, _plain_writes(fn)))
    pairs_seen: Set[Tuple[str, str, str]] = set()
    kinds = sorted(resolved)
    for i, kind_a in enumerate(kinds):
        fn_a, writes_a = resolved[kind_a]
        for kind_b in kinds[i + 1:]:
            fn_b, writes_b = resolved[kind_b]
            if fn_a == fn_b:
                continue
            for attr in sorted(set(writes_a) & set(writes_b)):
                pair = tuple(sorted((fn_a, fn_b))) + (attr,)
                if pair in pairs_seen:
                    continue
                pairs_seen.add(pair)
                findings.append(
                    Finding(
                        path=module.path,
                        line=writes_a[attr],
                        rule="order-handler-commute",
                        message=(
                            f"handlers {fn_a!r} ({kind_a!r}) and {fn_b!r} "
                            f"({kind_b!r}) both overwrite self.{attr}; two "
                            "same-timestamp messages make it last-writer-wins"
                        ),
                        context=f"{pair[0]}~{pair[1]}:{attr}",
                    )
                )
    return findings


def lint_ordering(module: ModuleInfo) -> List[Finding]:
    visitor = _OrderingVisitor(module)
    visitor.visit(module.tree)
    return visitor.findings + _lint_handler_commute(module)


def lint_ordering_many(modules: Sequence[ModuleInfo]) -> List[Finding]:
    findings: List[Finding] = []
    for module in modules:
        findings.extend(lint_ordering(module))
    return findings
