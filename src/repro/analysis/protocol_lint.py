"""AST cross-check of send sites and handlers against the wire registry.

The walk recognises the repo's messaging idioms:

* send sites — ``self._send(dst, "kind", payload)``,
  ``network.send(src, dst, "kind", payload)``, ``node.send(dst, "kind",
  payload)``, ``self._flood("kind", payload, key)``, ``Message(kind=...)``
  and routed sends ``self.route(target, "inner_kind", inner, ...)``;
* handler registrations — the ``self._handlers = {"kind": self._on_x}``
  table, ``extra_handlers`` return dicts, baseline
  ``node.handlers["kind"] = fn`` assignments (including handler
  factories), and routed dispatch via ``inner_kind == "..."`` /
  ``inner_kind in (...)`` comparisons inside ``on_route_arrival`` /
  ``on_route_failed``;
* payload reads inside handlers — ``msg.payload["key"]``, aliases
  (``payload = msg.payload``), ``.get("key")`` calls, one level of
  helper propagation (``self._apply_x(msg.payload)``), and for routed
  handlers both the envelope's keys and the ``inner`` dict's keys.

Checks (rule ids in :mod:`repro.analysis.findings`): unknown kinds at
send sites, sent kinds with no handler, handled kinds nobody sends,
handlers for unregistered kinds, dead registry entries, undeclared
payload-key reads, and payload literals that omit required keys or carry
undeclared ones.
"""

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.net.protocol import ENVELOPE_KEYS, MessageKind

_ENVELOPE_KEY_SET = frozenset(ENVELOPE_KEYS)


def _const_str(node: Optional[ast.AST]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _attr_name(node: ast.AST) -> Optional[str]:
    """``self._on_x`` / ``cls._on_x`` -> ``_on_x``; bare names pass through."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_msg_payload(node: ast.AST, msg_names: Set[str]) -> bool:
    """True for ``<msg>.payload`` where ``<msg>`` is a known message name."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "payload"
        and isinstance(node.value, ast.Name)
        and node.value.id in msg_names
    )


@dataclass
class SendSite:
    kind: str
    routed: bool
    path: str
    line: int
    payload: Optional[ast.AST]
    func: Optional[ast.FunctionDef]
    context: str


@dataclass
class HandlerReg:
    kind: str
    routed: bool
    path: str
    line: int
    #: Name of the handler method/factory in the same module, if resolvable.
    func_name: Optional[str]
    #: True when ``func_name`` is a factory whose nested def is the handler.
    factory: bool
    context: str


@dataclass
class ModuleInfo:
    path: str
    tree: ast.Module
    #: every (async) function def in the module, by bare name
    functions: Dict[str, ast.FunctionDef] = field(default_factory=dict)
    sends: List[SendSite] = field(default_factory=list)
    handlers: List[HandlerReg] = field(default_factory=list)


# ----------------------------------------------------------------------
# Collection
# ----------------------------------------------------------------------
class _Collector(ast.NodeVisitor):
    def __init__(self, info: ModuleInfo) -> None:
        self.info = info
        self._func_stack: List[ast.FunctionDef] = []

    # -- function bookkeeping ------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.info.functions.setdefault(node.name, node)
        self._func_stack.append(node)
        if node.name == "extra_handlers":
            for ret in ast.walk(node):
                if isinstance(ret, ast.Return) and isinstance(ret.value, ast.Dict):
                    self._handler_dict(ret.value)
        self.generic_visit(node)
        self._func_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def _context(self, detail: str) -> str:
        func = self._func_stack[-1].name if self._func_stack else "<module>"
        return f"{func}:{detail}"

    def _enclosing(self) -> Optional[ast.FunctionDef]:
        return self._func_stack[-1] if self._func_stack else None

    # -- handler tables -------------------------------------------------
    def _handler_dict(self, node: ast.Dict) -> None:
        for key, value in zip(node.keys, node.values):
            kind = _const_str(key)
            if kind is None:
                continue
            self.info.handlers.append(
                HandlerReg(
                    kind=kind,
                    routed=False,
                    path=self.info.path,
                    line=key.lineno,
                    func_name=_attr_name(value),
                    factory=False,
                    context=self._context(kind),
                )
            )

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        # self._handlers: Dict[str, Handler] = {...}
        name = _attr_name(node.target)
        if name is not None and name.endswith("handlers") and isinstance(node.value, ast.Dict):
            self._handler_dict(node.value)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            # self._handlers = {...}
            name = _attr_name(target)
            if name is not None and name.endswith("handlers") and isinstance(node.value, ast.Dict):
                self._handler_dict(node.value)
            # node.handlers["kind"] = fn / factory(...)
            if (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Attribute)
                and target.value.attr == "handlers"
            ):
                kind = _const_str(target.slice)
                if kind is not None:
                    func_name = _attr_name(node.value)
                    factory = False
                    if func_name is None and isinstance(node.value, ast.Call):
                        func_name = _attr_name(node.value.func)
                        factory = func_name is not None
                    self.info.handlers.append(
                        HandlerReg(
                            kind=kind,
                            routed=False,
                            path=self.info.path,
                            line=node.lineno,
                            func_name=func_name,
                            factory=factory,
                            context=self._context(kind),
                        )
                    )
        self.generic_visit(node)

    # -- routed dispatch ------------------------------------------------
    @staticmethod
    def _is_inner_kind_expr(node: ast.AST) -> bool:
        if isinstance(node, ast.Name) and node.id == "inner_kind":
            return True
        return isinstance(node, ast.Subscript) and _const_str(node.slice) == "inner_kind"

    def visit_If(self, node: ast.If) -> None:
        test = node.test
        if isinstance(test, ast.Compare) and self._is_inner_kind_expr(test.left):
            kinds: List[Tuple[str, int]] = []
            for comparator in test.comparators:
                value = _const_str(comparator)
                if value is not None:
                    kinds.append((value, comparator.lineno))
                elif isinstance(comparator, (ast.Tuple, ast.List, ast.Set)):
                    kinds.extend(
                        (k, elt.lineno)
                        for elt in comparator.elts
                        for k in (_const_str(elt),)
                        if k is not None
                    )
            # `inner_kind == "x"`: the branch body names the handler.
            dispatch_target: Optional[str] = None
            if len(test.ops) == 1 and isinstance(test.ops[0], ast.Eq):
                for stmt in node.body:
                    if (
                        isinstance(stmt, ast.Expr)
                        and isinstance(stmt.value, ast.Call)
                        and _attr_name(stmt.value.func) is not None
                    ):
                        dispatch_target = _attr_name(stmt.value.func)
                        break
            for kind, line in kinds:
                self.info.handlers.append(
                    HandlerReg(
                        kind=kind,
                        routed=True,
                        path=self.info.path,
                        line=line,
                        func_name=dispatch_target if len(kinds) == 1 else None,
                        factory=False,
                        context=self._context(kind),
                    )
                )
        self.generic_visit(node)

    # -- send sites ------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func_name = _attr_name(node.func)
        kind: Optional[str] = None
        payload: Optional[ast.AST] = None
        routed = False

        if func_name == "_send" and node.args:
            kind = _const_str(node.args[1]) if len(node.args) > 1 else None
            payload = node.args[2] if len(node.args) > 2 else None
        elif func_name == "send":
            if len(node.args) > 2 and _const_str(node.args[2]) is not None:
                # network.send(src, dst, kind, payload)
                kind = _const_str(node.args[2])
                payload = node.args[3] if len(node.args) > 3 else None
            elif len(node.args) > 1 and _const_str(node.args[1]) is not None:
                # node.send(dst, kind, payload)
                kind = _const_str(node.args[1])
                payload = node.args[2] if len(node.args) > 2 else None
        elif func_name == "_flood" and node.args:
            kind = _const_str(node.args[0])
            payload = node.args[1] if len(node.args) > 1 else None
        elif func_name == "route" and len(node.args) > 1:
            kind = _const_str(node.args[1])
            payload = node.args[2] if len(node.args) > 2 else None
            routed = kind is not None
        elif func_name == "Message":
            for keyword in node.keywords:
                if keyword.arg == "kind":
                    kind = _const_str(keyword.value)
                if keyword.arg == "payload":
                    payload = keyword.value

        if kind is not None:
            self.info.sends.append(
                SendSite(
                    kind=kind,
                    routed=routed,
                    path=self.info.path,
                    line=node.lineno,
                    payload=payload,
                    func=self._enclosing(),
                    context=self._context(kind),
                )
            )
        self.generic_visit(node)


def collect_module(path: str, tree: ast.Module) -> ModuleInfo:
    info = ModuleInfo(path=path, tree=tree)
    _Collector(info).visit(tree)
    return info


# ----------------------------------------------------------------------
# Payload-read analysis inside handlers
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _Read:
    key: str
    line: int
    #: positive ``inner_kind == "x"`` guard in effect, if any
    guard: Optional[str]
    #: kinds excluded by enclosing else-branches of guarded ifs
    excluded: Tuple[str, ...]

    def applies_to(self, kind: str) -> bool:
        if self.guard is not None and self.guard != kind:
            return False
        return kind not in self.excluded


class _PayloadReads(ast.NodeVisitor):
    """Collect constant payload-key reads within one handler function.

    Reads are tagged with any enclosing ``inner_kind == "x"`` guard so a
    shared routed-failure path (one function switching on the inner kind)
    is checked branch-by-branch instead of every read against every kind.
    """

    def __init__(self, payload_names: Set[str], msg_names: Set[str]) -> None:
        self.payload_names = set(payload_names)
        self.msg_names = set(msg_names)
        #: reads against the payload
        self.reads: List[_Read] = []
        #: names aliased to payload["inner"] (routed handlers)
        self.inner_names: Set[str] = set()
        #: reads against payload["inner"]
        self.inner_reads: List[_Read] = []
        #: helper calls receiving the payload: (callee name, line)
        self.forwards: List[Tuple[str, int]] = []
        self._guard: Optional[str] = None
        self._excluded: Set[str] = set()

    def _read(self, key: str, line: int) -> _Read:
        return _Read(key, line, self._guard, tuple(sorted(self._excluded)))

    @staticmethod
    def _guard_kind(test: ast.AST) -> Optional[str]:
        """The kind name if ``test`` is ``inner_kind == "x"``-shaped."""
        if not (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Eq)
        ):
            return None
        left = test.left
        is_kind_expr = (isinstance(left, ast.Name) and left.id == "inner_kind") or (
            isinstance(left, ast.Subscript) and _const_str(left.slice) == "inner_kind"
        )
        if not is_kind_expr:
            return None
        return _const_str(test.comparators[0])

    def visit_If(self, node: ast.If) -> None:
        kind = self._guard_kind(node.test)
        if kind is None:
            self.generic_visit(node)
            return
        self.visit(node.test)
        prev_guard = self._guard
        self._guard = kind
        for stmt in node.body:
            self.visit(stmt)
        self._guard = prev_guard
        self._excluded.add(kind)
        for stmt in node.orelse:
            self.visit(stmt)
        self._excluded.discard(kind)

    def _is_payload(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name) and node.id in self.payload_names:
            return True
        return _is_msg_payload(node, self.msg_names)

    def _is_inner(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name) and node.id in self.inner_names:
            return True
        # envelope["inner"][...]
        return (
            isinstance(node, ast.Subscript)
            and self._is_payload(node.value)
            and _const_str(node.slice) == "inner"
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        value = node.value
        for target in node.targets:
            if isinstance(target, ast.Name):
                if self._is_payload(value):
                    self.payload_names.add(target.id)
                elif self._is_inner(value):
                    self.inner_names.add(target.id)
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        key = _const_str(node.slice)
        if key is not None:
            if self._is_payload(node.value):
                self.reads.append(self._read(key, node.lineno))
            elif self._is_inner(node.value):
                self.inner_reads.append(self._read(key, node.lineno))
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "get" and node.args:
            key = _const_str(node.args[0])
            if key is not None:
                if self._is_payload(func.value):
                    self.reads.append(self._read(key, node.lineno))
                elif self._is_inner(func.value):
                    self.inner_reads.append(self._read(key, node.lineno))
        # one level of helper propagation: self._apply_x(<payload>)
        callee = _attr_name(func)
        if callee is not None and any(self._is_payload(arg) for arg in node.args):
            self.forwards.append((callee, node.lineno))
        self.generic_visit(node)


def _first_param(fn: ast.FunctionDef) -> Optional[str]:
    args = [a.arg for a in fn.args.args if a.arg not in ("self", "cls")]
    return args[0] if args else None


def _nested_handler(factory: ast.FunctionDef) -> Optional[ast.FunctionDef]:
    """The handler def a factory builds and returns."""
    for stmt in ast.walk(factory):
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) and stmt is not factory:
            return stmt
    return None


def _analyze_reads(
    fn: ast.FunctionDef, module: ModuleInfo, *, as_msg: bool, depth: int = 0,
    seen: Optional[Set[str]] = None,
) -> _PayloadReads:
    """Payload reads in ``fn``, following one level of helper calls.

    ``as_msg`` selects the calling convention: the parameter is a
    ``Message`` (reads go through ``.payload``) versus the payload dict
    itself (routed-envelope handlers and ``_apply_*`` helpers).
    """
    seen = seen if seen is not None else set()
    seen.add(fn.name)
    param = _first_param(fn)
    if param is None:
        return _PayloadReads(set(), set())
    if as_msg:
        reads = _PayloadReads(payload_names=set(), msg_names={param})
    else:
        reads = _PayloadReads(payload_names={param}, msg_names=set())
    for stmt in fn.body:
        reads.visit(stmt)
    if depth < 2:
        for callee, _ in reads.forwards:
            target = module.functions.get(callee)
            if target is not None and target.name not in seen:
                sub = _analyze_reads(target, module, as_msg=False, depth=depth + 1, seen=seen)
                reads.reads.extend(sub.reads)
                reads.inner_reads.extend(sub.inner_reads)
    return reads


# ----------------------------------------------------------------------
# Send-site payload resolution
# ----------------------------------------------------------------------
def _dict_literal_keys(node: ast.AST) -> Optional[Tuple[Set[str], int]]:
    if isinstance(node, ast.Dict) and node.keys and all(
        _const_str(k) is not None for k in node.keys
    ):
        return {_const_str(k) for k in node.keys}, node.lineno
    if isinstance(node, ast.Dict) and not node.keys:
        return set(), node.lineno
    return None


def _resolve_payload_literals(
    site: SendSite,
) -> List[Tuple[Set[str], int]]:
    """Key sets of the payload literal(s) feeding a send site, if static.

    A direct dict literal resolves to itself; a bare name resolves to
    every ``name = {...}`` dict-literal assignment in the enclosing
    function (branchy builders like ``op_failed`` assign per-branch).
    Anything else — ``dict(...)`` copies, parameters, ``msg.payload``
    refloods — is dynamic and skipped; runtime validation covers those.
    """
    payload = site.payload
    if payload is None:
        return []
    direct = _dict_literal_keys(payload)
    if direct is not None:
        return [direct]
    if isinstance(payload, ast.Name) and site.func is not None:
        literals: List[Tuple[Set[str], int]] = []
        dynamic = False
        for stmt in ast.walk(site.func):
            if isinstance(stmt, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == payload.id for t in stmt.targets
            ):
                resolved = _dict_literal_keys(stmt.value)
                if resolved is not None:
                    literals.append(resolved)
                else:
                    dynamic = True
            # mutation (payload["k"] = ...) makes the literal incomplete
            if isinstance(stmt, ast.Assign) and any(
                isinstance(t, ast.Subscript)
                and isinstance(t.value, ast.Name)
                and t.value.id == payload.id
                for t in stmt.targets
            ):
                dynamic = True
        return [] if dynamic else literals
    return []


# ----------------------------------------------------------------------
# Lint driver
# ----------------------------------------------------------------------
def lint_protocol(
    modules: List[ModuleInfo],
    registry: Dict[str, MessageKind],
    routed: Dict[str, MessageKind],
    check_coverage: bool = True,
) -> List[Finding]:
    findings: List[Finding] = []
    by_path = {m.path: m for m in modules}

    sent: Dict[Tuple[str, bool], SendSite] = {}
    handled: Dict[Tuple[str, bool], HandlerReg] = {}

    for module in modules:
        for site in module.sends:
            sent.setdefault((site.kind, site.routed), site)
            table = routed if site.routed else registry
            decl = table.get(site.kind)
            if decl is None:
                flavor = "routed kind" if site.routed else "message kind"
                findings.append(
                    Finding(
                        path=site.path,
                        line=site.line,
                        rule="protocol-unknown-kind",
                        message=f"send of unregistered {flavor} {site.kind!r}",
                        context=site.context,
                    )
                )
                continue
            for keys, line in _resolve_payload_literals(site):
                extra = keys - decl.all_keys()
                if extra:
                    findings.append(
                        Finding(
                            path=site.path,
                            line=line,
                            rule="protocol-extra-send-key",
                            message=(
                                f"payload for {site.kind!r} carries undeclared "
                                f"key(s) {sorted(extra)}"
                            ),
                            context=site.context,
                        )
                    )
                missing = decl.required - keys
                # Branch-assigned literals for kinds with optional keys
                # (e.g. op_failed) legitimately omit optionals only; a
                # literal missing *required* keys is always wrong.
                if missing:
                    findings.append(
                        Finding(
                            path=site.path,
                            line=line,
                            rule="protocol-missing-send-key",
                            message=(
                                f"payload for {site.kind!r} omits required "
                                f"key(s) {sorted(missing)}"
                            ),
                            context=site.context,
                        )
                    )

        for reg in module.handlers:
            handled.setdefault((reg.kind, reg.routed), reg)
            table = routed if reg.routed else registry
            decl = table.get(reg.kind)
            if decl is None:
                findings.append(
                    Finding(
                        path=reg.path,
                        line=reg.line,
                        rule="protocol-unregistered-handler",
                        message=f"handler registered for unregistered kind {reg.kind!r}",
                        context=reg.context,
                    )
                )
                continue
            findings.extend(_check_handler_reads(reg, decl, routed, by_path))

    if check_coverage:
        findings.extend(_check_coverage(sent, handled, registry, routed))
    return findings


def _check_handler_reads(
    reg: HandlerReg,
    decl: MessageKind,
    routed: Dict[str, MessageKind],
    by_path: Dict[str, ModuleInfo],
) -> List[Finding]:
    module = by_path[reg.path]
    if reg.func_name is None:
        return []
    fn = module.functions.get(reg.func_name)
    if fn is None:
        return []
    if reg.factory:
        fn = _nested_handler(fn)
        if fn is None:
            return []

    findings: List[Finding] = []
    if reg.routed:
        # Routed handlers receive the route envelope; their own subscript
        # reads are envelope keys, and reads via ``inner`` are the routed
        # kind's payload keys.
        reads = _analyze_reads(fn, module, as_msg=False)
        for read in reads.reads:
            if read.key not in _ENVELOPE_KEY_SET and read.applies_to(decl.name):
                findings.append(
                    Finding(
                        path=reg.path,
                        line=read.line,
                        rule="protocol-undeclared-key",
                        message=(
                            f"routed handler for {decl.name!r} reads "
                            f"envelope key {read.key!r} not in the route envelope"
                        ),
                        context=f"{fn.name}:{read.key}",
                    )
                )
        for read in reads.inner_reads:
            if read.key not in decl.all_keys() and read.applies_to(decl.name):
                findings.append(
                    Finding(
                        path=reg.path,
                        line=read.line,
                        rule="protocol-undeclared-key",
                        message=(
                            f"handler for routed kind {decl.name!r} reads "
                            f"undeclared payload key {read.key!r}"
                        ),
                        context=f"{fn.name}:{read.key}",
                    )
                )
    else:
        reads = _analyze_reads(fn, module, as_msg=True)
        for read in reads.reads:
            if read.key not in decl.all_keys():
                findings.append(
                    Finding(
                        path=reg.path,
                        line=read.line,
                        rule="protocol-undeclared-key",
                        message=(
                            f"handler for {decl.name!r} reads undeclared "
                            f"payload key {read.key!r}"
                        ),
                        context=f"{fn.name}:{read.key}",
                    )
                )
    return findings


def _check_coverage(
    sent: Dict[Tuple[str, bool], SendSite],
    handled: Dict[Tuple[str, bool], HandlerReg],
    registry: Dict[str, MessageKind],
    routed: Dict[str, MessageKind],
) -> List[Finding]:
    findings: List[Finding] = []
    for (kind, is_routed), site in sorted(sent.items(), key=lambda kv: kv[0]):
        table = routed if is_routed else registry
        if kind in table and (kind, is_routed) not in handled:
            findings.append(
                Finding(
                    path=site.path,
                    line=site.line,
                    rule="protocol-unhandled-kind",
                    message=f"kind {kind!r} is sent here but has no handler anywhere",
                    context=site.context,
                )
            )
    for (kind, is_routed), reg in sorted(handled.items(), key=lambda kv: kv[0]):
        table = routed if is_routed else registry
        if kind in table and (kind, is_routed) not in sent:
            findings.append(
                Finding(
                    path=reg.path,
                    line=reg.line,
                    rule="protocol-unsent-kind",
                    message=f"kind {kind!r} has a handler but nothing ever sends it",
                    context=reg.context,
                )
            )
    for table, is_routed in ((registry, False), (routed, True)):
        for kind in sorted(table):
            if (kind, is_routed) not in sent and (kind, is_routed) not in handled:
                findings.append(
                    Finding(
                        path="<registry>",
                        line=0,
                        rule="protocol-dead-kind",
                        message=(
                            f"registry entry {kind!r} is neither sent nor "
                            "handled in the analyzed code"
                        ),
                        context=f"registry:{kind}",
                    )
                )
    return findings
