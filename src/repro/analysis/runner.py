"""File discovery, scope rules, and the ``python -m repro.analysis`` CLI."""

import argparse
import ast
import json
import os
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis import baseline as baseline_mod
from repro.analysis.aliasing_lint import lint_aliasing
from repro.analysis.determinism_lint import collect_set_attrs, lint_determinism
from repro.analysis.findings import RULES, Finding
from repro.analysis.ordering_lint import lint_ordering
from repro.analysis.protocol_lint import collect_module, lint_protocol
from repro.analysis.suppressions import (
    inline_ignores,
    is_inline_suppressed,
    split_baselined,
)
from repro.net import protocol

#: the individual analyses ``--only`` can select
LINTS = ("protocol", "determinism", "aliasing", "ordering")

#: repro subpackages whose code must be deterministic.  ``analysis`` and
#: ``experiments`` are excluded: they run outside the simulation (the
#: linter itself, plotting/driver scripts) and may touch the wall clock.
DETERMINISM_SCOPE = (
    "overlay", "core", "net", "sim", "baselines", "traffic", "anomaly", "storage",
)

#: files inside the scope that are allowed ambient-randomness primitives —
#: the seeded-stream registry itself wraps ``random.Random``.
DETERMINISM_EXEMPT = ("repro/sim/randomness.py",)

#: repro subpackages subject to the cross-node aliasing rules — the code
#: that sends or handles messages.  ``sim`` (kernel/RNG, no messages) and
#: the offline packages are out of scope.
ALIASING_SCOPE = ("overlay", "core", "net", "baselines")

#: repro subpackages subject to the event-ordering (repro-race) rules —
#: everything that runs inside the simulation.
ORDERING_SCOPE = (
    "overlay", "core", "net", "sim", "baselines", "traffic", "anomaly", "storage",
)

#: queue/kernel internals implement the tie-break itself: they own
#: ``seq``, compare times, and schedule at ``now`` by design.
ORDERING_EXEMPT = ("repro/sim/events.py", "repro/sim/kernel.py")


@dataclass
class AnalysisResult:
    """Findings partitioned by disposition."""

    active: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    accepted: List[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.active


def _posix(path: str) -> str:
    return path.replace(os.sep, "/")


def _rel(path: str) -> str:
    """Path as reported in findings: cwd-relative when possible.

    Keys in the baseline embed this string, so it must not depend on
    where the repo is checked out — cwd-relative achieves that for the
    normal ``python -m repro.analysis`` invocation from the repo root.
    """
    rel = os.path.relpath(path)
    return _posix(path if rel.startswith("..") else rel)


def discover_files(paths: Sequence[str]) -> List[str]:
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
                files.extend(
                    os.path.join(dirpath, name)
                    for name in sorted(filenames)
                    if name.endswith(".py")
                )
        elif path.endswith(".py"):
            files.append(path)
    return files


def _in_scope(rel_path: str, scope: Sequence[str]) -> bool:
    marker = "repro/"
    idx = rel_path.rfind(marker)
    if idx < 0:
        # not part of the repro package (e.g. test fixtures): lint it —
        # fixtures exist precisely to exercise the rules.
        return True
    remainder = rel_path[idx + len(marker):]
    return remainder.split("/", 1)[0] in scope


def _in_determinism_scope(rel_path: str) -> bool:
    if any(rel_path.endswith(exempt) for exempt in DETERMINISM_EXEMPT):
        return False
    return _in_scope(rel_path, DETERMINISM_SCOPE)


def _in_aliasing_scope(rel_path: str) -> bool:
    return _in_scope(rel_path, ALIASING_SCOPE)


def _in_ordering_scope(rel_path: str) -> bool:
    if any(rel_path.endswith(exempt) for exempt in ORDERING_EXEMPT):
        return False
    return _in_scope(rel_path, ORDERING_SCOPE)


def analyze_paths(
    paths: Sequence[str],
    registry: Optional[Dict[str, protocol.MessageKind]] = None,
    routed: Optional[Dict[str, protocol.MessageKind]] = None,
    check_coverage: bool = True,
    baseline: Optional[Sequence[Dict[str, str]]] = None,
    lints: Optional[Sequence[str]] = None,
) -> AnalysisResult:
    """Run the linters over ``paths`` (files or directories).

    ``registry``/``routed`` default to the live wire registry; tests pass
    miniature registries to pin down individual rules.  ``check_coverage``
    gates the whole-protocol checks (unhandled / unsent / dead kinds),
    which only make sense when the analyzed set covers every sender and
    handler — leave it off when linting a single file.  ``lints`` selects
    a subset of :data:`LINTS` (default: all four).
    """
    registry = protocol.REGISTRY if registry is None else registry
    routed = protocol.ROUTED if routed is None else routed
    baseline = baseline_mod.BASELINE if baseline is None else baseline
    selected = set(LINTS if lints is None else lints)
    unknown = selected - set(LINTS)
    if unknown:
        raise ValueError(f"unknown lint(s): {sorted(unknown)} (expected {LINTS})")

    sources: List[Tuple[str, str, ast.Module]] = []
    for filename in discover_files(paths):
        with open(filename, "r", encoding="utf-8") as handle:
            source = handle.read()
        tree = ast.parse(source, filename=filename)
        sources.append((_rel(filename), source, tree))

    modules = [collect_module(rel_path, tree) for rel_path, _, tree in sources]
    findings: List[Finding] = []
    if "protocol" in selected:
        findings.extend(
            lint_protocol(modules, registry, routed, check_coverage=check_coverage)
        )

    if "determinism" in selected:
        set_attrs = collect_set_attrs(tree for _, _, tree in sources)
        for rel_path, _, tree in sources:
            if _in_determinism_scope(rel_path):
                findings.extend(lint_determinism(rel_path, tree, set_attrs))

    if "aliasing" in selected:
        for module in modules:
            if _in_aliasing_scope(module.path):
                findings.extend(lint_aliasing(module))

    if "ordering" in selected:
        for module in modules:
            if _in_ordering_scope(module.path):
                findings.extend(lint_ordering(module))

    ignores_by_path = {rel_path: inline_ignores(source) for rel_path, source, _ in sources}
    result = AnalysisResult()
    unsuppressed: List[Finding] = []
    for finding in sorted(findings):
        if is_inline_suppressed(finding, ignores_by_path.get(finding.path, {})):
            result.suppressed.append(finding)
        else:
            unsuppressed.append(finding)
    result.active, result.accepted = split_baselined(unsuppressed, baseline)
    return result


def _default_paths() -> List[str]:
    import repro

    return [os.path.dirname(os.path.abspath(repro.__file__))]


def _finding_dict(finding: Finding) -> Dict[str, object]:
    return {
        "rule": finding.rule,
        "file": finding.path,
        "line": finding.line,
        "message": finding.message,
        "context": finding.context,
        "key": finding.key,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "repro static analysis: protocol (repro-lint), determinism "
            "(repro-lint), cross-node aliasing (repro-san), and "
            "event-ordering races (repro-race)"
        ),
        epilog=(
            "exit codes: 0 — no active findings; 1 — active findings "
            "(suppressed/baselined ones never fail the gate); 2 — usage "
            "error (unknown flag or --only value)"
        ),
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to analyze (default: the repro package)",
    )
    parser.add_argument(
        "--only", choices=LINTS, metavar="{protocol,determinism,aliasing,ordering}",
        help="run a single analysis instead of all four",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format; json emits {findings, suppressed, accepted, ok} "
        "with rule/file/line per finding",
    )
    parser.add_argument(
        "--no-coverage", action="store_true",
        help="skip whole-protocol coverage checks (unhandled/unsent/dead "
        "kinds); use when analyzing a subset of the code",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in sorted(RULES):
            print(f"{rule}: {RULES[rule]}")
        return 0

    paths = list(args.paths) or _default_paths()
    lints = None if args.only is None else (args.only,)
    result = analyze_paths(paths, check_coverage=not args.no_coverage, lints=lints)

    if args.format == "json":
        print(
            json.dumps(
                {
                    "findings": [_finding_dict(f) for f in result.active],
                    "suppressed": len(result.suppressed),
                    "accepted": len(result.accepted),
                    "ok": result.ok,
                },
                indent=2,
            )
        )
        return 0 if result.ok else 1

    for finding in result.active:
        print(finding.render())
    tail = (
        f"{len(result.active)} finding(s), "
        f"{len(result.suppressed)} suppressed inline, "
        f"{len(result.accepted)} accepted by baseline"
    )
    if result.active:
        print(f"repro-lint: FAIL — {tail}", file=sys.stderr)
        return 1
    print(f"repro-lint: OK — {tail}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
