"""File discovery, scope rules, and the ``python -m repro.analysis`` CLI."""

import argparse
import ast
import json
import os
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis import baseline as baseline_mod
from repro.analysis.aliasing_lint import lint_aliasing
from repro.analysis.determinism_lint import collect_set_attrs, lint_determinism
from repro.analysis.findings import RULES, Finding
from repro.analysis.lifecycle_lint import lint_lifecycle
from repro.analysis.ordering_lint import lint_ordering
from repro.analysis.protocol_lint import collect_module, lint_protocol
from repro.analysis.suppressions import (
    inline_ignores,
    is_inline_suppressed,
    split_baselined,
)
from repro.net import protocol

#: the individual analyses ``--only`` can select
LINTS = ("protocol", "determinism", "aliasing", "ordering", "lifecycle")

#: repro subpackages whose code must be deterministic.  ``analysis`` and
#: ``experiments`` are excluded: they run outside the simulation (the
#: linter itself, plotting/driver scripts) and may touch the wall clock.
DETERMINISM_SCOPE = (
    "overlay", "core", "net", "sim", "baselines", "traffic", "anomaly", "storage",
)

#: files inside the scope that are allowed ambient-randomness primitives —
#: the seeded-stream registry itself wraps ``random.Random``.
DETERMINISM_EXEMPT = ("repro/sim/randomness.py",)

#: repro subpackages subject to the cross-node aliasing rules — the code
#: that sends or handles messages.  ``sim`` (kernel/RNG, no messages) and
#: the offline packages are out of scope.
ALIASING_SCOPE = ("overlay", "core", "net", "baselines")

#: repro subpackages subject to the event-ordering (repro-race) rules —
#: everything that runs inside the simulation.
ORDERING_SCOPE = (
    "overlay", "core", "net", "sim", "baselines", "traffic", "anomaly", "storage",
)

#: queue/kernel internals implement the tie-break itself: they own
#: ``seq``, compare times, and schedule at ``now`` by design.
ORDERING_EXEMPT = ("repro/sim/events.py", "repro/sim/kernel.py")

#: repro subpackages subject to the resource-lifecycle (repro-leak)
#: rules — everything that holds per-op or per-node state across events.
#: ``storage`` is excluded by design: a store's whole job is retention
#: (records live until the workload deletes them), so every keyed insert
#: there would be a false positive.
LIFECYCLE_SCOPE = (
    "overlay", "core", "net", "sim", "baselines", "traffic", "anomaly",
)


@dataclass
class AnalysisResult:
    """Findings partitioned by disposition."""

    active: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    accepted: List[Finding] = field(default_factory=list)
    #: baseline keys that matched no finding in this run — dead weight in
    #: :mod:`repro.analysis.baseline` (only meaningful for full-repo runs
    #: with every lint selected; subsets legitimately miss entries).
    stale_baseline: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.active


def _posix(path: str) -> str:
    return path.replace(os.sep, "/")


def _rel(path: str) -> str:
    """Path as reported in findings: cwd-relative when possible.

    Keys in the baseline embed this string, so it must not depend on
    where the repo is checked out — cwd-relative achieves that for the
    normal ``python -m repro.analysis`` invocation from the repo root.
    """
    rel = os.path.relpath(path)
    return _posix(path if rel.startswith("..") else rel)


def discover_files(paths: Sequence[str]) -> List[str]:
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
                files.extend(
                    os.path.join(dirpath, name)
                    for name in sorted(filenames)
                    if name.endswith(".py")
                )
        elif path.endswith(".py"):
            files.append(path)
    return files


def _in_scope(rel_path: str, scope: Sequence[str]) -> bool:
    marker = "repro/"
    idx = rel_path.rfind(marker)
    if idx < 0:
        # not part of the repro package (e.g. test fixtures): lint it —
        # fixtures exist precisely to exercise the rules.
        return True
    remainder = rel_path[idx + len(marker):]
    return remainder.split("/", 1)[0] in scope


def _in_determinism_scope(rel_path: str) -> bool:
    if any(rel_path.endswith(exempt) for exempt in DETERMINISM_EXEMPT):
        return False
    return _in_scope(rel_path, DETERMINISM_SCOPE)


def _in_aliasing_scope(rel_path: str) -> bool:
    return _in_scope(rel_path, ALIASING_SCOPE)


def _in_ordering_scope(rel_path: str) -> bool:
    if any(rel_path.endswith(exempt) for exempt in ORDERING_EXEMPT):
        return False
    return _in_scope(rel_path, ORDERING_SCOPE)


def _in_lifecycle_scope(rel_path: str) -> bool:
    return _in_scope(rel_path, LIFECYCLE_SCOPE)


def analyze_paths(
    paths: Sequence[str],
    registry: Optional[Dict[str, protocol.MessageKind]] = None,
    routed: Optional[Dict[str, protocol.MessageKind]] = None,
    check_coverage: bool = True,
    baseline: Optional[Sequence[Dict[str, str]]] = None,
    lints: Optional[Sequence[str]] = None,
) -> AnalysisResult:
    """Run the linters over ``paths`` (files or directories).

    ``registry``/``routed`` default to the live wire registry; tests pass
    miniature registries to pin down individual rules.  ``check_coverage``
    gates the whole-protocol checks (unhandled / unsent / dead kinds),
    which only make sense when the analyzed set covers every sender and
    handler — leave it off when linting a single file.  ``lints`` selects
    a subset of :data:`LINTS` (default: all four).
    """
    registry = protocol.REGISTRY if registry is None else registry
    routed = protocol.ROUTED if routed is None else routed
    baseline = baseline_mod.BASELINE if baseline is None else baseline
    selected = set(LINTS if lints is None else lints)
    unknown = selected - set(LINTS)
    if unknown:
        raise ValueError(f"unknown lint(s): {sorted(unknown)} (expected {LINTS})")

    sources: List[Tuple[str, str, ast.Module]] = []
    for filename in discover_files(paths):
        with open(filename, "r", encoding="utf-8") as handle:
            source = handle.read()
        tree = ast.parse(source, filename=filename)
        sources.append((_rel(filename), source, tree))

    modules = [collect_module(rel_path, tree) for rel_path, _, tree in sources]
    findings: List[Finding] = []
    if "protocol" in selected:
        findings.extend(
            lint_protocol(modules, registry, routed, check_coverage=check_coverage)
        )

    if "determinism" in selected:
        set_attrs = collect_set_attrs(tree for _, _, tree in sources)
        for rel_path, _, tree in sources:
            if _in_determinism_scope(rel_path):
                findings.extend(lint_determinism(rel_path, tree, set_attrs))

    if "aliasing" in selected:
        for module in modules:
            if _in_aliasing_scope(module.path):
                findings.extend(lint_aliasing(module))

    if "ordering" in selected:
        for module in modules:
            if _in_ordering_scope(module.path):
                findings.extend(lint_ordering(module))

    if "lifecycle" in selected:
        for module in modules:
            if _in_lifecycle_scope(module.path):
                findings.extend(lint_lifecycle(module))

    ignores_by_path = {rel_path: inline_ignores(source) for rel_path, source, _ in sources}
    result = AnalysisResult()
    unsuppressed: List[Finding] = []
    for finding in sorted(findings):
        if is_inline_suppressed(finding, ignores_by_path.get(finding.path, {})):
            result.suppressed.append(finding)
        else:
            unsuppressed.append(finding)
    result.active, result.accepted = split_baselined(unsuppressed, baseline)
    seen_keys = {finding.key for finding in findings}
    result.stale_baseline = [
        entry["key"] for entry in baseline if entry["key"] not in seen_keys
    ]
    return result


def _default_paths() -> List[str]:
    import repro

    return [os.path.dirname(os.path.abspath(repro.__file__))]


def _finding_dict(finding: Finding) -> Dict[str, object]:
    return {
        "rule": finding.rule,
        "file": finding.path,
        "line": finding.line,
        "message": finding.message,
        "context": finding.context,
        "key": finding.key,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "repro static analysis: protocol (repro-lint), determinism "
            "(repro-lint), cross-node aliasing (repro-san), event-ordering "
            "races (repro-race), and resource lifecycle (repro-leak)"
        ),
        epilog=(
            "exit codes: 0 — no active findings; 1 — active findings "
            "(suppressed/baselined ones never fail the gate; with "
            "--fail-on-new this is the only failure mode); 2 — usage error "
            "(unknown flag or --only value); 3 — stale baseline entries "
            "(a baseline key matched no finding — trim analysis/baseline.py; "
            "checked only on full runs: every lint selected, coverage on, "
            "no --fail-on-new)"
        ),
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to analyze (default: the repro package)",
    )
    parser.add_argument(
        "--only", choices=LINTS,
        metavar="{protocol,determinism,aliasing,ordering,lifecycle}",
        help="run a single analysis instead of all five",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format; json emits {findings, suppressed, accepted, ok} "
        "with rule/file/line per finding",
    )
    parser.add_argument(
        "--no-coverage", action="store_true",
        help="skip whole-protocol coverage checks (unhandled/unsent/dead "
        "kinds); use when analyzing a subset of the code",
    )
    parser.add_argument(
        "--fail-on-new", action="store_true",
        help="gate only findings absent from analysis/baseline.py: skip the "
        "stale-baseline check so branches that fix a baselined finding "
        "don't fail before the baseline is trimmed",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in sorted(RULES):
            print(f"{rule}: {RULES[rule]}")
        return 0

    paths = list(args.paths) or _default_paths()
    lints = None if args.only is None else (args.only,)
    result = analyze_paths(paths, check_coverage=not args.no_coverage, lints=lints)
    # The stale-baseline check only makes sense on full runs: with a lint
    # subset or coverage off, entries legitimately match nothing.
    check_stale = args.only is None and not args.no_coverage and not args.fail_on_new
    stale = result.stale_baseline if check_stale else []

    if args.format == "json":
        print(
            json.dumps(
                {
                    "findings": [_finding_dict(f) for f in result.active],
                    "suppressed": len(result.suppressed),
                    "accepted": len(result.accepted),
                    "stale_baseline": stale,
                    "ok": result.ok and not stale,
                },
                indent=2,
            )
        )
        if not result.ok:
            return 1
        return 3 if stale else 0

    for finding in result.active:
        print(finding.render())
    tail = (
        f"{len(result.active)} finding(s), "
        f"{len(result.suppressed)} suppressed inline, "
        f"{len(result.accepted)} accepted by baseline"
    )
    if result.active:
        print(f"repro-lint: FAIL — {tail}", file=sys.stderr)
        return 1
    if stale:
        for key in stale:
            print(f"stale baseline entry (no matching finding): {key}", file=sys.stderr)
        print(f"repro-lint: STALE BASELINE — {tail}", file=sys.stderr)
        return 3
    print(f"repro-lint: OK — {tail}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
