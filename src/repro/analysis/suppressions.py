"""Inline suppressions and the checked-in baseline.

Two escape hatches, both explicit and reviewable:

* an inline comment ``# repro-lint: ignore[rule-a,rule-b] reason`` on the
  flagged line (or on the line directly above it) suppresses those rules
  at that site; ``ignore[*]`` suppresses every rule.  The aliasing rules
  spell the tag ``# repro-san: ignore[...]``, the event-ordering rules
  ``# repro-race: ignore[...]``, and the lifecycle rules
  ``# repro-leak: ignore[...]`` — all four spellings are accepted for
  any rule;
* :data:`repro.analysis.baseline.BASELINE` lists accepted findings by
  their stable ``rule:path:context`` key, each with a written
  justification — for sites where an inline comment would be awkward
  (e.g. generated or idiom-critical lines).

Anything not covered by either mechanism is a hard failure of the
analysis gate.
"""

import re
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.analysis.findings import Finding

_IGNORE_RE = re.compile(r"#\s*repro-(?:lint|san|race|leak):\s*ignore\[([^\]]+)\]")


def inline_ignores(source: str) -> Dict[int, Set[str]]:
    """Map 1-based line number -> rule ids suppressed on that line."""
    ignores: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _IGNORE_RE.search(line)
        if match:
            rules = {part.strip() for part in match.group(1).split(",") if part.strip()}
            if rules:
                ignores[lineno] = rules
    return ignores


def is_inline_suppressed(finding: Finding, ignores: Dict[int, Set[str]]) -> bool:
    """True if an ignore comment on the line (or the line above) covers it."""
    for lineno in (finding.line, finding.line - 1):
        rules = ignores.get(lineno)
        if rules and (finding.rule in rules or "*" in rules):
            return True
    return False


def split_baselined(
    findings: Iterable[Finding], baseline: Sequence[Dict[str, str]]
) -> Tuple[List[Finding], List[Finding]]:
    """Partition findings into (active, accepted-by-baseline)."""
    accepted_keys = {entry["key"] for entry in baseline}
    active: List[Finding] = []
    accepted: List[Finding] = []
    for finding in findings:
        (accepted if finding.key in accepted_keys else active).append(finding)
    return active, accepted
