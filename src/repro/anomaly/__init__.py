"""Anomaly detection on top of MIND (Section 5).

Three pieces:

* :mod:`repro.anomaly.offline` — a centralized off-line detector playing
  the role of Lakhina et al.'s trace analysis: it scans the full aggregated
  trace and produces the ground-truth anomaly list MIND is checked against.
* :mod:`repro.anomaly.queries` — the paper's query templates (fanout >
  1500 for DoS/scans on Index-1, octets > 4,000,000 for alpha flows on
  Index-2, and the Index-3 covert-port template).
* :mod:`repro.anomaly.drilldown` — the programmatic drill-down loop a
  network operator would script: issue a coarse query, then progressively
  shrink the traffic volume around what comes back.
"""

from repro.anomaly.drilldown import DrillDownResult, drill_down
from repro.anomaly.offline import DetectedAnomaly, OfflineDetector
from repro.anomaly.queries import (
    alpha_flow_query,
    covert_port_query,
    fanout_query,
    monitors_in_results,
)

__all__ = [
    "DetectedAnomaly",
    "DrillDownResult",
    "OfflineDetector",
    "alpha_flow_query",
    "covert_port_query",
    "drill_down",
    "fanout_query",
    "monitors_in_results",
]
