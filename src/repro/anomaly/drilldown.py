"""Programmatic drill-down: progressively shrinking traffic volumes.

The paper imagines the operator (or a script) "programmatically querying
progressively smaller traffic volumes" once a coarse query flags a
potential anomaly.  :func:`drill_down` implements that loop against a
:class:`~repro.core.cluster.MindCluster`: it starts from a whole-window
query and then narrows the destination-prefix dimension around the hottest
responses until the result set is small enough to hand to trace analysis.
"""

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.cluster import MindCluster
from repro.core.query import RangeQuery
from repro.core.records import Record


@dataclass
class DrillDownStep:
    """One query of a drill-down session and what it returned."""

    query: RangeQuery
    records: int
    latency: float
    nodes_visited: int


@dataclass
class DrillDownResult:
    """Outcome of a drill-down session."""

    steps: List[DrillDownStep] = field(default_factory=list)
    final_records: List[Record] = field(default_factory=list)

    @property
    def total_latency(self) -> float:
        """Virtual time spent across every drill-down query."""
        return sum(s.latency for s in self.steps)

    @property
    def queries_issued(self) -> int:
        return len(self.steps)


def drill_down(
    cluster: MindCluster,
    initial: RangeQuery,
    origin: str,
    value_attribute: str,
    target_size: int = 20,
    max_depth: int = 6,
) -> DrillDownResult:
    """Narrow ``initial`` until at most ``target_size`` records remain.

    At each step the query keeps only the destination-prefix range that
    covers the hottest responses (by the anomaly attribute, e.g. fanout or
    octets), halving the prefix dimension around it.
    """
    result = DrillDownResult()
    query = initial
    for _ in range(max_depth):
        metric = cluster.query_now(query, origin=origin)
        records = metric.results
        result.steps.append(
            DrillDownStep(
                query=query,
                records=len(records),
                latency=metric.latency or 0.0,
                nodes_visited=metric.cost,
            )
        )
        result.final_records = records
        if len(records) <= target_size or not records:
            break
        query = _narrow(query, records, value_attribute)
        if query is None:
            break
    return result


def _narrow(query: RangeQuery, records: List[Record], value_attribute: str) -> Optional[RangeQuery]:
    """Halve the dest_prefix range around the record with the largest value.

    Returns ``None`` when the range can no longer shrink meaningfully.
    """
    hottest = max(records, key=lambda r: r.values[2])
    dest = hottest.values[0]
    lo, hi = query.interval("dest_prefix")
    lo = 0.0 if lo is None else lo
    hi = 2.0**32 if hi is None else hi
    width = (hi - lo) / 2.0
    if width < 65536.0:
        return None
    new_lo = max(lo, dest - width / 2.0)
    new_hi = new_lo + width
    ranges = {name: iv for name, iv in query.ranges}
    ranges["dest_prefix"] = (new_lo, new_hi)
    return RangeQuery(query.index, ranges)
