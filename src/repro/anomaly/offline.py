"""Centralized off-line anomaly detection over the full aggregated trace.

This module plays the role of the independently designed trace-analysis
algorithm (Lakhina et al. [14]) in the paper's Section 5 experiment: it has
global visibility of every aggregated flow record and flags

* **high-fanout episodes** — DoS attacks and port scans, where the number
  of short connection attempts toward a destination prefix in a window
  exceeds a threshold, and
* **alpha flows** — prefix pairs moving more than a volume threshold in a
  window.

Its output is the ground truth that MIND's distributed queries are scored
against (perfect recall in the paper).
"""

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.traffic.aggregation import AggregatedFlow


@dataclass(frozen=True)
class DetectedAnomaly:
    """One anomalous (window, destination prefix) episode."""

    kind: str                      # "fanout" (DoS/scan) or "alpha"
    window_start: float
    dst_prefix: int
    src_prefix: int
    magnitude: float               # fanout or octets
    monitors: Tuple[str, ...]      # which monitors observed it

    def five_minute_interval(self) -> Tuple[float, float]:
        """The enclosing 5-minute interval a monitoring query would use."""
        t0 = (self.window_start // 300.0) * 300.0
        return (t0, t0 + 300.0)


class OfflineDetector:
    """Threshold detector with global trace visibility."""

    def __init__(self, fanout_threshold: float = 1500.0, octets_threshold: float = 4_000_000.0) -> None:
        if fanout_threshold <= 0 or octets_threshold <= 0:
            raise ValueError("thresholds must be positive")
        self.fanout_threshold = fanout_threshold
        self.octets_threshold = octets_threshold

    def detect(self, aggregates: Iterable[AggregatedFlow]) -> List[DetectedAnomaly]:
        """Scan the trace; returns one anomaly per (window, prefix pair, kind).

        An anomalous flow crosses several monitors; observations of the
        same (window, src, dst) episode are merged and the monitor set
        recorded — the "exact set of network monitors which observed the
        anomalous traffic" that MIND returns as a by-product.
        """
        episodes: Dict[Tuple[str, float, int, int], Dict] = {}
        for agg in aggregates:
            if agg.fanout >= self.fanout_threshold:
                self._note(episodes, "fanout", agg, agg.fanout)
            if agg.octets >= self.octets_threshold:
                self._note(episodes, "alpha", agg, float(agg.octets))
        out = [
            DetectedAnomaly(
                kind=kind,
                window_start=window,
                dst_prefix=dst,
                src_prefix=src,
                magnitude=info["magnitude"],
                monitors=tuple(sorted(info["monitors"])),
            )
            for (kind, window, src, dst), info in episodes.items()
        ]
        out.sort(key=lambda a: (a.window_start, a.kind, a.dst_prefix, a.src_prefix))
        return out

    @staticmethod
    def _note(episodes: Dict, kind: str, agg: AggregatedFlow, magnitude: float) -> None:
        key = (kind, agg.window_start, agg.src_prefix, agg.dst_prefix)
        info = episodes.get(key)
        if info is None:
            info = {"magnitude": 0.0, "monitors": set()}
            episodes[key] = info
        info["magnitude"] = max(info["magnitude"], magnitude)
        info["monitors"].add(agg.monitor)
