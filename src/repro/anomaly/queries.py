"""Query templates for anomaly detection (Sections 4.1 and 5).

Each template builds a :class:`~repro.core.query.RangeQuery` over one of
the paper's three indices.  The Section 5 experiment issues exactly:

* on Index-1: *all flow records whose fanout is greater than 1500 within a
  specific 5-minute interval* (DoS attacks and port scans), and
* on Index-2: *all flow records whose total size is greater than 4,000,000
  within a specific 5-minute interval* (alpha flows).
"""

from typing import Iterable, List, Optional, Set, Tuple

from repro.core.query import RangeQuery
from repro.core.records import Record
from repro.traffic.prefixes import Prefix


def fanout_query(
    t0: float,
    duration_s: float = 300.0,
    fanout_min: float = 1500.0,
    dst_prefix: Optional[Prefix] = None,
    index: str = "index1",
) -> RangeQuery:
    """DoS / port-scan detection on Index-1."""
    ranges = {
        "timestamp": (t0, t0 + duration_s),
        "fanout": (fanout_min, None),
    }
    if dst_prefix is not None:
        ranges["dest_prefix"] = tuple(float(x) for x in dst_prefix.address_range())
    return RangeQuery(index, ranges)


def alpha_flow_query(
    t0: float,
    duration_s: float = 300.0,
    octets_min: float = 4_000_000.0,
    octets_max: Optional[float] = None,
    dst_prefix: Optional[Prefix] = None,
    index: str = "index2",
) -> RangeQuery:
    """Alpha-flow detection on Index-2 (at least O, or between O1 and O2)."""
    ranges = {
        "timestamp": (t0, t0 + duration_s),
        "octets": (octets_min, octets_max),
    }
    if dst_prefix is not None:
        ranges["dest_prefix"] = tuple(float(x) for x in dst_prefix.address_range())
    return RangeQuery(index, ranges)


def covert_port_query(
    t0: float,
    duration_s: float = 300.0,
    flow_size_min: float = 10_000.0,
    dst_prefix: Optional[Prefix] = None,
    index: str = "index3",
) -> RangeQuery:
    """Index-3 template: unexpectedly large per-connection traffic.

    Port filtering is applied to the payload of the returned records (the
    port is not an indexed dimension), see :func:`filter_by_port`.
    """
    ranges = {
        "timestamp": (t0, t0 + duration_s),
        "flow_size": (flow_size_min, None),
    }
    if dst_prefix is not None:
        ranges["dest_prefix"] = tuple(float(x) for x in dst_prefix.address_range())
    return RangeQuery(index, ranges)


def filter_by_port(records: Iterable[Record], ports: Set[int]) -> List[Record]:
    """Keep records whose payload destination port is in ``ports``."""
    return [r for r in records if r.payload.get("dst_port") in ports]


def monitors_in_results(records: Iterable[Record]) -> Tuple[str, ...]:
    """The set of monitors that observed the returned traffic.

    The paper highlights this by-product: for its two 19:55 DoS flows the
    returned tuples named the Abilene routers on the attack path.
    """
    return tuple(sorted({r.payload["node"] for r in records if "node" in r.payload}))
