"""Baseline querying-system architectures (Section 2.1).

The paper motivates MIND's distributed design against two alternatives —
query flooding (data stays at monitors, queries go everywhere) and a
centralized repository — and, in related work, against building range
search over a conventional DHT whose uniform hashing destroys data-space
locality.  All three are implemented here over the same simulated WAN so
the architecture-comparison ablation benchmark can measure them under
identical workloads.
"""

from repro.baselines.centralized import CentralizedSystem
from repro.baselines.dht import UniformHashSystem
from repro.baselines.flooding import QueryFloodingSystem

__all__ = ["CentralizedSystem", "QueryFloodingSystem", "UniformHashSystem"]
