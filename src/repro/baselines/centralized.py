"""Centralized architecture: one repository node holds every record.

Every monitor ships its summaries to the central server and every query is
answered there.  Queries are cheap in nodes-visited terms (one), but the
server and its access links carry the entire insertion volume — the
provisioning and redundancy problem Section 2.1 raises.

Local scans run on the same columnar vectorized store as MIND nodes
(``BaselineSystem(vectorized_store=...)``), so architecture ablations
compare routing strategies, not scan implementations.
"""

from typing import Dict

from repro.baselines.common import BaselineSystem
from repro.core.query import RangeQuery
from repro.core.records import Record


class CentralizedSystem(BaselineSystem):
    """All data and all queries go to one designated server node."""

    def _wire(self) -> None:
        self.server = self.nodes[0].address
        self._pending: Dict[str, Dict] = {}
        server_node = self.by_address[self.server]
        server_node.handlers["c_insert"] = self._on_server_insert
        server_node.handlers["c_query"] = self._on_server_query
        for node in self.nodes:
            node.handlers["c_insert_ack"] = self._on_insert_ack
            node.handlers["c_query_reply"] = self._on_query_reply

    # ------------------------------------------------------------------
    def _insert(self, record: Record, origin: str, callback) -> None:
        metric = self._new_insert_metric(origin)
        self._pending[metric.op_id] = {"metric": metric, "callback": callback}
        if origin == self.server:
            node = self.by_address[self.server]
            node.local_insert(record, lambda: self._finish_insert(metric.op_id))
        else:
            self.by_address[origin].send(
                self.server,
                "c_insert",
                {"op_id": metric.op_id, "origin": origin, "record": record.to_wire()},
                size_bytes=180,
            )

    def _on_server_insert(self, msg) -> None:
        payload = msg.payload
        record = Record.from_wire(payload["record"])
        server = self.by_address[self.server]
        server.local_insert(
            record,
            lambda: server.send(payload["origin"], "c_insert_ack", {"op_id": payload["op_id"]}),
        )

    def _on_insert_ack(self, msg) -> None:
        self._finish_insert(msg.payload["op_id"])

    def _finish_insert(self, op_id: str) -> None:
        pending = self._pending.pop(op_id, None)
        if pending is None:
            return
        metric = pending["metric"]
        metric.end = self.sim.now
        metric.success = True
        metric.hops = 0 if metric.origin == self.server else 1
        pending["callback"](metric)

    # ------------------------------------------------------------------
    def _query(self, query: RangeQuery, origin: str, callback) -> None:
        metric = self._new_query_metric(origin)
        self._pending[metric.op_id] = {"metric": metric, "callback": callback}
        if origin == self.server:
            self.by_address[self.server].local_query(
                query, lambda recs: self._finish_query(metric.op_id, recs)
            )
        else:
            self.by_address[origin].send(
                self.server,
                "c_query",
                {"op_id": metric.op_id, "origin": origin, "query": query.to_wire()},
            )

    def _on_server_query(self, msg) -> None:
        payload = msg.payload
        query = RangeQuery.from_wire(payload["query"])
        server = self.by_address[self.server]

        def done(records) -> None:
            server.send(
                payload["origin"],
                "c_query_reply",
                {"op_id": payload["op_id"], "records": [r.to_wire() for r in records]},
                size_bytes=150 + 120 * len(records),
            )

        server.local_query(query, done)

    def _on_query_reply(self, msg) -> None:
        records = [Record.from_wire(w) for w in msg.payload["records"]]
        self._finish_query(msg.payload["op_id"], records)

    def _finish_query(self, op_id: str, records) -> None:
        pending = self._pending.pop(op_id, None)
        if pending is None:
            return
        metric = pending["metric"]
        metric.end = self.sim.now
        metric.records = len(records)
        metric.record_keys = {r.key for r in records}
        metric.results = list(records)
        metric.complete = True
        metric.nodes_visited = {self.server} - {metric.origin}
        pending["callback"](metric)
