"""Shared machinery for the baseline architectures.

Each baseline deploys plain storage nodes (no overlay) on the same
simulated WAN as MIND, with the same DAC service model, so latency and
cost comparisons are apples-to-apples.
"""

import itertools
from typing import Callable, Dict, List, Sequence

from repro.core.metrics import InsertMetric, MetricsCollector, QueryMetric
from repro.core.query import RangeQuery
from repro.core.records import Record
from repro.core.schema import IndexSchema
from repro.net import protocol
from repro.net.message import Message
from repro.net.network import SimNetwork
from repro.net.topology import Site
from repro.sim.kernel import Simulator
from repro.storage.dac import DacConfig, DataAccessController
from repro.storage.memtable import TimePartitionedStore


class _HandlerRegistry(Dict[str, Callable[[Message], None]]):
    """``kind -> handler`` mapping that also maintains the owner's flat table.

    Keeps the ``node.handlers["kind"] = fn`` registration idiom (which the
    protocol linter walks) while every write lands in the dispatch table
    the per-message delivery path actually indexes.
    """

    __slots__ = ("_owner",)

    def __init__(self, owner: "BaselineNode") -> None:
        super().__init__()
        self._owner = owner

    def __setitem__(self, kind: str, handler: Callable[[Message], None]) -> None:
        super().__setitem__(kind, handler)
        self._owner._register(kind, handler)


class BaselineNode:
    """A storage node without overlay routing."""

    def __init__(
        self,
        sim: Simulator,
        network: SimNetwork,
        address: str,
        schema: IndexSchema,
        vectorized_store: bool = True,
    ) -> None:
        self.sim = sim
        self.network = network
        self.address = address
        self.schema = schema
        self.store = TimePartitionedStore(schema, vectorized=vectorized_store)
        self.dac = DataAccessController(sim, DacConfig())
        self.handlers: Dict[str, Callable[[Message], None]] = _HandlerRegistry(self)
        # Flat dispatch table indexed by ``Message.kind_id``; kinds outside
        # the wire registry fall back to the string-keyed overflow dict.
        self._dispatch_table: List[Callable[[Message], None]] = [None] * (protocol.NUM_KINDS + 1)
        self._dispatch_overflow: Dict[str, Callable[[Message], None]] = {}
        network.register(address, self._deliver)

    def _register(self, kind: str, handler: Callable[[Message], None]) -> None:
        kid = protocol.KIND_IDS.get(kind)
        if kid is None:
            # repro-leak: ignore[leak-op-state] bounded by registered kinds
            self._dispatch_overflow[kind] = handler
        else:
            self._dispatch_table[kid] = handler

    def _deliver(self, msg: Message) -> None:
        handler = self._dispatch_table[msg.kind_id]
        if handler is None:
            handler = self._dispatch_overflow.get(msg.kind)
            if handler is None:
                raise ValueError(f"{self.address}: unhandled baseline message {msg.kind!r}")
        handler(msg)

    def send(self, dst: str, kind: str, payload, size_bytes: int = 256) -> None:
        """Fire a message at another baseline node."""
        self.network.send(self.address, dst, kind, payload, size_bytes=size_bytes)

    def local_query(self, query: RangeQuery, done: Callable[[List[Record]], None]) -> None:
        """Evaluate a query against the local store via the DAC queue."""
        rect = query.normalized_rect(self.schema)
        time_dim = self.schema.time_dimension()
        t_range = None
        if time_dim is not None:
            lo, hi = query.interval(self.schema.attributes[time_dim].name)
            if lo is not None and hi is not None:
                t_range = (lo, hi)
        matches = self.store.query(rect, t_range)
        self.dac.submit(self.dac.query_cost(len(matches)), done, matches)

    def local_insert(self, record: Record, done: Callable[[], None]) -> None:
        """Store a record locally via the DAC queue."""
        self.dac.submit(self.dac.insert_cost(1), self._finish_insert, record, done)

    def _finish_insert(self, record: Record, done: Callable[[], None]) -> None:
        self.store.insert(record)
        done()


class BaselineSystem:
    """Base driver: deploys nodes, runs blocking insert/query helpers."""

    def __init__(
        self,
        sites: Sequence[Site],
        schema: IndexSchema,
        seed: int = 0,
        vectorized_store: bool = True,
    ) -> None:
        self.sim = Simulator(seed)
        self.schema = schema
        self.sites = {s.name: s for s in sites}
        self.network = SimNetwork(self.sim, self.sites)
        self.nodes = [
            BaselineNode(self.sim, self.network, s.name, schema, vectorized_store)
            for s in sites
        ]
        self.by_address = {n.address: n for n in self.nodes}
        self.metrics = MetricsCollector()
        self._op_counter = itertools.count(1)
        self._wire()

    def _wire(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def insert_now(self, record: Record, origin: str, timeout_s: float = 60.0) -> InsertMetric:
        """Insert and advance virtual time until the op completes."""
        done: List[InsertMetric] = []
        self._insert(record, origin, done.append)
        self.sim.run_until_predicate(lambda: bool(done), timeout=timeout_s)
        if not done:
            raise TimeoutError("baseline insert did not complete")
        self.metrics.inserts.append(done[0])
        return done[0]

    def query_now(self, query: RangeQuery, origin: str, timeout_s: float = 60.0) -> QueryMetric:
        """Query and advance virtual time until the result arrives."""
        done: List[QueryMetric] = []
        self._query(query, origin, done.append)
        self.sim.run_until_predicate(lambda: bool(done), timeout=timeout_s)
        if not done:
            raise TimeoutError("baseline query did not complete")
        self.metrics.queries.append(done[0])
        return done[0]

    def schedule_insert(self, record: Record, origin: str, at_time: float) -> None:
        """Enqueue an insertion at an absolute virtual time."""
        self.sim.schedule_at(at_time, self._insert, record, origin, self.metrics.inserts.append)

    def schedule_query(self, query: RangeQuery, origin: str, at_time: float) -> None:
        """Enqueue a query at an absolute virtual time."""
        self.sim.schedule_at(at_time, self._query, query, origin, self.metrics.queries.append)

    def advance(self, seconds: float) -> None:
        """Run the simulation forward by ``seconds``."""
        self.sim.run_until(self.sim.now + seconds)

    # ------------------------------------------------------------------
    def _insert(self, record: Record, origin: str, callback) -> None:
        raise NotImplementedError

    def _query(self, query: RangeQuery, origin: str, callback) -> None:
        raise NotImplementedError

    def _new_insert_metric(self, origin: str) -> InsertMetric:
        return InsertMetric(
            op_id=f"{origin}:{next(self._op_counter)}",
            index=self.schema.name,
            origin=origin,
            start=self.sim.now,
        )

    def _new_query_metric(self, origin: str) -> QueryMetric:
        return QueryMetric(
            op_id=f"{origin}:{next(self._op_counter)}",
            index=self.schema.name,
            origin=origin,
            start=self.sim.now,
        )
