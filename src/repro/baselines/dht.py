"""Uniform-hash DHT baseline: load-balanced storage, no locality.

Records hash uniformly onto nodes (as a conventional DHT would place
them), which balances storage for free — but a multi-dimensional *range*
query can say nothing about where matching records live, so it must
contact every node.  This is the contrast that motivates MIND's
locality-preserving embedding (Section 2.2's routing-structure decision
and the related-work discussion of DHT-based range search).

Local scans run on the same columnar vectorized store as MIND nodes
(``BaselineSystem(vectorized_store=...)``), so architecture ablations
compare routing strategies, not scan implementations.
"""

import hashlib
from typing import Dict, List

from repro.baselines.common import BaselineSystem
from repro.core.query import RangeQuery
from repro.core.records import Record


def _hash_to_index(key: int, buckets: int) -> int:
    digest = hashlib.sha256(str(key).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % buckets


class UniformHashSystem(BaselineSystem):
    """Hash-partitioned storage; range queries broadcast to all nodes."""

    def _wire(self) -> None:
        self._pending: Dict[str, Dict] = {}
        for node in self.nodes:
            node.handlers["h_store"] = self._make_store_handler(node)
            node.handlers["h_store_ack"] = self._on_store_ack
            node.handlers["h_query"] = self._make_query_handler(node)
            node.handlers["h_reply"] = self._on_reply

    def owner_of(self, record: Record) -> str:
        """The node a record hashes to (uniform, locality-free)."""
        return self.nodes[_hash_to_index(record.key, len(self.nodes))].address

    # ------------------------------------------------------------------
    def _insert(self, record: Record, origin: str, callback) -> None:
        metric = self._new_insert_metric(origin)
        self._pending[metric.op_id] = {"metric": metric, "callback": callback}
        owner = self.owner_of(record)
        if owner == origin:
            self.by_address[origin].local_insert(
                record, lambda: self._finish_insert(metric.op_id, hops=0)
            )
        else:
            self.by_address[origin].send(
                owner,
                "h_store",
                {"op_id": metric.op_id, "origin": origin, "record": record.to_wire()},
                size_bytes=180,
            )

    def _make_store_handler(self, node):
        def handler(msg) -> None:
            payload = msg.payload
            record = Record.from_wire(payload["record"])
            node.local_insert(
                record,
                lambda: node.send(payload["origin"], "h_store_ack", {"op_id": payload["op_id"]}),
            )

        return handler

    def _on_store_ack(self, msg) -> None:
        self._finish_insert(msg.payload["op_id"], hops=1)

    def _finish_insert(self, op_id: str, hops: int) -> None:
        pending = self._pending.pop(op_id, None)
        if pending is None:
            return
        metric = pending["metric"]
        metric.end = self.sim.now
        metric.success = True
        metric.hops = hops
        pending["callback"](metric)

    # ------------------------------------------------------------------
    def _query(self, query: RangeQuery, origin: str, callback) -> None:
        metric = self._new_query_metric(origin)
        qid = metric.op_id
        self._pending[qid] = {
            "metric": metric,
            "callback": callback,
            "awaiting": {n.address for n in self.nodes},
            "records": {},
        }
        node = self.by_address[origin]
        wire = query.to_wire()
        for other in self.nodes:
            if other.address != origin:
                node.send(other.address, "h_query", {"qid": qid, "origin": origin, "query": wire})
        node.local_query(query, lambda recs: self._absorb(qid, origin, recs))

    def _make_query_handler(self, node):
        def handler(msg) -> None:
            payload = msg.payload
            query = RangeQuery.from_wire(payload["query"])

            def done(records: List[Record]) -> None:
                node.send(
                    payload["origin"],
                    "h_reply",
                    {
                        "qid": payload["qid"],
                        "responder": node.address,
                        "records": [r.to_wire() for r in records],
                    },
                    size_bytes=150 + 120 * len(records),
                )

            node.local_query(query, done)

        return handler

    def _on_reply(self, msg) -> None:
        records = [Record.from_wire(w) for w in msg.payload["records"]]
        self._absorb(msg.payload["qid"], msg.payload["responder"], records)

    def _absorb(self, qid: str, responder: str, records: List[Record]) -> None:
        pending = self._pending.get(qid)
        if pending is None:
            return
        metric = pending["metric"]
        metric.nodes_visited.add(responder)
        for r in records:
            pending["records"][r.key] = r
        pending["awaiting"].discard(responder)
        if not pending["awaiting"]:
            del self._pending[qid]
            metric.end = self.sim.now
            metric.records = len(pending["records"])
            metric.record_keys = set(pending["records"])
            metric.results = list(pending["records"].values())
            metric.complete = True
            metric.nodes_visited.discard(metric.origin)
            pending["callback"](metric)
