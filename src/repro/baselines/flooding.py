"""Query-flooding architecture: data stays at monitors, queries go to all.

Insertions are free of network cost (a monitor stores its own summaries),
but every query is evaluated at every node — cheap storage, expensive and
poorly scaling queries under load, exactly the trade-off Section 2.1
describes.

Local scans run on the same columnar vectorized store as MIND nodes
(``BaselineSystem(vectorized_store=...)``), so architecture ablations
compare routing strategies, not scan implementations.
"""

from typing import Dict, List

from repro.baselines.common import BaselineNode, BaselineSystem
from repro.core.metrics import QueryMetric
from repro.core.query import RangeQuery
from repro.core.records import Record


class QueryFloodingSystem(BaselineSystem):
    """Flood each query to every monitor; answers return directly."""

    def _wire(self) -> None:
        self._pending: Dict[str, Dict] = {}
        for node in self.nodes:
            node.handlers["flood_query"] = self._make_query_handler(node)
            node.handlers["flood_reply"] = self._on_reply

    # ------------------------------------------------------------------
    def _insert(self, record: Record, origin: str, callback) -> None:
        metric = self._new_insert_metric(origin)
        node = self.by_address[origin]

        def done() -> None:
            metric.end = self.sim.now
            metric.success = True
            metric.hops = 0
            callback(metric)

        node.local_insert(record, done)

    def _query(self, query: RangeQuery, origin: str, callback) -> None:
        metric = self._new_query_metric(origin)
        qid = metric.op_id
        others = [n.address for n in self.nodes if n.address != origin]
        self._pending[qid] = {
            "metric": metric,
            "callback": callback,
            "awaiting": set(others) | {origin},
            "records": {},
        }
        wire = query.to_wire()
        node = self.by_address[origin]
        for addr in others:
            node.send(addr, "flood_query", {"qid": qid, "query": wire, "origin": origin})
        # The originator evaluates its own store too.
        node.local_query(query, lambda recs: self._absorb(qid, origin, recs))

    def _make_query_handler(self, node: BaselineNode):
        def handler(msg) -> None:
            query = RangeQuery.from_wire(msg.payload["query"])
            qid = msg.payload["qid"]
            origin = msg.payload["origin"]

            def done(records: List[Record]) -> None:
                node.send(
                    origin,
                    "flood_reply",
                    {"qid": qid, "responder": node.address, "records": [r.to_wire() for r in records]},
                    size_bytes=150 + 120 * len(records),
                )

            node.local_query(query, done)

        return handler

    def _on_reply(self, msg) -> None:
        payload = msg.payload
        records = [Record.from_wire(w) for w in payload["records"]]
        self._absorb(payload["qid"], payload["responder"], records)

    def _absorb(self, qid: str, responder: str, records: List[Record]) -> None:
        pending = self._pending.get(qid)
        if pending is None:
            return
        metric: QueryMetric = pending["metric"]
        metric.nodes_visited.add(responder)
        for r in records:
            pending["records"][r.key] = r
        pending["awaiting"].discard(responder)
        if not pending["awaiting"]:
            del self._pending[qid]
            metric.end = self.sim.now
            metric.records = len(pending["records"])
            metric.record_keys = set(pending["records"])
            metric.results = list(pending["records"].values())
            metric.complete = True
            metric.nodes_visited.discard(metric.origin)
            pending["callback"](metric)
