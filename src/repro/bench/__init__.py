"""Experiment harness helpers shared by the benchmark suite.

``workload`` turns generator output into timed, per-monitor index-record
streams and replays them into a cluster at the paper's timescales;
``stats`` provides the percentile/CDF/table formatting every benchmark
uses to print its paper-figure reproduction.
"""

from repro.bench.stats import cdf_points, format_row, format_table, summarize
from repro.bench.workload import TimedRecord, collect_aggregates, replay, timed_index_records

__all__ = [
    "TimedRecord",
    "cdf_points",
    "collect_aggregates",
    "format_row",
    "format_table",
    "replay",
    "summarize",
    "timed_index_records",
]
