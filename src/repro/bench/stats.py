"""Formatting and summary helpers for benchmark output."""

from typing import Dict, List, Sequence, Tuple

from repro.core.metrics import percentile


def summarize(samples: Sequence[float]) -> Dict[str, float]:
    """Median / mean / p90 / p99 / max of a sample set."""
    if not samples:
        raise ValueError("no samples to summarize")
    return {
        "count": len(samples),
        "median": percentile(samples, 50),
        "mean": sum(samples) / len(samples),
        "p90": percentile(samples, 90),
        "p99": percentile(samples, 99),
        "max": max(samples),
    }


def cdf_points(samples: Sequence[float], fractions: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99)) -> List[Tuple[float, float]]:
    """(fraction, value) points of the empirical CDF."""
    if not samples:
        raise ValueError("no samples")
    return [(f, percentile(samples, f * 100)) for f in fractions]


def failure_handling_summary(collector) -> Dict[str, int]:
    """Retry/failover counters of a :class:`MetricsCollector`.

    Thin adapter so benchmark scripts report failure handling through the
    same module as latency stats; keys are stable and land verbatim in
    ``BENCH_PERF.json``.
    """
    return collector.failure_handling()


def format_row(values: Sequence, widths: Sequence[int]) -> str:
    cells = []
    for value, width in zip(values, widths):
        if isinstance(value, float):
            text = f"{value:.3f}"
        else:
            text = str(value)
        cells.append(text.rjust(width))
    return "  ".join(cells)


def format_table(headers: Sequence[str], rows: Sequence[Sequence], min_width: int = 8) -> str:
    """A fixed-width text table (benchmarks print these to stdout)."""
    widths = [max(min_width, len(h)) for h in headers]
    for row in rows:
        for i, value in enumerate(row):
            text = f"{value:.3f}" if isinstance(value, float) else str(value)
            widths[i] = max(widths[i], len(text))
    lines = [format_row(headers, widths), format_row(["-" * w for w in widths], widths)]
    lines.extend(format_row(row, widths) for row in rows)
    return "\n".join(lines)
