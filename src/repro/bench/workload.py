"""Workload construction: from synthetic flows to timed index records.

The paper replays flow records "at the same timescales as they would have
been inserted into the real network: a few filtered flow records from each
MIND node every 30 seconds".  :func:`timed_index_records` builds exactly
that schedule; :func:`replay` maps record time onto simulation time and
enqueues the insertions on a cluster.
"""

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.cluster import MindCluster
from repro.core.records import Record
from repro.traffic.aggregation import AggregationConfig, AggregatedFlow, aggregate_flows
from repro.traffic.generator import BackboneTrafficGenerator
from repro.traffic.indices import index1_records, index2_records, index3_records

RECORD_BUILDERS: Dict[str, Callable[[Iterable[AggregatedFlow]], List[Record]]] = {
    "index1": index1_records,
    "index2": index2_records,
    "index3": index3_records,
}


@dataclass(frozen=True)
class TimedRecord:
    """One index record with its insertion time and originating monitor."""

    at: float          # absolute trace time (day*86400 + time of day)
    origin: str
    index: str
    record: Record


def _align(start_s: float, duration_s: float, window_s: float) -> Tuple[float, float]:
    """Snap a trace period onto the aggregation window grid.

    Generation windows and aggregation windows must share boundaries, or a
    burst generated in one window is split across two aggregates (halving
    fanout counts and the like).
    """
    aligned = (start_s // window_s) * window_s
    return aligned, duration_s + (start_s - aligned)


def collect_aggregates(
    generator: BackboneTrafficGenerator,
    day: int,
    start_s: float,
    duration_s: float,
    window_s: float = 30.0,
    monitors: Optional[Sequence[str]] = None,
    agg_config: Optional[AggregationConfig] = None,
) -> List[AggregatedFlow]:
    """All aggregated flow records for a trace period (for ground truth)."""
    cfg = agg_config or AggregationConfig(window_s=window_s)
    start_s, duration_s = _align(start_s, duration_s, window_s)
    out: List[AggregatedFlow] = []
    for batch in generator.generate(day, start_s, duration_s, window_s, monitors):
        out.extend(aggregate_flows(batch, cfg))
    return out


def timed_index_records(
    generator: BackboneTrafficGenerator,
    day: int,
    start_s: float,
    duration_s: float,
    indices: Sequence[str] = ("index1", "index2", "index3"),
    window_s: float = 30.0,
    monitors: Optional[Sequence[str]] = None,
    agg_config: Optional[AggregationConfig] = None,
    thresholds: Optional[Dict[str, float]] = None,
) -> List[TimedRecord]:
    """The paper's insertion schedule for a trace period.

    Each monitor's window is aggregated and filtered independently; the
    surviving records are stamped for insertion at the window's end (when
    the monitor has finished observing it).  ``thresholds`` overrides the
    per-index filter minimum (paper defaults otherwise); benchmarks use it
    to hit a documented record volume at simulation scale.
    """
    unknown = set(indices) - set(RECORD_BUILDERS)
    if unknown:
        raise KeyError(f"unknown indices: {sorted(unknown)}")
    cfg = agg_config or AggregationConfig(window_s=window_s)
    start_s, duration_s = _align(start_s, duration_s, window_s)
    thresholds = thresholds or {}
    timed: List[TimedRecord] = []
    for batch in generator.generate(day, start_s, duration_s, window_s, monitors):
        if not batch:
            continue
        origin = batch[0].monitor
        aggregates = aggregate_flows(batch, cfg)
        insert_at = (min(f.start for f in batch) // window_s) * window_s + window_s
        for index in indices:
            builder = RECORD_BUILDERS[index]
            if index in thresholds:
                records = builder(aggregates, thresholds[index])
            else:
                records = builder(aggregates)
            for record in records:
                timed.append(TimedRecord(at=insert_at, origin=origin, index=index, record=record))
    timed.sort(key=lambda t: t.at)
    return timed


def replay(
    cluster: MindCluster,
    timed: Sequence[TimedRecord],
    trace_start: Optional[float] = None,
    time_scale: float = 1.0,
    spread_s: float = 5.0,
) -> Tuple[float, float]:
    """Schedule timed records onto the cluster.

    Trace time ``trace_start`` maps to the cluster's current virtual time;
    ``time_scale`` < 1 compresses the replay.  Records that share a window
    boundary are spread over ``spread_s`` seconds, as real monitors would
    not emit at the exact same instant.  Returns the (sim start, sim end)
    of the replay window.
    """
    if not timed:
        raise ValueError("empty workload")
    base = trace_start if trace_start is not None else timed[0].at
    sim_base = cluster.sim.now
    spread_rng = cluster.sim.rng("bench.replay")
    end = sim_base
    for item in timed:
        offset = (item.at - base) * time_scale
        if offset < 0:
            raise ValueError("record predates trace_start")
        at = sim_base + offset + spread_rng.random() * spread_s
        cluster.schedule_insert(item.index, item.record, item.origin, at)
        end = max(end, at)
    return sim_base, end
