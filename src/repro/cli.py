"""Command-line interface: quick looks at the MIND reproduction.

Usage::

    python -m repro.cli overlay --nodes 16 --seed 3
    python -m repro.cli traffic --network abilene --minutes 5
    python -m repro.cli demo --seed 7
    python -m repro.cli anomaly --seed 21

Each subcommand runs a self-contained simulation and prints a short
report; they are the "kick the tires" entry points for a new user (the
examples/ scripts tell the fuller stories).
"""

import argparse
import sys
from typing import List, Optional

from repro.bench.stats import format_table


def cmd_overlay(args: argparse.Namespace) -> int:
    """Build an overlay and print the code assignment."""
    from repro.core.cluster import ClusterConfig, MindCluster

    cluster = MindCluster(args.nodes, ClusterConfig(seed=args.seed))
    cluster.build()
    rows = [[address, bits, len(bits)] for address, bits in sorted(cluster.node_codes().items())]
    print(format_table(["node", "code", "bits"], rows))
    lengths = [len(bits) for _, bits in cluster.node_codes().items()]
    print(f"\n{args.nodes} nodes; code lengths {min(lengths)}-{max(lengths)} "
          f"(balanced hypercube ~ log2(N) = {args.nodes.bit_length() - 1})")
    return 0


def cmd_traffic(args: argparse.Namespace) -> int:
    """Generate synthetic backbone traffic and summarize the three indices."""
    from repro.net.topology import ABILENE_SITES, GEANT_SITES, backbone_sites
    from repro.traffic.aggregation import aggregate_flows
    from repro.traffic.generator import BackboneTrafficGenerator, TrafficConfig
    from repro.traffic.indices import index1_records, index2_records, index3_records

    sites = {
        "abilene": ABILENE_SITES,
        "geant": GEANT_SITES,
        "both": backbone_sites(),
    }[args.network]
    gen = BackboneTrafficGenerator(sites, TrafficConfig(seed=args.seed))
    flows, aggregates = 0, []
    for batch in gen.generate(0, 43200.0, args.minutes * 60.0, 30.0):
        flows += len(batch)
        aggregates.extend(aggregate_flows(batch))
    rows = [
        ["raw sampled flows", flows],
        ["aggregated records", len(aggregates)],
        ["Index-1 (fanout >= 16)", len(index1_records(aggregates))],
        ["Index-2 (octets >= 80 KB)", len(index2_records(aggregates))],
        ["Index-3 (flow size >= 1.5 KB)", len(index3_records(aggregates))],
    ]
    print(format_table(["stage", "records"], rows))
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    """Insert and range-query on an Abilene-shaped deployment."""
    from repro.core.cluster import ClusterConfig, MindCluster
    from repro.core.query import RangeQuery
    from repro.core.records import Record
    from repro.net.topology import ABILENE_SITES
    from repro.traffic.indices import index2_schema

    cluster = MindCluster(ABILENE_SITES, ClusterConfig(seed=args.seed))
    cluster.build()
    cluster.create_index(index2_schema(86400.0), replication=1)
    record = Record(
        [0x80100000, 615.0, 5_500_000.0],
        payload={"source_prefix": 0x80010000, "node": "NYCM"},
    )
    insert = cluster.insert_now("index2", record, origin="NYCM")
    query = RangeQuery("index2", {"octets": (4_000_000, None), "timestamp": (600, 900)})
    result = cluster.query_now(query, origin="ATLA")
    print(f"insert: {insert.hops} hops, {insert.latency * 1e3:.0f} ms")
    print(f"query:  {result.records} record(s), {result.latency * 1e3:.0f} ms, "
          f"{result.cost} node(s) visited, complete={result.complete}")
    return 0 if result.complete and result.records == 1 else 1


def cmd_anomaly(args: argparse.Namespace) -> int:
    """Inject a DoS attack, detect it with the paper's Index-1 query."""
    from repro.anomaly.queries import fanout_query, monitors_in_results
    from repro.bench.workload import replay, timed_index_records
    from repro.core.cluster import ClusterConfig, MindCluster
    from repro.net.topology import ABILENE_SITES
    from repro.traffic.anomalies import DoSEvent
    from repro.traffic.generator import BackboneTrafficGenerator, TrafficConfig
    from repro.traffic.indices import index1_schema

    gen = BackboneTrafficGenerator(ABILENE_SITES, TrafficConfig(seed=args.seed))
    pool = gen.pools["abilene"]
    dos = DoSEvent("cli-dos", 36000.0, 120.0, pool.prefixes[10], pool.prefixes[11],
                   ("CHIN", "IPLS"), attempts_per_window=3000)
    gen.anomalies.append(dos)

    cluster = MindCluster(ABILENE_SITES, ClusterConfig(seed=args.seed + 1))
    cluster.build()
    cluster.create_index(index1_schema(86400.0))
    # Window-aligned trace start so aggregation windows line up.
    timed = timed_index_records(gen, 0, 35880.0, 420.0, indices=("index1",))
    start, end = replay(cluster, timed)
    cluster.advance((end - start) + 60.0)

    result = cluster.query_now(fanout_query(36000.0, 300.0), origin="WASH")
    monitors = monitors_in_results(result.results)
    print(f"fanout > 1500 in [36000, 36300): {result.records} records "
          f"in {result.latency:.2f}s")
    print(f"attack observed at: {monitors}")
    return 0 if set(dos.monitors) <= set(monitors) else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli", description="MIND reproduction — quick experiments"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("overlay", help="build a hypercube overlay, print codes")
    p.add_argument("--nodes", type=int, default=16)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_overlay)

    p = sub.add_parser("traffic", help="summarize synthetic backbone traffic")
    p.add_argument("--network", choices=["abilene", "geant", "both"], default="abilene")
    p.add_argument("--minutes", type=float, default=5.0)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_traffic)

    p = sub.add_parser("demo", help="insert + range query round trip")
    p.add_argument("--seed", type=int, default=7)
    p.set_defaults(func=cmd_demo)

    p = sub.add_parser("anomaly", help="inject a DoS and detect it")
    p.add_argument("--seed", type=int, default=21)
    p.set_defaults(func=cmd_anomaly)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
