"""MIND core: multi-dimensional indices on the hypercube overlay.

This package implements the paper's primary contribution (Sections 3.4-3.7):

* index schemas over multi-attribute flow records (``schema``, ``records``),
* multi-dimensional range queries (``query``),
* the locality-preserving data-space embedding with even and
  histogram-balanced cuts (``cuts``, ``embedding``),
* sparse multi-dimensional histograms and the Appendix-A mismatch metric
  (``histogram``),
* replica placement on hypercube neighbors (``replication``),
* the MIND node (overlay + index + storage composition, ``mind_node``) and
* the cluster driver used by examples, tests and benchmarks (``cluster``).
"""

from repro.core.balance import (
    balanced_embedding,
    histogram_from_records,
    next_day_embedding,
    recommended_granularity,
)
from repro.core.cluster import ClusterConfig, MindCluster
from repro.core.cuts import BalancedCuts, EvenCuts
from repro.core.embedding import Embedding
from repro.core.histogram import MultiDimHistogram, mismatch
from repro.core.metrics import InsertMetric, MetricsCollector, QueryMetric
from repro.core.mind_node import MindConfig, MindNode
from repro.core.query import RangeQuery
from repro.core.records import Record
from repro.core.replication import FULL_REPLICATION, replica_targets
from repro.core.schema import AttributeSpec, IndexSchema

__all__ = [
    "AttributeSpec",
    "BalancedCuts",
    "balanced_embedding",
    "ClusterConfig",
    "Embedding",
    "EvenCuts",
    "FULL_REPLICATION",
    "IndexSchema",
    "InsertMetric",
    "MetricsCollector",
    "MindCluster",
    "MindConfig",
    "MindNode",
    "MultiDimHistogram",
    "QueryMetric",
    "RangeQuery",
    "Record",
    "histogram_from_records",
    "mismatch",
    "next_day_embedding",
    "recommended_granularity",
    "replica_targets",
]
