"""Convenience API for building balanced-cut embeddings.

The paper's operators compute balanced cuts off-line from a day of records
and install them (Section 3.7).  These helpers package that workflow:
choose a sensible per-dimension histogram granularity for a schema, build
the histogram from records, and produce the embedding — used by the
examples, the benchmarks and (via :func:`next_day_embedding`) the daily
re-versioning loop.
"""

from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.core.cuts import BalancedCuts
from repro.core.embedding import Embedding
from repro.core.histogram import MultiDimHistogram
from repro.core.query import NormRect, full_rect
from repro.core.records import Record
from repro.core.schema import IndexSchema

#: Granularity heuristics per attribute role: addresses need /16-level
#: resolution (their occupied span is a sliver of 2^32), timestamps need
#: bins finer than the trace slices being balanced, scalar attributes are
#: smooth enough for coarse bins.
ADDRESS_GRAINS = 65536
TIME_GRAINS = 8192
SCALAR_GRAINS = 64
_ADDRESS_DOMAIN = 2.0**31  # anything with a domain this large is address-like


def recommended_granularity(schema: IndexSchema) -> Tuple[int, ...]:
    """Per-dimension histogram granularity suited to a schema."""
    grains = []
    for attr in schema.attributes:
        if attr.is_time:
            grains.append(TIME_GRAINS)
        elif (attr.hi - attr.lo) >= _ADDRESS_DOMAIN:
            grains.append(ADDRESS_GRAINS)
        else:
            grains.append(SCALAR_GRAINS)
    return tuple(grains)


def histogram_from_records(
    schema: IndexSchema,
    records: Iterable[Record],
    granularity: Optional[Sequence[int]] = None,
    vectorized: bool = True,
) -> MultiDimHistogram:
    """Histogram a record sample in the schema's normalized space.

    The default path normalizes the whole sample with
    :meth:`IndexSchema.normalize_batch` and bins it with one
    :meth:`MultiDimHistogram.add_batch` call; ``vectorized=False`` keeps
    the original per-record loop as the equivalence-test ground truth.
    """
    grains = tuple(granularity) if granularity is not None else recommended_granularity(schema)
    hist = MultiDimHistogram(schema.dimensions, grains, vectorized=vectorized)
    if vectorized:
        values = [record.values for record in records]
        if values:
            hist.add_batch(schema.normalize_batch(values))
        return hist
    for record in records:
        hist.add(schema.normalize(record.values))
    return hist


def derive_cut_tree(
    histogram: MultiDimHistogram,
    depth: int,
    rect: Optional[NormRect] = None,
    vectorized: bool = True,
) -> Dict[str, float]:
    """The complete balanced-cut tree to ``depth``, keyed by code prefix.

    Walks the cut tree breadth-first, computing each cut as the
    histogram-weighted median of the rectangle being split (cycling
    through the dimensions like the embedding does).  Every median is one
    array pass over the occupied cells when ``vectorized`` is set;
    ``vectorized=False`` forces the scalar per-cell reference path.  The
    result can seed :meth:`Embedding.preload_splits` so repeated
    point-code descents never recompute a cut.
    """
    if depth < 0:
        raise ValueError("depth must be >= 0")
    dims = histogram.dimensions
    was_vectorized = histogram.vectorized
    histogram.vectorized = vectorized
    try:
        cuts: Dict[str, float] = {}
        frontier = [("", rect if rect is not None else full_rect(dims))]
        for level in range(depth):
            dim = level % dims
            next_frontier = []
            for prefix, node_rect in frontier:
                split = histogram.split_point(node_rect, dim)
                lo, hi = node_rect[dim]
                if not lo < split < hi:
                    split = (lo + hi) / 2.0
                cuts[prefix] = split
                left = node_rect[:dim] + ((lo, split),) + node_rect[dim + 1 :]
                right = node_rect[:dim] + ((split, hi),) + node_rect[dim + 1 :]
                next_frontier.append((prefix + "0", left))
                next_frontier.append((prefix + "1", right))
            frontier = next_frontier
        return cuts
    finally:
        histogram.vectorized = was_vectorized


def balanced_embedding(
    schema: IndexSchema,
    records: Iterable[Record],
    granularity: Optional[Sequence[int]] = None,
    code_depth: int = 16,
) -> Embedding:
    """A balanced-cut embedding derived from a record sample."""
    hist = histogram_from_records(schema, records, granularity)
    return Embedding(schema, BalancedCuts(hist), code_depth=code_depth)


def next_day_embedding(
    schema: IndexSchema,
    histogram: MultiDimHistogram,
    day_s: float = 86400.0,
    code_depth: int = 16,
) -> Embedding:
    """Tomorrow's embedding from today's histogram.

    The histogram's timestamp dimension is advanced by one day before
    deriving the cuts — stationarity is a property of the traffic *mix*;
    the clock still moves (Section 3.7's daily versioning).
    """
    time_dim = schema.time_dimension()
    if time_dim is None:
        shifted = histogram
    else:
        horizon = schema.attributes[time_dim].hi - schema.attributes[time_dim].lo
        shifted = histogram.shifted(time_dim, day_s / horizon)
    return Embedding(schema, BalancedCuts(shifted), code_depth=code_depth)
