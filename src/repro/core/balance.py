"""Convenience API for building balanced-cut embeddings.

The paper's operators compute balanced cuts off-line from a day of records
and install them (Section 3.7).  These helpers package that workflow:
choose a sensible per-dimension histogram granularity for a schema, build
the histogram from records, and produce the embedding — used by the
examples, the benchmarks and (via :func:`next_day_embedding`) the daily
re-versioning loop.
"""

from typing import Iterable, Optional, Sequence, Tuple

from repro.core.cuts import BalancedCuts
from repro.core.embedding import Embedding
from repro.core.histogram import MultiDimHistogram
from repro.core.records import Record
from repro.core.schema import IndexSchema

#: Granularity heuristics per attribute role: addresses need /16-level
#: resolution (their occupied span is a sliver of 2^32), timestamps need
#: bins finer than the trace slices being balanced, scalar attributes are
#: smooth enough for coarse bins.
ADDRESS_GRAINS = 65536
TIME_GRAINS = 8192
SCALAR_GRAINS = 64
_ADDRESS_DOMAIN = 2.0**31  # anything with a domain this large is address-like


def recommended_granularity(schema: IndexSchema) -> Tuple[int, ...]:
    """Per-dimension histogram granularity suited to a schema."""
    grains = []
    for attr in schema.attributes:
        if attr.is_time:
            grains.append(TIME_GRAINS)
        elif (attr.hi - attr.lo) >= _ADDRESS_DOMAIN:
            grains.append(ADDRESS_GRAINS)
        else:
            grains.append(SCALAR_GRAINS)
    return tuple(grains)


def histogram_from_records(
    schema: IndexSchema,
    records: Iterable[Record],
    granularity: Optional[Sequence[int]] = None,
) -> MultiDimHistogram:
    """Histogram a record sample in the schema's normalized space."""
    grains = tuple(granularity) if granularity is not None else recommended_granularity(schema)
    hist = MultiDimHistogram(schema.dimensions, grains)
    for record in records:
        hist.add(schema.normalize(record.values))
    return hist


def balanced_embedding(
    schema: IndexSchema,
    records: Iterable[Record],
    granularity: Optional[Sequence[int]] = None,
    code_depth: int = 16,
) -> Embedding:
    """A balanced-cut embedding derived from a record sample."""
    hist = histogram_from_records(schema, records, granularity)
    return Embedding(schema, BalancedCuts(hist), code_depth=code_depth)


def next_day_embedding(
    schema: IndexSchema,
    histogram: MultiDimHistogram,
    day_s: float = 86400.0,
    code_depth: int = 16,
) -> Embedding:
    """Tomorrow's embedding from today's histogram.

    The histogram's timestamp dimension is advanced by one day before
    deriving the cuts — stationarity is a property of the traffic *mix*;
    the clock still moves (Section 3.7's daily versioning).
    """
    time_dim = schema.time_dimension()
    if time_dim is None:
        shifted = histogram
    else:
        horizon = schema.attributes[time_dim].hi - schema.attributes[time_dim].lo
        shifted = histogram.shifted(time_dim, day_s / horizon)
    return Embedding(schema, BalancedCuts(shifted), code_depth=code_depth)
