"""Cluster driver: deploy, drive and measure a MIND overlay.

:class:`MindCluster` is the experiment harness used by the examples, tests
and benchmarks.  It owns the simulation kernel, the WAN model, a set of
:class:`~repro.core.mind_node.MindNode` instances placed at physical sites,
and a :class:`~repro.core.metrics.MetricsCollector`.  It offers both a
blocking convenience API (``insert_now`` / ``query_now`` advance virtual
time until the operation completes) and a scheduling API for replaying
timed workloads (``schedule_insert`` / ``schedule_query`` + ``advance``).
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Union

from repro.core.metrics import InsertMetric, MetricsCollector, QueryMetric
from repro.core.mind_node import MindConfig, MindNode
from repro.core.query import RangeQuery
from repro.core.records import Record
from repro.core.schema import IndexSchema
from repro.net.failures import FailureInjector
from repro.net.latency import LatencyModel
from repro.net.network import SimNetwork
from repro.net.topology import Site
from repro.overlay.node import OverlayConfig
from repro.sim.kernel import Simulator


@dataclass
class ClusterConfig:
    """Deployment-wide configuration."""

    seed: int = 0
    overlay: OverlayConfig = field(default_factory=OverlayConfig)
    mind: MindConfig = field(default_factory=MindConfig)
    latency: LatencyModel = field(default_factory=LatencyModel)
    bandwidth_bps: float = 10e6
    record_link_delays: bool = False
    #: Per-link bound on retained delay samples (None = unbounded).
    link_delay_sample_cap: Optional[int] = 8192
    #: Block size for vectorized network-latency jitter draws (0 = exact
    #: per-message stdlib draws; the scale perf tier opts in).
    latency_draw_block: int = 0
    #: Link-level delivery coalescing window in seconds (0 = one delivery
    #: event per message; the scale perf tier opts in).  See
    #: :class:`repro.net.network.SimNetwork`.
    coalesce_window_s: float = 0.0
    #: Fraction of nodes that are pathologically slow (overloaded PlanetLab
    #: hosts) and their slowdown factor.
    slow_node_fraction: float = 0.08
    slow_factor: float = 6.0
    #: Keep a central copy of every inserted record for ground-truth recall
    #: evaluation (Figure 16 and the anomaly experiments).
    track_ground_truth: bool = False


class MindCluster:
    """A deployed MIND system under simulation."""

    def __init__(
        self,
        sites: Union[int, Sequence[Site]],
        config: Optional[ClusterConfig] = None,
        calendar_queue: bool = True,
    ) -> None:
        self.config = config or ClusterConfig()
        self.sim = Simulator(self.config.seed, calendar_queue=calendar_queue)

        if isinstance(sites, int):
            # Local-cluster deployment (the paper's robustness experiment):
            # all instances co-located, LAN latencies.
            self.sites: Dict[str, Site] = {}
            addresses = [f"node{i:03d}" for i in range(sites)]
        else:
            self.sites = {site.name: site for site in sites}
            addresses = [site.name for site in sites]

        self.network = SimNetwork(
            self.sim,
            self.sites,
            latency_model=self.config.latency,
            bandwidth_bps=self.config.bandwidth_bps,
            record_link_delays=self.config.record_link_delays,
            link_delay_sample_cap=self.config.link_delay_sample_cap,
            draw_block=self.config.latency_draw_block,
            coalesce_window_s=self.config.coalesce_window_s,
        )
        speed_rng = self.sim.rng("cluster.speed")
        self.nodes: List[MindNode] = []
        for address in addresses:
            slow = speed_rng.random() < self.config.slow_node_fraction
            node = MindNode(
                self.sim,
                self.network,
                address,
                config=self.config.overlay,
                mind_config=self.config.mind,
                speed_factor=self.config.slow_factor if slow else 1.0,
            )
            node.bootstrap_provider = self._bootstrap_for
            self.nodes.append(node)
        self.by_address: Dict[str, MindNode] = {n.address: n for n in self.nodes}

        self.failures = FailureInjector(
            self.sim,
            self.network,
            on_crash=lambda addr: self.by_address[addr].crash(),
            on_restore=lambda addr: self.by_address[addr].restore(),
        )
        self.metrics = MetricsCollector()
        self._bootstrap_rng = self.sim.rng("cluster.bootstrap")
        self.ground_truth: Dict[str, List[Record]] = {}

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------
    def _bootstrap_for(self, joiner: str) -> Optional[str]:
        candidates = sorted(
            node.address
            for node in self.nodes
            if node.in_overlay() and node.address != joiner and self.network.is_node_up(node.address)
        )
        if not candidates:
            return None
        return self._bootstrap_rng.choice(candidates)

    def build(self, join_timeout_s: float = 600.0) -> None:
        """Bring every node into the overlay (serialized joins)."""
        self.nodes[0].activate_as_root()
        for node in self.nodes[1:]:
            bootstrap = self._bootstrap_for(node.address)
            node.start_join(bootstrap)
            ok = self.sim.run_until_predicate(node.in_overlay, timeout=join_timeout_s)
            if not ok:
                raise RuntimeError(f"{node.address} failed to join within {join_timeout_s}s")

    def live_nodes(self) -> List[MindNode]:
        return [n for n in self.nodes if n.in_overlay() and self.network.is_node_up(n.address)]

    def node_codes(self) -> Dict[str, str]:
        return {n.address: n.code.bits for n in self.live_nodes()}

    # ------------------------------------------------------------------
    # Index lifecycle
    # ------------------------------------------------------------------
    def create_index(
        self,
        schema: IndexSchema,
        strategy=None,
        replication: int = 0,
        origin: Optional[str] = None,
        settle_timeout_s: float = 300.0,
        settle_poll_events: int = 1,
    ) -> None:
        """Create an index from ``origin`` and wait for the flood to settle.

        ``settle_poll_events`` thins the full-cluster settle scan to every
        N processed events — at 1000 nodes the per-event scan dominates
        the flood itself.  Settle time then overshoots by up to N events,
        so timing-pinned scenarios (the kernel digest) keep the default.
        """
        node = self.by_address[origin] if origin else self.nodes[0]
        node.create_index(schema, strategy=strategy, replication=replication)
        ok = self.sim.run_until_predicate(
            lambda: all(n.has_index(schema.name) for n in self.live_nodes()),
            timeout=settle_timeout_s,
            poll_events=settle_poll_events,
        )
        if not ok:
            raise RuntimeError(f"index {schema.name} did not propagate to all nodes")
        if self.config.track_ground_truth:
            self.ground_truth.setdefault(schema.name, [])

    def install_version(
        self,
        index: str,
        valid_from: float,
        embedding,
        origin: Optional[str] = None,
        settle_timeout_s: float = 300.0,
    ) -> None:
        """Install a new daily embedding version and wait for propagation."""
        node = self.by_address[origin] if origin else self.nodes[0]
        node.install_version(index, valid_from, embedding)
        ok = self.sim.run_until_predicate(
            lambda: all(n.has_version_at(index, valid_from) for n in self.live_nodes()),
            timeout=settle_timeout_s,
        )
        if not ok:
            raise RuntimeError(f"version for {index} did not propagate")

    def rebalance_daily(
        self,
        index: str,
        day_start: float,
        collector: Optional[str] = None,
        granularity: Optional[Sequence[int]] = None,
        timeout_s: float = 300.0,
    ) -> None:
        """Run one cycle of the paper's daily load-balancing loop.

        A designated node collects the per-node histograms of the day that
        just ended (``[day_start - 86400, day_start)``), derives balanced
        cuts for the new day (timestamp dimension shifted forward), and
        installs them as the version taking effect at ``day_start``.
        """
        from repro.core.balance import next_day_embedding, recommended_granularity

        node = self.by_address[collector] if collector else self.nodes[0]
        schema = node.indices[index].schema
        grains = tuple(granularity) if granularity else recommended_granularity(schema)
        merged = []
        node.collect_histogram(
            index,
            granularity=grains,
            time_range=(day_start - 86400.0, day_start),
            expected_replies=len(self.live_nodes()),
            callback=merged.append,
            timeout_s=timeout_s / 2.0,
        )
        ok = self.sim.run_until_predicate(lambda: bool(merged), timeout=timeout_s)
        if not ok:
            raise RuntimeError(f"histogram collection for {index} did not complete")
        embedding = next_day_embedding(schema, merged[0])
        self.install_version(index, day_start, embedding, origin=node.address)

    # ------------------------------------------------------------------
    # Operations — scheduling API (timed workload replay)
    # ------------------------------------------------------------------
    def schedule_insert(self, index: str, record: Record, origin: str, at_time: float) -> None:
        """Replay-style insertion at an absolute virtual time."""
        self.sim.schedule_at(at_time, self._do_insert, index, record, origin)

    def _do_insert(self, index: str, record: Record, origin: str) -> None:
        node = self.by_address[origin]
        if not node.in_overlay() or not node.has_index(index):
            return
        if self.config.track_ground_truth:
            self.ground_truth.setdefault(index, []).append(record)
        node.insert_record(index, record, callback=self.metrics.inserts.append)

    def schedule_query(self, query: RangeQuery, origin: str, at_time: float) -> None:
        self.sim.schedule_at(at_time, self._do_query, query, origin)

    def _do_query(self, query: RangeQuery, origin: str) -> None:
        node = self.by_address[origin]
        if not node.in_overlay() or not node.has_index(query.index):
            return
        node.query_index(query, callback=self.metrics.queries.append)

    def advance(self, seconds: float) -> None:
        """Run the simulation forward by ``seconds`` of virtual time."""
        self.sim.run_until(self.sim.now + seconds)

    def settle(self, max_events: int = 50_000_000) -> None:
        """Run until no events remain (only safe with liveness disabled)."""
        self.sim.run_until_idle(max_events=max_events)

    def close(self) -> None:
        """Tear the experiment down; a quiescence checkpoint under tracking.

        Stops churn and, when the resource ledger is armed
        (``REPRO_TRACK_RESOURCES=1``), asserts that every pending op and
        per-node table entry has been reclaimed — the cluster-teardown
        counterpart of the ``run_until_idle`` check, for drivers that
        advance time by wall-of-clock slices and never drain the queue.
        """
        self.failures.stop_churn()
        if self.sim.resources is not None:
            self.sim.resources.assert_quiescent("MindCluster.close")

    # ------------------------------------------------------------------
    # Operations — blocking convenience API
    # ------------------------------------------------------------------
    def insert_now(self, index: str, record: Record, origin: str, timeout_s: float = 120.0) -> InsertMetric:
        """Insert and advance virtual time until the op completes."""
        node = self.by_address[origin]
        if self.config.track_ground_truth:
            self.ground_truth.setdefault(index, []).append(record)
        done: List[InsertMetric] = []
        node.insert_record(index, record, callback=done.append)
        self.sim.run_until_predicate(lambda: bool(done), timeout=timeout_s)
        if not done:
            raise TimeoutError(f"insert into {index} from {origin} did not complete")
        self.metrics.inserts.append(done[0])
        return done[0]

    def query_now(self, query: RangeQuery, origin: str, timeout_s: float = 120.0) -> QueryMetric:
        """Query and advance virtual time until the result is complete."""
        node = self.by_address[origin]
        done: List[QueryMetric] = []
        node.query_index(query, callback=done.append)
        self.sim.run_until_predicate(lambda: bool(done), timeout=timeout_s)
        if not done:
            raise TimeoutError(f"query on {query.index} from {origin} did not complete")
        metric = done[0]
        self.metrics.queries.append(metric)
        return metric

    def query_records(self, query: RangeQuery, origin: str, timeout_s: float = 120.0) -> List[Record]:
        """Blocking query returning the matching records themselves."""
        return self.query_now(query, origin, timeout_s=timeout_s).results

    # ------------------------------------------------------------------
    # Churn experiment (Figure 16 workload)
    # ------------------------------------------------------------------
    def run_churn_experiment(
        self,
        index: str,
        records: Sequence[Record],
        queries: Sequence[RangeQuery],
        mean_uptime_s: float = 60.0,
        mean_downtime_s: float = 25.0,
        max_concurrent_failures: int = 1,
        query_spacing_s: float = 10.0,
        settle_s: float = 30.0,
        query_timeout_s: float = 240.0,
    ) -> Dict[str, object]:
        """Load records, then answer queries while nodes churn.

        Reproduces the shape of the paper's robustness experiment
        (Section 4.4, Figure 16): the index is pre-loaded, a stationary
        churn process crashes and restores nodes (at most
        ``max_concurrent_failures`` down at once — the paper's experiment
        never lost more than a handful of its 102 nodes), and queries are
        issued from a protected observer node throughout.  The observer
        (``nodes[0]``) is excluded from churn so every query has a live
        originator; everything else may fail mid-operation, exercising the
        retry/failover machinery.

        Returns a summary with completeness, recall (when the cluster
        tracks ground truth), per-query missing regions, and the
        aggregated retry/failover counters for just this experiment.
        """
        observer = self.nodes[0].address
        churn_pool = [n.address for n in self.nodes if n.address != observer]
        if max_concurrent_failures < 1:
            raise ValueError("max_concurrent_failures must be at least 1")
        min_live = max(1, len(churn_pool) - max_concurrent_failures)

        insert_metrics = [self.insert_now(index, r, origin=observer) for r in records]
        self.advance(settle_s)  # let replica stores drain before failures start

        expected: Dict[str, Set[int]] = {}
        query_metrics: List[QueryMetric] = []
        self.failures.start_churn(
            churn_pool, mean_uptime_s, mean_downtime_s, min_live=min_live
        )
        crash_log_start = len(self.failures.crash_log)
        for query in queries:
            metric = self.query_now(query, origin=observer, timeout_s=query_timeout_s)
            query_metrics.append(metric)
            if self.config.track_ground_truth:
                expected[metric.op_id] = self.reference_answer(query)
            self.advance(query_spacing_s)
        self.failures.stop_churn()
        churn_events = self.failures.crash_log[crash_log_start:]

        scoped = MetricsCollector()
        scoped.inserts = insert_metrics
        scoped.queries = query_metrics
        summary: Dict[str, object] = {
            "inserts": len(insert_metrics),
            "inserts_failed": sum(1 for m in insert_metrics if not m.success),
            "queries": len(query_metrics),
            "complete_queries": sum(1 for m in query_metrics if m.complete),
            "complete_fraction": (
                sum(1 for m in query_metrics if m.complete) / len(query_metrics)
                if query_metrics
                else 1.0
            ),
            "failed_regions": {
                m.op_id: sorted(m.failed_regions)
                for m in query_metrics
                if m.failed_regions
            },
            "crashes": sum(1 for _, _, kind in churn_events if kind == "crash"),
            "restores": sum(1 for _, _, kind in churn_events if kind == "restore"),
            "failure_handling": scoped.failure_handling(),
        }
        if self.config.track_ground_truth:
            full = sum(
                1
                for m in query_metrics
                if m.complete and expected[m.op_id] <= m.record_keys
            )
            summary["full_recall_queries"] = full
            summary["full_recall_fraction"] = (
                full / len(query_metrics) if query_metrics else 1.0
            )
        return summary

    # ------------------------------------------------------------------
    # Ground truth (centralized reference evaluation)
    # ------------------------------------------------------------------
    def reference_answer(self, query: RangeQuery) -> Set[int]:
        """Record keys a correct evaluation of the query must return."""
        if not self.config.track_ground_truth:
            raise RuntimeError("cluster was not configured with track_ground_truth")
        schema = None
        for node in self.nodes:
            if node.has_index(query.index):
                schema = node.indices[query.index].schema
                break
        if schema is None:
            raise KeyError(f"no node has index {query.index}")
        return {
            record.key
            for record in self.ground_truth.get(query.index, ())
            if query.matches(schema, record)
        }

    # ------------------------------------------------------------------
    # Storage distribution (Figure 13)
    # ------------------------------------------------------------------
    def storage_distribution(self, index: str) -> Dict[str, int]:
        """Primary records per node for one index (replicas excluded)."""
        out = {}
        for node in self.live_nodes():
            state = node.indices.get(index)
            out[node.address] = len(state.store) if state else 0
        return out
