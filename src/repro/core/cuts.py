"""Cut strategies: where to slice the data space at each embedding level.

The embedding recursively halves the (normalized) data space, cycling
through the dimensions.  *Where* each halving cut falls is the strategy:

* :class:`EvenCuts` — geometric midpoints; simple, but skewed traffic data
  then piles up on a few nodes (the paper's Figure 2/13 imbalance).
* :class:`BalancedCuts` — each cut is placed at the histogram-weighted
  median of the rectangle being cut, so both halves carry approximately
  the same amount of data (Section 3.7, Figure 5 bottom-right).

Strategies must be deterministic: every node derives the same cut tree
from the same (distributed) histogram, so no coordination is needed.
"""

from typing import Dict

from repro.core.histogram import MultiDimHistogram
from repro.core.query import NormRect


class EvenCuts:
    """Midpoint cuts — the naive, data-oblivious embedding."""

    kind = "even"

    def split(self, rect: NormRect, dim: int) -> float:
        lo, hi = rect[dim]
        return (lo + hi) / 2.0

    def to_wire(self) -> Dict:
        return {"kind": self.kind}


class BalancedCuts:
    """Histogram-weighted median cuts — MIND's load-balanced embedding."""

    kind = "balanced"

    def __init__(self, histogram: MultiDimHistogram) -> None:
        self.histogram = histogram

    def split(self, rect: NormRect, dim: int) -> float:
        return self.histogram.split_point(rect, dim)

    def to_wire(self) -> Dict:
        return {"kind": self.kind, "histogram": self.histogram.to_wire()}


def strategy_from_wire(data: Dict):
    """Reconstruct a cut strategy from its wire form."""
    if data["kind"] == "even":
        return EvenCuts()
    if data["kind"] == "balanced":
        return BalancedCuts(MultiDimHistogram.from_wire(data["histogram"]))
    raise ValueError(f"unknown cut strategy kind {data['kind']!r}")
