"""The locality-preserving data-space embedding (Section 3.4).

The k-dimensional normalized data space is recursively cut by axis-aligned
hyperplanes, cycling through the dimensions; every cut contributes one bit,
so depth-L descent assigns an L-bit code to each point and a hyper-rectangle
to each code.  Records whose codes share a node's code prefix are stored at
that node — data-space locality becomes code-prefix locality, which the
hypercube overlay preserves.

The novelty the paper claims — decoupling the data-space mapping from the
overlay — lives here: the embedding is a property of the *index* (and of
the day's histogram), not of the overlay, so the number of dimensions k is
independent of the hypercube's dimensionality and each index maps onto the
same overlay differently.

Cut positions are produced by a :class:`~repro.core.cuts.EvenCuts` or
:class:`~repro.core.cuts.BalancedCuts` strategy and memoized per code
prefix, which makes repeated descents cheap and guarantees every node
derives the identical tree from the identical histogram.
"""

import json
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.cuts import strategy_from_wire
from repro.core.query import NormRect, full_rect
from repro.core.schema import IndexSchema
from repro.overlay.code import Code, intern_code

#: point_codes_batch packs the running code of each point into an int64;
#: deeper descents fall back to the scalar per-point path.
_MAX_BATCH_DEPTH = 62

#: Embeddings interned by canonical wire form.  Every node of a cluster
#: installs the *same* index wire form, and cuts are deterministic
#: functions of (schema, strategy) — so all nodes can share one instance
#: and, crucially, one memoized cut tree.  Without sharing, each of 1000
#: nodes re-derives and re-warms its own ~2^depth-leaf tree, and every
#: node's descents stay permanently cold.  Bounded FIFO: eviction only
#: stops *sharing*, never breaks correctness.
_WIRE_INTERN: Dict[str, "Embedding"] = {}
_WIRE_INTERN_MAX = 256


class Embedding:
    """Maps points and rectangles of one index to codes, and back."""

    def __init__(self, schema: IndexSchema, strategy, code_depth: int = 16) -> None:
        if code_depth < 1:
            raise ValueError("code_depth must be >= 1")
        self.schema = schema
        self.strategy = strategy
        self.code_depth = code_depth
        self._split_cache: Dict[str, float] = {}
        #: Integer mirror of the cut cache, one dict per level keyed by the
        #: prefix's int value.  The per-record descent (``point_code``) hits
        #: a cut cache once per level; int keys hash in constant time while
        #: the string path rebuilds and re-hashes a fresh, growing prefix
        #: string at every level.  Kept in sync by ``_split``/``preload``.
        self._level_caches: List[Dict[int, float]] = []
        self._dims = schema.dimensions

    # ------------------------------------------------------------------
    # Cut access
    # ------------------------------------------------------------------
    def _split(self, prefix_bits: str, rect: NormRect) -> float:
        split = self._split_cache.get(prefix_bits)
        if split is None:
            dim = len(prefix_bits) % self._dims
            split = self.strategy.split(rect, dim)
            lo, hi = rect[dim]
            if not lo < split < hi:
                split = (lo + hi) / 2.0
            # Memo keyed by trie prefix, bounded by the reachable cuts of a
            # depth-capped trie; entries must never be evicted — every node
            # has to derive identical splits forever.
            # repro-leak: ignore[leak-op-state] bounded split memo, eviction would fork cuts
            self._split_cache[prefix_bits] = split
            self._mirror_split(prefix_bits, split)
        return split

    def _mirror_split(self, prefix_bits: str, split: float) -> None:
        level = len(prefix_bits)
        caches = self._level_caches
        while len(caches) <= level:
            caches.append({})
        caches[level][int(prefix_bits, 2) if prefix_bits else 0] = split

    @staticmethod
    def _narrow(rect: NormRect, dim: int, split: float, bit: str) -> NormRect:
        lo, hi = rect[dim]
        new = (lo, split) if bit == "0" else (split, hi)
        return rect[:dim] + (new,) + rect[dim + 1 :]

    # ------------------------------------------------------------------
    # Points
    # ------------------------------------------------------------------
    def point_code(self, values: Sequence[float], depth: Optional[int] = None) -> Code:
        """The code of a raw-valued point, descended to ``depth`` bits.

        The steady-state descent (every cut already memoized — true for
        all but the first record reaching each tree node) is a cache
        lookup and a comparison per level; rectangle narrowing happens
        only on a cache miss, by replaying the descent to the missing
        prefix.
        """
        depth = self.code_depth if depth is None else depth
        point = self.schema.normalize(values)
        dims = self._dims
        caches = self._level_caches
        known = len(caches)
        code_int = 0
        level = 0
        # Warm path: walk the int-mirrored cuts with no rectangle (or even
        # prefix-string) bookkeeping — int keys, one shift per level.
        while level < depth and level < known:
            split = caches[level].get(code_int)
            if split is None:
                break
            code_int = (code_int << 1) | (point[level % dims] >= split)
            level += 1
        if level == depth:
            # Depth-limited prefixes recur constantly (every record of a
            # region maps to its owner's code); interning skips re-parsing.
            return intern_code(format(code_int, "0%db" % depth) if depth else "")
        prefix = format(code_int, "0%db" % level) if level else ""
        if level < depth:
            # Cache misses are suffix-closed (an unseen prefix implies its
            # extensions are unseen too), so rebuild the rectangle once and
            # descend narrowing it the rest of the way.
            rect = self._rect_for_prefix(prefix)
            while level < depth:
                dim = level % dims
                split = self._split(prefix, rect)
                bit = "1" if point[dim] >= split else "0"
                prefix += bit
                rect = self._narrow(rect, dim, split, bit)
                level += 1
        return intern_code(prefix)

    def _rect_for_prefix(self, prefix: str) -> NormRect:
        """Replay the descent to ``prefix``'s rectangle (cache-miss path)."""
        dims = self._dims
        rect = full_rect(dims)
        for level, bit in enumerate(prefix):
            dim = level % dims
            split = self._split(prefix[:level], rect)
            rect = self._narrow(rect, dim, split, bit)
        return rect

    def point_codes_batch(self, values, depth: Optional[int] = None) -> List[Code]:
        """Codes for many raw-valued points at once.

        Descends the cut tree level by level: points are grouped by their
        code prefix (one stable sort per level), each group's cut is
        fetched from the shared memoized cache, and the per-point bit
        comparisons run as one vectorized ``>=`` over the whole batch.
        Agrees bit-for-bit with :meth:`point_code` on every point.
        """
        depth = self.code_depth if depth is None else depth
        points = self.schema.normalize_batch(values)
        n = points.shape[0]
        if n == 0:
            return []
        if depth == 0:
            return [Code("") for _ in range(n)]
        if depth > _MAX_BATCH_DEPTH:
            return [self.point_code(v, depth) for v in values]
        dims = self.schema.dimensions
        codes = np.zeros(n, dtype=np.int64)
        splits = np.empty(n, dtype=np.float64)
        groups: Dict[int, Tuple[str, NormRect]] = {0: ("", full_rect(dims))}
        for level in range(depth):
            dim = level % dims
            order = np.argsort(codes, kind="stable")
            sorted_codes = codes[order]
            run_starts = np.concatenate(
                ([0], np.flatnonzero(np.diff(sorted_codes)) + 1, [n])
            )
            next_groups: Dict[int, Tuple[str, NormRect]] = {}
            for i in range(len(run_starts) - 1):
                start, end = run_starts[i], run_starts[i + 1]
                node = int(sorted_codes[start])
                prefix, rect = groups[node]
                split = self._split(prefix, rect)
                splits[order[start:end]] = split
                lo, hi = rect[dim]
                next_groups[node << 1] = (
                    prefix + "0",
                    rect[:dim] + ((lo, split),) + rect[dim + 1 :],
                )
                next_groups[(node << 1) | 1] = (
                    prefix + "1",
                    rect[:dim] + ((split, hi),) + rect[dim + 1 :],
                )
            codes = (codes << 1) | (points[:, dim] >= splits)
            groups = next_groups
        template = "{:0%db}" % depth
        return [Code(template.format(c)) for c in codes.tolist()]

    def preload_splits(self, cuts: Dict[str, float]) -> None:
        """Seed the memoized cut cache (e.g. from ``derive_cut_tree``)."""
        self._split_cache.update(cuts)
        for prefix_bits, split in cuts.items():
            self._mirror_split(prefix_bits, split)

    # ------------------------------------------------------------------
    # Regions
    # ------------------------------------------------------------------
    def region_rect(self, code: Code) -> NormRect:
        """The normalized hyper-rectangle owned by ``code``."""
        rect = full_rect(self.schema.dimensions)
        for level, bit in enumerate(code.bits):
            dim = level % self.schema.dimensions
            split = self._split(code.bits[:level], rect)
            rect = self._narrow(rect, dim, split, bit)
        return rect

    def query_prefix(self, query_rect: NormRect, max_depth: Optional[int] = None) -> Code:
        """The longest code whose region fully contains the query rectangle.

        This is the routing target for a query: small queries descend deep
        (often to a single node's region), large queries stop early and get
        split into sub-queries at the first abutting node (Section 3.6).
        """
        max_depth = self.code_depth if max_depth is None else max_depth
        rect = full_rect(self.schema.dimensions)
        bits = []
        for level in range(max_depth):
            dim = level % self.schema.dimensions
            split = self._split("".join(bits), rect)
            q_lo, q_hi = query_rect[dim]
            if q_hi <= split:
                bit = "0"
            elif q_lo >= split:
                bit = "1"
            else:
                break
            bits.append(bit)
            rect = self._narrow(rect, dim, split, bit)
        return Code("".join(bits))

    def region_raw_ranges(self, code: Code) -> List[Tuple[float, float]]:
        """The region rectangle in raw attribute units (for local stores)."""
        rect = self.region_rect(code)
        out = []
        for attr, (lo, hi) in zip(self.schema.attributes, rect):
            out.append((attr.denormalize(lo), attr.denormalize(hi)))
        return out

    # ------------------------------------------------------------------
    # Wire form (installed at index creation and daily rebalancing)
    # ------------------------------------------------------------------
    def to_wire(self) -> Dict:
        return {
            "schema": self.schema.to_wire(),
            "strategy": self.strategy.to_wire(),
            "code_depth": self.code_depth,
        }

    @classmethod
    def from_wire(cls, data: Dict) -> "Embedding":
        """Reconstruct an embedding, shared across identical wire forms.

        Two installs with the same canonical wire form get the *same*
        instance (and thus one shared, warm cut-tree memo): the cut
        positions are deterministic in the wire content, so sharing is
        observationally identical to rebuilding — minus the per-node
        re-derivation cost.  Payload isolation levels that freeze the
        wire dict fall back to a private instance.
        """
        try:
            key = json.dumps(data, sort_keys=True)
        except TypeError:
            key = None
        if key is not None:
            shared = _WIRE_INTERN.get(key)
            if shared is not None and type(shared) is cls:
                return shared
        embedding = cls(
            schema=IndexSchema.from_wire(data["schema"]),
            strategy=strategy_from_wire(data["strategy"]),
            code_depth=data["code_depth"],
        )
        if key is not None and type(embedding) is cls:
            if len(_WIRE_INTERN) >= _WIRE_INTERN_MAX:
                _WIRE_INTERN.pop(next(iter(_WIRE_INTERN)))
            _WIRE_INTERN[key] = embedding
        return embedding
