"""Sparse multi-dimensional histograms and the Appendix-A mismatch metric.

MIND's load balancing rests on an approximate multi-dimensional histogram
of each index's daily data distribution (Section 3.7).  Cells are per-
dimension bins over the normalized data space ``[0,1)^d``; storage is
sparse (network traffic occupies a tiny fraction of the cells even at
modest granularity), so granularities like the paper's 64 bins/dimension
stay tractable.

``granularity`` may be a single int (the paper's uniform ``k^d`` binning)
or a per-dimension sequence — a fine-grained timestamp dimension with
coarser attribute dimensions approximates the daily distribution far
better when a trace slice occupies a thin slab of the time domain.

The histogram answers the two questions the balanced-cut embedding asks:

* how much mass lies inside a normalized rectangle, and
* where along one dimension a rectangle should be cut so the two halves
  carry (approximately) equal mass.

Partial bin overlap is weighted fractionally assuming uniform mass within
a bin.
"""

from typing import Dict, Iterable, List, Sequence, Tuple, Union

import numpy as np

from repro.core.query import NormRect

Granularity = Union[int, Sequence[int]]


class MultiDimHistogram:
    """A sparse d-dimensional histogram over [0,1)^d.

    ``vectorized=False`` routes :meth:`add_batch`, :meth:`count_in_rect`
    and :meth:`split_point` through scalar per-cell reference
    implementations; the default vectorized paths are exercised against
    them by the equivalence property tests.
    """

    def __init__(
        self, dimensions: int, granularity: Granularity, vectorized: bool = True
    ) -> None:
        if dimensions < 1:
            raise ValueError("dimensions must be >= 1")
        if isinstance(granularity, int):
            grains = (granularity,) * dimensions
        else:
            grains = tuple(granularity)
        if len(grains) != dimensions:
            raise ValueError(
                f"granularity needs {dimensions} entries, got {len(grains)}"
            )
        if any(g < 1 for g in grains):
            raise ValueError("granularity must be >= 1 in every dimension")
        self.dimensions = dimensions
        self.grains: Tuple[int, ...] = grains
        self.vectorized = vectorized
        self._cells: Dict[Tuple[int, ...], float] = {}
        self._dirty = True
        self._coords = np.zeros((0, dimensions), dtype=np.int64)
        self._counts = np.zeros(0, dtype=np.float64)

    @property
    def granularity(self) -> Tuple[int, ...]:
        return self.grains

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    def _bin_of(self, x: float, dim: int) -> int:
        k = self.grains[dim]
        b = int(x * k)
        if b < 0:
            return 0
        if b >= k:
            return k - 1
        return b

    def add(self, point: Sequence[float], weight: float = 1.0) -> None:
        """Add one normalized point."""
        if len(point) != self.dimensions:
            raise ValueError(f"expected {self.dimensions} coordinates, got {len(point)}")
        cell = tuple(self._bin_of(x, dim) for dim, x in enumerate(point))
        # repro-leak: ignore[leak-op-state] sparse grid bounded by prod(grains)
        self._cells[cell] = self._cells.get(cell, 0.0) + weight
        self._dirty = True

    def add_many(self, points: Iterable[Sequence[float]]) -> None:
        for point in points:
            self.add(point)

    def add_batch(self, points, weight: float = 1.0) -> None:
        """Add many normalized points at once, each carrying ``weight``.

        The vectorized path bins the whole ``(n, d)`` array with one
        truncation + clip, collapses duplicate cells with ``np.unique``
        and touches the sparse dict once per *occupied* cell.  With the
        default unit weight the resulting counts are byte-identical to
        ``n`` scalar :meth:`add` calls (integer-valued float64 sums are
        exact); for fractional weights they can differ in the last ulp
        because the additions associate differently.
        """
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[1] != self.dimensions:
            raise ValueError(
                f"expected (n, {self.dimensions}) points, got shape {pts.shape}"
            )
        if pts.shape[0] == 0:
            return
        if not self.vectorized:
            for row in pts:
                self.add(row, weight)
            return
        grains = np.asarray(self.grains, dtype=np.float64)
        # Truncation toward zero matches the scalar int(x * k); clipping
        # matches its under/overflow clamps.
        bins = (pts * grains).astype(np.int64)
        np.clip(bins, 0, np.asarray(self.grains, dtype=np.int64) - 1, out=bins)
        cells = self._cells
        total_cells = 1
        for g in self.grains:
            total_cells *= g
        if total_cells < 2**62:
            # Collapse each row to a linear cell id: unique over a 1-D
            # int64 array is far cheaper than unique over row views.
            flat = bins[:, 0].copy()
            for dim in range(1, self.dimensions):
                flat *= self.grains[dim]
                flat += bins[:, dim]
            unique_flat, counts = np.unique(flat, return_counts=True)
            strides = [1] * self.dimensions
            for dim in range(self.dimensions - 2, -1, -1):
                strides[dim] = strides[dim + 1] * self.grains[dim + 1]
            for linear, count in zip(unique_flat.tolist(), counts.tolist()):
                cell = tuple(
                    (linear // strides[dim]) % self.grains[dim]
                    for dim in range(self.dimensions)
                )
                cells[cell] = cells.get(cell, 0.0) + count * weight
        else:
            unique, inverse = np.unique(bins, axis=0, return_inverse=True)
            counts = np.bincount(inverse.ravel(), minlength=unique.shape[0])
            for cell, count in zip(map(tuple, unique.tolist()), counts.tolist()):
                cells[cell] = cells.get(cell, 0.0) + count * weight
        self._dirty = True

    def merge(self, other: "MultiDimHistogram") -> None:
        """Accumulate another histogram (per-node aggregation)."""
        if (other.dimensions, other.grains) != (self.dimensions, self.grains):
            raise ValueError("histogram shapes differ")
        for cell, count in other._cells.items():
            self._cells[cell] = self._cells.get(cell, 0.0) + count
        self._dirty = True

    def shifted(self, dim: int, delta: float) -> "MultiDimHistogram":
        """A copy with all mass moved by ``delta`` (normalized) along ``dim``.

        Used for the daily versioning scheme: yesterday's histogram
        describes today's expected distribution only after its *timestamp*
        dimension is advanced by one day (the distribution of the other
        attributes is what the stationarity argument is about).  Mass
        shifted past the domain edge piles up in the edge bin.
        """
        if not 0 <= dim < self.dimensions:
            raise IndexError(f"dimension {dim} out of range")
        offset = int(round(delta * self.grains[dim]))
        out = MultiDimHistogram(self.dimensions, self.grains, vectorized=self.vectorized)
        top = self.grains[dim] - 1
        for cell, count in self._cells.items():
            moved = min(max(cell[dim] + offset, 0), top)
            new_cell = cell[:dim] + (moved,) + cell[dim + 1 :]
            out._cells[new_cell] = out._cells.get(new_cell, 0.0) + count
        out._dirty = True
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def total(self) -> float:
        return float(sum(self._cells.values()))

    @property
    def occupied_cells(self) -> int:
        return len(self._cells)

    def cell_counts(self) -> Dict[Tuple[int, ...], float]:
        return dict(self._cells)

    def _arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        if self._dirty:
            if self._cells:
                self._coords = np.array(sorted(self._cells), dtype=np.int64)
                self._counts = np.array([self._cells[tuple(c)] for c in self._coords], dtype=np.float64)
            else:
                self._coords = np.zeros((0, self.dimensions), dtype=np.int64)
                self._counts = np.zeros(0, dtype=np.float64)
            # Per-dimension sort orders, computed once: split_point reuses
            # them instead of re-sorting on every cut.
            self._orders = [
                np.argsort(self._coords[:, dim], kind="stable")
                for dim in range(self.dimensions)
            ]
            self._dirty = False
        return self._coords, self._counts

    # ------------------------------------------------------------------
    # Rectangle queries
    # ------------------------------------------------------------------
    def _cell_weights(self, rect: NormRect) -> np.ndarray:
        """Per-occupied-cell weight = count x fractional rect overlap.

        Computed directly on the occupied-cell coordinate arrays (O(cells)
        per dimension) so fine granularities stay cheap.
        """
        coords, counts = self._arrays()
        if counts.size == 0:
            return counts
        weight = counts.copy()
        for dim, (lo, hi) in enumerate(rect):
            k = self.grains[dim]
            bins = coords[:, dim]
            left = np.maximum(bins / k, lo)
            right = np.minimum((bins + 1) / k, hi)
            weight *= np.clip((right - left) * k, 0.0, 1.0)
        return weight

    def _cell_weights_scalar(self, rect: NormRect) -> List[Tuple[Tuple[int, ...], float]]:
        """Scalar reference for :meth:`_cell_weights`.

        Walks the sorted cell dict, applying the same IEEE operations in
        the same per-dimension order as the vectorized path so the two
        produce identical floats cell by cell.
        """
        out = []
        for cell in sorted(self._cells):
            weight = self._cells[cell]
            for dim, (lo, hi) in enumerate(rect):
                k = self.grains[dim]
                b = cell[dim]
                left = max(b / k, lo)
                right = min((b + 1) / k, hi)
                frac = (right - left) * k
                if frac < 0.0:
                    frac = 0.0
                elif frac > 1.0:
                    frac = 1.0
                weight = weight * frac
            out.append((cell, weight))
        return out

    def count_in_rect(self, rect: NormRect) -> float:
        """Approximate mass inside the rectangle."""
        if len(rect) != self.dimensions:
            raise ValueError("rect dimensionality mismatch")
        if not self.vectorized:
            return float(sum(w for _, w in self._cell_weights_scalar(rect)))
        return float(self._cell_weights(rect).sum())

    def _split_point_scalar(self, rect: NormRect, dim: int) -> float:
        """Scalar reference for :meth:`split_point` (same floats out)."""
        lo, hi = rect[dim]
        midpoint = (lo + hi) / 2.0
        weighted = self._cell_weights_scalar(rect)
        if not weighted:
            return midpoint
        k = self.grains[dim]
        # Stable sort by the bin index along ``dim`` over the
        # lexicographically sorted cells — the exact order np.argsort
        # (stable) gives the vectorized path.
        by_bin = sorted(
            ((cell[dim], w) for cell, w in weighted), key=lambda bw: bw[0]
        )
        # One running sum over the live masses, recorded at each bin's
        # last cell — the same sequential fold + adjacent-difference the
        # vectorized path performs, so the floats match exactly.
        bins_list: List[int] = []
        cumulative: List[float] = []
        running = 0.0
        for b, mass in by_bin:
            if mass <= 0.0:
                continue
            running += mass
            if bins_list and bins_list[-1] == b:
                cumulative[-1] = running
            else:
                bins_list.append(b)
                cumulative.append(running)
        if not bins_list:
            return midpoint
        total = cumulative[-1]
        if total <= 0.0:
            return midpoint
        half = total / 2.0
        idx = 0
        while cumulative[idx] < half:
            idx += 1
        b = bins_list[idx]
        before = cumulative[idx - 1] if idx > 0 else 0.0
        mass = cumulative[idx] - before
        bin_lo = max(b / k, lo)
        bin_hi = min((b + 1) / k, hi)
        if mass <= 0.0:
            split = bin_lo
        else:
            split = bin_lo + (half - before) / mass * (bin_hi - bin_lo)
        return float(min(max(split, lo + 1e-12), hi - 1e-12))

    def split_point(self, rect: NormRect, dim: int) -> float:
        """The balanced cut of ``rect`` along ``dim``.

        Returns the coordinate where the mass inside the rectangle is
        (approximately) halved; falls back to the geometric midpoint when
        the rectangle holds no mass.
        """
        if not 0 <= dim < self.dimensions:
            raise IndexError(f"dimension {dim} out of range")
        if not self.vectorized:
            return self._split_point_scalar(rect, dim)
        lo, hi = rect[dim]
        midpoint = (lo + hi) / 2.0

        coords, _ = self._arrays()
        weights = self._cell_weights(rect)
        if weights.size == 0 or weights.sum() <= 0.0:
            return midpoint

        k = self.grains[dim]
        order = self._orders[dim]
        bins_all = coords[order, dim]
        masses_all = weights[order]
        live = masses_all > 0.0
        bins = bins_all[live]
        masses = masses_all[live]
        if bins.size == 0:
            return midpoint
        # Collapse duplicate bins, then find the bin where the cumulative
        # mass crosses half and interpolate inside it.  The cumulative
        # masses come from one sequential np.cumsum over the flat mass
        # array (read at each bin's last cell) and the in-bin mass is the
        # difference of adjacent cumulatives — an operation order the
        # scalar reference path reproduces exactly, which np.add.reduceat
        # (pairwise association) would not.
        unique_bins, starts = np.unique(bins, return_index=True)
        ends = np.append(starts[1:], masses.size)
        cumulative = np.cumsum(masses)[ends - 1]
        total = cumulative[-1]
        if total <= 0.0:
            return midpoint
        half = total / 2.0
        idx = int(np.searchsorted(cumulative, half, side="left"))
        b = int(unique_bins[idx])
        before = float(cumulative[idx - 1]) if idx > 0 else 0.0
        mass = float(cumulative[idx]) - before
        bin_lo = max(b / k, lo)
        bin_hi = min((b + 1) / k, hi)
        if mass <= 0.0:
            split = bin_lo
        else:
            split = bin_lo + (half - before) / mass * (bin_hi - bin_lo)
        # Keep the split strictly inside the rectangle so both halves are
        # non-degenerate.
        return float(min(max(split, lo + 1e-12), hi - 1e-12))

    # ------------------------------------------------------------------
    # Serialization (daily histogram distribution to all nodes)
    # ------------------------------------------------------------------
    def to_wire(self) -> Dict:
        return {
            "dimensions": self.dimensions,
            "granularity": list(self.grains),
            "cells": [[list(cell), count] for cell, count in sorted(self._cells.items())],
        }

    @classmethod
    def from_wire(cls, data: Dict) -> "MultiDimHistogram":
        hist = cls(data["dimensions"], data["granularity"])
        for cell, count in data["cells"]:
            hist._cells[tuple(cell)] = count
        hist._dirty = True
        return hist


def mismatch(a: MultiDimHistogram, b: MultiDimHistogram, normalized: bool = True) -> float:
    """The Appendix-A mismatch metric between two data distributions.

    ``MF = sum_x |a_x - b_x| / 2`` over all bins — the volume of data that
    would need to move to turn one distribution into the other, and an
    upper bound on the rebalancing cost of reusing day-i cuts for day-j
    data.  With ``normalized=True`` the result is divided by the mean
    total, giving the *fraction* of data to move (the form plotted in the
    paper's Figure 3, where hourly mismatch approaches 1).
    """
    if (a.dimensions, a.grains) != (b.dimensions, b.grains):
        raise ValueError("histogram shapes differ")
    cells = set(a._cells) | set(b._cells)
    moved = sum(abs(a._cells.get(c, 0.0) - b._cells.get(c, 0.0)) for c in cells) / 2.0
    if not normalized:
        return moved
    denom = (a.total + b.total) / 2.0
    return moved / denom if denom > 0 else 0.0
