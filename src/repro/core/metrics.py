"""Operation metrics collected by the cluster driver.

Everything the paper's evaluation plots comes from these records:
insertion path length and latency (Figures 7, 14), query cost — the number
of overlay nodes visited — and query latency (Figures 9, 10), and query
success/recall under failures (Figure 16).
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set


@dataclass
class InsertMetric:
    op_id: str
    index: str
    origin: str
    start: float
    end: Optional[float] = None
    hops: Optional[int] = None
    success: bool = False
    #: Re-sends of the same target after a routing failure or attempt timeout.
    retries: int = 0
    #: Times the op re-targeted a replica-holder region after the current
    #: target's attempts were exhausted.
    failovers: int = 0

    @property
    def latency(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end - self.start

    @property
    def stored_via_failover(self) -> bool:
        """The record landed on a replica-holder region, not its primary."""
        return self.success and self.failovers > 0


@dataclass
class QueryMetric:
    op_id: str
    index: str
    origin: str
    start: float
    end: Optional[float] = None
    records: int = 0
    record_keys: Set[int] = field(default_factory=set)
    #: The matching records themselves (available once the query finishes).
    results: List = field(default_factory=list)
    nodes_visited: Set[str] = field(default_factory=set)
    regions: int = 0
    complete: bool = False
    #: Per-region sub-query re-launches (backoff retries of the same target).
    retries: int = 0
    #: Per-region re-targets to a replica-holder region after the primary
    #: (or a previous replica target) was exhausted.
    failovers: int = 0
    #: Result records first served by a failed-over (replica) sub-query.
    replica_records: int = 0
    #: Regions (``"{valid_from}:{bits}"``) that exhausted primaries *and*
    #: replicas — exactly what is missing from an incomplete result.
    failed_regions: Set[str] = field(default_factory=set)

    @property
    def latency(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end - self.start

    @property
    def cost(self) -> int:
        """Query cost as defined in Section 4.1: overlay nodes visited."""
        return len(self.nodes_visited)

    @property
    def degraded_complete(self) -> bool:
        """Full results, but only because replica failover filled in."""
        return self.complete and self.failovers > 0


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of a non-empty sample set."""
    if not samples:
        raise ValueError("no samples")
    ordered = sorted(samples)
    if q <= 0:
        return ordered[0]
    if q >= 100:
        return ordered[-1]
    rank = int(round((q / 100.0) * (len(ordered) - 1)))
    return ordered[rank]


@dataclass
class LatencySummary:
    count: int
    mean: float
    median: float
    p90: float
    p99: float
    maximum: float

    @classmethod
    def of(cls, samples: Sequence[float]) -> "LatencySummary":
        if not samples:
            raise ValueError("no samples")
        return cls(
            count=len(samples),
            mean=sum(samples) / len(samples),
            median=percentile(samples, 50),
            p90=percentile(samples, 90),
            p99=percentile(samples, 99),
            maximum=max(samples),
        )


class MetricsCollector:
    """Accumulates per-operation metrics for one experiment run."""

    def __init__(self) -> None:
        self.inserts: List[InsertMetric] = []
        self.queries: List[QueryMetric] = []

    # ------------------------------------------------------------------
    def insert_latencies(self, successful_only: bool = True) -> List[float]:
        return [
            m.latency
            for m in self.inserts
            if m.latency is not None and (m.success or not successful_only)
        ]

    def insert_hops(self) -> List[int]:
        return [m.hops for m in self.inserts if m.hops is not None]

    def query_latencies(self, complete_only: bool = True) -> List[float]:
        return [
            m.latency
            for m in self.queries
            if m.latency is not None and (m.complete or not complete_only)
        ]

    def query_costs(self) -> List[int]:
        return [m.cost for m in self.queries if m.end is not None]

    def insert_summary(self) -> LatencySummary:
        return LatencySummary.of(self.insert_latencies())

    def query_summary(self) -> LatencySummary:
        return LatencySummary.of(self.query_latencies())

    def failure_handling(self) -> Dict[str, int]:
        """Aggregate retry/failover counters across all recorded ops.

        Feeds ``bench.stats.failure_handling_summary`` and the perf
        harness's ``BENCH_PERF.json`` trajectory, so regressions in
        failure handling show up next to latency regressions.
        """
        return {
            "insert_retries": sum(m.retries for m in self.inserts),
            "insert_failovers": sum(m.failovers for m in self.inserts),
            "inserts_via_failover": sum(1 for m in self.inserts if m.stored_via_failover),
            "query_retries": sum(m.retries for m in self.queries),
            "query_failovers": sum(m.failovers for m in self.queries),
            "replica_records": sum(m.replica_records for m in self.queries),
            "degraded_complete_queries": sum(1 for m in self.queries if m.degraded_complete),
            "incomplete_queries": sum(
                1 for m in self.queries if m.end is not None and not m.complete
            ),
        }

    def query_success_fraction(self, expected: Dict[str, Set[int]]) -> float:
        """Fraction of queries that returned exactly the expected keys.

        ``expected`` maps query op_id to the ground-truth record key set
        (from a centralized reference evaluation); a query succeeds when it
        completed and achieved perfect recall — the paper's Figure 16
        success criterion.
        """
        if not self.queries:
            raise ValueError("no queries recorded")
        relevant = [m for m in self.queries if m.op_id in expected]
        if not relevant:
            raise ValueError("no queries match the expected set")
        good = sum(1 for m in relevant if expected[m.op_id] <= m.record_keys)
        return good / len(relevant)
