"""The MIND node: index management on top of the hypercube overlay.

A :class:`MindNode` is an :class:`~repro.overlay.node.OverlayNode` that adds
the paper's application machinery:

* index lifecycle — ``create_index`` / ``drop_index`` flooded across the
  overlay, with schemas and embedding versions handed to joiners,
* data insertion — records are embedded to a code and routed to the owner,
  which stores them through its DAC and replicates to hypercube neighbors,
* query processing — a query routes to its prefix region and is split into
  sub-queries covering the overlay's actual regions, with all responses
  returned directly to the originator (Section 3.6),
* the sibling pointer — a freshly joined node forwards queries for its
  region to its split host until the host's pre-split data has aged, and
* on-line histogram collection (the paper's planned extension): a collector
  floods a request and merges per-node histograms of an index's data.
"""

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.core.cuts import BalancedCuts, EvenCuts
from repro.core.embedding import Embedding
from repro.core.histogram import MultiDimHistogram
from repro.core.metrics import InsertMetric, QueryMetric
from repro.core.query import RangeQuery, rect_intersection
from repro.core.records import Record
from repro.core.replication import FULL_REPLICATION, failover_targets, replica_targets
from repro.core.schema import IndexSchema
from repro.core.triggers import Trigger, TriggerTable, new_trigger_id
from repro.core.versioning import VersionedEmbedding
from repro.net.message import Message
from repro.overlay.code import Code
from repro.overlay.node import OverlayConfig, OverlayNode
from repro.storage.dac import DacConfig, DataAccessController
from repro.storage.memtable import TimePartitionedStore


@dataclass
class MindConfig:
    """Application-level tunables of a MIND node."""

    code_depth: int = 16
    insert_timeout_s: float = 90.0
    query_timeout_s: float = 90.0
    #: Attempts per routing target (the primary, then each replica-holder
    #: region) before the op fails over to the next target — with
    #: exponential backoff between attempts.
    retry_max_attempts: int = 3
    retry_backoff_base_s: float = 0.5
    retry_backoff_max_s: float = 8.0
    #: Watchdog per attempt: re-launches an insert / sub-query whose target
    #: died *after* arrival (so no routing failure ever comes back).  Must
    #: comfortably exceed the ring-recovery worst case so the explicit
    #: failure path, when there is one, wins the race.
    insert_attempt_timeout_s: float = 30.0
    subquery_attempt_timeout_s: float = 30.0
    dac: DacConfig = field(default_factory=DacConfig)
    store_bucket_s: float = 300.0
    #: Columnar NumPy scans in the local store and histogram collection;
    #: turn off to run the scalar reference path end-to-end.
    vectorized_store: bool = True
    record_wire_bytes: int = 120
    response_base_bytes: int = 150


@dataclass
class IndexState:
    """Everything one node keeps for one index."""

    schema: IndexSchema
    versions: VersionedEmbedding
    replication: int
    store: TimePartitionedStore
    dac: DataAccessController


@dataclass
class _InsertOp:
    """Originator-side retry state machine for one insert.

    The op walks a target list — the record's primary code, then each
    replica-holder region from :func:`failover_targets` — giving every
    target ``retry_max_attempts`` routing attempts with exponential
    backoff before moving on.  Success on any target finishes the op.
    """

    metric: InsertMetric
    callback: Optional[Callable[[InsertMetric], None]]
    index: str = ""
    record: Optional[Record] = None
    primary: Optional[Code] = None
    target: Optional[Code] = None
    replication: int = 0
    attempts: int = 0
    #: Monotonic attempt stamp across targets; echoed by failure reports so
    #: stale failures from superseded attempts are discarded.
    total_attempts: int = 0
    inflight: bool = False
    failover_enumerated: bool = False
    failover_queue: List[Code] = field(default_factory=list)
    timeout_event: Any = None
    attempt_timer: Any = None
    backoff_event: Any = None


@dataclass
class _RegionState:
    """Retry/failover state for one sub-query region of a query op.

    ``bits`` is the region currently being targeted; it starts at
    ``primary_bits`` and moves through the replica-holder regions when the
    primary's attempts are exhausted.  The op's pending/answered sets are
    keyed by ``"{valid_from}:{bits}"`` of the *current* target, so a
    failover re-keys the region under its new target.
    """

    valid_from: float
    bits: str
    primary_bits: str
    attempts: int = 0
    total_attempts: int = 0
    inflight: bool = False
    on_failover: bool = False
    failover_enumerated: bool = False
    failover_queue: List[str] = field(default_factory=list)
    #: Primary regions whose failover collapsed onto this region state
    #: (two dead primaries sharing a replica holder); reported missing as
    #: a group if this state also fails permanently.
    merged_primaries: List[str] = field(default_factory=list)
    attempt_timer: Any = None
    backoff_event: Any = None


@dataclass
class _QueryOp:
    metric: QueryMetric
    query: RangeQuery
    pending: Set[str]
    answered: Set[str] = field(default_factory=set)
    records: Dict[int, Record] = field(default_factory=dict)
    failed_regions: Set[str] = field(default_factory=set)
    regions: Dict[str, _RegionState] = field(default_factory=dict)
    #: Sub-query payload template per index version (keyed by valid_from),
    #: kept so any region — including responder-spawned ones — can be
    #: re-launched from the originator.
    inner_by_version: Dict[float, Dict[str, Any]] = field(default_factory=dict)
    replication: int = 0
    callback: Optional[Callable[[QueryMetric], None]] = None
    timeout_event: Any = None
    done: bool = False


class MindNode(OverlayNode):
    """One MIND instance: overlay participant + index manager + storage."""

    def __init__(
        self,
        sim,
        network,
        address: str,
        config: Optional[OverlayConfig] = None,
        mind_config: Optional[MindConfig] = None,
        speed_factor: float = 1.0,
    ) -> None:
        super().__init__(sim, network, address, config=config, speed_factor=speed_factor)
        self.mind_config = mind_config or MindConfig()
        self.indices: Dict[str, IndexState] = {}
        self._op_counter = itertools.count(1)
        self._insert_ops: Dict[str, _InsertOp] = {}
        self._query_ops: Dict[str, _QueryOp] = {}
        #: Flood dedupe keys, insertion-ordered so the eviction in
        #: :meth:`_flood` can drop the oldest half at the cap (a dict
        #: used as an ordered set, like the overlay's ``_ring_seen``).
        self._seen_floods: Dict[Tuple, None] = {}
        self._sibling_fetches: Dict[str, Dict[str, Any]] = {}
        self._histo_collections: Dict[str, Dict[str, Any]] = {}
        self.trigger_table = TriggerTable()
        self._trigger_subs: Dict[str, Callable[[Record], None]] = {}
        self._trigger_regs: Dict[str, Dict[str, Any]] = {}
        self.records_stored = 0
        self.replicas_stored = 0
        self.triggers_fired = 0
        #: Replica destination memo: the addresses depend only on the
        #: link set, own code, and replication degree — not on the record
        #: — so the per-stored-record scan is cached on the links() key.
        self._replica_dests_key: Optional[Tuple] = None
        self._replica_dests: List[str] = []
        #: Resource ledger (repro-leak quiescence sanitizer); ``None``
        #: when tracking is off.
        self._res = sim.resources

    # ==================================================================
    # Message plumbing
    # ==================================================================
    def extra_handlers(self):
        return {
            "insert_ack": self._on_insert_ack,
            "op_failed": self._on_op_failed,
            "query_response": self._on_query_response,
            "sibling_fetch": self._on_sibling_fetch,
            "sibling_data": self._on_sibling_data,
            "replica_store": self._on_replica_store,
            "index_create": self._on_index_create,
            "index_version": self._on_index_version,
            "index_drop": self._on_index_drop,
            "histo_request": self._on_histo_request,
            "histo_reply": self._on_histo_reply,
            "trigger_installed": self._on_trigger_installed,
            "trigger_fire": self._on_trigger_fire,
            "trigger_drop": self._on_trigger_drop,
        }

    def _next_op_id(self) -> str:
        return f"{self.address}:{next(self._op_counter)}"

    def _flood(self, kind: str, payload: Dict[str, Any], dedupe_key: Tuple) -> None:
        """Deliver a control message to every overlay node via link flooding."""
        if dedupe_key in self._seen_floods:
            return
        self._seen_floods[dedupe_key] = None
        if len(self._seen_floods) > 4096:
            # Bounded memory under long churn runs: drop the oldest half
            # (dict preserves insertion order).  A re-flood of an evicted
            # key re-sends one round of control messages and stops at
            # neighbors that still remember it — duplicate-delivery safe,
            # since every flood handler is idempotent.
            for key in list(self._seen_floods)[:2048]:
                del self._seen_floods[key]
        for addr, _ in self.links():
            self._send(addr, kind, payload, size_bytes=self.config.control_msg_bytes * 2)

    # ==================================================================
    # Fail-stop crash
    # ==================================================================
    def crash(self) -> None:
        """Fail-stop: tear down in-flight op state along with the overlay.

        Originator-side op state machines die with the process; before
        this override they survived ``crash()`` — insert retry timers
        kept churning against the dead node (firing completion callbacks
        minutes late once attempts exhausted) and trigger registrations
        stranded forever.  In-flight ops finish *failed* so harness
        callbacks resolve honestly; sibling fetches and histogram
        collections are dropped (their originator-side watchdogs cover
        them).  Durable state — stores, indices, installed triggers —
        survives like the prototype's MySQL, which churn recall depends
        on.
        """
        super().crash()
        res = self._res
        for op_id in list(self._insert_ops):
            op = self._insert_ops.pop(op_id)
            self._finish_insert(op, success=False, hops=None)
        for op_id in list(self._query_ops):
            op = self._query_ops.get(op_id)
            if op is not None:
                self._finish_query(op)
        for fetch_id in list(self._sibling_fetches):
            self._finish_sibling_fetch(fetch_id)
        for req_id in list(self._histo_collections):
            self._histo_collections.pop(req_id)
            if res is not None:
                res.release("op:histo", self.address)
        for reg_id in list(self._trigger_regs):
            reg = self._trigger_regs.get(reg_id)
            if reg is not None:
                reg["failed"] = True
                self._finish_trigger_registration(reg_id)

    # ==================================================================
    # Index lifecycle (create_index / drop_index)
    # ==================================================================
    def create_index(
        self,
        schema: IndexSchema,
        strategy=None,
        replication: int = 0,
        code_depth: Optional[int] = None,
    ) -> None:
        """Create and flood a new index from this node.

        ``strategy`` defaults to even cuts; pass a
        :class:`~repro.core.cuts.BalancedCuts` built from a histogram for
        the load-balanced embedding.
        """
        if schema.name in self.indices:
            raise ValueError(f"index {schema.name} already exists")
        embedding = Embedding(
            schema,
            strategy or EvenCuts(),
            code_depth=code_depth or self.mind_config.code_depth,
        )
        versions = VersionedEmbedding(embedding)
        payload = {
            "index": schema.name,
            "versions": versions.to_wire(),
            "replication": replication,
        }
        self._install_index(schema.name, versions, replication)
        self._flood("index_create", payload, ("create", schema.name))

    def drop_index(self, name: str) -> None:
        if name not in self.indices:
            raise KeyError(f"unknown index {name}")
        self._drop_index(name)
        self._flood("index_drop", {"index": name}, ("drop", name))

    def install_version(self, index: str, valid_from: float, embedding: Embedding) -> None:
        """Install a new daily embedding version and flood it (Section 3.7)."""
        state = self._state(index)
        state.versions.install(valid_from, embedding)
        payload = {"index": index, "valid_from": valid_from, "embedding": embedding.to_wire()}
        self._flood("index_version", payload, ("version", index, valid_from))

    def has_index(self, name: str) -> bool:
        return name in self.indices

    def has_version_at(self, name: str, valid_from: float) -> bool:
        state = self.indices.get(name)
        if state is None:
            return False
        return any(vf == valid_from for vf, _ in state.versions.versions)

    def _state(self, index: str) -> IndexState:
        state = self.indices.get(index)
        if state is None:
            raise KeyError(f"index {index} is not installed at {self.address}")
        return state

    def _install_index(self, name: str, versions: VersionedEmbedding, replication: int) -> None:
        schema = versions.latest().schema
        self.indices[name] = IndexState(
            schema=schema,
            versions=versions,
            replication=replication,
            store=TimePartitionedStore(
                schema,
                bucket_s=self.mind_config.store_bucket_s,
                vectorized=self.mind_config.vectorized_store,
            ),
            dac=DataAccessController(self.sim, self.mind_config.dac, self.speed_factor),
        )

    def _drop_index(self, name: str) -> None:
        self.indices.pop(name, None)

    def _on_index_create(self, msg: Message) -> None:
        payload = msg.payload
        name = payload["index"]
        key = ("create", name)
        if key in self._seen_floods:
            return
        if name not in self.indices:
            self._install_index(
                name, VersionedEmbedding.from_wire(payload["versions"]), payload["replication"]
            )
        # Copy-on-send: reflooding the received payload object would share
        # one container across every node the flood reaches.
        self._flood("index_create", dict(payload), key)

    def _on_index_version(self, msg: Message) -> None:
        payload = msg.payload
        name, valid_from = payload["index"], payload["valid_from"]
        key = ("version", name, valid_from)
        if key in self._seen_floods:
            return
        state = self.indices.get(name)
        if state is not None and not self.has_version_at(name, valid_from):
            state.versions.install(valid_from, Embedding.from_wire(payload["embedding"]))
        self._flood("index_version", dict(payload), key)

    def _on_index_drop(self, msg: Message) -> None:
        name = msg.payload["index"]
        key = ("drop", name)
        if key in self._seen_floods:
            return
        self._drop_index(name)
        self._flood("index_drop", dict(msg.payload), key)

    # ==================================================================
    # Hooks from the overlay layer
    # ==================================================================
    def on_split_transfer_state(self, old_code: Code, joiner_code: Code) -> Dict[str, Any]:
        return {
            "indices": [
                {
                    "index": name,
                    "versions": state.versions.to_wire(),
                    "replication": state.replication,
                }
                for name, state in self.indices.items()
            ],
            "floods": sorted((list(k) for k in self._seen_floods), key=str),
            "triggers": self.trigger_table.all_wire(),
        }

    def on_split_received_state(self, state: Dict[str, Any]) -> None:
        for entry in state.get("indices", ()):
            if entry["index"] not in self.indices:
                self._install_index(
                    entry["index"],
                    VersionedEmbedding.from_wire(entry["versions"]),
                    entry["replication"],
                )
        for key in state.get("floods", ()):
            self._seen_floods[tuple(key)] = None
        for entry in state.get("triggers", ()):
            self.trigger_table.install(entry["index"], Trigger.from_wire(entry["trigger"]))

    def on_route_arrival(self, envelope: Dict[str, Any]) -> None:
        inner_kind = envelope["inner_kind"]
        if inner_kind == "insert":
            self._arrive_insert(envelope)
        elif inner_kind == "subquery":
            self._arrive_subquery(envelope)
        elif inner_kind == "trigger_install":
            self._arrive_trigger_install(envelope)
        else:
            super().on_route_arrival(envelope)

    def on_route_failed(self, envelope: Dict[str, Any], reason: str) -> None:
        inner_kind = envelope["inner_kind"]
        if inner_kind not in ("insert", "trigger_install", "subquery"):
            super().on_route_failed(envelope, reason)
            return
        inner = envelope["inner"]
        origin = envelope["origin"]
        if inner_kind == "insert":
            payload = {
                "kind": "insert",
                "op_id": inner["op_id"],
                "attempt": inner.get("attempt", 1),
            }
        elif inner_kind == "trigger_install":
            payload = {
                "kind": "trigger_install",
                "op_id": inner["reg_id"],
                "region": envelope["target"],
            }
        else:
            payload = {
                "kind": "subquery",
                "op_id": inner["qid"],
                "version": inner["version"],
                "region_bits": envelope["target"],
                "attempt": inner.get("attempt", 1),
            }
        if origin == self.address:
            self._apply_op_failure(payload)
        else:
            self._send(origin, "op_failed", payload)

    def _on_op_failed(self, msg: Message) -> None:
        self._apply_op_failure(msg.payload)

    def _apply_op_failure(self, payload: Dict[str, Any]) -> None:
        if payload["kind"] == "insert":
            op = self._insert_ops.get(payload["op_id"])
            if op is None or not op.inflight:
                return
            if payload.get("attempt", op.total_attempts) != op.total_attempts:
                return  # stale failure from a superseded attempt
            self._insert_attempt_failed(payload["op_id"])
        elif payload["kind"] == "trigger_install":
            reg = self._trigger_regs.get(payload["op_id"])
            if reg is not None:
                reg["failed"] = True
                reg["pending"].discard(payload["region"])
                if not reg["pending"]:
                    self._finish_trigger_registration(payload["op_id"])
        else:
            op = self._query_ops.get(payload["op_id"])
            if op is None or op.done:
                return
            valid_from = payload["version"]
            bits = payload["region_bits"]
            key = self._region_key(valid_from, bits)
            if key in op.answered:
                return
            region = op.regions.get(key)
            if region is None:
                # A responder-spawned sub-query failed before the response
                # announcing it arrived; adopt the region so the retry
                # machinery owns it from here.
                if valid_from not in op.inner_by_version:
                    return
                region = _RegionState(
                    valid_from=valid_from,
                    bits=bits,
                    primary_bits=bits,
                    attempts=1,
                    total_attempts=payload.get("attempt", 1),
                    inflight=True,
                )
                op.regions[key] = region
                op.pending.add(key)
            elif not region.inflight or payload.get("attempt", region.total_attempts) != region.total_attempts:
                return
            self._subquery_attempt_failed(op, key)

    # ==================================================================
    # Insertion (Section 3.5)
    # ==================================================================
    def insert_record(
        self,
        index: str,
        record: Record,
        callback: Optional[Callable[[InsertMetric], None]] = None,
    ) -> str:
        """Insert a record into an index from this node; returns the op id."""
        state = self._state(index)
        time_dim = state.schema.time_dimension()
        t_ref = record.values[time_dim] if time_dim is not None else self.sim.now
        embedding = state.versions.for_time(t_ref)
        code = embedding.point_code(record.values)
        op_id = self._next_op_id()
        metric = InsertMetric(op_id=op_id, index=index, origin=self.address, start=self.sim.now)
        op = _InsertOp(
            metric=metric,
            callback=callback,
            index=index,
            record=record,
            primary=code,
            target=code,
            replication=state.replication,
        )
        op.timeout_event = self._schedule_coarse(
            self.mind_config.insert_timeout_s, self._insert_timed_out, op_id
        )
        self._insert_ops[op_id] = op
        if self._res is not None:
            self._res.register("op:insert", self.address)
        self._launch_insert_attempt(op_id)
        return op_id

    def _retry_backoff(self, attempts: int) -> float:
        """Exponential backoff (with a little jitter) before attempt N+1."""
        cfg = self.mind_config
        base = min(cfg.retry_backoff_base_s * (2 ** (attempts - 1)), cfg.retry_backoff_max_s)
        return base * (1.0 + 0.1 * self._rng.random())

    def _launch_insert_attempt(self, op_id: str) -> None:
        op = self._insert_ops.get(op_id)
        if op is None:
            return
        op.backoff_event = None
        op.attempts += 1
        op.total_attempts += 1
        op.inflight = True
        op.attempt_timer = self._schedule_coarse(
            self.mind_config.insert_attempt_timeout_s,
            self._insert_attempt_timed_out,
            op_id,
            op.total_attempts,
        )
        inner = {
            "index": op.index,
            "record": op.record.to_wire(),
            "op_id": op_id,
            "attempt": op.total_attempts,
        }
        self.route(
            op.target,
            "insert",
            inner,
            op_id=("ins", op_id, op.total_attempts),
            tuples=1,
            attempt=op.total_attempts,
        )

    def _insert_attempt_timed_out(self, op_id: str, stamp: int) -> None:
        op = self._insert_ops.get(op_id)
        if op is None or not op.inflight or op.total_attempts != stamp:
            return
        self._insert_attempt_failed(op_id)

    def _insert_attempt_failed(self, op_id: str) -> None:
        """One routing attempt is dead: back off and retry, fail over to the
        next replica-holder region, or give up when both are exhausted."""
        op = self._insert_ops.get(op_id)
        if op is None:
            return
        op.inflight = False
        if op.attempt_timer is not None:
            op.attempt_timer.cancel()
            op.attempt_timer = None
        if op.attempts < self.mind_config.retry_max_attempts:
            op.metric.retries += 1
            op.backoff_event = self.sim.schedule(
                self._retry_backoff(op.attempts), self._launch_insert_attempt, op_id
            )
            return
        if not op.failover_enumerated:
            op.failover_enumerated = True
            if self.in_overlay():
                # The originator does not know the (dead) owner's exact code
                # length; its own depth is the best estimate in a balanced
                # trie, and the flips land in the takeover regions.
                depth = min(len(self.code), len(op.primary))
                op.failover_queue = failover_targets(op.primary, op.replication, depth)
        if op.failover_queue:
            op.target = op.failover_queue.pop(0)
            op.attempts = 0
            op.metric.failovers += 1
            self._launch_insert_attempt(op_id)
            return
        self._insert_ops.pop(op_id, None)
        self._finish_insert(op, success=False, hops=None)

    def _insert_timed_out(self, op_id: str) -> None:
        op = self._insert_ops.pop(op_id, None)
        if op is not None:
            self._finish_insert(op, success=False, hops=None)

    def _finish_insert(self, op: _InsertOp, success: bool, hops: Optional[int]) -> None:
        for event in (op.timeout_event, op.attempt_timer, op.backoff_event):
            if event is not None:
                event.cancel()
        op.timeout_event = op.attempt_timer = op.backoff_event = None
        if self._res is not None:
            self._res.release("op:insert", self.address)
        op.metric.end = self.sim.now
        op.metric.success = success
        op.metric.hops = hops
        if op.callback is not None:
            op.callback(op.metric)

    def _arrive_insert(self, envelope: Dict[str, Any]) -> None:
        inner = envelope["inner"]
        state = self.indices.get(inner["index"])
        if state is None:
            # Flood race: the index is not installed here yet.  Fail the op
            # so the originator can retry rather than silently losing data.
            self.on_route_failed(envelope, "no-such-index")
            return
        record = Record.from_wire(inner["record"])
        state.dac.submit(
            state.dac.insert_cost(1), self._complete_insert_store, state, record, envelope
        )

    def _complete_insert_store(self, state: IndexState, record: Record, envelope: Dict[str, Any]) -> None:
        if not self.in_overlay():
            # We accepted the insert but left the overlay between DAC submit
            # and completion.  Tell the originator now — it turns this into
            # a retry/failover immediately instead of waiting out the full
            # insert timeout.  (A *crashed* node can't send; the
            # originator's attempt watchdog covers that case.)
            self.on_route_failed(envelope, "left-overlay")
            return
        if state.store.insert(record):
            self.records_stored += 1
            self._fire_triggers(state, record)
        origin = envelope["origin"]
        ack = {"op_id": envelope["inner"]["op_id"], "hops": envelope["hops"]}
        if origin == self.address:
            self._apply_insert_ack(ack)
        else:
            self._send(origin, "insert_ack", ack)
        self._replicate(state, record)

    def _replicate(self, state: IndexState, record: Record) -> None:
        if state.replication == 0 or self.code is None or len(self.code) == 0:
            return
        links = self.links()
        key = (self._links_key, self.code, state.replication)
        if key != self._replica_dests_key:
            targets = replica_targets(self.code, state.replication)
            dests: List[str] = []
            sent: Set[str] = set()
            for target in targets:
                for addr, code in links:
                    if code.comparable(target) and addr not in sent:
                        sent.add(addr)
                        dests.append(addr)
            self._replica_dests_key = key
            self._replica_dests = dests
        wire = {"index": state.schema.name, "record": record.to_wire()}
        for addr in self._replica_dests:
            self._send(
                addr,
                "replica_store",
                wire,
                size_bytes=self.mind_config.record_wire_bytes,
                tuples=1,
            )

    def _on_replica_store(self, msg: Message) -> None:
        state = self.indices.get(msg.payload["index"])
        if state is None:
            return
        record = Record.from_wire(msg.payload["record"])
        state.dac.submit(state.dac.replica_cost(1), self._complete_replica_store, state, record)

    def _complete_replica_store(self, state: IndexState, record: Record) -> None:
        if not self.in_overlay():
            return
        if state.store.insert(record):
            self.replicas_stored += 1

    def _on_insert_ack(self, msg: Message) -> None:
        self._apply_insert_ack(msg.payload)

    def _apply_insert_ack(self, payload: Dict[str, Any]) -> None:
        op = self._insert_ops.pop(payload["op_id"], None)
        if op is not None:
            self._finish_insert(op, success=True, hops=payload["hops"])

    # ==================================================================
    # Query processing (Section 3.6)
    # ==================================================================
    def query_index(
        self,
        query: RangeQuery,
        callback: Optional[Callable[[QueryMetric], None]] = None,
    ) -> str:
        """Issue a multi-dimensional range query from this node.

        A query whose time interval spans several daily index versions is
        split into one sub-operation per version — each version has its
        own cut tree, so "the relevant index versions ... will be evident
        from the query itself" (Section 3.7).  Results merge under one op.
        """
        state = self._state(query.index)
        rect = query.normalized_rect(state.schema)
        t_lo, t_hi = self._query_time_range(state.schema, query)
        segments = self._version_segments(state, t_lo, t_hi)

        op_id = self._next_op_id()
        metric = QueryMetric(op_id=op_id, index=query.index, origin=self.address, start=self.sim.now)
        op = _QueryOp(
            metric=metric,
            query=query,
            pending=set(),
            callback=callback,
            replication=state.replication,
        )
        op.timeout_event = self.sim.schedule(
            self.mind_config.query_timeout_s, self._query_timed_out, op_id
        )
        self._query_ops[op_id] = op
        if self._res is not None:
            self._res.register("op:query", self.address)

        time_dim = state.schema.time_dimension()
        for version_idx, seg_lo, seg_hi in segments:
            seg_rect = self._clamp_time(rect, state.schema, time_dim, seg_lo, seg_hi)
            # Versions are referenced by valid_from on the wire: list
            # positions diverge across nodes once anyone has run
            # retire_before, but the valid_from key is globally stable.
            valid_from, embedding = state.versions.versions[version_idx]
            prefix = embedding.query_prefix(seg_rect)
            op.inner_by_version[valid_from] = {
                "index": query.index,
                "qid": op_id,
                "rect": [list(side) for side in seg_rect],
                "version": valid_from,
                "time_range": [seg_lo, seg_hi],
            }
            key = self._region_key(valid_from, prefix.bits)
            op.regions[key] = _RegionState(
                valid_from=valid_from, bits=prefix.bits, primary_bits=prefix.bits
            )
            op.pending.add(key)
            self._launch_subquery(op_id, key)
        return op_id

    @staticmethod
    def _region_key(valid_from: float, bits: str) -> str:
        return f"{valid_from}:{bits}"

    def _plausible_failover_holder(self, failed: Code, level: int) -> bool:
        """Could this node hold level-``level`` replicas of ``failed``'s data?

        The originator flips bits of the failed region as if it were a
        single dead owner's region.  This node sees the region's interior
        through its neighbor table: if the region was subdivided deeper
        than the replication level reaches outward, every surviving copy
        lived *inside* the dead region and answering would fake
        completeness — refuse instead, so the originator reports the
        region missing.  A known interior owner at depth ``k`` only
        replicates outside a region of length ``f`` when ``level > k - f``.
        """
        if self.code is None or level == 0:
            return False
        deepest = len(failed)
        for _, code in self.links(alive_only=False):
            if code.comparable(failed) and len(code) > deepest:
                deepest = len(code)
        m = deepest if level == FULL_REPLICATION else level
        if m <= deepest - len(failed):
            return False
        return any(
            self.code.comparable(target)
            for target in failover_targets(failed, level, len(failed))
        )

    def _launch_subquery(self, op_id: str, key: str) -> None:
        op = self._query_ops.get(op_id)
        if op is None or op.done:
            return
        region = op.regions.get(key)
        if region is None or key in op.answered:
            return
        region.backoff_event = None
        region.attempts += 1
        region.total_attempts += 1
        region.inflight = True
        region.attempt_timer = self.sim.schedule(
            self.mind_config.subquery_attempt_timeout_s,
            self._subquery_attempt_timed_out,
            op_id,
            key,
            region.total_attempts,
        )
        inner = dict(op.inner_by_version[region.valid_from])
        inner["attempt"] = region.total_attempts
        if region.on_failover:
            inner["failover"] = True
            inner["failover_for"] = region.primary_bits
        self.route(
            Code(region.bits),
            "subquery",
            inner,
            op_id=("sub", op_id, region.valid_from, region.bits, region.total_attempts),
            attempt=region.total_attempts,
        )

    def _subquery_attempt_timed_out(self, op_id: str, key: str, stamp: int) -> None:
        op = self._query_ops.get(op_id)
        if op is None or op.done or key in op.answered:
            return
        region = op.regions.get(key)
        if region is None or not region.inflight or region.total_attempts != stamp:
            return
        self._subquery_attempt_failed(op, key)

    def _subquery_attempt_failed(self, op: _QueryOp, key: str) -> None:
        """One sub-query attempt is dead: retry with backoff, fail over to a
        replica-holder region, or record the region as missing."""
        region = op.regions[key]
        region.inflight = False
        if region.attempt_timer is not None:
            region.attempt_timer.cancel()
            region.attempt_timer = None
        if region.attempts < self.mind_config.retry_max_attempts:
            op.metric.retries += 1
            region.backoff_event = self.sim.schedule(
                self._retry_backoff(region.attempts),
                self._launch_subquery,
                op.metric.op_id,
                key,
            )
            return
        if not region.failover_enumerated:
            region.failover_enumerated = True
            # The flips assume the failed region is one dead owner's region.
            # When it is actually a subdivided subtree the targets may not
            # hold its replicas — the responder-side holder check
            # (:meth:`_plausible_failover_holder`) rejects those sub-queries
            # so a non-holder's answer can't fake completeness.
            region.failover_queue = [
                c.bits
                for c in failover_targets(
                    Code(region.primary_bits), op.replication, len(region.primary_bits)
                )
            ]
        op.pending.discard(key)
        op.regions.pop(key, None)
        if region.failover_queue:
            new_bits = region.failover_queue.pop(0)
            op.metric.failovers += 1
            new_key = self._region_key(region.valid_from, new_bits)
            if new_key in op.answered:
                # The replica region already answered this op from its whole
                # local store, so the failed region's surviving copies are
                # in the merged results; nothing left to fetch.
                if not op.pending:
                    self._finish_query(op)
                return
            other = op.regions.get(new_key)
            if other is not None:
                # Another failed primary is already querying this replica
                # region; ride along and share its fate.
                other.merged_primaries.append(region.primary_bits)
                other.merged_primaries.extend(region.merged_primaries)
                return
            region.bits = new_bits
            region.attempts = 0
            region.on_failover = True
            op.regions[new_key] = region
            op.pending.add(new_key)
            self._launch_subquery(op.metric.op_id, new_key)
            return
        for primary in [region.primary_bits, *region.merged_primaries]:
            op.failed_regions.add(self._region_key(region.valid_from, primary))
        if not op.pending:
            self._finish_query(op)

    @staticmethod
    def _query_time_range(schema: IndexSchema, query: RangeQuery) -> Tuple[Optional[float], Optional[float]]:
        time_dim = schema.time_dimension()
        if time_dim is None:
            return (None, None)
        lo, hi = query.interval(schema.attributes[time_dim].name)
        return (lo, hi)

    def _version_segments(
        self, state: IndexState, t_lo: Optional[float], t_hi: Optional[float]
    ) -> List[Tuple[int, Optional[float], Optional[float]]]:
        """(version index, segment lo, segment hi) per version the query hits."""
        versions = state.versions.versions
        if state.schema.time_dimension() is None:
            return [(len(versions) - 1, t_lo, t_hi)]
        lo = float("-inf") if t_lo is None else t_lo
        hi = float("inf") if t_hi is None else t_hi
        segments = []
        for i, (valid_from, _) in enumerate(versions):
            valid_to = versions[i + 1][0] if i + 1 < len(versions) else float("inf")
            seg_lo = max(lo, valid_from)
            seg_hi = min(hi, valid_to)
            if seg_lo < seg_hi:
                segments.append(
                    (
                        i,
                        None if seg_lo == float("-inf") else seg_lo,
                        None if seg_hi == float("inf") else seg_hi,
                    )
                )
        if not segments:
            # Degenerate interval: fall back to the version at t_lo.
            idx = state.versions.version_index_for_time(lo if lo != float("-inf") else self.sim.now)
            segments = [(idx, t_lo, t_hi)]
        return segments

    @staticmethod
    def _clamp_time(rect, schema: IndexSchema, time_dim: Optional[int], seg_lo, seg_hi):
        """Restrict the rect's time dimension to a version segment."""
        if time_dim is None:
            return rect
        attr = schema.attributes[time_dim]
        lo, hi = rect[time_dim]
        if seg_lo is not None:
            lo = max(lo, attr.normalize(seg_lo))
        if seg_hi is not None and seg_hi < attr.hi:
            hi = min(hi, attr.normalize(seg_hi))
        return rect[:time_dim] + ((lo, hi),) + rect[time_dim + 1 :]

    def _query_timed_out(self, op_id: str) -> None:
        op = self._query_ops.get(op_id)
        if op is None or op.done:
            return
        if op.pending:
            # Report exactly which regions never answered, by their primary
            # identity, so a degraded result names what is missing.
            for key in sorted(op.pending):
                region = op.regions.get(key)
                if region is None:
                    op.failed_regions.add(key)
                    continue
                for primary in [region.primary_bits, *region.merged_primaries]:
                    op.failed_regions.add(self._region_key(region.valid_from, primary))
        else:
            op.failed_regions.add("timeout")
        self._finish_query(op)

    def _finish_query(self, op: _QueryOp) -> None:
        op.done = True
        self._query_ops.pop(op.metric.op_id, None)
        if self._res is not None:
            self._res.release("op:query", self.address)
        if op.timeout_event is not None:
            op.timeout_event.cancel()
        for region in op.regions.values():
            for event in (region.attempt_timer, region.backoff_event):
                if event is not None:
                    event.cancel()
            region.attempt_timer = region.backoff_event = None
        op.metric.failed_regions = set(op.failed_regions)
        op.metric.end = self.sim.now
        op.metric.records = len(op.records)
        op.metric.record_keys = set(op.records)
        op.metric.results = list(op.records.values())
        op.metric.complete = not op.failed_regions and not op.pending
        op.metric.nodes_visited.discard(self.address)
        if op.callback is not None:
            op.callback(op.metric)

    def query_results(self, op_id: str) -> List[Record]:
        """Records accumulated so far for an in-flight query."""
        op = self._query_ops.get(op_id)
        if op is None:
            raise KeyError(f"no in-flight query {op_id}")
        return list(op.records.values())

    def _arrive_subquery(self, envelope: Dict[str, Any]) -> None:
        inner = envelope["inner"]
        region = Code(envelope["target"])
        state = self.indices.get(inner["index"])
        if state is None:
            self.on_route_failed(envelope, "no-such-index")
            return

        if inner.get("failover"):
            failed = Code(inner.get("failover_for", envelope["target"]))
            if not self._plausible_failover_holder(failed, state.replication):
                # We cover the flip target but never received this region's
                # replicas (it was subdivided past the replication level's
                # outward reach) — answering would fake completeness.
                self.on_route_failed(envelope, "not-replica-holder")
                return

        embedding = state.versions.embedding_for_version(inner["version"])
        qrect = tuple((lo, hi) for lo, hi in inner["rect"])
        own = self._owned_region_for(region)

        spawned: List[str] = []
        if not inner.get("failover") and own is not None and len(own) > len(region):
            # This node owns a sub-region of the addressed region: split the
            # remainder into complement cells and route each as its own
            # sub-query (the paper's query splitting at the first abutting
            # node).  Failed-over sub-queries skip the split: replicas are
            # placed by the dead node's code, not by the query rectangle,
            # so rect pruning would be wrong — the holder answers from its
            # whole local store instead.
            for i in range(len(region), len(own)):
                cell = own.prefix(i + 1).flip(i)
                cell_rect = embedding.region_rect(cell)
                if rect_intersection(cell_rect, qrect) is not None:
                    spawned.append(cell.bits)
                    sub_env_inner = dict(inner)
                    self.route(
                        cell,
                        "subquery",
                        sub_env_inner,
                        op_id=("sub", inner["qid"], inner["version"], cell.bits, inner.get("attempt", 1)),
                        origin=envelope["origin"],
                        attempt=inner.get("attempt", 1),
                    )

        time_range = inner.get("time_range")
        t_range = None
        if time_range and time_range[0] is not None and time_range[1] is not None:
            t_range = (time_range[0], time_range[1])
        # Answer from the whole local store, exactly as the prototype's DAC
        # ran the query predicate against its local MySQL: this returns
        # resident replicas and not-yet-migrated data too.  The originator
        # deduplicates by record key, and failed-over regions are served
        # from whichever replica holder the sub-query lands on.
        matches = state.store.query(qrect, t_range)
        state.dac.submit(
            state.dac.query_cost(len(matches)),
            self._after_query_dac,
            envelope,
            spawned,
            matches,
            qrect,
            t_range,
        )

    def _after_query_dac(
        self,
        envelope: Dict[str, Any],
        spawned: List[str],
        matches: List[Record],
        effective,
        t_range,
    ) -> None:
        if not self.in_overlay():
            return
        pointer = self.sibling_pointer
        if pointer is not None and pointer.live(self.sim.now):
            # Pre-split data for our region still lives at the split host;
            # fetch it before responding (Section 3.4's sibling pointer).
            fetch_id = self._next_op_id()
            self._sibling_fetches[fetch_id] = {
                "envelope": envelope,
                "spawned": spawned,
                "matches": {r.key: r for r in matches},
                # Watchdog: a sibling that received the fetch but died (or
                # left the overlay) before replying sends neither data nor
                # a failure — without a timer this entry lives forever and
                # the sub-query response never goes out.  Time out and
                # answer with the local matches we already have.
                "timeout_event": self._schedule_coarse(
                    self.mind_config.subquery_attempt_timeout_s,
                    self._sibling_fetch_timed_out,
                    fetch_id,
                ),
            }
            if self._res is not None:
                self._res.register("op:sibling", self.address)

            def fetch_failed(msg, reason, _fid=fetch_id):
                pending = self._finish_sibling_fetch(_fid)
                if pending is not None:
                    self._respond_query(
                        pending["envelope"], pending["spawned"], list(pending["matches"].values())
                    )

            self._send(
                pointer.sibling,
                "sibling_fetch",
                {
                    "fetch_id": fetch_id,
                    "index": envelope["inner"]["index"],
                    "rect": [list(side) for side in effective],
                    "time_range": list(t_range) if t_range else None,
                },
                on_fail=fetch_failed,
            )
            return
        self._respond_query(envelope, spawned, matches)

    def _on_sibling_fetch(self, msg: Message) -> None:
        payload = msg.payload
        state = self.indices.get(payload["index"])
        if state is None:
            self._send(msg.src, "sibling_data", {"fetch_id": payload["fetch_id"], "records": []})
            return
        rect = tuple((lo, hi) for lo, hi in payload["rect"])
        t_range = tuple(payload["time_range"]) if payload["time_range"] else None
        matches = state.store.query(rect, t_range)
        state.dac.submit(
            state.dac.query_cost(len(matches)),
            self._send,
            msg.src,
            "sibling_data",
            {
                "fetch_id": payload["fetch_id"],
                "records": [r.to_wire() for r in matches],
            },
            self.mind_config.response_base_bytes
            + self.mind_config.record_wire_bytes * len(matches),
        )

    def _finish_sibling_fetch(self, fetch_id: str) -> Optional[Dict[str, Any]]:
        """Close out one sibling fetch on any exit path; None if already done."""
        pending = self._sibling_fetches.pop(fetch_id, None)
        if pending is None:
            return None
        event = pending["timeout_event"]
        if event is not None:
            event.cancel()
        if self._res is not None:
            self._res.release("op:sibling", self.address)
        return pending

    def _sibling_fetch_timed_out(self, fetch_id: str) -> None:
        pending = self._finish_sibling_fetch(fetch_id)
        if pending is not None:
            self._respond_query(
                pending["envelope"], pending["spawned"], list(pending["matches"].values())
            )

    def _on_sibling_data(self, msg: Message) -> None:
        pending = self._finish_sibling_fetch(msg.payload["fetch_id"])
        if pending is None:
            return
        for wire in msg.payload["records"]:
            record = Record.from_wire(wire)
            pending["matches"][record.key] = record
        self._respond_query(
            pending["envelope"], pending["spawned"], list(pending["matches"].values())
        )

    def _respond_query(self, envelope: Dict[str, Any], spawned: List[str], matches: List[Record]) -> None:
        origin = envelope["origin"]
        payload = {
            "qid": envelope["inner"]["qid"],
            "version": envelope["inner"]["version"],
            "region": envelope["target"],
            "spawned": spawned,
            "records": [r.to_wire() for r in matches],
            # Copy-on-send: the envelope's path list stays live in retained
            # state (sibling fetches hold the envelope), so ship a snapshot.
            "path": list(envelope["path"]),
            "responder": self.address,
            "attempt": envelope["inner"].get("attempt", 1),
            "failover": bool(envelope["inner"].get("failover", False)),
        }
        size = self.mind_config.response_base_bytes + self.mind_config.record_wire_bytes * len(matches)
        if origin == self.address:
            self._apply_query_response(payload)
        else:
            def response_failed(msg, reason):
                # The paper saw exactly this: responders unable to reach the
                # originator during routing outages retry the direct
                # connection (Figure 11's spikes).  Retry until the op ages
                # out at the originator.  Each attempt is a fresh clone, so
                # size accounting and payload never alias between attempts.
                self.network.resend(msg, on_fail=response_failed)

            self._send(origin, "query_response", payload, size_bytes=size, on_fail=response_failed)

    def _on_query_response(self, msg: Message) -> None:
        self._apply_query_response(msg.payload)

    def _apply_query_response(self, payload: Dict[str, Any]) -> None:
        op = self._query_ops.get(payload["qid"])
        if op is None or op.done:
            return
        valid_from = payload.get("version", 0)
        key = self._region_key(valid_from, payload["region"])
        from_failover = bool(payload.get("failover"))
        op.metric.nodes_visited.update(payload["path"])
        op.metric.nodes_visited.add(payload["responder"])
        schema = self._state(op.query.index).schema
        for wire in payload["records"]:
            record = Record.from_wire(wire)
            if op.query.matches(schema, record):
                if from_failover and record.key not in op.records:
                    op.metric.replica_records += 1
                op.records[record.key] = record
        if key not in op.answered:
            # Responses can arrive out of order (a child sub-query may beat
            # the parent that spawned it), so track answered regions and
            # only add spawned regions not yet accounted for.
            op.answered.add(key)
            op.pending.discard(key)
            region = op.regions.pop(key, None)
            if region is not None:
                for event in (region.attempt_timer, region.backoff_event):
                    if event is not None:
                        event.cancel()
            for spawned in payload["spawned"]:
                self._track_spawned(op, valid_from, spawned, payload.get("attempt", 1))
            op.metric.regions += 1
        if not op.pending:
            self._finish_query(op)

    def _track_spawned(self, op: _QueryOp, valid_from: float, bits: str, stamp: int) -> None:
        """Adopt a responder-spawned sub-query region into the retry machinery.

        The responder already routed the sub-query (counted as this
        region's first in-flight attempt); the originator arms the attempt
        watchdog so a spawned sub-query that dies silently is re-launched
        from here.
        """
        key = self._region_key(valid_from, bits)
        if key in op.answered or key in op.regions:
            return
        region = _RegionState(
            valid_from=valid_from,
            bits=bits,
            primary_bits=bits,
            attempts=1,
            total_attempts=stamp,
            inflight=True,
        )
        region.attempt_timer = self.sim.schedule(
            self.mind_config.subquery_attempt_timeout_s,
            self._subquery_attempt_timed_out,
            op.metric.op_id,
            key,
            stamp,
        )
        op.regions[key] = region
        op.pending.add(key)

    def _owned_region_for(self, region: Code) -> Optional[Code]:
        """The owned region code comparable with ``region``, if any."""
        candidates = []
        if self.code is not None and self.code.comparable(region):
            candidates.append(self.code)
        for adopted in sorted(self.adopted):
            if adopted.comparable(region):
                candidates.append(adopted)
        if not candidates:
            return None
        return max(candidates, key=lambda c: (c.common_prefix_len(region), -len(c)))

    # ==================================================================
    # Triggers — continuous queries (Section 2's footnote extension)
    # ==================================================================
    def create_trigger(
        self,
        query: RangeQuery,
        callback: Callable[[Record], None],
        expires_at: Optional[float] = None,
        installed: Optional[Callable[[bool], None]] = None,
    ) -> str:
        """Register a standing query; ``callback`` fires per matching insert.

        Registration routes like a query: it reaches every node whose
        region intersects the trigger's hyper-rectangle.  ``installed``
        (if given) is called with True once every region acknowledged, or
        False if part of the registration failed.
        """
        state = self._state(query.index)
        trigger = Trigger(
            trigger_id=new_trigger_id(self.address),
            query=query,
            subscriber=self.address,
            expires_at=expires_at,
        )
        self._trigger_subs[trigger.trigger_id] = callback

        rect = query.normalized_rect(state.schema)
        latest_valid_from = state.versions.versions[-1][0]
        embedding = state.versions.latest()
        prefix = embedding.query_prefix(rect)
        reg_id = self._next_op_id()
        self._trigger_regs[reg_id] = {
            "pending": {prefix.bits},
            "answered": set(),
            "failed": False,
            "installed": installed,
            "trigger_id": trigger.trigger_id,
            # Watchdog: without it a registration whose final ack is lost
            # (the installing node answered but the ack's sender died, or
            # this originator was down when it arrived) strands forever —
            # no attempt timer covers trigger installs.
            "timeout_event": self.sim.schedule(
                self.mind_config.query_timeout_s, self._trigger_reg_timed_out, reg_id
            ),
        }
        if self._res is not None:
            self._res.register("op:trigger-reg", self.address)
        inner = {
            "index": query.index,
            "reg_id": reg_id,
            "rect": [list(side) for side in rect],
            "version": latest_valid_from,
            "trigger": trigger.to_wire(),
        }
        self.route(prefix, "trigger_install", inner, op_id=("trig", reg_id, prefix.bits))
        return trigger.trigger_id

    def drop_trigger(self, index: str, trigger_id: str) -> None:
        """Remove a trigger everywhere (flooded, like index drops)."""
        self._trigger_subs.pop(trigger_id, None)
        self.trigger_table.remove(index, trigger_id)
        self._flood(
            "trigger_drop", {"index": index, "trigger_id": trigger_id},
            ("trigdrop", trigger_id),
        )

    def _arrive_trigger_install(self, envelope: Dict[str, Any]) -> None:
        inner = envelope["inner"]
        region = Code(envelope["target"])
        state = self.indices.get(inner["index"])
        if state is None:
            self.on_route_failed(envelope, "no-such-index")
            return
        embedding = state.versions.embedding_for_version(inner["version"])
        qrect = tuple((lo, hi) for lo, hi in inner["rect"])
        own = self._owned_region_for(region)

        spawned: List[str] = []
        if own is not None and len(own) > len(region):
            for i in range(len(region), len(own)):
                cell = own.prefix(i + 1).flip(i)
                if rect_intersection(embedding.region_rect(cell), qrect) is not None:
                    spawned.append(cell.bits)
                    self.route(
                        cell,
                        "trigger_install",
                        dict(inner),
                        op_id=("trig", inner["reg_id"], cell.bits),
                        origin=envelope["origin"],
                    )
        self.trigger_table.install(inner["index"], Trigger.from_wire(inner["trigger"]))
        ack = {"reg_id": inner["reg_id"], "region": envelope["target"], "spawned": spawned}
        if envelope["origin"] == self.address:
            self._apply_trigger_installed(ack)
        else:
            self._send(envelope["origin"], "trigger_installed", ack)

    def _on_trigger_installed(self, msg: Message) -> None:
        self._apply_trigger_installed(msg.payload)

    def _apply_trigger_installed(self, payload: Dict[str, Any]) -> None:
        reg = self._trigger_regs.get(payload["reg_id"])
        if reg is None:
            return
        region = payload["region"]
        if region not in reg["answered"]:
            reg["answered"].add(region)
            reg["pending"].discard(region)
            for spawned in payload["spawned"]:
                if spawned not in reg["answered"]:
                    reg["pending"].add(spawned)
        if not reg["pending"]:
            self._finish_trigger_registration(payload["reg_id"])

    def _trigger_reg_timed_out(self, reg_id: str) -> None:
        reg = self._trigger_regs.get(reg_id)
        if reg is None:
            return
        reg["failed"] = True
        reg["timeout_event"] = None
        self._finish_trigger_registration(reg_id)

    def _finish_trigger_registration(self, reg_id: str) -> None:
        reg = self._trigger_regs.pop(reg_id, None)
        if reg is None:
            return
        if reg["timeout_event"] is not None:
            reg["timeout_event"].cancel()
        if self._res is not None:
            self._res.release("op:trigger-reg", self.address)
        if reg["installed"] is not None:
            reg["installed"](not reg["failed"])

    def _fire_triggers(self, state: IndexState, record: Record) -> None:
        matches = self.trigger_table.matching(
            state.schema.name, state.schema, record, self.sim.now
        )
        for trigger in matches:
            self.triggers_fired += 1
            payload = {
                "trigger_id": trigger.trigger_id,
                "index": state.schema.name,
                "record": record.to_wire(),
            }
            if trigger.subscriber == self.address:
                self._deliver_trigger_fire(payload)
            else:
                self._send(
                    trigger.subscriber,
                    "trigger_fire",
                    payload,
                    size_bytes=self.mind_config.record_wire_bytes,
                )

    def _on_trigger_fire(self, msg: Message) -> None:
        self._deliver_trigger_fire(msg.payload)

    def _deliver_trigger_fire(self, payload: Dict[str, Any]) -> None:
        callback = self._trigger_subs.get(payload["trigger_id"])
        if callback is not None:
            callback(Record.from_wire(payload["record"]))

    def _on_trigger_drop(self, msg: Message) -> None:
        payload = msg.payload
        key = ("trigdrop", payload["trigger_id"])
        if key in self._seen_floods:
            return
        self.trigger_table.remove(payload["index"], payload["trigger_id"])
        self._flood("trigger_drop", dict(payload), key)

    # ==================================================================
    # On-line histogram collection (Section 3.7's planned extension)
    # ==================================================================
    def collect_histogram(
        self,
        index: str,
        granularity: int,
        time_range: Tuple[float, float],
        expected_replies: int,
        callback: Callable[[MultiDimHistogram], None],
        timeout_s: float = 60.0,
    ) -> str:
        """Aggregate a data-distribution histogram from every node.

        The designated collector (this node) floods a request; every node
        histograms its local records for the index/time range and replies
        directly.  ``callback`` fires with the merged histogram once
        ``expected_replies`` arrive or the timeout expires.
        """
        state = self._state(index)
        req_id = self._next_op_id()
        merged = MultiDimHistogram(state.schema.dimensions, granularity)
        collection = {
            "merged": merged,
            "replies": 0,
            "expected": expected_replies,
            "callback": callback,
            "done": False,
        }
        self._histo_collections[req_id] = collection
        if self._res is not None:
            self._res.register("op:histo", self.address)
        payload = {
            "req_id": req_id,
            "index": index,
            "granularity": granularity,
            "time_range": list(time_range),
            "collector": self.address,
        }
        self._flood("histo_request", payload, ("histo", req_id))
        self._histo_reply_local(payload)
        self.sim.schedule(timeout_s, self._histo_finish, req_id)
        return req_id

    def _local_histogram(self, index: str, granularity: int, time_range) -> MultiDimHistogram:
        state = self._state(index)
        hist = MultiDimHistogram(state.schema.dimensions, granularity)
        lo, hi = time_range
        time_dim = state.schema.time_dimension()
        if self.mind_config.vectorized_store:
            t_range = (lo, hi) if time_dim is not None else None
            hist.add_batch(state.store.points_in_time_range(t_range))
            return hist
        for record in state.store.all_records():
            if time_dim is not None:
                t = record.values[time_dim]
                if not lo <= t < hi:
                    continue
            hist.add(state.schema.normalize(record.values))
        return hist

    def _on_histo_request(self, msg: Message) -> None:
        payload = msg.payload
        key = ("histo", payload["req_id"])
        if key in self._seen_floods:
            return
        self._flood("histo_request", dict(payload), key)
        self._histo_reply_local(payload)

    def _histo_reply_local(self, payload: Dict[str, Any]) -> None:
        if payload["index"] not in self.indices:
            return
        hist = self._local_histogram(payload["index"], payload["granularity"], payload["time_range"])
        reply = {"req_id": payload["req_id"], "histogram": hist.to_wire()}
        if payload["collector"] == self.address:
            self._merge_histo_reply(reply)
        else:
            self._send(
                payload["collector"],
                "histo_reply",
                reply,
                size_bytes=200 + 16 * hist.occupied_cells,
            )

    def _on_histo_reply(self, msg: Message) -> None:
        self._merge_histo_reply(msg.payload)

    def _merge_histo_reply(self, payload: Dict[str, Any]) -> None:
        collection = self._histo_collections.get(payload["req_id"])
        if collection is None or collection["done"]:
            return
        collection["merged"].merge(MultiDimHistogram.from_wire(payload["histogram"]))
        collection["replies"] += 1
        if collection["replies"] >= collection["expected"]:
            self._histo_finish(payload["req_id"])

    def _histo_finish(self, req_id: str) -> None:
        collection = self._histo_collections.pop(req_id, None)
        if collection is None or collection["done"]:
            return
        if self._res is not None:
            self._res.release("op:histo", self.address)
        collection["done"] = True
        collection["callback"](collection["merged"])
