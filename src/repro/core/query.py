"""Multi-dimensional range queries (hyper-rectangles in attribute space).

A query gives a ``[lo, hi)`` interval per indexed attribute; ``None`` on
either side means unbounded on that side (a fully ``(None, None)`` dimension
is the paper's wildcard).  Queries operate in raw attribute units; the
embedding converts them to normalized rectangles.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.records import Record
from repro.core.schema import IndexSchema

Bound = Optional[float]
Interval = Tuple[Bound, Bound]
#: A normalized rectangle: per-dimension [lo, hi) within [0, 1].
NormRect = Tuple[Tuple[float, float], ...]


@dataclass(frozen=True)
class RangeQuery:
    """A hyper-rectangle over an index's attribute space.

    Example: the paper's alpha-flow query on Index-2 — *all flows destined
    for D carrying at least O octets within period T* — is::

        RangeQuery("index2", {
            "dest_prefix": (d_lo, d_hi),
            "timestamp": (t0, t0 + 300),
            "octets": (4_000_000, None),
        })
    """

    index: str
    ranges: Tuple[Tuple[str, Interval], ...]

    def __init__(self, index: str, ranges: Dict[str, Interval]) -> None:
        object.__setattr__(self, "index", index)
        object.__setattr__(self, "ranges", tuple(sorted(ranges.items())))

    def interval(self, attribute: str) -> Interval:
        for name, iv in self.ranges:
            if name == attribute:
                return iv
        return (None, None)

    def intervals_for(self, schema: IndexSchema) -> List[Interval]:
        """Per-dimension intervals in schema attribute order."""
        known = set(schema.attribute_names)
        for name, _ in self.ranges:
            if name not in known:
                raise KeyError(f"query names unknown attribute {name!r} of index {schema.name}")
        return [self.interval(a) for a in schema.attribute_names]

    def matches(self, schema: IndexSchema, record: Record) -> bool:
        """Does a record fall inside this query's hyper-rectangle?

        Evaluated in normalized coordinates so that every layer — local
        stores, embeddings, ground-truth evaluation — agrees exactly,
        including for out-of-domain values clamped to the top of the
        range.
        """
        rect = self.normalized_rect(schema)
        return rect_contains_point(rect, schema.normalize(record.values))

    def normalized_rect(self, schema: IndexSchema) -> NormRect:
        """The query as a normalized rectangle (closed at 1.0 on top).

        Unbounded sides extend to the domain edge.  An upper bound at or
        beyond the attribute domain maps to 1.0 so that clamped top-of-range
        records still match.
        """
        rect = []
        for attr, (lo, hi) in zip(schema.attributes, self.intervals_for(schema)):
            n_lo = 0.0 if lo is None else attr.normalize(lo)
            if hi is None or hi >= attr.hi:
                n_hi = 1.0
            else:
                n_hi = attr.normalize(hi)
            if n_hi < n_lo:
                n_hi = n_lo
            rect.append((n_lo, n_hi))
        return tuple(rect)

    def to_wire(self) -> Dict:
        return {"index": self.index, "ranges": {k: list(v) for k, v in self.ranges}}

    @classmethod
    def from_wire(cls, data: Dict) -> "RangeQuery":
        return cls(data["index"], {k: (v[0], v[1]) for k, v in data["ranges"].items()})


def rect_intersection(a: NormRect, b: NormRect) -> Optional[NormRect]:
    """Intersection of two normalized rectangles, or ``None`` if empty."""
    out = []
    for (alo, ahi), (blo, bhi) in zip(a, b):
        lo, hi = max(alo, blo), min(ahi, bhi)
        if hi <= lo:
            return None
        out.append((lo, hi))
    return tuple(out)


def rect_contains_point(rect: NormRect, point: Sequence[float]) -> bool:
    """Is a normalized point inside the rectangle (half-open, closed at 1)?"""
    for (lo, hi), x in zip(rect, point):
        if x < lo:
            return False
        if x >= hi and not (hi >= 1.0 and x < 1.0):
            return False
    return True


def full_rect(dimensions: int) -> NormRect:
    return tuple((0.0, 1.0) for _ in range(dimensions))
