"""Data records inserted into MIND indices."""

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Sequence, Tuple

_RECORD_IDS = itertools.count(1)


@dataclass(frozen=True, slots=True)
class Record:
    """One multi-dimensional data item.

    ``values`` are the indexed attribute values in schema order; ``payload``
    carries the non-indexed attributes (e.g. source prefix, monitor node).
    ``key`` uniquely identifies the record across primaries and replicas, so
    result sets can be compared for recall and deduplicated.

    Slotted: stores retain one instance per stored record — 10^6 of them
    in the scale tier — and the per-instance ``__dict__`` was a third of
    peak RSS there.
    """

    values: Tuple[float, ...]
    payload: Dict[str, Any] = field(default_factory=dict)
    key: int = field(default_factory=lambda: next(_RECORD_IDS))

    def __init__(self, values: Sequence[float], payload: Dict[str, Any] = None, key: int = None) -> None:
        object.__setattr__(self, "values", tuple(values))
        object.__setattr__(self, "payload", dict(payload or {}))
        object.__setattr__(self, "key", next(_RECORD_IDS) if key is None else key)

    def __hash__(self) -> int:
        return hash(self.key)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Record) and self.key == other.key

    def value(self, dim: int) -> float:
        return self.values[dim]

    def to_wire(self) -> Dict[str, Any]:
        return {"values": list(self.values), "payload": self.payload, "key": self.key}

    @classmethod
    def from_wire(cls, data: Dict[str, Any]) -> "Record":
        return cls(values=data["values"], payload=data["payload"], key=data["key"])
