"""Replica placement on hypercube neighbors (Section 3.8).

For a storing node with code of length k and replication level m, replicas
go to the neighbors sharing code prefixes of length k-1, k-2, ..., k-m —
i.e. across dimensions k-1 down to k-m.  Those are exactly the nodes that
take over the region after failures, so failover to replicas is transparent:
the paper's example is node ``000000`` with m=3 replicating to ``000001``,
``000010`` and ``000100``.
"""

from typing import List

from repro.overlay.code import Code

#: Replicate on every hypercube neighbor ("full" in the paper's Figure 16).
FULL_REPLICATION = -1


def replica_targets(code: Code, level: int) -> List[Code]:
    """Target region codes for the given replication level.

    ``level`` 0 means no replication; :data:`FULL_REPLICATION` replicates
    across every dimension of the node's code.  The usable level is capped
    at the code length.
    """
    return failover_targets(code, level, len(code))


def failover_targets(code: Code, level: int, depth: int) -> List[Code]:
    """Replica-holder regions for a target whose owner sits around ``depth``.

    Replica placement flips the owner's low-order bits (dimensions k-1
    down to k-m), so those same flips — applied to any code routed at the
    owner, truncated to the owner's depth — enumerate the regions that
    hold copies and take over after a failure.  An originator that only
    knows a full-resolution data code (or a query-region prefix) passes
    its best estimate of the owner's code length as ``depth`` and retries
    against each returned region in order.
    """
    k = min(depth, len(code))
    if level == FULL_REPLICATION:
        m = k
    elif level < 0:
        raise ValueError(f"invalid replication level {level}")
    else:
        m = min(level, k)
    return [code.flip(k - 1 - j) for j in range(m)]
