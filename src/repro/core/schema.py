"""Index schemas: which attributes are indexed and how they normalize.

An index is declared over *k* indexed attributes (the dimensions of the
data space) plus any number of payload attributes carried along but not
indexed (the paper's Index-1, for instance, indexes
``(dest_prefix, timestamp, fanout)`` and carries ``source_prefix`` and
``node`` as payload).

Every indexed attribute declares a value domain ``[lo, hi)``.  Values are
normalized linearly into ``[0, 1)`` for the data-space embedding; values at
or beyond ``hi`` are assigned the top of the range, mirroring the paper's
treatment of the <0.1% of tuples exceeding the configured attribute bound
("we assigned them the largest possible range").
"""

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

_EPSILON = 1e-9
#: Normalized stand-in for "at or above the attribute upper bound".
_TOP = 1.0 - _EPSILON


@dataclass(frozen=True)
class AttributeSpec:
    """One indexed attribute with its value domain.

    ``is_time`` marks the timestamp attribute, which the per-node store
    uses for time partitioning and the versioned embedding uses to select
    the right daily cut tree.
    """

    name: str
    lo: float
    hi: float
    is_time: bool = False

    def __post_init__(self) -> None:
        if not self.hi > self.lo:
            raise ValueError(f"attribute {self.name}: need hi > lo, got [{self.lo}, {self.hi})")

    def normalize(self, value: float) -> float:
        """Map a raw value into [0, 1), clamping out-of-domain values."""
        x = (value - self.lo) / (self.hi - self.lo)
        if x < 0.0:
            return 0.0
        if x >= 1.0:
            return _TOP
        return x

    def denormalize(self, x: float) -> float:
        """Map a normalized coordinate back to the raw domain."""
        return self.lo + x * (self.hi - self.lo)


@dataclass(frozen=True)
class IndexSchema:
    """Schema of one MIND index.

    Parameters
    ----------
    name:
        Globally unique index tag (the paper's ``create_index`` takes an
        XML schema with a unique tag; we use typed Python objects).
    attributes:
        The indexed dimensions, in order.
    payload_names:
        Non-indexed attributes stored with each record.
    """

    name: str
    attributes: Tuple[AttributeSpec, ...]
    payload_names: Tuple[str, ...] = ()

    def __init__(
        self,
        name: str,
        attributes: Sequence[AttributeSpec],
        payload_names: Sequence[str] = (),
    ) -> None:
        if not name:
            raise ValueError("index name must be non-empty")
        if not attributes:
            raise ValueError("an index needs at least one attribute")
        names = [a.name for a in attributes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate attribute names in {name}: {names}")
        if sum(1 for a in attributes if a.is_time) > 1:
            raise ValueError("at most one attribute may be marked is_time")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "attributes", tuple(attributes))
        object.__setattr__(self, "payload_names", tuple(payload_names))
        # Columnar views of the attribute domains for normalize_batch.
        object.__setattr__(
            self, "_lo", np.array([a.lo for a in attributes], dtype=np.float64)
        )
        object.__setattr__(
            self,
            "_span",
            np.array([a.hi - a.lo for a in attributes], dtype=np.float64),
        )

    @property
    def dimensions(self) -> int:
        return len(self.attributes)

    @property
    def attribute_names(self) -> List[str]:
        return [a.name for a in self.attributes]

    def time_dimension(self) -> Optional[int]:
        """Index of the timestamp attribute, or ``None``."""
        for i, attr in enumerate(self.attributes):
            if attr.is_time:
                return i
        return None

    def normalize(self, values: Sequence[float]) -> Tuple[float, ...]:
        """Normalize a full coordinate vector into [0, 1)^k."""
        attrs = self.attributes
        if len(values) != len(attrs):
            raise ValueError(
                f"index {self.name} expects {len(attrs)} values, got {len(values)}"
            )
        return tuple(attr.normalize(v) for attr, v in zip(attrs, values))

    def normalize_batch(self, values) -> np.ndarray:
        """Normalize many coordinate vectors at once.

        ``values`` is anything ``np.asarray`` turns into an ``(n, k)``
        matrix (a list of record value tuples, or an existing array).
        Returns an ``(n, k)`` ``float64`` array; every element equals the
        scalar :meth:`AttributeSpec.normalize` of the same input exactly
        (same IEEE operations in the same order), including the clamping
        of out-of-domain values to ``1 - eps``.
        """
        raw = np.asarray(values, dtype=np.float64)
        if raw.ndim == 1:
            raw = raw.reshape(0, self.dimensions) if raw.size == 0 else raw.reshape(1, -1)
        if raw.ndim != 2 or raw.shape[1] != self.dimensions:
            raise ValueError(
                f"index {self.name} expects (n, {self.dimensions}) values, "
                f"got shape {raw.shape}"
            )
        x = (raw - self._lo) / self._span
        np.copyto(x, 0.0, where=x < 0.0)
        np.copyto(x, _TOP, where=x >= 1.0)
        return x

    def to_wire(self) -> Dict:
        """Schema as plain data, as flooded in ``create_index`` messages."""
        return {
            "name": self.name,
            "attributes": [
                {"name": a.name, "lo": a.lo, "hi": a.hi, "is_time": a.is_time}
                for a in self.attributes
            ],
            "payload_names": list(self.payload_names),
        }

    @classmethod
    def from_wire(cls, data: Dict) -> "IndexSchema":
        return cls(
            name=data["name"],
            attributes=[AttributeSpec(**a) for a in data["attributes"]],
            payload_names=data["payload_names"],
        )
