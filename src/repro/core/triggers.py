"""Continuous queries ("triggers") over MIND indices.

The paper notes (Section 2, footnote) that triggers are supported "with
minor mechanistic modifications" to the query path.  This module provides
those mechanics:

* a trigger is a standing :class:`~repro.core.query.RangeQuery` plus a
  subscriber address and an optional expiry;
* registration routes exactly like a query — to the prefix region, split
  into sub-registrations at region boundaries — so every node whose region
  intersects the trigger's hyper-rectangle ends up holding it;
* at insert time the storing node matches the new record against its
  resident triggers and notifies subscribers directly;
* triggers ride along in the join state transfer, so region hand-offs keep
  coverage.
"""

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.core.query import RangeQuery

_TRIGGER_IDS = itertools.count(1)


@dataclass
class Trigger:
    """A standing query owned by a subscriber node."""

    trigger_id: str
    query: RangeQuery
    subscriber: str
    expires_at: Optional[float] = None

    def live(self, now: float) -> bool:
        return self.expires_at is None or now < self.expires_at

    def to_wire(self) -> Dict[str, Any]:
        return {
            "trigger_id": self.trigger_id,
            "query": self.query.to_wire(),
            "subscriber": self.subscriber,
            "expires_at": self.expires_at,
        }

    @classmethod
    def from_wire(cls, data: Dict[str, Any]) -> "Trigger":
        return cls(
            trigger_id=data["trigger_id"],
            query=RangeQuery.from_wire(data["query"]),
            subscriber=data["subscriber"],
            expires_at=data["expires_at"],
        )


def new_trigger_id(owner: str) -> str:
    return f"trig:{owner}:{next(_TRIGGER_IDS)}"


@dataclass
class TriggerTable:
    """Per-node set of resident triggers, keyed by index name."""

    by_index: Dict[str, Dict[str, Trigger]] = field(default_factory=dict)

    def install(self, index: str, trigger: Trigger) -> bool:
        """Returns False when the trigger was already resident."""
        table = self.by_index.setdefault(index, {})
        if trigger.trigger_id in table:
            return False
        table[trigger.trigger_id] = trigger
        return True

    def remove(self, index: str, trigger_id: str) -> None:
        self.by_index.get(index, {}).pop(trigger_id, None)

    def matching(self, index: str, schema, record, now: float):
        """Live triggers on ``index`` whose query matches ``record``."""
        out = []
        expired = []
        for trigger in self.by_index.get(index, {}).values():
            if not trigger.live(now):
                expired.append(trigger.trigger_id)
            elif trigger.query.matches(schema, record):
                out.append(trigger)
        for trigger_id in expired:
            self.remove(index, trigger_id)
        return out

    def all_wire(self):
        return [
            {"index": index, "trigger": trigger.to_wire()}
            for index, table in self.by_index.items()
            for trigger in table.values()
        ]

    def count(self, index: Optional[str] = None) -> int:
        if index is not None:
            return len(self.by_index.get(index, {}))
        return sum(len(t) for t in self.by_index.values())
