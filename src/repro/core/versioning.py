"""Daily index versions (Section 3.7).

MIND never migrates historical data to rebalance.  Instead each index keeps
*versions*: the histogram collected on day *i* defines the balanced cuts
used to store day *i+1*'s data.  A record's timestamp selects the version
it is stored under, and a query's time interval selects the version(s) it
must consult — "the relevant index versions ... will be evident from the
query itself".
"""

from typing import Dict, List, Tuple

from repro.core.embedding import Embedding


class VersionedEmbedding:
    """An ordered set of embeddings, each valid from a point in time."""

    def __init__(self, initial: Embedding) -> None:
        #: (valid_from, embedding), sorted ascending; the first entry covers
        #: all earlier times.
        self._versions: List[Tuple[float, Embedding]] = [(float("-inf"), initial)]

    @property
    def versions(self) -> List[Tuple[float, Embedding]]:
        return list(self._versions)

    def install(self, valid_from: float, embedding: Embedding) -> None:
        """Add a version taking effect at ``valid_from`` (e.g. midnight)."""
        for existing_from, _ in self._versions:
            if existing_from == valid_from:
                raise ValueError(f"version already installed at t={valid_from}")
        self._versions.append((valid_from, embedding))
        self._versions.sort(key=lambda pair: pair[0])

    def for_time(self, t: float) -> Embedding:
        """The embedding in force at time ``t``."""
        chosen = self._versions[0][1]
        for valid_from, embedding in self._versions:
            if valid_from <= t:
                chosen = embedding
            else:
                break
        return chosen

    def version_index_for_time(self, t: float) -> int:
        """Position of the version in force at ``t`` (local bookkeeping).

        Positions are *not* stable across nodes once :meth:`retire_before`
        has run anywhere, so they must never go on the wire — wire
        references are keyed by ``valid_from`` (see
        :meth:`embedding_for_version`).
        """
        chosen = 0
        for i, (valid_from, _) in enumerate(self._versions):
            if valid_from <= t:
                chosen = i
            else:
                break
        return chosen

    def valid_from_for_time(self, t: float) -> float:
        """The ``valid_from`` key of the version in force at ``t``."""
        return self._versions[self.version_index_for_time(t)][0]

    def embedding_for_version(self, valid_from: float) -> Embedding:
        """Resolve a wire version reference (keyed by ``valid_from``).

        An exact key match wins; otherwise — the sender knows a version
        this node already retired, or vice versa — fall back to the
        version in force at that time, which is the closest surviving
        approximation of the referenced cut tree.
        """
        for vf, embedding in self._versions:
            if vf == valid_from:
                return embedding
        return self.for_time(valid_from)

    def latest(self) -> Embedding:
        return self._versions[-1][1]

    def retire_before(self, cutoff: float) -> int:
        """Drop versions wholly superseded before ``cutoff``.

        A version is droppable when the *next* version took effect at or
        before the cutoff (so no record or query with time >= cutoff can
        select it).  The newest version is always kept.  Returns how many
        versions were removed — the "version storage management" the paper
        defers to future work.
        """
        removed = 0
        while len(self._versions) > 1 and self._versions[1][0] <= cutoff:
            self._versions.pop(0)
            removed += 1
        return removed

    def to_wire(self) -> List[Dict]:
        return [
            {"valid_from": valid_from, "embedding": emb.to_wire()}
            for valid_from, emb in self._versions
        ]

    @classmethod
    def from_wire(cls, data: List[Dict]) -> "VersionedEmbedding":
        if not data:
            raise ValueError("empty version list")
        seen = set()
        for entry in data:
            valid_from = entry["valid_from"]
            if valid_from in seen:
                # install() rejects duplicate valid_from keys; a wire list
                # must obey the same invariant or replicas of the version
                # map diverge on which embedding a key resolves to.
                raise ValueError(f"duplicate version valid_from={valid_from} on the wire")
            seen.add(valid_from)
        first = Embedding.from_wire(data[0]["embedding"])
        versioned = cls(first)
        versioned._versions = [(d["valid_from"], Embedding.from_wire(d["embedding"])) for d in data]
        versioned._versions.sort(key=lambda pair: pair[0])
        return versioned
