"""Simulated wide-area network substrate.

This package stands in for the paper's PlanetLab testbed.  It provides:

* real backbone router sites with coordinates (Abilene, GÉANT) and synthetic
  PlanetLab-like site sets for larger deployments,
* a latency model combining great-circle propagation, per-link jitter and
  occasional PlanetLab-style pathological delays,
* a message-passing network with per-link FIFO transmission queues and
  bandwidth serialization, and
* a failure injector for transient link outages and node crash/rejoin churn.
"""

from repro.net.failures import FailureInjector
from repro.net.latency import LatencyModel, great_circle_km
from repro.net.message import Message
from repro.net.network import LinkStats, SimNetwork
from repro.net.protocol import REGISTRY, ROUTED, MessageKind, ProtocolError
from repro.net.topology import (
    ABILENE_SITES,
    GEANT_SITES,
    Site,
    backbone_sites,
    synthetic_planetlab_sites,
)

__all__ = [
    "ABILENE_SITES",
    "GEANT_SITES",
    "FailureInjector",
    "LatencyModel",
    "LinkStats",
    "Message",
    "MessageKind",
    "ProtocolError",
    "REGISTRY",
    "ROUTED",
    "SimNetwork",
    "Site",
    "backbone_sites",
    "great_circle_km",
    "synthetic_planetlab_sites",
]
