"""Failure injection: transient link outages and node churn.

The paper observes two failure classes on PlanetLab:

* **transient overlay link failures** ("presumably caused by transient
  routing failures in the underlying network") that heal after reconnect
  attempts — modeled as timed link outages, and
* **node failures / rejoins** (the 102-node experiment ran with 70-102 live
  nodes) — modeled as crash and restore events, optionally as a stationary
  churn process.
"""

from typing import Callable, List, Optional, Tuple

from repro.net.network import SimNetwork
from repro.sim.kernel import Simulator

NodeHook = Callable[[str], None]


class FailureInjector:
    """Schedules failures against a :class:`SimNetwork`.

    Node crash/restore also invoke optional hooks so that the cluster driver
    can tell the node object itself to stop or resume processing.
    """

    def __init__(
        self,
        sim: Simulator,
        network: SimNetwork,
        on_crash: Optional[NodeHook] = None,
        on_restore: Optional[NodeHook] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.on_crash = on_crash
        self.on_restore = on_restore
        self._rng = sim.rng("failures")
        self.crash_log: List[Tuple[float, str, str]] = []
        self._churn_event = None
        #: Bumped on every (re)start/stop; in-flight ticks from an older
        #: generation see the mismatch and die instead of re-scheduling.
        self._churn_generation = 0

    # ------------------------------------------------------------------
    # Direct injection
    # ------------------------------------------------------------------
    def link_outage(self, a: str, b: str, start_in_s: float, duration_s: float) -> None:
        """Take the (bidirectional) link a<->b down for ``duration_s``."""
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        self.sim.schedule(start_in_s, self.network.set_link_down, a, b, duration_s)

    def crash_node(self, address: str, at_in_s: float = 0.0) -> None:
        self.sim.schedule(at_in_s, self._do_crash, address)

    def restore_node(self, address: str, at_in_s: float) -> None:
        self.sim.schedule(at_in_s, self._do_restore, address)

    def crash_and_restore(self, address: str, at_in_s: float, downtime_s: float) -> None:
        self.crash_node(address, at_in_s)
        self.restore_node(address, at_in_s + downtime_s)

    # ------------------------------------------------------------------
    # Stationary churn (large-scale experiment)
    # ------------------------------------------------------------------
    def start_churn(
        self,
        addresses: List[str],
        mean_uptime_s: float,
        mean_downtime_s: float,
        min_live: int,
    ) -> None:
        """Randomly crash/restore nodes from ``addresses``.

        Exponential up/down times; never drives the live population below
        ``min_live`` (the paper's experiment floated between 70 and 102 live
        nodes out of 102).
        """
        if min_live < 1:
            raise ValueError("min_live must be at least 1")
        # Idempotent: a second start replaces the running process instead
        # of stacking a second tick loop (which would double the churn
        # rate and leave one loop uncancellable forever).
        self.stop_churn()
        self._churn_addresses = list(addresses)
        self._churn_mean_up = mean_uptime_s
        self._churn_mean_down = mean_downtime_s
        self._churn_min_live = min_live
        self._churn_event = self.sim.schedule(
            self._rng.expovariate(1.0 / mean_uptime_s), self._churn_tick, self._churn_generation
        )

    def stop_churn(self) -> None:
        """Cancel the churn process; crashed nodes still get their restores."""
        self._churn_generation += 1
        if self._churn_event is not None:
            self._churn_event.cancel()
            self._churn_event = None

    @property
    def churn_active(self) -> bool:
        return self._churn_event is not None

    def _churn_tick(self, generation: int) -> None:
        if generation != self._churn_generation:
            return
        live = [a for a in self._churn_addresses if self.network.is_node_up(a)]
        if len(live) > self._churn_min_live:
            victim = self._rng.choice(live)
            downtime = self._rng.expovariate(1.0 / self._churn_mean_down)
            self._do_crash(victim)
            self.sim.schedule(downtime, self._do_restore, victim)
        self._churn_event = self.sim.schedule(
            self._rng.expovariate(1.0 / self._churn_mean_up), self._churn_tick, generation
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _do_crash(self, address: str) -> None:
        if not self.network.is_node_up(address):
            return
        self.network.set_node_up(address, False)
        self.crash_log.append((self.sim.now, address, "crash"))
        if self.on_crash is not None:
            self.on_crash(address)

    def _do_restore(self, address: str) -> None:
        if self.network.is_node_up(address):
            return
        self.network.set_node_up(address, True)
        self.crash_log.append((self.sim.now, address, "restore"))
        if self.on_restore is not None:
            self.on_restore(address)
