"""Latency model for the simulated wide-area network.

One-way delay between two sites is modeled as::

    base + distance / (c * fiber_factor) + jitter [+ pathology]

where ``base`` covers last-mile and per-hop router latency, the propagation
term uses great-circle distance over fiber (light in fiber travels at about
two thirds of c, and real paths are longer than great circles), ``jitter``
is log-normal, and ``pathology`` is an occasional heavy-tailed extra delay
reproducing the overloaded-PlanetLab-node behaviour the paper repeatedly
observed ("the performance of paths that we can attribute to the
experimental nature of the PlanetLab testbed").
"""

import math
import random

from repro.net.topology import Site

EARTH_RADIUS_KM = 6371.0
#: Effective signal speed in fiber, km per second (2/3 c), further reduced
#: by a route-inflation factor folded into :data:`ROUTE_FACTOR`.
FIBER_KM_PER_S = 200_000.0
#: Real paths are not great circles; 1.6 is a common empirical inflation.
ROUTE_FACTOR = 1.6


def great_circle_km(a: Site, b: Site) -> float:
    """Great-circle distance between two sites in kilometres (haversine)."""
    lat1, lon1 = math.radians(a.latitude), math.radians(a.longitude)
    lat2, lon2 = math.radians(b.latitude), math.radians(b.longitude)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2.0) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(h)))


class LatencyModel:
    """Draw one-way delays between sites.

    Parameters
    ----------
    base_s:
        Fixed per-message overhead (OS, NIC, access links).
    jitter_sigma:
        Sigma of the log-normal multiplicative jitter on the propagation
        component.
    pathology_prob:
        Probability that a message hits a PlanetLab-style pathology (swapped
        out VM, overloaded host) and picks up a Pareto-tailed extra delay.
    pathology_scale_s:
        Minimum extra delay of a pathological event.
    """

    def __init__(
        self,
        base_s: float = 0.004,
        jitter_sigma: float = 0.15,
        pathology_prob: float = 0.003,
        pathology_scale_s: float = 0.4,
        pathology_alpha: float = 1.5,
    ) -> None:
        if not 0.0 <= pathology_prob <= 1.0:
            raise ValueError("pathology_prob must be a probability")
        self.base_s = base_s
        self.jitter_sigma = jitter_sigma
        self.pathology_prob = pathology_prob
        self.pathology_scale_s = pathology_scale_s
        self.pathology_alpha = pathology_alpha
        #: Memoized deterministic propagation delay per site pair: the
        #: haversine distance is pure geometry, and every message between
        #: the same pair of sites recomputing it dominates the latency
        #: model's cost at cluster scale.
        self._propagation_cache: dict = {}

    def propagation_s(self, src: Site, dst: Site) -> float:
        """Deterministic propagation component of the one-way delay."""
        # Keyed by site names (unique per deployment): string hashes are
        # cached by the interpreter, while a frozen-dataclass hash is
        # recomputed on every lookup.
        key = (src.name, dst.name)
        cached = self._propagation_cache.get(key)
        if cached is None:
            distance = great_circle_km(src, dst)
            cached = distance * ROUTE_FACTOR / FIBER_KM_PER_S
            # repro-leak: ignore[leak-op-state] memo bounded by site pairs
            self._propagation_cache[key] = cached
        return cached

    def one_way_s(self, src: Site, dst: Site, rng: random.Random) -> float:
        """Sample a one-way delay for a message from ``src`` to ``dst``."""
        propagation = self._propagation_cache.get((src.name, dst.name))
        if propagation is None:
            propagation = self.propagation_s(src, dst)
        jitter = rng.lognormvariate(0.0, self.jitter_sigma)
        delay = self.base_s + propagation * jitter
        if rng.random() < self.pathology_prob:
            delay += self.pathology_scale_s * rng.paretovariate(self.pathology_alpha)
        return delay
