"""Message framing for the simulated network.

A :class:`Message` is what travels between node endpoints.  The ``kind``
string dispatches to a handler at the receiving node; ``payload`` carries
arbitrary structured data (kept as plain Python objects — the simulation
never serializes, but ``size_bytes`` models what serialization would cost
on the wire).

``size_bytes`` is the *body* size exactly as the sender passed it; the
modeled on-the-wire cost including framing headers is :attr:`Message.wire_size`.
Keeping the field immutable means re-framing or copying a message (e.g.
``dataclasses.replace``) can never double-count :data:`HEADER_BYTES`.

When protocol validation is enabled (see :mod:`repro.net.protocol`),
construction checks ``kind`` and the payload's key set against the wire
registry, so a typo'd kind or a drifted payload shape fails at the send
site instead of diverging silently between peers.
"""

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict

from repro.net import protocol

_MESSAGE_IDS = itertools.count(1)

#: Nominal wire overhead of a framed message (headers), in bytes.
HEADER_BYTES = 64


@dataclass
class Message:
    """A single overlay message.

    Attributes
    ----------
    src, dst:
        Network addresses (opaque strings) of the endpoints.
    kind:
        Handler-dispatch tag, e.g. ``"insert_ack"`` or ``"join_request"``.
    payload:
        Structured message body.
    size_bytes:
        Modeled body size as passed by the sender; see :attr:`wire_size`
        for the framed on-the-wire size used in bandwidth serialization.
    msg_id:
        Unique id, handy for tracing and matching requests to replies.
    """

    src: str
    dst: str
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)
    size_bytes: int = 256
    msg_id: int = field(default_factory=lambda: next(_MESSAGE_IDS))

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")
        if protocol.validation_enabled():
            protocol.validate_wire(self.kind, self.payload)

    @property
    def wire_size(self) -> int:
        """Framed size on the wire: body plus :data:`HEADER_BYTES`."""
        return self.size_bytes + HEADER_BYTES
