"""Message framing for the simulated network.

A :class:`Message` is what travels between node endpoints.  The ``kind``
string dispatches to a handler at the receiving node; ``payload`` carries
arbitrary structured data (kept as plain Python objects — the simulation
never serializes, but ``size_bytes`` models what serialization would cost
on the wire).
"""

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict

_MESSAGE_IDS = itertools.count(1)

#: Nominal wire overhead of a framed message (headers), in bytes.
HEADER_BYTES = 64


@dataclass
class Message:
    """A single overlay message.

    Attributes
    ----------
    src, dst:
        Network addresses (opaque strings) of the endpoints.
    kind:
        Handler-dispatch tag, e.g. ``"insert"`` or ``"join_request"``.
    payload:
        Structured message body.
    size_bytes:
        Modeled wire size, used for bandwidth serialization on links.
    msg_id:
        Unique id, handy for tracing and matching requests to replies.
    """

    src: str
    dst: str
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)
    size_bytes: int = 256
    msg_id: int = field(default_factory=lambda: next(_MESSAGE_IDS))

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")
        self.size_bytes += HEADER_BYTES
