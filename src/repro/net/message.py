"""Message framing for the simulated network.

A :class:`Message` is what travels between node endpoints.  The ``kind``
string dispatches to a handler at the receiving node; ``payload`` carries
arbitrary structured data (kept as plain Python objects — the simulation
never serializes, but ``size_bytes`` models what serialization would cost
on the wire).

``size_bytes`` is the *body* size exactly as the sender passed it; the
modeled on-the-wire cost including framing headers is :attr:`Message.wire_size`.
Keeping the field immutable means re-framing or copying a message (e.g.
``dataclasses.replace``) can never double-count :data:`HEADER_BYTES`.

When protocol validation is enabled (see :mod:`repro.net.protocol`),
construction checks ``kind`` and the payload's key set against the wire
registry, so a typo'd kind or a drifted payload shape fails at the send
site instead of diverging silently between peers.

Message isolation
-----------------
The real system serialized every message over TCP, so a receiver could
never mutate the sender's copy.  The simulation passes payloads by
reference, which makes cross-node aliasing possible.  The *isolation*
switch closes that gap at delivery time:

* ``copy`` — the network delivers a :meth:`Message.clone` whose payload
  containers are recursively copied, so receiver-side mutation can never
  reach the sender's objects.
* ``freeze`` — the clone's payload is recursively frozen
  (:class:`types.MappingProxyType` / tuples / frozensets), so any mutation
  attempt raises ``TypeError`` at the offending line.
* ``off`` — by-reference delivery (the perf-run default; copying would
  distort timing benchmarks).

The initial level comes from ``REPRO_ISOLATE_MESSAGES`` (``1``/``copy``,
``freeze``, or unset/``0`` for off); tests flip it with
:func:`set_isolation` or the :func:`isolation` context manager.
"""

import itertools
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Dict

from repro.net import protocol

_MESSAGE_IDS = itertools.count(1)

#: Hot-path locals for Message construction (module-attr reads beat
#: attribute chains in the per-message constructor).
_KIND_IDS = protocol.KIND_IDS
_UNKNOWN_KIND_ID = protocol.UNKNOWN_KIND_ID

#: Nominal wire overhead of a framed message (headers), in bytes.
HEADER_BYTES = 64

#: Isolation levels, weakest to strongest.
ISOLATE_OFF = "off"
ISOLATE_COPY = "copy"
ISOLATE_FREEZE = "freeze"

_LEVELS = (ISOLATE_OFF, ISOLATE_COPY, ISOLATE_FREEZE)


def _level_from_env() -> str:
    raw = os.environ.get("REPRO_ISOLATE_MESSAGES", "").strip().lower()
    if raw in ("", "0", "off", "false", "no"):
        return ISOLATE_OFF
    if raw == ISOLATE_FREEZE:
        return ISOLATE_FREEZE
    return ISOLATE_COPY


_isolation = _level_from_env()


def isolation_level() -> str:
    """The current delivery isolation level (``off``/``copy``/``freeze``)."""
    return _isolation


def set_isolation(level) -> str:
    """Set the isolation level; returns the previous level.

    Accepts a level string, or ``True``/``False`` as shorthand for
    ``copy``/``off``.
    """
    global _isolation
    if level is True:
        level = ISOLATE_COPY
    elif level in (False, None):
        level = ISOLATE_OFF
    if level not in _LEVELS:
        raise ValueError(f"unknown isolation level: {level!r} (expected one of {_LEVELS})")
    previous = _isolation
    _isolation = level
    return previous


@contextmanager
def isolation(level):
    """Context manager scoping an isolation level change."""
    previous = set_isolation(level)
    try:
        yield
    finally:
        set_isolation(previous)


class FrozenListView(tuple):
    """Read-only stand-in for a *list* inside a frozen payload.

    A plain tuple subclass, so mutation raises and hashing works — but
    :func:`thaw_payload` can still tell it apart from a payload value that
    was a tuple to begin with (tuples are often dict keys, e.g. routed
    ``op_id``s, and must survive a freeze/thaw round trip unchanged).
    """

    __slots__ = ()


class FrozenSetView(frozenset):
    """Read-only stand-in for a *set* inside a frozen payload."""

    __slots__ = ()


def copy_payload(value: Any) -> Any:
    """Recursively copy the container structure of a payload value.

    Only plain containers (dict/list/tuple/set) are copied — each keeps
    its type; leaves — scalars, strings, frozensets, and domain objects
    such as :class:`~repro.core.records.Record` — are shared, matching
    what serialization would preserve (domain objects cross the simulated
    wire via their own ``to_wire``/``from_wire`` copies).
    """
    if isinstance(value, dict):
        return {key: copy_payload(item) for key, item in value.items()}
    if isinstance(value, list):
        return [copy_payload(item) for item in value]
    if isinstance(value, tuple):
        return tuple(copy_payload(item) for item in value)
    if isinstance(value, set):
        return {copy_payload(item) for item in value}
    return value


def freeze_payload(value: Any) -> Any:
    """Recursively freeze a payload value into read-only views.

    dicts become :class:`types.MappingProxyType` over frozen copies,
    lists become :class:`FrozenListView` tuples, sets become
    :class:`FrozenSetView` frozensets; tuples and frozensets stay what
    they are (recursively frozen).  Mutating the result raises
    ``TypeError``/``AttributeError`` at the offending call site, and
    :func:`thaw_payload` restores the exact original container types.
    """
    if isinstance(value, (dict, MappingProxyType)):
        return MappingProxyType({key: freeze_payload(item) for key, item in value.items()})
    if isinstance(value, FrozenListView):
        return value
    if isinstance(value, list):
        return FrozenListView(freeze_payload(item) for item in value)
    if isinstance(value, tuple):
        return tuple(freeze_payload(item) for item in value)
    if isinstance(value, FrozenSetView):
        return value
    if isinstance(value, set):
        return FrozenSetView(freeze_payload(item) for item in value)
    return value


def thaw_payload(value: Any) -> Any:
    """Deep-copy a (possibly frozen) payload back into mutable containers.

    The inverse of :func:`freeze_payload`: receivers that legitimately
    need a private mutable working copy of a delivered payload (e.g. a
    routed envelope whose ``hops``/``path`` advance at every hop) thaw it
    first, which is also exactly the copy-on-receive discipline the
    aliasing lint asks for.  Container types are preserved: only the
    frozen *views* (mapping proxies, list/set views) turn back into their
    mutable originals; genuine tuples and frozensets stay immutable.
    """
    if isinstance(value, (dict, MappingProxyType)):
        return {key: thaw_payload(item) for key, item in value.items()}
    if isinstance(value, FrozenListView):
        return [thaw_payload(item) for item in value]
    if isinstance(value, list):
        return [thaw_payload(item) for item in value]
    if isinstance(value, tuple):
        return tuple(thaw_payload(item) for item in value)
    if isinstance(value, FrozenSetView):
        return {thaw_payload(item) for item in value}
    if isinstance(value, set):
        return {thaw_payload(item) for item in value}
    return value


@dataclass(slots=True)
class Message:
    """A single overlay message.

    Attributes
    ----------
    src, dst:
        Network addresses (opaque strings) of the endpoints.
    kind:
        Handler-dispatch tag, e.g. ``"insert_ack"`` or ``"join_request"``.
    payload:
        Structured message body.
    size_bytes:
        Modeled body size as passed by the sender; see :attr:`wire_size`
        for the framed on-the-wire size used in bandwidth serialization.
    msg_id:
        Unique id, handy for tracing and matching requests to replies.
        The default ``0`` means "allocate one": constructing ~10^7
        messages per scale run, a sentinel branch beats a
        ``field(default_factory=...)`` lambda call per message.
    kind_id:
        Dense integer id of ``kind`` (see :data:`repro.net.protocol.KIND_IDS`),
        interned once at construction so receivers dispatch with a flat
        table index instead of a string dict probe.  ``-1`` means
        "intern it for me"; an unregistered kind gets
        :data:`repro.net.protocol.UNKNOWN_KIND_ID`, which every dispatch
        table maps to its (empty) error slot.
    """

    src: str
    dst: str
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)
    size_bytes: int = 256
    msg_id: int = 0
    kind_id: int = -1

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")
        if self.msg_id == 0:
            self.msg_id = next(_MESSAGE_IDS)
        if self.kind_id == -1:
            self.kind_id = _KIND_IDS.get(self.kind, _UNKNOWN_KIND_ID)
        # Validation stays strictly off the hot path when disabled: one
        # module-attribute read, no function call per message.
        if protocol._validate:
            protocol.validate_wire(self.kind, self.payload)

    @property
    def wire_size(self) -> int:
        """Framed size on the wire: body plus :data:`HEADER_BYTES`."""
        return self.size_bytes + HEADER_BYTES

    @classmethod
    def frame(
        cls,
        src: str,
        dst: str,
        kind: str,
        payload: Dict[str, Any],
        size_bytes: int,
    ) -> "Message":
        """Hot-path constructor with identical semantics to ``Message(...)``.

        Skips the dataclass ``__init__``/``__post_init__`` indirection
        (measurable at ~10^7 messages per scale run) but performs the
        exact same work in the same order: size check, message-id
        allocation, kind-id interning, and the validation gate.
        """
        if size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")
        msg = _NEW_MESSAGE(cls)
        msg.src = src
        msg.dst = dst
        msg.kind = kind
        msg.payload = payload
        msg.size_bytes = size_bytes
        msg.msg_id = next(_MESSAGE_IDS)
        msg.kind_id = _KIND_IDS.get(kind, _UNKNOWN_KIND_ID)
        if protocol._validate:
            protocol.validate_wire(kind, payload)
        return msg

    def clone(self, level: str = ISOLATE_COPY, fresh_id: bool = False) -> "Message":
        """Re-frame this message with an isolated payload.

        The single copy path shared by the delivery sanitizer and any
        retry/failover re-send: ``size_bytes`` is carried over verbatim
        (it is the sender-declared body size, so re-framing never
        double-counts :data:`HEADER_BYTES`) and the payload is isolated
        per ``level`` (``copy`` → recursively copied containers,
        ``freeze`` → recursively frozen views, ``off`` → shared).

        ``fresh_id=False`` (the default, used at delivery) keeps
        ``msg_id`` so traces correlate the delivered clone with the send;
        re-send paths pass ``fresh_id=True`` so each attempt is a
        distinct wire message.
        """
        if level == ISOLATE_FREEZE:
            payload = freeze_payload(self.payload)
        elif level == ISOLATE_COPY:
            payload = copy_payload(self.payload)
        elif level == ISOLATE_OFF:
            payload = self.payload
        else:
            raise ValueError(f"unknown isolation level: {level!r} (expected one of {_LEVELS})")
        return Message(
            src=self.src,
            dst=self.dst,
            kind=self.kind,
            payload=payload,
            size_bytes=self.size_bytes,
            msg_id=0 if fresh_id else self.msg_id,
            kind_id=self.kind_id,
        )


#: ``object.__new__`` bound once for :meth:`Message.frame`.
_NEW_MESSAGE = Message.__new__
