"""Message-passing network with per-link queues and failure awareness.

The network delivers :class:`~repro.net.message.Message` objects between
registered endpoints.  Each directed link serializes transmissions at a
configurable bandwidth (producing the queuing hotspots behind the paper's
Figure 8), adds a sampled one-way latency, and honours link/node failure
state injected by :class:`~repro.net.failures.FailureInjector`.

Semantics mirror TCP as the paper's prototype used it: if the link or the
destination is down the sender's ``on_fail`` callback fires after a
detection delay, letting overlay code run its reconnect/re-route logic.
"""

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.net import message as message_mod
from repro.net.latency import LatencyModel
from repro.net.message import Message
from repro.net.topology import Site
from repro.sim.kernel import Simulator

DeliverFn = Callable[[Message], None]
FailFn = Callable[[Message, str], None]


@dataclass
class LinkStats:
    """Counters and samples for one directed link (``src -> dst``)."""

    tuples: int = 0
    messages: int = 0
    bytes: int = 0
    #: (send_time, total_delay_seconds) samples; populated only when the
    #: network was created with ``record_link_delays=True``.  Bounded by
    #: the network's ``link_delay_sample_cap`` via stride decimation.
    delay_samples: List[Tuple[float, float]] = field(default_factory=list)
    #: Every ``delay_sample_stride``-th send is sampled; starts at 1 and
    #: doubles whenever the buffer hits the cap (half the samples are
    #: dropped), so long runs keep a bounded, evenly thinned time series.
    delay_sample_stride: int = 1
    _delay_phase: int = 0

    def record_delay(self, time: float, delay: float, cap: Optional[int]) -> None:
        """Record a (send_time, delay) sample under the decimation budget.

        Decimation preserves the temporal *shape* of the series (Figures
        8 and 12 plot delay versus time), unlike reservoir sampling which
        would scramble ordering guarantees for the same bound.
        """
        if self._delay_phase == 0:
            self.delay_samples.append((time, delay))
            if cap is not None and len(self.delay_samples) >= cap:
                del self.delay_samples[1::2]
                self.delay_sample_stride *= 2
        self._delay_phase = (self._delay_phase + 1) % self.delay_sample_stride


class SimNetwork:
    """Simulated WAN connecting MIND node endpoints.

    Parameters
    ----------
    sim:
        The simulation kernel.
    sites:
        Mapping of network address -> :class:`Site`; used by the latency
        model.  Addresses not present fall back to a default latency.
    latency_model:
        Latency sampler; a default PlanetLab-calibrated model if omitted.
    bandwidth_bps:
        Per-directed-link bandwidth for transmission-time serialization.
        PlanetLab slices in 2004 were commonly capped around 10 Mbit/s.
    fail_detect_s:
        Time for a sender to learn that a connection attempt failed.
    record_link_delays:
        Keep (time, delay) samples per link (Figure 8 / 12 benches).
    link_delay_sample_cap:
        Per-link bound on retained delay samples; when a link reaches the
        cap its series is thinned to every other sample and the sampling
        stride doubles.  ``None`` disables the bound.
    """

    def __init__(
        self,
        sim: Simulator,
        sites: Dict[str, Site],
        latency_model: Optional[LatencyModel] = None,
        bandwidth_bps: float = 10e6,
        fail_detect_s: float = 1.0,
        record_link_delays: bool = False,
        link_delay_sample_cap: Optional[int] = 8192,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth_bps must be positive")
        if link_delay_sample_cap is not None and link_delay_sample_cap < 2:
            raise ValueError("link_delay_sample_cap must be >= 2 (or None)")
        self.sim = sim
        self.sites = dict(sites)
        self.latency = latency_model or LatencyModel()
        self.bandwidth_bps = bandwidth_bps
        self.fail_detect_s = fail_detect_s
        self.record_link_delays = record_link_delays
        self.link_delay_sample_cap = link_delay_sample_cap

        self._endpoints: Dict[str, DeliverFn] = {}
        self._node_up: Dict[str, bool] = {}
        self._link_down_until: Dict[Tuple[str, str], float] = {}
        self._link_busy_until: Dict[Tuple[str, str], float] = {}
        self.link_stats: Dict[Tuple[str, str], LinkStats] = {}
        self._rng = sim.rng("net.latency")
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_failed = 0

    # ------------------------------------------------------------------
    # Registration and failure state
    # ------------------------------------------------------------------
    def register(self, address: str, deliver: DeliverFn) -> None:
        """Attach an endpoint; the address becomes routable and up."""
        if address in self._endpoints:
            raise ValueError(f"address already registered: {address}")
        self._endpoints[address] = deliver
        self._node_up[address] = True

    def unregister(self, address: str) -> None:
        self._endpoints.pop(address, None)
        self._node_up.pop(address, None)

    def set_node_up(self, address: str, up: bool) -> None:
        if address not in self._endpoints:
            raise KeyError(f"unknown address: {address}")
        self._node_up[address] = up

    def is_node_up(self, address: str) -> bool:
        return self._node_up.get(address, False)

    def set_link_down(self, src: str, dst: str, duration_s: float, bidirectional: bool = True) -> None:
        """Take the directed link down for ``duration_s`` from now."""
        until = self.sim.now + duration_s
        key = (src, dst)
        self._link_down_until[key] = max(self._link_down_until.get(key, 0.0), until)
        if bidirectional:
            rkey = (dst, src)
            self._link_down_until[rkey] = max(self._link_down_until.get(rkey, 0.0), until)

    def is_link_up(self, src: str, dst: str) -> bool:
        return self._link_down_until.get((src, dst), 0.0) <= self.sim.now

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(
        self,
        src: str,
        dst: str,
        kind: str,
        payload: Optional[Dict[str, Any]] = None,
        size_bytes: int = 256,
        tuples: int = 0,
        on_fail: Optional[FailFn] = None,
    ) -> Message:
        """Send a message; returns the in-flight :class:`Message`.

        ``tuples`` counts how many index records the message carries, feeding
        the per-link traffic accounting of Figure 12.
        """
        msg = Message(src=src, dst=dst, kind=kind, payload=payload or {}, size_bytes=size_bytes)
        return self._transmit(msg, tuples, on_fail)

    def resend(
        self,
        msg: Message,
        tuples: int = 0,
        on_fail: Optional[FailFn] = None,
    ) -> Message:
        """Re-send a previously framed message as a fresh attempt.

        The retry/failover path for direct sends: the attempt goes out as
        ``msg.clone(fresh_id=True)``, so it carries its own payload copy
        and message id — ``size_bytes`` (and any receiver-side ``hops``
        bookkeeping inside the payload) can never alias between attempts,
        and the body size the sender declared is preserved exactly.
        """
        clone = msg.clone(level=message_mod.ISOLATE_COPY, fresh_id=True)
        return self._transmit(clone, tuples, on_fail)

    def _transmit(self, msg: Message, tuples: int, on_fail: Optional[FailFn]) -> Message:
        src, dst = msg.src, msg.dst
        self.messages_sent += 1

        if not self._node_up.get(src, False):
            # A crashed node cannot send; drop silently (its callbacks are
            # dead anyway once the node object ignores deliveries).
            self.messages_failed += 1
            return msg

        if dst not in self._endpoints:
            self._fail(msg, "unknown-destination", on_fail)
            return msg
        if not self.is_link_up(src, dst):
            self._fail(msg, "link-down", on_fail)
            return msg
        if not self._node_up.get(dst, False):
            self._fail(msg, "peer-down", on_fail)
            return msg

        key = (src, dst)
        now = self.sim.now
        transmission = msg.wire_size * 8.0 / self.bandwidth_bps
        start = max(now, self._link_busy_until.get(key, 0.0))
        self._link_busy_until[key] = start + transmission
        latency = self._one_way(src, dst)
        delivery_time = start + transmission + latency

        stats = self.link_stats.get(key)
        if stats is None:
            stats = LinkStats()
            self.link_stats[key] = stats
        stats.messages += 1
        stats.bytes += msg.wire_size
        stats.tuples += tuples
        if self.record_link_delays:
            stats.record_delay(now, delivery_time - now, self.link_delay_sample_cap)

        self.sim.schedule_at(delivery_time, self._deliver, msg, on_fail)
        return msg

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _one_way(self, src: str, dst: str) -> float:
        site_a = self.sites.get(src)
        site_b = self.sites.get(dst)
        if site_a is None or site_b is None or site_a is site_b:
            # Co-located processes (robustness experiment on a local
            # cluster): small LAN-ish delay.
            return 0.0005 + self._rng.random() * 0.0005
        return self.latency.one_way_s(site_a, site_b, self._rng)

    def _deliver(self, msg: Message, on_fail: Optional[FailFn]) -> None:
        if not self._node_up.get(msg.dst, False) or msg.dst not in self._endpoints:
            self._fail(msg, "peer-down", on_fail, immediate=True)
            return
        self.messages_delivered += 1
        level = message_mod.isolation_level()
        if level != message_mod.ISOLATE_OFF:
            # Message-isolation sanitizer: the real deployment serialized
            # every message over TCP, so hand the endpoint a clone whose
            # payload cannot alias the sender's objects (and, at the
            # ``freeze`` level, raises on any mutation attempt).
            msg = msg.clone(level=level)
        self._endpoints[msg.dst](msg)

    def _fail(self, msg: Message, reason: str, on_fail: Optional[FailFn], immediate: bool = False) -> None:
        self.messages_failed += 1
        if on_fail is None:
            return
        delay = 0.0 if immediate else self.fail_detect_s
        self.sim.schedule(delay, on_fail, msg, reason)
