"""Message-passing network with per-link queues and failure awareness.

The network delivers :class:`~repro.net.message.Message` objects between
registered endpoints.  Each directed link serializes transmissions at a
configurable bandwidth (producing the queuing hotspots behind the paper's
Figure 8), adds a sampled one-way latency, and honours link/node failure
state injected by :class:`~repro.net.failures.FailureInjector`.

Semantics mirror TCP as the paper's prototype used it: if the link or the
destination is down the sender's ``on_fail`` callback fires after a
detection delay, letting overlay code run its reconnect/re-route logic.

Scaling design
--------------
``_transmit``/``_deliver`` are the hottest per-message functions of every
experiment, so the bookkeeping is laid out for the 1k-node regime:

* **Array-backed link accounting.**  Each directed link is interned once
  into an integer id (``src -> dst -> id`` nested dicts, no per-send tuple
  key allocation); messages/bytes/tuples/busy-until live in flat lists
  indexed by that id.  The public :attr:`link_stats` mapping of
  :class:`LinkStats` objects is materialized on demand — experiment
  read-out, not the send path.
* **One-lookup liveness.**  ``_up_endpoints`` holds exactly the endpoints
  that are registered *and* up, so the no-failure path does a single dict
  probe per side instead of separate registration and liveness checks,
  and the link-down check short-circuits on the (empty) outage table.
* **Churn hygiene.**  :meth:`unregister` prunes every per-link entry
  touching the departed address (busy state, outage state, accounting)
  and re-homes any coalesced delivery batches still pending on the freed
  link ids, so long churn runs don't accumulate state for dead links;
  pass ``retain_stats=True`` to keep the accounting for post-run
  reporting.
"""

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.net import message as message_mod
from repro.net.latency import LatencyModel
from repro.net.message import HEADER_BYTES, Message
from repro.net.topology import Site
from repro.sim.kernel import Simulator
from repro.sim.resources import ResourceLedger

DeliverFn = Callable[[Message], None]
FailFn = Callable[[Message, str], None]


def decimate_step(
    samples: List[Tuple[float, float]],
    stride: int,
    phase: int,
    cap: Optional[int],
    time: float,
    delay: float,
) -> Tuple[int, int]:
    """Advance the stride-decimation sampler by one send.

    Records ``(time, delay)`` when the sampler's phase comes due; when the
    buffer reaches ``cap`` it is thinned to every other sample and the
    stride doubles.  Returns the new ``(stride, phase)``.

    The phase is realigned on every stride doubling so retained samples
    keep the even-spacing contract the Figure 8/12 plots assume: the next
    recorded send lands exactly one *new* stride after the last retained
    sample.  (Without realignment the sample following a doubling drifts
    off-grid — the pre-fix behavior.)
    """
    if phase == 0:
        samples.append((time, delay))
        if cap is not None and len(samples) >= cap:
            # Whether the just-appended sample survives the thinning
            # decides where the next on-grid sample falls: it survives
            # exactly when its index (len-1) is even.
            last_kept = len(samples) % 2 == 1
            del samples[1::2]
            phase = 0 if last_kept else stride
            stride *= 2
    return stride, (phase + 1) % stride


@dataclass
class LinkStats:
    """Counters and samples for one directed link (``src -> dst``)."""

    tuples: int = 0
    messages: int = 0
    bytes: int = 0
    #: (send_time, total_delay_seconds) samples; populated only when the
    #: network was created with ``record_link_delays=True``.  Bounded by
    #: the network's ``link_delay_sample_cap`` via stride decimation.
    delay_samples: List[Tuple[float, float]] = field(default_factory=list)
    #: Every ``delay_sample_stride``-th send is sampled; starts at 1 and
    #: doubles whenever the buffer hits the cap (half the samples are
    #: dropped), so long runs keep a bounded, evenly thinned time series.
    delay_sample_stride: int = 1
    _delay_phase: int = 0

    def record_delay(self, time: float, delay: float, cap: Optional[int]) -> None:
        """Record a (send_time, delay) sample under the decimation budget.

        Decimation preserves the temporal *shape* of the series (Figures
        8 and 12 plot delay versus time), unlike reservoir sampling which
        would scramble ordering guarantees for the same bound.
        """
        self.delay_sample_stride, self._delay_phase = decimate_step(
            self.delay_samples,
            self.delay_sample_stride,
            self._delay_phase,
            cap,
            time,
            delay,
        )


class SimNetwork:
    """Simulated WAN connecting MIND node endpoints.

    Parameters
    ----------
    sim:
        The simulation kernel.
    sites:
        Mapping of network address -> :class:`Site`; used by the latency
        model.  Addresses not present fall back to a default latency.
    latency_model:
        Latency sampler; a default PlanetLab-calibrated model if omitted.
    bandwidth_bps:
        Per-directed-link bandwidth for transmission-time serialization.
        PlanetLab slices in 2004 were commonly capped around 10 Mbit/s.
    fail_detect_s:
        Time for a sender to learn that a connection attempt failed.
    record_link_delays:
        Keep (time, delay) samples per link (Figure 8 / 12 benches).
    link_delay_sample_cap:
        Per-link bound on retained delay samples; when a link reaches the
        cap its series is thinned to every other sample and the sampling
        stride doubles.  ``None`` disables the bound.
    coalesce_window_s:
        Link-level delivery coalescing (0 = off, the default).  When set,
        messages sharing a directed link whose sampled delivery times land
        in the same window are delivered by a single drain event at the
        window boundary instead of one event per message.  The latency and
        bandwidth model is unchanged — each message still gets its own
        serialization slot and latency draw, and a message is never
        delivered *earlier* than its sampled delivery time; it is deferred
        by at most one window (delivery lands at the next boundary).
        Within a batch messages deliver in send order at one simulated
        instant, destination liveness is re-checked per message at drain
        time, and a destination that died before the drain fails exactly
        the undelivered messages' ``on_fail`` callbacks.
    """

    def __init__(
        self,
        sim: Simulator,
        sites: Dict[str, Site],
        latency_model: Optional[LatencyModel] = None,
        bandwidth_bps: float = 10e6,
        fail_detect_s: float = 1.0,
        record_link_delays: bool = False,
        link_delay_sample_cap: Optional[int] = 8192,
        draw_block: int = 0,
        coalesce_window_s: float = 0.0,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth_bps must be positive")
        if link_delay_sample_cap is not None and link_delay_sample_cap < 2:
            raise ValueError("link_delay_sample_cap must be >= 2 (or None)")
        if draw_block < 0:
            raise ValueError("draw_block must be >= 0")
        if coalesce_window_s < 0:
            raise ValueError("coalesce_window_s must be >= 0")
        self.sim = sim
        self.sites = dict(sites)
        self.latency = latency_model or LatencyModel()
        self.bandwidth_bps = bandwidth_bps
        self.fail_detect_s = fail_detect_s
        self.record_link_delays = record_link_delays
        self.link_delay_sample_cap = link_delay_sample_cap
        self.coalesce_window_s = coalesce_window_s
        #: Pending coalesced deliveries, batched per link and arrival
        #: window: ``(link_id, window_index) -> [(msg, on_fail), ...]``.
        self._outbox: Dict[Tuple[int, int], List[Tuple[Message, Optional[FailFn]]]] = {}
        #: Window index -> outbox keys with traffic in that window.  The
        #: whole window shares ONE drain event (not one per link): at
        #: monitoring rates most links carry at most one message per
        #: window, so per-link drain events would re-create the
        #: one-kernel-event-per-message regime the outbox exists to
        #: avoid.  Links drain in first-traffic order and each batch in
        #: send order — the exact sequence per-link drain events at the
        #: same boundary timestamp would produce.
        self._slot_links: Dict[int, List[Tuple[int, int]]] = {}
        #: Window index -> deferred ``fn(arg)`` calls (``call_in_slot``).
        #: The receive-side twin of the delivery outbox: nodes park their
        #: post-service dispatch callbacks here so a window's worth of
        #: handler executions shares one kernel event instead of one
        #: per message.
        self._call_wheel: Dict[int, List[Tuple[Callable[..., None], Tuple[Any, ...]]]] = {}

        self._endpoints: Dict[str, DeliverFn] = {}
        self._node_up: Dict[str, bool] = {}
        #: Endpoints that are registered *and* up — the one-probe liveness
        #: lookup of the transmit/deliver fast paths.
        self._up_endpoints: Dict[str, DeliverFn] = {}
        self._link_down_until: Dict[Tuple[str, str], float] = {}

        # Array-backed per-link accounting, indexed by interned link id.
        self._link_ids: Dict[str, Dict[str, int]] = {}
        self._link_key: List[Optional[Tuple[str, str]]] = []
        self._free_ids: List[int] = []
        self._lk_busy_until: List[float] = []
        self._lk_messages: List[int] = []
        self._lk_bytes: List[int] = []
        self._lk_tuples: List[int] = []
        self._lk_samples: List[Optional[List[Tuple[float, float]]]] = []
        self._lk_stride: List[int] = []
        self._lk_phase: List[int] = []
        #: Deterministic latency class per link id: propagation seconds
        #: for a WAN pair, -1.0 for the LAN fallback, -2.0 unclassified.
        #: A link's class never changes while its id is bound (sites are
        #: fixed at construction), so the per-message site lookups and
        #: pair-key hashing collapse to one float read.
        self._lk_prop: List[float] = []

        #: Resource ledger (repro-leak quiescence sanitizer); ``None``
        #: when tracking is off, leaving one identity test per guard.
        self._res: Optional[ResourceLedger] = sim.resources

        self._rng = sim.rng("net.latency")
        #: Block-drawn per-message jitters (opt-in, ``draw_block`` > 0).
        #: The stdlib ``lognormvariate`` costs a Python-level rejection
        #: loop per draw; a vectorized block amortizes it to a list pop.
        #: Same distributions, different (still deterministic) stream —
        #: default off, so seeded experiments keep their exact draws.
        self._draw_block = draw_block
        self._jit_buf: List[float] = []
        self._uni_buf: List[float] = []
        self._np_gen = None
        if draw_block:
            import numpy as _np

            self._np_gen = _np.random.default_rng(self._rng.randrange(2**63))
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_failed = 0

    # ------------------------------------------------------------------
    # Registration and failure state
    # ------------------------------------------------------------------
    def register(self, address: str, deliver: DeliverFn) -> None:
        """Attach an endpoint; the address becomes routable and up."""
        if address in self._endpoints:
            raise ValueError(f"address already registered: {address}")
        self._endpoints[address] = deliver
        self._node_up[address] = True
        self._up_endpoints[address] = deliver

    def unregister(self, address: str, retain_stats: bool = False) -> None:
        """Detach an endpoint and prune its per-link state.

        Every link touching ``address`` (either direction) releases its
        outage and busy-until state; the traffic accounting is released
        too unless ``retain_stats=True`` keeps it for post-run reporting.
        Without pruning, 1k-node churn accumulates link state for every
        pairing a departed node ever had — unbounded over a long run.
        """
        self._endpoints.pop(address, None)
        self._node_up.pop(address, None)
        self._up_endpoints.pop(address, None)
        if self._link_down_until:
            stale = [key for key in self._link_down_until if address in key]
            for key in stale:
                del self._link_down_until[key]
        out = self._link_ids.get(address)
        incoming = [
            (by_dst, address)
            for src, by_dst in self._link_ids.items()
            if src != address and address in by_dst
        ]
        if retain_stats:
            # Keep the accounting; transient transmission state still
            # resets so a re-registered address starts with idle links.
            if out:
                for link_id in out.values():
                    self._lk_busy_until[link_id] = 0.0
            for by_dst, dst in incoming:
                self._lk_busy_until[by_dst[dst]] = 0.0
            return
        released = set()
        if out:
            del self._link_ids[address]
            for link_id in out.values():
                self._release_link(link_id)
                released.add(link_id)
        for by_dst, dst in incoming:
            link_id = by_dst.pop(dst)
            self._release_link(link_id)
            released.add(link_id)
        if released and self._outbox:
            self._flush_released_links(released)

    def _flush_released_links(self, released: set) -> None:
        """Re-home pending coalesced batches whose link ids were freed.

        A freed id can be re-interned by a *different* (src, dst) pair
        before the batch's drain event fires, silently merging the dead
        link's backlog into the new link's batch.  Each pending message
        moves to its own plain delivery event at the same drain boundary,
        so per-message delivery/failure semantics are preserved exactly
        and ``unregister`` leaves no coalescing state behind.
        """
        window = self.coalesce_window_s
        res = self._res
        stale = [key for key in self._outbox if key[0] in released]
        for key in stale:
            slot = key[1]
            keys = self._slot_links[slot]
            keys.remove(key)
            if not keys:
                del self._slot_links[slot]
            at = slot * window
            for msg, on_fail in self._outbox.pop(key):
                if res is not None:
                    res.release("net:outbox", msg.dst)
                self.sim.push_at(at, self._deliver, (msg, on_fail))

    def set_node_up(self, address: str, up: bool) -> None:
        if address not in self._endpoints:
            raise KeyError(f"unknown address: {address}")
        self._node_up[address] = up
        if up:
            self._up_endpoints[address] = self._endpoints[address]
        else:
            self._up_endpoints.pop(address, None)

    def is_node_up(self, address: str) -> bool:
        return self._node_up.get(address, False)

    def set_link_down(self, src: str, dst: str, duration_s: float, bidirectional: bool = True) -> None:
        """Take the directed link down for ``duration_s`` from now."""
        until = self.sim.now + duration_s
        key = (src, dst)
        self._link_down_until[key] = max(self._link_down_until.get(key, 0.0), until)
        if bidirectional:
            rkey = (dst, src)
            self._link_down_until[rkey] = max(self._link_down_until.get(rkey, 0.0), until)

    def is_link_up(self, src: str, dst: str) -> bool:
        return self._link_down_until.get((src, dst), 0.0) <= self.sim.now

    # ------------------------------------------------------------------
    # Link interning
    # ------------------------------------------------------------------
    def _link_id(self, src: str, dst: str) -> int:
        by_dst = self._link_ids.get(src)
        if by_dst is None:
            by_dst = self._link_ids[src] = {}
        link_id = by_dst.get(dst)
        if link_id is None:
            if self._free_ids:
                link_id = self._free_ids.pop()
                self._link_key[link_id] = (src, dst)
            else:
                link_id = len(self._link_key)
                self._link_key.append((src, dst))
                self._lk_busy_until.append(0.0)
                self._lk_messages.append(0)
                self._lk_bytes.append(0)
                self._lk_tuples.append(0)
                self._lk_samples.append(None)
                self._lk_stride.append(1)
                self._lk_phase.append(0)
                self._lk_prop.append(-2.0)
            by_dst[dst] = link_id
        return link_id

    def _release_link(self, link_id: int) -> None:
        self._link_key[link_id] = None
        self._lk_busy_until[link_id] = 0.0
        self._lk_messages[link_id] = 0
        self._lk_bytes[link_id] = 0
        self._lk_tuples[link_id] = 0
        self._lk_samples[link_id] = None
        self._lk_stride[link_id] = 1
        self._lk_phase[link_id] = 0
        self._lk_prop[link_id] = -2.0
        self._free_ids.append(link_id)

    @property
    def link_stats(self) -> Dict[Tuple[str, str], LinkStats]:
        """Per-link traffic accounting as :class:`LinkStats` snapshots.

        Materialized from the array-backed accounting on access — an
        experiment read-out API, not part of the send path.  Snapshots
        share the live ``delay_samples`` list, so accessing this property
        mid-run shows samples accumulate, like the pre-array behavior.
        """
        out: Dict[Tuple[str, str], LinkStats] = {}
        for by_dst in self._link_ids.values():
            for link_id in by_dst.values():
                key = self._link_key[link_id]
                samples = self._lk_samples[link_id]
                out[key] = LinkStats(
                    tuples=self._lk_tuples[link_id],
                    messages=self._lk_messages[link_id],
                    bytes=self._lk_bytes[link_id],
                    delay_samples=samples if samples is not None else [],
                    delay_sample_stride=self._lk_stride[link_id],
                    _delay_phase=self._lk_phase[link_id],
                )
        return out

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(
        self,
        src: str,
        dst: str,
        kind: str,
        payload: Optional[Dict[str, Any]] = None,
        size_bytes: int = 256,
        tuples: int = 0,
        on_fail: Optional[FailFn] = None,
    ) -> Message:
        """Send a message; returns the in-flight :class:`Message`.

        ``tuples`` counts how many index records the message carries, feeding
        the per-link traffic accounting of Figure 12.
        """
        msg = Message.frame(src, dst, kind, payload if payload is not None else {}, size_bytes)
        return self._transmit(msg, tuples, on_fail)

    def resend(
        self,
        msg: Message,
        tuples: int = 0,
        on_fail: Optional[FailFn] = None,
    ) -> Message:
        """Re-send a previously framed message as a fresh attempt.

        The retry/failover path for direct sends: the attempt goes out as
        ``msg.clone(fresh_id=True)``, so it carries its own payload copy
        and message id — ``size_bytes`` (and any receiver-side ``hops``
        bookkeeping inside the payload) can never alias between attempts,
        and the body size the sender declared is preserved exactly.
        """
        clone = msg.clone(level=message_mod.ISOLATE_COPY, fresh_id=True)
        return self._transmit(clone, tuples, on_fail)

    def _transmit(self, msg: Message, tuples: int, on_fail: Optional[FailFn]) -> Message:
        src, dst = msg.src, msg.dst
        self.messages_sent += 1

        up = self._up_endpoints
        if src not in up:
            # A crashed node cannot send; drop silently (its callbacks are
            # dead anyway once the node object ignores deliveries).
            self.messages_failed += 1
            return msg
        if dst not in up:
            # Failure triage in the pre-scale order: unknown destination
            # first, then link outage, then crashed peer.
            if dst not in self._endpoints:
                self._fail(msg, "unknown-destination", on_fail)
            elif not self.is_link_up(src, dst):
                self._fail(msg, "link-down", on_fail)
            else:
                self._fail(msg, "peer-down", on_fail)
            return msg
        if self._link_down_until and not self.is_link_up(src, dst):
            self._fail(msg, "link-down", on_fail)
            return msg

        by_dst = self._link_ids.get(src)
        link_id = by_dst.get(dst) if by_dst is not None else None
        if link_id is None:
            link_id = self._link_id(src, dst)
        now = self.sim.now
        wire = msg.size_bytes + HEADER_BYTES
        transmission = wire * 8.0 / self.bandwidth_bps
        busy = self._lk_busy_until
        start = busy[link_id]
        if start < now:
            start = now
        busy[link_id] = start + transmission
        # Inlined _one_way: the link's latency class is interned with its
        # id, leaving only the per-message jitter draws (same arithmetic,
        # same RNG draw order as LatencyModel.one_way_s).
        prop = self._lk_prop[link_id]
        if prop == -2.0:
            prop = self._lk_prop[link_id] = self._classify_link(src, dst)
        rng = self._rng
        if self._draw_block:
            ubuf = self._uni_buf
            u = ubuf.pop() if ubuf else self._refill_uniform()
            if prop >= 0.0:
                model = self.latency
                jbuf = self._jit_buf
                jitter = jbuf.pop() if jbuf else self._refill_jitter()
                latency = model.base_s + prop * jitter
                if u < model.pathology_prob:
                    latency += model.pathology_scale_s * rng.paretovariate(
                        model.pathology_alpha
                    )
            else:
                latency = 0.0005 + u * 0.0005
        elif prop >= 0.0:
            model = self.latency
            latency = model.base_s + prop * rng.lognormvariate(0.0, model.jitter_sigma)
            if rng.random() < model.pathology_prob:
                latency += model.pathology_scale_s * rng.paretovariate(model.pathology_alpha)
        else:
            latency = 0.0005 + rng.random() * 0.0005
        delivery_time = start + transmission + latency

        self._lk_messages[link_id] += 1
        self._lk_bytes[link_id] += wire
        self._lk_tuples[link_id] += tuples
        if self.record_link_delays:
            samples = self._lk_samples[link_id]
            if samples is None:
                samples = self._lk_samples[link_id] = []
            self._lk_stride[link_id], self._lk_phase[link_id] = decimate_step(
                samples,
                self._lk_stride[link_id],
                self._lk_phase[link_id],
                self.link_delay_sample_cap,
                now,
                delivery_time - now,
            )

        window = self.coalesce_window_s
        if window == 0.0:
            self.sim.push_at(delivery_time, self._deliver, (msg, on_fail))
            return msg
        # Coalesced path: defer delivery to the end of the window the
        # sampled delivery time falls in, sharing one drain event with
        # every other message on this link arriving in the same window.
        slot = int(delivery_time / window) + 1
        key = (link_id, slot)
        batch = self._outbox.get(key)
        if batch is None:
            self._outbox[key] = [(msg, on_fail)]
            keys = self._slot_links.get(slot)
            if keys is None:
                self._slot_links[slot] = [key]
                self.sim.push_at(slot * window, self._drain_slot, (slot,))
            else:
                keys.append(key)
        else:
            batch.append((msg, on_fail))
        if self._res is not None:
            self._res.register("net:outbox", msg.dst)
        return msg

    #: Hot-path entry for senders that already framed their Message (the
    #: overlay's ``_send`` builds one per send anyway): same body as
    #: :meth:`send` minus the framing, with no wrapper frame in between.
    #: Callers pass ``(msg, tuples, on_fail)``.
    send_framed = _transmit

    def _drain_slot(self, slot: int) -> None:
        """Deliver one window's per-link batches; per-message failure.

        A destination that died since the messages were sent fails exactly
        the batch's undelivered messages — each message's own ``on_fail``
        fires, mirroring the per-message delivery path.
        """
        outbox = self._outbox
        up = self._up_endpoints
        level = message_mod._isolation
        res = self._res
        # ``pop`` default: unregister may have re-homed every batch of
        # this window, leaving the already-scheduled drain event stale.
        for key in self._slot_links.pop(slot, ()):
            for msg, on_fail in outbox.pop(key):
                if res is not None:
                    res.release("net:outbox", msg.dst)
                deliver = up.get(msg.dst)
                if deliver is None:
                    self._fail(msg, "peer-down", on_fail, immediate=True)
                    continue
                self.messages_delivered += 1
                if level != message_mod.ISOLATE_OFF:
                    msg = msg.clone(level=level)
                deliver(msg)

    def call_in_slot(self, time: float, fn: Callable[..., None], args: Tuple[Any, ...]) -> None:
        """Run ``fn(*args)`` at ``time`` rounded up to the next window boundary.

        The receive-side twin of delivery coalescing: nodes use this for
        post-service dispatch callbacks and self-guarding watchdog
        timers, so one kernel event drains a whole window's worth of
        callbacks instead of costing one event each.  Same contract as
        ``_transmit``'s coalesced branch — the call is deferred by
        strictly less than one window, never runs early, and calls
        sharing a slot run in schedule order.  There is no cancel
        handle: the call always fires, so callbacks must tolerate being
        stale (every kernel timer here is already written that way for
        lazy cancellation).  Callers must only use this when
        ``coalesce_window_s`` is non-zero.
        """
        window = self.coalesce_window_s
        slot = int(time / window) + 1
        batch = self._call_wheel.get(slot)
        if batch is None:
            # Keyed by window index, not node id: the slot's drain event
            # is already scheduled when the entry is created and always
            # empties it within one window, so unregister has nothing to
            # prune (stale callbacks self-guard, per the docstring).
            self._call_wheel[slot] = [(fn, args)]  # repro-leak: ignore[leak-node-retention] time-keyed, drains within one window
            self.sim.push_at(slot * window, self._drain_calls, (slot,))
        else:
            batch.append((fn, args))
        if self._res is not None:
            self._res.register("net:call-wheel", getattr(fn, "__qualname__", "fn"))

    def _drain_calls(self, slot: int) -> None:
        res = self._res
        for fn, args in self._call_wheel.pop(slot):
            if res is not None:
                res.release("net:call-wheel", getattr(fn, "__qualname__", "fn"))
            fn(*args)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _refill_jitter(self) -> float:
        buf = self._np_gen.lognormal(0.0, self.latency.jitter_sigma, self._draw_block).tolist()
        last = buf.pop()
        self._jit_buf = buf
        return last

    def _refill_uniform(self) -> float:
        buf = self._np_gen.random(self._draw_block).tolist()
        last = buf.pop()
        self._uni_buf = buf
        return last

    def _classify_link(self, src: str, dst: str) -> float:
        """Deterministic latency class of a directed link (memoized per id).

        Returns the WAN propagation delay in seconds, or -1.0 for the
        co-located/LAN fallback (small fixed-range delay per message).
        """
        sites = self.sites
        if sites:
            site_a = sites.get(src)
            site_b = sites.get(dst)
            if site_a is not None and site_b is not None and site_a is not site_b:
                return self.latency.propagation_s(site_a, site_b)
        return -1.0

    def _one_way(self, src: str, dst: str) -> float:
        sites = self.sites
        if sites:
            site_a = sites.get(src)
            site_b = sites.get(dst)
            if site_a is not None and site_b is not None and site_a is not site_b:
                return self.latency.one_way_s(site_a, site_b, self._rng)
        # Co-located processes (robustness experiment on a local
        # cluster): small LAN-ish delay.
        return 0.0005 + self._rng.random() * 0.0005

    def _deliver(self, msg: Message, on_fail: Optional[FailFn]) -> None:
        deliver = self._up_endpoints.get(msg.dst)
        if deliver is None:
            self._fail(msg, "peer-down", on_fail, immediate=True)
            return
        self.messages_delivered += 1
        level = message_mod.isolation_level()
        if level != message_mod.ISOLATE_OFF:
            # Message-isolation sanitizer: the real deployment serialized
            # every message over TCP, so hand the endpoint a clone whose
            # payload cannot alias the sender's objects (and, at the
            # ``freeze`` level, raises on any mutation attempt).
            msg = msg.clone(level=level)
        deliver(msg)

    def _fail(self, msg: Message, reason: str, on_fail: Optional[FailFn], immediate: bool = False) -> None:
        self.messages_failed += 1
        if on_fail is None:
            return
        delay = 0.0 if immediate else self.fail_detect_s
        # The zero-delay branch fires the failure continuation at the send
        # instant itself: the sender already *knows* the peer is down, so
        # there is no transmission to wait out.  ``on_fail`` is the
        # originating op's own retry/failover continuation and touches only
        # that op's state; its order against other same-instant events is
        # exercised by the schedule-fuzz equivalence suite.
        self.sim.schedule(delay, on_fail, msg, reason)  # repro-race: ignore[order-zero-delay]
