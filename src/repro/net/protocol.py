"""The wire-protocol registry: every message kind, typed.

MIND's correctness rests on an invariant the string-dispatched handler
tables cannot enforce on their own: every ``kind`` that any node sends must
have exactly one handler with an agreed payload shape at the receiver.  A
typo'd kind or a drifted payload key is protocol divergence between peers —
the dominant silent-failure mode in P2P index overlays.  This module makes
the protocol a checkable artifact:

* :data:`REGISTRY` declares every *direct* message kind (dispatched by
  :meth:`OverlayNode._dispatch` / ``BaselineNode._deliver``) with its
  required and optional payload keys.
* :data:`ROUTED` declares the *routed* kinds carried inside a ``route``
  envelope's ``inner_kind``/``inner`` fields and dispatched by
  ``on_route_arrival``.
* :func:`validate_wire` checks a (kind, payload) pair against the registry;
  :class:`~repro.net.message.Message` calls it at construction time when
  validation is enabled (the "debug mode" used by the test suite), so any
  drift between sender and registry fails loudly at the send site.
* ``repro.analysis`` cross-checks the registry against the AST of the
  whole codebase: unknown kinds, unhandled kinds, dead kinds, and
  undeclared payload keys are all analysis-time errors.

Validation is off by default (zero overhead on the benchmark hot paths)
and enabled by the test suite via :func:`set_validation`, or anywhere via
the ``REPRO_PROTOCOL_VALIDATE=1`` environment variable.
"""

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, Mapping, Optional, Tuple


class ProtocolError(ValueError):
    """A message violates the declared wire protocol."""


@dataclass(frozen=True)
class MessageKind:
    """Declaration of one message kind's payload contract.

    ``layer`` groups kinds by subsystem: ``overlay`` (membership, routing,
    liveness), ``mind`` (index application), ``baseline`` (the comparison
    architectures), or ``routed`` (kinds carried inside a ``route``
    envelope rather than dispatched directly).
    """

    name: str
    layer: str
    required: FrozenSet[str] = field(default_factory=frozenset)
    optional: FrozenSet[str] = field(default_factory=frozenset)
    doc: str = ""

    def all_keys(self) -> FrozenSet[str]:
        return self.required | self.optional


def _kind(
    name: str,
    layer: str,
    required: Iterable[str] = (),
    optional: Iterable[str] = (),
    doc: str = "",
) -> Tuple[str, MessageKind]:
    return name, MessageKind(
        name=name,
        layer=layer,
        required=frozenset(required),
        optional=frozenset(optional),
        doc=doc,
    )


#: Keys of the ``route`` envelope itself; the payload of every ``route``
#: message and the argument to ``on_route_arrival`` / ``on_route_failed``.
ENVELOPE_KEYS = (
    "target",
    "inner_kind",
    "inner",
    "op_id",
    "origin",
    "hops",
    "path",
    "exclude",
    "attempt",
    "tuples",
)


#: Direct message kinds: ``Message.kind`` values dispatched by a handler
#: table at the receiving endpoint.
REGISTRY: Dict[str, MessageKind] = dict(
    (
        # -- overlay: join protocol ------------------------------------
        _kind("join_lookup", "overlay", ["joiner"],
              doc="Joiner asks a live node for its neighborhood."),
        _kind("join_neighborhood", "overlay", ["neighborhood"],
              doc="Bootstrap answers with (address, code bits) pairs."),
        _kind("join_lookup_fail", "overlay",
              doc="Bootstrap is not (yet) in the overlay; retry elsewhere."),
        _kind("join_request", "overlay", ["joiner"],
              doc="Joiner asks the chosen host to split its region."),
        _kind("join_reject", "overlay", ["reason"],
              doc="Host refuses (busy / preempted / timeout)."),
        _kind("split_prepare", "overlay", ["host", "host_code", "joiner", "round"],
              doc="Host asks its neighbors to freeze for a split round."),
        _kind("split_ack", "overlay", ["round"],
              doc="Neighbor accepts the split round."),
        _kind("split_nack", "overlay", ["round"],
              doc="Neighbor refuses (a shallower host preempted)."),
        _kind("split_abort", "overlay", ["host", "round"],
              doc="Host cancels an in-flight split round."),
        _kind("split_commit_notify", "overlay",
              ["host", "host_code", "joiner", "joiner_code", "round"],
              doc="Host announces the committed split to its neighbors."),
        _kind("split_done", "overlay", ["code", "neighbors", "state"],
              doc="Host hands the joiner its code, table, and app state."),
        _kind("code_update", "overlay", ["address", "code"],
              doc="A node announces its (new) primary code."),
        # -- overlay: liveness and recovery ----------------------------
        _kind("heartbeat", "overlay", ["code"], optional=["peer_code"],
              doc="Periodic liveness beacon carrying the sender's code; "
                  "peer_code echoes the code the sender believes the "
                  "receiver holds, so stale entries trigger a corrective "
                  "beacon and one-directional links heal."),
        _kind("liveness_probe", "overlay", ["suspect"],
              doc="Ask a witness whether it can still reach the suspect."),
        _kind("liveness_report", "overlay", ["suspect", "alive"],
              doc="Witness verdict on a suspected-dead peer."),
        _kind("witness_ping", "overlay", ["on_behalf"],
              doc="Witness-side reachability ping toward the suspect."),
        _kind("witness_pong", "overlay", ["on_behalf"],
              doc="Suspect answers the witness ping."),
        _kind("route", "overlay", ENVELOPE_KEYS,
              doc="One greedy-routing hop of an application envelope."),
        _kind("ring_probe", "overlay",
              ["op_id", "target", "best_match", "origin", "ttl", "visited"],
              doc="Expanding-ring search for a node closer to the target."),
        _kind("ring_found", "overlay", ["op_id", "match"],
              doc="A closer node answers a ring probe."),
        _kind("adopt_probe_ack", "overlay", ["code", "probe"],
              doc="A live owner answers a fallback-adoption probe."),
        _kind("adopt_probe_dead", "overlay", ["probe"],
              doc="Routing proved the probed region unreachable."),
        # -- mind: operation results and failure reports ---------------
        _kind("insert_ack", "mind", ["op_id", "hops"],
              doc="Owner stored the record; completes the insert op."),
        _kind("op_failed", "mind", ["kind", "op_id"],
              optional=["attempt", "region", "version", "region_bits"],
              doc="Routing failure report for an insert / sub-query / "
                  "trigger registration, sent back to the originator."),
        _kind("query_response", "mind",
              ["qid", "version", "region", "spawned", "records", "path",
               "responder", "attempt", "failover"],
              doc="A responsible node's matches for one sub-query region."),
        # -- mind: sibling pointer -------------------------------------
        _kind("sibling_fetch", "mind", ["fetch_id", "index", "rect", "time_range"],
              doc="Fresh joiner pulls pre-split matches from its host."),
        _kind("sibling_data", "mind", ["fetch_id", "records"],
              doc="Split host returns pre-split matching records."),
        # -- mind: replication -----------------------------------------
        _kind("replica_store", "mind", ["index", "record"],
              doc="Owner pushes a stored record to a replica holder."),
        # -- mind: index lifecycle (flooded) ---------------------------
        _kind("index_create", "mind", ["index", "versions", "replication"],
              doc="Flooded creation of an index with its version history."),
        _kind("index_version", "mind", ["index", "valid_from", "embedding"],
              doc="Flooded installation of a new embedding version."),
        _kind("index_drop", "mind", ["index"],
              doc="Flooded removal of an index."),
        # -- mind: histogram collection (flooded request) --------------
        _kind("histo_request", "mind",
              ["req_id", "index", "granularity", "time_range", "collector"],
              doc="Collector floods a data-distribution histogram request."),
        _kind("histo_reply", "mind", ["req_id", "histogram"],
              doc="Per-node histogram, returned directly to the collector."),
        # -- mind: triggers (continuous queries) -----------------------
        _kind("trigger_installed", "mind", ["reg_id", "region", "spawned"],
              doc="A region acknowledges a trigger registration."),
        _kind("trigger_fire", "mind", ["trigger_id", "index", "record"],
              doc="A matching insert fires a standing query."),
        _kind("trigger_drop", "mind", ["index", "trigger_id"],
              doc="Flooded removal of a trigger."),
        # -- baselines: query flooding ---------------------------------
        _kind("flood_query", "baseline", ["qid", "query", "origin"],
              doc="Query-flooding baseline: evaluate at every monitor."),
        _kind("flood_reply", "baseline", ["qid", "responder", "records"],
              doc="Monitor's local matches, returned to the originator."),
        # -- baselines: uniform-hash DHT -------------------------------
        _kind("h_store", "baseline", ["op_id", "origin", "record"],
              doc="DHT baseline: store a record at its hash owner."),
        _kind("h_store_ack", "baseline", ["op_id"],
              doc="DHT baseline: hash owner acknowledges the store."),
        _kind("h_query", "baseline", ["qid", "origin", "query"],
              doc="DHT baseline: range queries broadcast to every node."),
        _kind("h_reply", "baseline", ["qid", "responder", "records"],
              doc="DHT baseline: per-node matches."),
        # -- baselines: centralized ------------------------------------
        _kind("c_insert", "baseline", ["op_id", "origin", "record"],
              doc="Centralized baseline: ship a record to the server."),
        _kind("c_insert_ack", "baseline", ["op_id"],
              doc="Centralized baseline: server acknowledges the insert."),
        _kind("c_query", "baseline", ["op_id", "origin", "query"],
              doc="Centralized baseline: evaluate a query at the server."),
        _kind("c_query_reply", "baseline", ["op_id", "records"],
              doc="Centralized baseline: the server's matches."),
    )
)


#: Routed kinds: values of a ``route`` envelope's ``inner_kind``, with the
#: contract of its ``inner`` payload.  Dispatched by ``on_route_arrival``.
ROUTED: Dict[str, MessageKind] = dict(
    (
        _kind("insert", "routed", ["index", "record", "op_id", "attempt"],
              doc="Store a record at the owner of its embedded code."),
        _kind("subquery", "routed",
              ["index", "qid", "rect", "version", "time_range"],
              optional=["attempt", "failover", "failover_for"],
              doc="Evaluate one region's share of a range query."),
        _kind("trigger_install", "routed",
              ["index", "reg_id", "rect", "version", "trigger"],
              doc="Install a standing query at every intersecting region."),
        _kind("adopt_probe", "routed", ["claimant", "probe"],
              doc="Probe whether anything live still owns a dead region."),
    )
)


# ----------------------------------------------------------------------
# Dense integer kind ids (the data-plane fast path)
# ----------------------------------------------------------------------
#: Direct kinds in registry order, interned to dense integer ids.  A
#: :class:`~repro.net.message.Message` carries ``kind_id`` next to the
#: string ``kind``, and per-node handler tables are flat lists indexed by
#: it, so the per-receive dispatch is one list read instead of a string
#: dict probe (and a fallback chain).  Ids are an in-process artifact —
#: nothing about them crosses the (simulated) wire — and registry order
#: is fixed at import, so they are stable within a run by construction.
KIND_IDS: Dict[str, int] = {name: i for i, name in enumerate(REGISTRY)}

#: Kind names (and declarations) by dense id, for tracing and read-outs.
KIND_BY_ID: Tuple[MessageKind, ...] = tuple(REGISTRY.values())

#: Number of registered direct kinds == length of a full dispatch table.
NUM_KINDS: int = len(REGISTRY)

#: Sentinel id for a kind missing from :data:`REGISTRY`.  Dispatch tables
#: are sized ``NUM_KINDS + 1`` with the last slot always empty, so an
#: unknown kind indexes the empty slot and takes the error path without a
#: bounds check (``table[-1]`` would silently alias the last real kind).
UNKNOWN_KIND_ID: int = NUM_KINDS

#: Routed kinds (``route`` envelope ``inner_kind`` values), same scheme.
ROUTED_IDS: Dict[str, int] = {name: i for i, name in enumerate(ROUTED)}


def kind_id(kind: str) -> int:
    """The dense id of a direct kind (:data:`UNKNOWN_KIND_ID` if absent)."""
    return KIND_IDS.get(kind, UNKNOWN_KIND_ID)


def lookup(kind: str) -> Optional[MessageKind]:
    """The declaration for a direct kind, or ``None`` if unregistered."""
    return REGISTRY.get(kind)


def lookup_routed(inner_kind: str) -> Optional[MessageKind]:
    """The declaration for a routed kind, or ``None`` if unregistered."""
    return ROUTED.get(inner_kind)


# ----------------------------------------------------------------------
# Runtime validation (debug mode)
# ----------------------------------------------------------------------
_validate: bool = os.environ.get("REPRO_PROTOCOL_VALIDATE", "") == "1"


def validation_enabled() -> bool:
    return _validate


def set_validation(enabled: bool) -> None:
    """Globally enable or disable wire validation at Message construction."""
    global _validate
    _validate = enabled


@contextmanager
def validation(enabled: bool):
    """Temporarily force validation on or off (tests use this)."""
    global _validate
    previous = _validate
    _validate = enabled
    try:
        yield
    finally:
        _validate = previous


def _check_shape(decl: MessageKind, payload: Mapping[str, Any], context: str) -> None:
    keys = set(payload)
    missing = decl.required - keys
    if missing:
        raise ProtocolError(
            f"{context} {decl.name!r} payload is missing required "
            f"key(s) {sorted(missing)}"
        )
    extra = keys - decl.all_keys()
    if extra:
        raise ProtocolError(
            f"{context} {decl.name!r} payload carries undeclared "
            f"key(s) {sorted(extra)}"
        )


def validate_wire(kind: str, payload: Mapping[str, Any]) -> None:
    """Check one (kind, payload) pair against the registry.

    Raises :class:`ProtocolError` on an unknown kind, a missing required
    key, or an undeclared key.  ``route`` messages additionally have their
    carried ``inner_kind``/``inner`` checked against :data:`ROUTED`.
    """
    decl = REGISTRY.get(kind)
    if decl is None:
        raise ProtocolError(f"unregistered message kind {kind!r}")
    _check_shape(decl, payload, "message")
    if kind == "route":
        inner_decl = ROUTED.get(payload["inner_kind"])
        if inner_decl is None:
            raise ProtocolError(
                f"unregistered routed kind {payload['inner_kind']!r}"
            )
        _check_shape(inner_decl, payload["inner"], "routed")
