"""Backbone router sites used to place MIND nodes geographically.

The paper deploys MIND instances on PlanetLab machines chosen to be
geographically close to the routers of the Abilene (11 PoPs, North America)
and GÉANT (23 PoPs, Europe) backbones, so that overlay links experience the
propagation delays of a real deployment.  We reproduce that placement with
the actual PoP cities and coordinates of the two networks circa 2004.
"""

from dataclasses import dataclass
from typing import Dict, List, Sequence

import random


@dataclass(frozen=True)
class Site:
    """A physical location hosting a MIND node.

    ``network`` records which backbone the site belongs to ("abilene",
    "geant" or "planetlab" for the synthetic large-scale deployment) and is
    used by the traffic generator to pick per-network sampling rates.
    """

    name: str
    latitude: float
    longitude: float
    network: str

    def __str__(self) -> str:
        return f"{self.name} ({self.network})"


#: The 11 Abilene backbone PoPs (Internet2, 2004), with the router codes used
#: by the paper's Figure 17 drill-down example (CHIN, DNVR, IPLS, ...).
ABILENE_SITES: List[Site] = [
    Site("ATLA", 33.749, -84.388, "abilene"),    # Atlanta
    Site("CHIN", 41.878, -87.630, "abilene"),    # Chicago
    Site("DNVR", 39.739, -104.990, "abilene"),   # Denver
    Site("HSTN", 29.760, -95.370, "abilene"),    # Houston
    Site("IPLS", 39.768, -86.158, "abilene"),    # Indianapolis
    Site("KSCY", 39.100, -94.578, "abilene"),    # Kansas City
    Site("LOSA", 34.052, -118.244, "abilene"),   # Los Angeles
    Site("NYCM", 40.713, -74.006, "abilene"),    # New York
    Site("SNVA", 37.369, -122.036, "abilene"),   # Sunnyvale
    Site("STTL", 47.606, -122.332, "abilene"),   # Seattle
    Site("WASH", 38.907, -77.037, "abilene"),    # Washington DC
]

#: The 23 GÉANT PoPs (one per NREN country, 2004).
GEANT_SITES: List[Site] = [
    Site("AT-Vienna", 48.208, 16.373, "geant"),
    Site("BE-Brussels", 50.850, 4.352, "geant"),
    Site("CH-Geneva", 46.204, 6.143, "geant"),
    Site("CY-Nicosia", 35.185, 33.382, "geant"),
    Site("CZ-Prague", 50.075, 14.437, "geant"),
    Site("DE-Frankfurt", 50.110, 8.682, "geant"),
    Site("ES-Madrid", 40.416, -3.703, "geant"),
    Site("FR-Paris", 48.856, 2.352, "geant"),
    Site("GR-Athens", 37.983, 23.727, "geant"),
    Site("HR-Zagreb", 45.815, 15.982, "geant"),
    Site("HU-Budapest", 47.497, 19.040, "geant"),
    Site("IE-Dublin", 53.349, -6.260, "geant"),
    Site("IL-TelAviv", 32.085, 34.781, "geant"),
    Site("IT-Milan", 45.464, 9.190, "geant"),
    Site("LU-Luxembourg", 49.611, 6.132, "geant"),
    Site("NL-Amsterdam", 52.367, 4.904, "geant"),
    Site("PL-Poznan", 52.406, 16.925, "geant"),
    Site("PT-Lisbon", 38.722, -9.139, "geant"),
    Site("SE-Stockholm", 59.329, 18.068, "geant"),
    Site("SI-Ljubljana", 46.056, 14.505, "geant"),
    Site("SK-Bratislava", 48.148, 17.107, "geant"),
    Site("UK-London", 51.507, -0.127, "geant"),
    Site("RO-Bucharest", 44.426, 26.102, "geant"),
]

# Bounding boxes used to scatter synthetic PlanetLab sites, roughly covering
# the continental US and western/central Europe where most 2004 PlanetLab
# machines lived.
_REGION_BOXES = {
    "north-america": (25.0, 49.0, -123.0, -70.0),
    "europe": (36.0, 60.0, -9.0, 25.0),
}


def backbone_sites() -> List[Site]:
    """The 34-site deployment of the paper's baseline experiment."""
    return list(ABILENE_SITES) + list(GEANT_SITES)


def synthetic_planetlab_sites(
    count: int,
    rng: random.Random,
    europe_fraction: float = 0.5,
) -> List[Site]:
    """Scatter ``count`` synthetic PlanetLab sites over NA and Europe.

    Used for the paper's 102-node large-scale experiment where nodes were
    "arbitrarily chosen but distributed across North America and Europe".
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    sites = []
    for i in range(count):
        region = "europe" if rng.random() < europe_fraction else "north-america"
        lat_lo, lat_hi, lon_lo, lon_hi = _REGION_BOXES[region]
        sites.append(
            Site(
                name=f"pl{i:03d}-{region[:2]}",
                latitude=rng.uniform(lat_lo, lat_hi),
                longitude=rng.uniform(lon_lo, lon_hi),
                network="planetlab",
            )
        )
    return sites


def sites_by_name(sites: Sequence[Site]) -> Dict[str, Site]:
    """Index a site list by name, rejecting duplicates."""
    result: Dict[str, Site] = {}
    for site in sites:
        if site.name in result:
            raise ValueError(f"duplicate site name: {site.name}")
        result[site.name] = site
    return result
