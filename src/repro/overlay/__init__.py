"""Hypercube overlay: codes, routing, join, liveness and recovery.

MIND organizes nodes into a (possibly unbalanced) hypercube: every node
carries a variable-length binary *code*, and the set of live codes always
forms a prefix-free partition of the binary code space — equivalently, the
leaves of a binary trie.  Everything else in this package is built on that
invariant:

* greedy routing strictly increases the common prefix with the target code
  at every hop (``routing``),
* the Adler-style randomized join splits the shallowest node found in a
  random neighborhood, keeping the trie balanced with high probability,
  with a deadlock-free serialization of concurrent joins (``join``),
* heartbeats detect failed peers and a probe over the overlay distinguishes
  a dead peer from a broken direct link (``liveness``), and
* a failed node's sibling takes over its half of the code space by
  shortening its own code (``recovery``).
"""

from repro.overlay.code import Code
from repro.overlay.neighbors import NeighborTable
from repro.overlay.node import OverlayNode
from repro.overlay.routing import RouteDecision, next_hop

__all__ = [
    "Code",
    "NeighborTable",
    "OverlayNode",
    "RouteDecision",
    "next_hop",
]
