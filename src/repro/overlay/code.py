"""Binary node codes (hypercube vertex addresses).

A :class:`Code` is an immutable bit string.  The empty code is the root of
the binary trie and is held by the very first node of an overlay.  Codes of
live nodes always form a prefix-free set that covers the whole code space;
:class:`Code` provides the prefix algebra everything else relies on.
"""

from typing import Iterator


_VALID_BITS = frozenset("01")


class Code:
    """An immutable binary code, e.g. ``Code("0010")``.

    Codes are ordered lexicographically (useful for deterministic tests)
    and hashable, so they can key dictionaries directly.
    """

    __slots__ = ("bits", "_num", "_len")

    def __init__(self, bits: str = "") -> None:
        if not set(bits) <= _VALID_BITS:
            raise ValueError(f"code must contain only 0/1, got {bits!r}")
        object.__setattr__(self, "bits", bits)
        # Integer mirror of the bit string: prefix comparisons reduce to
        # shift/xor on machine words instead of per-character Python loops
        # — the hottest operation of greedy routing at scale.
        object.__setattr__(self, "_num", int(bits, 2) if bits else 0)
        object.__setattr__(self, "_len", len(bits))

    def __setattr__(self, name, value):  # noqa: D105 - immutability guard
        raise AttributeError("Code is immutable")

    # -- basic protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self.bits)

    def __iter__(self) -> Iterator[str]:
        return iter(self.bits)

    def __getitem__(self, idx):
        result = self.bits[idx]
        return Code(result) if isinstance(idx, slice) else result

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Code) and self.bits == other.bits

    def __lt__(self, other: "Code") -> bool:
        return self.bits < other.bits

    def __hash__(self) -> int:
        return hash(("Code", self.bits))

    def __repr__(self) -> str:
        return f"Code({self.bits!r})"

    def __str__(self) -> str:
        return self.bits or "ε"

    # -- prefix algebra --------------------------------------------------
    def is_prefix_of(self, other: "Code") -> bool:
        """True when ``self`` is a (non-strict) prefix of ``other``."""
        my_len = self._len
        other_len = other._len
        return my_len <= other_len and (other._num >> (other_len - my_len)) == self._num

    def comparable(self, other: "Code") -> bool:
        """True when one code is a prefix of the other.

        Comparable codes denote nested trie subtrees; two *live* node codes
        are never comparable except when equal (prefix-free invariant).
        Called on every routed hop, so the check runs on the integer
        mirrors in one shot instead of two string ``startswith`` passes.
        """
        my_len = self._len
        other_len = other._len
        if my_len <= other_len:
            return (other._num >> (other_len - my_len)) == self._num
        return (self._num >> (my_len - other_len)) == other._num

    def common_prefix_len(self, other: "Code") -> int:
        my_len = self._len
        other_len = other._len
        n = my_len if my_len < other_len else other_len
        if n == 0:
            return 0
        diff = (self._num >> (my_len - n)) ^ (other._num >> (other_len - n))
        return n - diff.bit_length()

    def first_diff(self, other: "Code") -> int:
        """Index of the first differing bit; -1 when comparable."""
        cpl = self.common_prefix_len(other)
        if cpl == min(len(self), len(other)):
            return -1
        return cpl

    # -- construction ----------------------------------------------------
    def extend(self, bit: str) -> "Code":
        if bit not in _VALID_BITS:
            raise ValueError(f"bit must be '0' or '1', got {bit!r}")
        return Code(self.bits + bit)

    def shorten(self) -> "Code":
        """Drop the last bit — a sibling takeover after the sibling dies."""
        if not self.bits:
            raise ValueError("cannot shorten the empty code")
        return Code(self.bits[:-1])

    def sibling(self) -> "Code":
        """The code differing only in the last bit."""
        if not self.bits:
            raise ValueError("the empty code has no sibling")
        last = "1" if self.bits[-1] == "0" else "0"
        return Code(self.bits[:-1] + last)

    def flip(self, index: int) -> "Code":
        """Flip bit ``index`` — the dimension-``index`` hypercube move."""
        if not 0 <= index < len(self.bits):
            raise IndexError(f"bit index {index} out of range for {self!r}")
        bit = "1" if self.bits[index] == "0" else "0"
        return Code(self.bits[:index] + bit + self.bits[index + 1 :])

    def prefix(self, length: int) -> "Code":
        if not 0 <= length <= len(self.bits):
            raise ValueError(f"prefix length {length} out of range for {self!r}")
        return Code(self.bits[:length])


#: Shared instances for the routing hot path.  Codes are immutable values,
#: so per-hop reconstruction from wire bits is pure overhead; the universe
#: of codes is bounded by the cut-tree depth (2^depth+1 strings), which
#: keeps the cache small.
_INTERNED: dict = {}


def intern_code(bits: str) -> Code:
    """A shared :class:`Code` for ``bits`` (validating on first sight)."""
    code = _INTERNED.get(bits)
    if code is None:
        code = _INTERNED[bits] = Code(bits)
    return code
