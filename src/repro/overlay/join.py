"""State machines for the randomized, deadlock-free node join.

The join follows Adler et al.'s randomized procedure as adapted by the
paper (Section 3.3, Figure 4):

1. The joiner asks a random live node for its *neighborhood* — that node
   plus its hypercube neighbors, with codes.
2. The joiner picks the shallowest node (shortest code) in the
   neighborhood as its split host.
3. The host runs an optimistic prepare/commit round with its neighbors.
   A neighbor holding a prepare from another, **deeper** host preempts it
   in favour of the shallower one; ties break on (code bits, address) so
   preemption is a total order and no deadlock or livelock is possible.
4. On commit the host appends ``0`` to its code, the joiner receives the
   host's old code plus ``1``, the host's neighbor table and the
   application-level state snapshot (index schemas, cut trees, sibling
   data pointer).

Aborted or timed-out joins are retried by the joiner with a fresh random
bootstrap after a randomized backoff.
"""

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.overlay.code import Code


def host_priority(code: Code, address: str) -> Tuple[int, str, str]:
    """Total preemption order: shallower hosts win, ties break on code/addr."""
    return (len(code), code.bits, address)


@dataclass
class HostJoinState:
    """Host-side bookkeeping for one in-flight split."""

    joiner: str
    host_code: Code
    round_id: int
    awaiting_acks: Set[str] = field(default_factory=set)
    acked: Set[str] = field(default_factory=set)
    timeout_event: Optional[object] = None

    def all_acked(self) -> bool:
        return self.awaiting_acks <= self.acked


@dataclass
class JoinerState:
    """Joiner-side bookkeeping while negotiating entry into the overlay."""

    bootstrap: str
    attempt: int = 1
    host: Optional[str] = None
    timeout_event: Optional[object] = None

    def clear_timeout(self) -> None:
        if self.timeout_event is not None:
            self.timeout_event.cancel()
            self.timeout_event = None


@dataclass
class PendingPrepare:
    """A neighbor's record of a prepare it has acked but not yet seen commit."""

    host: str
    host_code: Code
    joiner: str
    round_id: int

    def priority(self) -> Tuple[int, str, str]:
        return host_priority(self.host_code, self.host)


def choose_split_host(neighborhood: List[Tuple[str, Code]], rng) -> Tuple[str, Code]:
    """Pick the shallowest node in a neighborhood; random among ties.

    This is the step that keeps the hypercube balanced with high
    probability: a random node's neighborhood almost always contains a
    node of minimal depth, and splitting minimal-depth nodes first evens
    out code lengths.
    """
    if not neighborhood:
        raise ValueError("empty neighborhood")
    min_len = min(len(code) for _, code in neighborhood)
    shallowest = [(addr, code) for addr, code in neighborhood if len(code) == min_len]
    return rng.choice(sorted(shallowest))


@dataclass
class SiblingPointer:
    """Post-split pointer from joiner to host for not-yet-aged data.

    When a node joins and takes over half of its host's region, existing
    index data is *not* moved; the joiner forwards matching queries to the
    host until the data has aged out (the paper drops the pointer "once
    the data have aged").
    """

    sibling: str
    created_at: float
    expires_at: float

    def live(self, now: float) -> bool:
        return now < self.expires_at
