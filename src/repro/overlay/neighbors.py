"""Per-node view of overlay peers.

A node's *neighbors* on the hypercube are, for each bit position ``i`` of
its code, the peers responsible for the opposite subtree ``code[:i] + ~code[i]``.
In a balanced hypercube that is one peer per dimension (about log N total);
after churn the opposite subtree may be covered by several peers or by a
peer with a shorter code.

The table stores every peer the node has learned about together with the
peer's code and liveness belief; dimension lookups are computed from codes
on demand, so a code change (join split, takeover shortening) never leaves
stale structure behind.
"""

from typing import Dict, Iterable, List, Optional, Tuple

from repro.overlay.code import Code


class NeighborTable:
    """Maps peer address -> (code, alive) with hypercube dimension queries."""

    def __init__(self) -> None:
        self._peers: Dict[str, Code] = {}
        self._alive: Dict[str, bool] = {}
        #: Bumped on every *effective* mutation; lets callers (the node's
        #: ``links()`` cache) memoize derived neighbor views.  No-op
        #: upserts — gossip re-announcing a peer we already know at the
        #: same code and liveness — leave it unchanged.
        self.version = 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def confirm_alive(self, address: str, bits: str) -> bool:
        """Heartbeat fast path: is ``address`` already known with code
        ``bits`` and alive?  True means the heartbeat is a pure no-op —
        no :class:`Code` construction, no upsert, no version bump."""
        cur = self._peers.get(address)
        return cur is not None and cur.bits == bits and self._alive.get(address) is True

    def upsert(self, address: str, code: Code, alive: bool = True) -> None:
        if self._peers.get(address) == code and self._alive.get(address) is alive:
            return
        self._peers[address] = code
        self._alive[address] = alive
        self.version += 1

    def remove(self, address: str) -> None:
        if address in self._peers:
            del self._peers[address]
            self._alive.pop(address, None)
            self.version += 1

    def mark_dead(self, address: str) -> None:
        if self._alive.get(address, False):
            self._alive[address] = False
            self.version += 1

    def mark_alive(self, address: str) -> None:
        if address in self._alive and not self._alive[address]:
            self._alive[address] = True
            self.version += 1

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __contains__(self, address: str) -> bool:
        return address in self._peers

    def __len__(self) -> int:
        return len(self._peers)

    def code_of(self, address: str) -> Optional[Code]:
        return self._peers.get(address)

    def is_alive(self, address: str) -> bool:
        return self._alive.get(address, False)

    def entries(self, alive_only: bool = False) -> List[Tuple[str, Code]]:
        return [
            (addr, code)
            for addr, code in self._peers.items()
            if not alive_only or self._alive.get(addr, False)
        ]

    def addresses(self, alive_only: bool = False) -> List[str]:
        return [addr for addr, _ in self.entries(alive_only=alive_only)]

    def dimension_neighbors(
        self,
        my_code: Code,
        dim: int,
        alive_only: bool = True,
        _entries: Optional[List[Tuple[str, Code]]] = None,
    ) -> List[Tuple[str, Code]]:
        """Peers adjacent across hypercube dimension ``dim``.

        In an incomplete hypercube the dimension-``dim`` neighbors of a node
        with code ``c`` are the peers whose code (a) lies in the opposite
        subtree ``c[:dim] + ~c[dim]`` — or is a shorter code covering it —
        and (b) agrees with ``c`` on the bits after ``dim`` as far as both
        codes are defined.  A balanced cube yields one such peer per
        dimension; when the opposite subtree is one level deeper there are
        two (e.g. node ``00`` links to both ``010`` and ``011``).
        """
        my_len = my_code._len
        if not 0 <= dim < my_len:
            raise IndexError(f"dimension {dim} out of range for code {my_code}")
        # All of the prefix algebra below runs on the integer mirrors:
        # ``links()`` rebuilds call this once per dimension, and the
        # Code-object formulation (prefix/flip/suffix construction per
        # candidate peer) allocated about one Code per routed message at
        # cluster scale.
        t_len = dim + 1
        t_num = (my_code._num >> (my_len - t_len)) ^ 1  # my[:dim+1], bit dim flipped
        my_suf_len = my_len - t_len
        my_suf_num = my_code._num & ((1 << my_suf_len) - 1)
        # ``hypercube_neighbors`` pre-filters the live entries once and
        # passes them for all of its per-dimension calls.
        if _entries is None:
            _entries = self.entries(alive_only=alive_only)
        result = []
        for addr, code in _entries:
            c_len = code._len
            c_num = code._num
            if c_len <= t_len:
                if (t_num >> (t_len - c_len)) == c_num:  # code covers target
                    result.append((addr, code))
            elif (c_num >> (c_len - t_len)) == t_num:  # target covers code
                p_suf_len = c_len - t_len
                p_suf_num = c_num & ((1 << p_suf_len) - 1)
                if p_suf_len <= my_suf_len:
                    if (my_suf_num >> (my_suf_len - p_suf_len)) == p_suf_num:
                        result.append((addr, code))
                elif (p_suf_num >> (p_suf_len - my_suf_len)) == my_suf_num:
                    result.append((addr, code))
        return result

    def hypercube_neighbors(self, my_code: Code, alive_only: bool = True) -> List[Tuple[str, Code]]:
        """The union of dimension neighbors over every bit of ``my_code``.

        These are exactly the peers a balanced node keeps overlay links to,
        and the candidate set for replica placement and takeover.
        """
        seen: Dict[str, Code] = {}
        entries = self.entries(alive_only=alive_only)
        for dim in range(len(my_code)):
            for addr, code in self.dimension_neighbors(
                my_code, dim, alive_only=alive_only, _entries=entries
            ):
                seen[addr] = code
        return list(seen.items())

    def best_toward(self, target: Code, exclude: Iterable[str] = (), alive_only: bool = True) -> Optional[Tuple[str, Code]]:
        """The known peer whose code shares the longest prefix with ``target``."""
        excluded = set(exclude)
        best: Optional[Tuple[str, Code]] = None
        best_len = -1
        for addr, code in self.entries(alive_only=alive_only):
            if addr in excluded:
                continue
            cpl = code.common_prefix_len(target)
            if cpl > best_len or (cpl == best_len and best is not None and code < best[1]):
                best = (addr, code)
                best_len = cpl
        return best

    def prune_to_neighborhood(self, my_code: Code) -> None:
        """Forget peers that are no longer hypercube neighbors.

        Called after code changes to keep the table at the ~log N size the
        paper's balanced hypercube promises.
        """
        keep = {addr for addr, _ in self.hypercube_neighbors(my_code, alive_only=False)}
        for addr in list(self._peers):
            if addr not in keep:
                self.remove(addr)
