"""The overlay node: message dispatch, join, routing, liveness, recovery.

:class:`OverlayNode` implements everything in the paper's Section 3.3 and
3.8 — the hypercube membership protocol and its failure handling — and
exposes hooks that :class:`repro.core.mind_node.MindNode` overrides to add
index semantics (Sections 3.4-3.7).

Processing model
----------------
Each delivered message waits for the node's single dispatch "thread": the
node has a CPU-busy horizon and every message adds a sampled service time,
so a node flooded with inserts develops a queue — this is the mechanism
behind the paper's long latency tails (Figures 7, 8, 11).  Per-node
``speed_factor`` models slow PlanetLab machines.
"""

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.net import message as message_mod
from repro.net import protocol
from repro.net.message import Message, thaw_payload
from repro.net.network import SimNetwork
from repro.overlay.code import Code, intern_code
from repro.overlay.join import (
    HostJoinState,
    JoinerState,
    PendingPrepare,
    SiblingPointer,
    choose_split_host,
    host_priority,
)
from repro.overlay.routing import RouteDecision, next_hop
from repro.overlay.neighbors import NeighborTable
from repro.sim.kernel import Simulator


@dataclass
class OverlayConfig:
    """Tunables for overlay behaviour.

    The defaults are calibrated to the paper's PlanetLab deployment; the
    benchmarks override individual knobs (e.g. liveness is off for the
    long traffic-replay runs and on for the robustness experiment).
    """

    service_time_s: float = 0.0004
    service_jitter_sigma: float = 0.6
    #: Block size for vectorized service-jitter draws (0 = per-message
    #: stdlib draws).  Same log-normal distribution, different — still
    #: deterministic — stream; default off so seeded experiments keep
    #: their exact per-draw sequence.  The scale perf tier opts in.
    service_draw_block: int = 0
    join_timeout_s: float = 8.0
    join_backoff_s: float = 1.0
    hb_interval_s: float = 10.0
    hb_timeout_s: float = 35.0
    liveness_enabled: bool = False
    ring_max_ttl: int = 6
    ring_step_timeout_s: float = 2.0
    #: Routed messages die after this many hops (covers pathological
    #: bouncing between stale-coded nodes during recovery transients).
    route_ttl: int = 24
    #: Heartbeat piggybacking: skip the periodic heartbeat to a neighbor
    #: this node has sent *any* message within the window (every delivery
    #: refreshes the receiver's liveness clock, so the data traffic itself
    #: is the heartbeat).  ``None`` sends every heartbeat.  Suppression
    #: also delays code-change announcements to active neighbors, so it is
    #: meant for stable-topology runs (the scale perf tier), not churn.
    hb_suppress_s: Optional[float] = None
    sibling_pointer_ttl_s: float = 3600.0
    adoption_delay_s: float = 5.0
    prune_tables: bool = True
    route_msg_bytes: int = 320
    control_msg_bytes: int = 180


class OverlayNode:
    """One MIND overlay participant.

    Subclasses override the ``on_*`` hooks; the overlay machinery itself
    never inspects application payloads.
    """

    def __init__(
        self,
        sim: Simulator,
        network: SimNetwork,
        address: str,
        config: Optional[OverlayConfig] = None,
        speed_factor: float = 1.0,
    ) -> None:
        self.sim = sim
        self.network = network
        self.address = address
        self.config = config or OverlayConfig()
        self.speed_factor = speed_factor

        self.code: Optional[Code] = None
        self.active = False
        self.neighbors = NeighborTable()
        self.adopted: Set[Code] = set()
        self.sibling_pointer: Optional[SiblingPointer] = None

        self._host_join: Optional[HostJoinState] = None
        self._pending_prepare: Optional[PendingPrepare] = None
        self._joiner_state: Optional[JoinerState] = None
        self._join_round = 0
        self._cpu_busy_until = 0.0
        self._last_heard: Dict[str, float] = {}
        self._last_sent: Dict[str, float] = {}
        self._hb_event = None
        self._ring_state: Dict[Any, Dict[str, Any]] = {}
        #: Per-node suppression of ring-probe floods: (op_id, origin) ->
        #: highest TTL already processed.  Without this an expanding-ring
        #: broadcast branches exponentially in the node degree.
        self._ring_seen: Dict[Any, int] = {}
        self._declared_dead: Set[str] = set()
        #: Fallback adoptions awaiting a reachability probe: region bits ->
        #: the backstop timer that adopts if neither an ack nor an explicit
        #: unreachable report arrives.
        self._pending_adoptions: Dict[str, Any] = {}
        self._probe_seq = 0
        #: ``links()`` memo: key -> computed link list.  ``links()`` is
        #: called on every routed hop and recomputes hypercube neighbors
        #: from codes; at 1k nodes that recomputation dominates the whole
        #: simulation, while the inputs (neighbor table, code, adopted
        #: regions) change only on joins/splits/liveness transitions.
        self._links_key: Optional[Tuple[Any, ...]] = None
        self._links_memo: List[Tuple[str, Code]] = []

        self.bootstrap_provider: Optional[Callable[[str], Optional[str]]] = None
        self.on_joined_callbacks: List[Callable[["OverlayNode"], None]] = []

        self.messages_processed = 0
        self.routes_forwarded = 0
        self.ring_recoveries = 0
        self.takeovers = 0

        self._rng = sim.rng(f"overlay.{address}")
        # Bound once: ``_deliver`` draws one service-jitter sample per
        # delivered message, and the attribute chain is measurable there.
        self._lognormvariate = self._rng.lognormvariate
        #: Per-message service cost before jitter, folded once — both
        #: factors are fixed at construction.
        self._service_scale = self.config.service_time_s * self.speed_factor
        #: Block-drawn service jitters (``None`` = per-message stdlib
        #: draws; a list when ``config.service_draw_block`` opts in).
        self._jitter_buf: Optional[List[float]] = None
        self._np_service = None
        if self.config.service_draw_block:
            import numpy as _np

            self._np_service = _np.random.default_rng(self._rng.randrange(2**63))
            self._jitter_buf = []
        self._handlers: Dict[str, Callable[[Message], None]] = {
            "join_lookup": self._on_join_lookup,
            "join_neighborhood": self._on_join_neighborhood,
            "join_lookup_fail": self._on_join_lookup_fail,
            "join_request": self._on_join_request,
            "join_reject": self._on_join_reject,
            "split_prepare": self._on_split_prepare,
            "split_ack": self._on_split_ack,
            "split_nack": self._on_split_nack,
            "split_abort": self._on_split_abort,
            "split_commit_notify": self._on_split_commit_notify,
            "split_done": self._on_split_done,
            "code_update": self._on_code_update,
            "heartbeat": self._on_heartbeat,
            "liveness_probe": self._on_liveness_probe,
            "liveness_report": self._on_liveness_report,
            "witness_ping": self._on_witness_ping,
            "witness_pong": self._on_witness_pong,
            "route": self._on_route,
            "ring_probe": self._on_ring_probe,
            "ring_found": self._on_ring_found,
            "adopt_probe_ack": self._on_adopt_probe_ack,
            "adopt_probe_dead": self._on_adopt_probe_dead,
        }
        # Flat dispatch table indexed by ``Message.kind_id``, built once on
        # the first dispatch (``extra_handlers()`` needs the subclass
        # __init__ to have finished) from ``_handlers`` + ``extra_handlers()``.
        # A table index replaces two string dict probes per received
        # message.  Slot ``UNKNOWN_KIND_ID`` (the last one) stays ``None``
        # so unregistered kinds fall into the error path without a bounds
        # check; handlers for kinds outside the wire registry (test-only
        # kinds) keep working via the string-keyed overflow dict.
        self._dispatch_table: Optional[List[Optional[Callable[[Message], None]]]] = None
        self._dispatch_overflow: Dict[str, Callable[[Message], None]] = {}
        # Routing-decision memo, keyed by target bits and valid only for
        # the link list it was computed against (identity-checked: links()
        # returns a new list object whenever the link set changes).
        self._route_memo: Dict[str, "RouteDecision"] = {}
        self._route_memo_links: Optional[List[Tuple[str, Code]]] = None
        self._route_memo_depth = 0
        network.register(address, self._deliver)

    # ==================================================================
    # Hooks for subclasses
    # ==================================================================
    def on_route_arrival(self, envelope: Dict[str, Any]) -> None:
        """Called when a routed message reaches a responsible node.

        Overlay-level routed kinds (adoption probes) are handled here;
        subclasses must delegate kinds they don't recognise to ``super()``.
        """
        if envelope["inner_kind"] == "adopt_probe":
            self._arrive_adopt_probe(envelope)

    def on_route_failed(self, envelope: Dict[str, Any], reason: str) -> None:
        """Called when routing gave up (ring recovery exhausted).

        Same delegation contract as :meth:`on_route_arrival`.
        """
        if envelope["inner_kind"] == "adopt_probe":
            self._adopt_probe_unreachable(envelope)

    def on_split_transfer_state(self, old_code: Code, joiner_code: Code) -> Dict[str, Any]:
        """Host-side: application state handed to the joiner."""
        return {}

    def on_split_received_state(self, state: Dict[str, Any]) -> None:
        """Joiner-side: install application state from the host."""

    def on_code_changed(self, old_code: Optional[Code], new_code: Code) -> None:
        """Called after any code change (split, takeover)."""

    def on_peer_dead(self, address: str, code: Optional[Code]) -> None:
        """Called once when a peer is declared dead."""

    def extra_handlers(self) -> Dict[str, Callable[[Message], None]]:
        """Subclasses add message kinds by overriding this."""
        return {}

    # ==================================================================
    # Lifecycle
    # ==================================================================
    def activate_as_root(self) -> None:
        """Become the first node of a new overlay (empty code)."""
        if self.code is not None:
            raise RuntimeError(f"{self.address} is already in an overlay")
        self.active = True
        self._set_code(Code(""))
        self._notify_joined()
        self._start_heartbeats()

    def start_join(self, bootstrap: str) -> None:
        """Begin joining an existing overlay via the given live node."""
        if self.code is not None:
            raise RuntimeError(f"{self.address} is already in an overlay")
        self.active = True
        self._joiner_state = JoinerState(bootstrap=bootstrap)
        self._send(bootstrap, "join_lookup", {"joiner": self.address})
        self._arm_join_timeout()

    def crash(self) -> None:
        """Lose all volatile state; the network layer stops deliveries."""
        self.active = False
        self.code = None
        self.neighbors = NeighborTable()
        # A fresh table can reuse the old one's id(); drop the memo so the
        # links() cache never matches across the crash.
        self._links_key = None
        self._links_memo = []
        self.adopted = set()
        self.sibling_pointer = None
        self._host_join = None
        self._pending_prepare = None
        self._joiner_state = None
        self._last_heard = {}
        self._last_sent = {}
        self._ring_state = {}
        self._declared_dead = set()
        for event in self._pending_adoptions.values():
            event.cancel()
        self._pending_adoptions = {}
        if self._hb_event is not None:
            self._hb_event.cancel()
            self._hb_event = None

    def restore(self) -> None:
        """Come back after a crash and rejoin through the bootstrap provider."""
        bootstrap = self._pick_bootstrap()
        if bootstrap is None:
            self.activate_as_root()
        else:
            self.start_join(bootstrap)

    def in_overlay(self) -> bool:
        return self.active and self.code is not None

    # ==================================================================
    # Links and regions
    # ==================================================================
    def links(self, alive_only: bool = True) -> List[Tuple[str, Code]]:
        """Current hypercube links for the primary code and adopted regions.

        Memoized on ``(table identity+version, code, adopted, alive_only)``
        so the per-hop call is a key comparison, not a hypercube
        recomputation.  The returned list is shared with the memo and must
        be treated as read-only.
        """
        if self.code is None:
            return []
        key = (
            id(self.neighbors),
            self.neighbors.version,
            self.code,
            frozenset(self.adopted) if self.adopted else (),
            alive_only,
        )
        if key == self._links_key:
            # Callers treat the link list as read-only (they iterate or
            # re-derive), so the memo is shared rather than copied — the
            # copy dominated the per-hop cost at cluster scale.
            return self._links_memo
        seen: Dict[str, Code] = dict(self.neighbors.hypercube_neighbors(self.code, alive_only))
        for region in sorted(self.adopted):
            for addr, code in self.neighbors.hypercube_neighbors(region, alive_only):
                seen[addr] = code
        seen.pop(self.address, None)
        links = list(seen.items())
        self._links_key = key
        self._links_memo = links
        return links

    def covers(self, target: Code) -> bool:
        """Does this node own (part of) the region addressed by ``target``?"""
        if self.code is None:
            return False
        if self.code.comparable(target):
            return True
        adopted = self.adopted
        if not adopted:
            # Steady state: no adopted regions, and building the generator
            # below costs more than the whole primary check.
            return False
        return any(region.comparable(target) for region in adopted)

    def match_len(self, target: Code) -> int:
        """Longest common prefix between the target and any owned region."""
        if self.code is None:
            return -1
        best = self.code.common_prefix_len(target)
        for region in sorted(self.adopted):
            best = max(best, region.common_prefix_len(target))
        return best

    # ==================================================================
    # Messaging plumbing
    # ==================================================================
    def _send(
        self,
        dst: str,
        kind: str,
        payload: Dict[str, Any],
        size_bytes: Optional[int] = None,
        tuples: int = 0,
        on_fail=None,
    ) -> None:
        size = size_bytes if size_bytes is not None else self.config.control_msg_bytes
        if self.config.hb_suppress_s is not None:
            self._last_sent[dst] = self.sim.now
        # Frame here and skip network.send's wrapper frame: this path runs
        # once per message and the extra call is measurable at 10^7 sends.
        self.network.send_framed(
            Message.frame(self.address, dst, kind, payload, size), tuples, on_fail
        )

    def _deliver(self, msg: Message) -> None:
        if not self.active:
            return
        start = max(self.sim.now, self._cpu_busy_until)
        buf = self._jitter_buf
        if buf is None:
            jitter = self._lognormvariate(0.0, self.config.service_jitter_sigma)
        elif buf:
            jitter = buf.pop()
        else:
            jitter = self._refill_service_jitter()
        self._cpu_busy_until = start + self._service_scale * jitter
        if self.network.coalesce_window_s:
            # Receive-side coalescing: park the dispatch on the network's
            # call wheel so a window's worth of handler runs shares one
            # kernel event.  Same bounded-deferral contract as delivery
            # coalescing; per-node FIFO holds because busy times increase.
            self.network.call_in_slot(self._cpu_busy_until, self._dispatch, (msg,))
        else:
            self.sim.push_at(self._cpu_busy_until, self._dispatch, (msg,))

    def _schedule_coarse(self, delay: float, fn: Callable[..., None], *args: Any):
        """Schedule a *self-guarding* callback, coarsely when coalescing is on.

        For per-operation watchdogs that are almost always cancelled: with
        coalescing enabled the callback rides the network call wheel —
        no kernel event of its own, no cancel handle (returns ``None``),
        and it fires unconditionally up to one window late, so the
        callback's own staleness guard must absorb spurious fires.  Every
        timer routed here is already written that way (lazy kernel
        cancellation imposes the same discipline).  Without coalescing
        this is an exact kernel timer and returns its cancellable Event.
        """
        net = self.network
        if net.coalesce_window_s:
            net.call_in_slot(self.sim.now + delay, fn, args)
            return None
        return self.sim.schedule(delay, fn, *args)

    def _refill_service_jitter(self) -> float:
        buf = self._np_service.lognormal(
            0.0, self.config.service_jitter_sigma, self.config.service_draw_block
        ).tolist()
        last = buf.pop()
        self._jitter_buf = buf
        return last

    def _build_dispatch_table(self) -> List[Optional[Callable[[Message], None]]]:
        """Flatten ``_handlers`` + ``extra_handlers()`` into a kind-id table."""
        table: List[Optional[Callable[[Message], None]]] = [None] * (protocol.NUM_KINDS + 1)
        kind_ids = protocol.KIND_IDS
        for source in (self._handlers, self.extra_handlers()):
            for kind, handler in source.items():
                kid = kind_ids.get(kind)
                if kid is None:
                    # repro-leak: ignore[leak-op-state] bounded by registered kinds
                    self._dispatch_overflow[kind] = handler
                else:
                    table[kid] = handler
        self._dispatch_table = table
        return table

    def _dispatch(self, msg: Message) -> None:
        if not self.active:
            return
        self.messages_processed += 1
        self._last_heard[msg.src] = self.sim.now
        if self._declared_dead and msg.src in self._declared_dead:
            # A peer we wrote off is talking again (it restarted or the
            # partition healed); let liveness re-learn it via joins.
            self._declared_dead.discard(msg.src)
        table = self._dispatch_table
        if table is None:
            table = self._build_dispatch_table()
        handler = table[msg.kind_id]
        if handler is None:
            handler = self._dispatch_overflow.get(msg.kind)
            if handler is None:
                raise ValueError(f"{self.address}: no handler for message kind {msg.kind!r}")
        handler(msg)

    # ==================================================================
    # Join protocol — joiner side
    # ==================================================================
    def _pick_bootstrap(self) -> Optional[str]:
        if self.bootstrap_provider is None:
            return None
        return self.bootstrap_provider(self.address)

    def _arm_join_timeout(self) -> None:
        state = self._joiner_state
        if state is None:
            return
        state.clear_timeout()
        state.timeout_event = self.sim.schedule(self.config.join_timeout_s, self._join_timed_out, state.attempt)

    def _join_timed_out(self, attempt: int) -> None:
        state = self._joiner_state
        if state is None or state.attempt != attempt or self.code is not None:
            return
        self._retry_join()

    def _retry_join(self) -> None:
        state = self._joiner_state
        if state is None:
            return
        state.clear_timeout()
        backoff = self.config.join_backoff_s * (1.0 + self._rng.random())
        self.sim.schedule(backoff, self._restart_join, state.attempt)

    def _restart_join(self, prev_attempt: int) -> None:
        state = self._joiner_state
        if state is None or state.attempt != prev_attempt or self.code is not None:
            return
        bootstrap = self._pick_bootstrap() or state.bootstrap
        state.attempt += 1
        state.bootstrap = bootstrap
        state.host = None
        self._send(bootstrap, "join_lookup", {"joiner": self.address})
        self._arm_join_timeout()

    def _on_join_lookup(self, msg: Message) -> None:
        joiner = msg.payload["joiner"]
        if not self.in_overlay():
            self._send(joiner, "join_lookup_fail", {})
            return
        neighborhood = [(self.address, self.code.bits)]
        neighborhood.extend((addr, code.bits) for addr, code in self.links())
        self._send(joiner, "join_neighborhood", {"neighborhood": neighborhood})

    def _on_join_lookup_fail(self, msg: Message) -> None:
        if self._joiner_state is not None and self.code is None:
            self._retry_join()

    def _on_join_neighborhood(self, msg: Message) -> None:
        state = self._joiner_state
        if state is None or self.code is not None:
            return
        neighborhood = [(addr, Code(bits)) for addr, bits in msg.payload["neighborhood"]]
        if not neighborhood:
            self._retry_join()
            return
        host, _ = choose_split_host(neighborhood, self._rng)
        state.host = host
        self._send(host, "join_request", {"joiner": self.address})
        self._arm_join_timeout()

    def _on_join_reject(self, msg: Message) -> None:
        if self._joiner_state is not None and self.code is None:
            self._retry_join()

    def _on_split_done(self, msg: Message) -> None:
        state = self._joiner_state
        if state is None or self.code is not None:
            return
        state.clear_timeout()
        self._joiner_state = None
        payload = msg.payload
        self._set_code(Code(payload["code"]))
        for addr, bits in payload["neighbors"]:
            if addr != self.address:
                self.neighbors.upsert(addr, Code(bits))
        if self.config.prune_tables:
            self.neighbors.prune_to_neighborhood(self.code)
        self.sibling_pointer = SiblingPointer(
            sibling=msg.src,
            created_at=self.sim.now,
            expires_at=self.sim.now + self.config.sibling_pointer_ttl_s,
        )
        self.on_split_received_state(payload.get("state", {}))
        self._notify_joined()
        self._start_heartbeats()

    # ==================================================================
    # Join protocol — host side
    # ==================================================================
    def _on_join_request(self, msg: Message) -> None:
        joiner = msg.payload["joiner"]
        if not self.in_overlay() or self._host_join is not None:
            self._send(joiner, "join_reject", {"reason": "busy"})
            return
        self._join_round += 1
        live_links = [addr for addr, _ in self.links()]
        state = HostJoinState(
            joiner=joiner,
            host_code=self.code,
            round_id=self._join_round,
            awaiting_acks=set(live_links),
        )
        self._host_join = state
        if not live_links:
            self._commit_split()
            return
        prepare = {
            "host": self.address,
            "host_code": self.code.bits,
            "joiner": joiner,
            "round": state.round_id,
        }
        for addr in live_links:
            self._send(addr, "split_prepare", prepare)
        state.timeout_event = self.sim.schedule(
            self.config.join_timeout_s, self._host_join_timed_out, state.round_id
        )

    def _host_join_timed_out(self, round_id: int) -> None:
        state = self._host_join
        if state is None or state.round_id != round_id:
            return
        self._abort_split("timeout")

    def _abort_split(self, reason: str) -> None:
        state = self._host_join
        if state is None:
            return
        self._host_join = None
        if state.timeout_event is not None:
            state.timeout_event.cancel()
        for addr in sorted(state.awaiting_acks | state.acked):
            self._send(addr, "split_abort", {"host": self.address, "round": state.round_id})
        self._send(state.joiner, "join_reject", {"reason": reason})

    def _on_split_ack(self, msg: Message) -> None:
        state = self._host_join
        if state is None or msg.payload.get("round") != state.round_id:
            return
        state.acked.add(msg.src)
        if state.all_acked():
            self._commit_split()

    def _on_split_nack(self, msg: Message) -> None:
        state = self._host_join
        if state is None or msg.payload.get("round") != state.round_id:
            return
        self._abort_split("preempted")

    def _commit_split(self) -> None:
        state = self._host_join
        self._host_join = None
        if state is None:
            return
        if state.timeout_event is not None:
            state.timeout_event.cancel()
        old_code = self.code
        new_code = old_code.extend("0")
        joiner_code = old_code.extend("1")
        app_state = self.on_split_transfer_state(old_code, joiner_code)

        notify = {
            "host": self.address,
            "host_code": new_code.bits,
            "joiner": state.joiner,
            "joiner_code": joiner_code.bits,
            "round": state.round_id,
        }
        for addr, _ in self.links():
            self._send(addr, "split_commit_notify", notify)

        table = [(self.address, new_code.bits)]
        table.extend((addr, code.bits) for addr, code in self.neighbors.entries(alive_only=True))
        self._set_code(new_code, old_code=old_code)
        self.neighbors.upsert(state.joiner, joiner_code)
        if self.config.prune_tables:
            self.neighbors.prune_to_neighborhood(self.code)
        self._send(
            state.joiner,
            "split_done",
            {"code": joiner_code.bits, "neighbors": table, "state": app_state},
            size_bytes=self.config.control_msg_bytes * 4,
        )

    # ==================================================================
    # Join protocol — neighbor side
    # ==================================================================
    def _on_split_prepare(self, msg: Message) -> None:
        payload = msg.payload
        incoming = PendingPrepare(
            host=payload["host"],
            host_code=Code(payload["host_code"]),
            joiner=payload["joiner"],
            round_id=payload["round"],
        )
        # Deadlock avoidance: a shallower host preempts a deeper one, both
        # against a pending prepare we already acked and against our own
        # in-flight hosting.
        if self._host_join is not None:
            my_pri = host_priority(self.code, self.address)
            if incoming.priority() < my_pri:
                self._abort_split("preempted-by-shallower")
            else:
                self._send(incoming.host, "split_nack", {"round": incoming.round_id})
                return
        pending = self._pending_prepare
        if pending is not None and pending.host == incoming.host and pending.round_id != incoming.round_id:
            # Same host, different round.  A host runs one split round at a
            # time, so the higher round id proves the lower one is dead —
            # per-message latencies are independent, and a round's abort can
            # arrive *before* its own prepare, stranding a stale pending
            # that no later abort matches.  Both rounds carry the same
            # priority, so without this supersession the stale pending
            # would nack every future round from its own host forever.
            if incoming.round_id < pending.round_id:
                self._send(incoming.host, "split_nack", {"round": incoming.round_id})
                return
            pending = None
        if pending is not None and (pending.host != incoming.host or pending.round_id != incoming.round_id):
            if incoming.priority() < pending.priority():
                self._send(pending.host, "split_nack", {"round": pending.round_id})
            else:
                self._send(incoming.host, "split_nack", {"round": incoming.round_id})
                return
        self._pending_prepare = incoming
        self._send(incoming.host, "split_ack", {"round": incoming.round_id})

    def _on_split_abort(self, msg: Message) -> None:
        pending = self._pending_prepare
        # An abort for round r also invalidates any *older* pending from the
        # same host (rounds are serialized per host), covering reordered
        # deliveries where the newer round's abort overtakes the older one's.
        if pending is not None and pending.host == msg.payload.get("host") and pending.round_id <= msg.payload.get("round", -1):
            self._pending_prepare = None

    def _on_split_commit_notify(self, msg: Message) -> None:
        payload = msg.payload
        pending = self._pending_prepare
        if pending is not None and pending.host == payload["host"] and pending.round_id == payload["round"]:
            self._pending_prepare = None
        self.neighbors.upsert(payload["host"], Code(payload["host_code"]))
        self.neighbors.upsert(payload["joiner"], Code(payload["joiner_code"]))
        if self.config.prune_tables and self.code is not None:
            self.neighbors.prune_to_neighborhood(self.code)

    def _on_code_update(self, msg: Message) -> None:
        payload = msg.payload
        code = Code(payload["code"])
        self.neighbors.upsert(payload["address"], code)
        if payload["address"] != self.address:
            self._cede_adoptions_to(code)

    # ==================================================================
    # Routing
    # ==================================================================
    def route(
        self,
        target: Code,
        inner_kind: str,
        inner: Dict[str, Any],
        op_id: Any,
        origin: Optional[str] = None,
        tuples: int = 0,
        attempt: int = 1,
        exclude: Optional[List[str]] = None,
    ) -> None:
        """Start routing an application message toward ``target``.

        ``attempt`` stamps the envelope so retried sends are
        distinguishable end to end (failure reports echo it, letting the
        originator discard stale failures from superseded attempts), and a
        fresh ``op_id`` per attempt keeps ring-recovery state from one
        attempt from suppressing the next.  ``exclude`` pre-loads
        addresses a retry already knows to be unreachable.
        """
        envelope = {
            "target": target.bits,
            "inner_kind": inner_kind,
            "inner": inner,
            "op_id": op_id,
            "origin": origin or self.address,
            "hops": 0,
            "path": [self.address],
            "exclude": list(exclude) if exclude else [],
            "attempt": attempt,
            "tuples": tuples,
        }
        self._route_step(envelope)

    def _on_route(self, msg: Message) -> None:
        # Copy-on-receive: the envelope advances (hops/path/exclude) at
        # every hop and may be retained in ``_ring_state``, so routing must
        # work on a private copy, never the sender's object.  The envelope
        # schema is closed (built only in route()), so copy exactly its
        # mutable members — path and exclude — instead of a generic deep
        # thaw of the whole envelope.  ``dict()``/``list()`` also accept
        # the frozen views the message isolation sanitizer substitutes at
        # the ``freeze`` level.  The application ``inner`` payload is the
        # expensive part of a deep copy and routing never touches it, so
        # its thaw is deferred to the terminal hop (``private_inner``):
        # intermediate hops forward it by reference.
        envelope = dict(msg.payload)
        envelope["path"] = list(envelope["path"])
        envelope["exclude"] = list(envelope["exclude"])
        self._route_step(envelope, private_inner=False)

    def _privatize_inner(self, envelope: Dict[str, Any]) -> None:
        """Make a still-aliased ``envelope['inner']`` safe for non-routing code.

        Only the ``freeze`` isolation level needs work: its read-only views
        must be thawed back into mutable containers before arrival/failure/
        recovery code consumes them.  Under ``copy`` the delivery clone
        already made the whole payload private to this node, and under
        ``off`` by-reference delivery *is* the contract (the aliasing lint
        keeps handlers copy-clean) — both skip the deep thaw, which at
        terminal hops otherwise dominates routed-insert cost.
        """
        if message_mod._isolation == message_mod.ISOLATE_FREEZE:
            envelope["inner"] = thaw_payload(envelope["inner"])

    def _route_step(self, envelope: Dict[str, Any], private_inner: bool = True) -> None:
        """Advance one routing step.

        ``private_inner`` records whether ``envelope['inner']`` is already
        a private (or origin-owned) object; when ``False`` it still aliases
        the in-flight message payload and must be privatized before
        anything retains or consumes it — arrival, failure reporting, and
        ring recovery below, each of which hands it to non-routing code.
        """
        if not self.in_overlay():
            return
        target = intern_code(envelope["target"])
        # Arrival check: ``covers`` inlined on the integer code mirrors —
        # it runs once per routed hop, and the steady state (no adopted
        # regions) is a prefix comparison.
        code = self.code
        if self.adopted:
            arrived = self.covers(target)
        else:
            c_len = code._len
            t_len = target._len
            m = c_len if c_len < t_len else t_len
            arrived = m == 0 or (
                (code._num >> (c_len - m)) ^ (target._num >> (t_len - m))
            ) == 0
        if arrived:
            if not private_inner:
                self._privatize_inner(envelope)
            self.on_route_arrival(envelope)
            return
        if envelope["hops"] >= self.config.route_ttl:
            if not private_inner:
                self._privatize_inner(envelope)
            self.on_route_failed(envelope, "ttl-exceeded")
            return
        links = self.links()
        exclude = envelope["exclude"]
        path = envelope["path"]
        if exclude:
            decision = next_hop(self.code, target, links, exclude=exclude, visited=path)
        else:
            # Memoized greedy decision.  Computed ignoring ``visited``:
            # when the global winner is not on the message's path the
            # restricted (fresh-candidates-first) scan picks the same
            # winner, so the memo is exact; otherwise fall back to the
            # full scan.  ``visited`` never removes candidates — it only
            # deprioritizes them — so a memoized "dead end" is a dead end
            # for every message.
            memo = self._route_memo
            if links is not self._route_memo_links:
                memo.clear()
                self._route_memo_links = links
                # Every prefix comparison in next_hop is capped by the
                # shorter operand, so targets agreeing on the first
                # ``depth`` bits are indistinguishable to the scan — key
                # the memo on that prefix, not the full target.
                depth = self.code._len
                for _, c in links:
                    if c._len > depth:
                        depth = c._len
                self._route_memo_depth = depth
            key = envelope["target"][: self._route_memo_depth]
            decision = memo.get(key)
            if decision is None:
                decision = next_hop(self.code, target, links)
                memo[key] = decision
            if decision.next_hop is not None and decision.next_hop in path:
                decision = next_hop(self.code, target, links, visited=path)
        if decision.next_hop is None:
            if not private_inner:
                self._privatize_inner(envelope)
            self._start_ring_recovery(envelope)
            return
        if decision.next_hop in path:
            # Every candidate toward the target's subtree is already on
            # this message's path: the greedy scan fell back to a visited
            # node, and with unchanged link tables re-forwarding replays
            # the exact cycle until the TTL dies.  This happens when a
            # link entry is stale — the peer crashed and rejoined under a
            # different code, so it bounces the message straight back.
            # Expanding-ring recovery can escape through nodes outside
            # the cycle, so treat the revisit as a greedy dead end.
            if not private_inner:
                self._privatize_inner(envelope)
            self._start_ring_recovery(envelope)
            return
        self._forward(envelope, decision.next_hop, private_inner)

    def _forward(self, envelope: Dict[str, Any], nxt: str, private_inner: bool = True) -> None:
        envelope["hops"] += 1
        envelope["path"].append(nxt)
        self.routes_forwarded += 1

        def on_fail(msg: Message, reason: str, _nxt=nxt, _env=envelope, _priv=private_inner) -> None:
            # The link (or peer) is unreachable: exclude it and try an
            # alternate route from here, as Section 3.8 describes.
            if not self.in_overlay():
                return
            _env["hops"] -= 1
            _env["path"].pop()
            _env["exclude"].append(_nxt)
            self._route_step(_env, private_inner=_priv)

        self._send(
            nxt,
            "route",
            envelope,
            size_bytes=self.config.route_msg_bytes,
            tuples=envelope.get("tuples", 0),
            on_fail=on_fail,
        )

    # ==================================================================
    # Expanding-ring recovery
    # ==================================================================
    def _start_ring_recovery(self, envelope: Dict[str, Any]) -> None:
        op_id = envelope["op_id"]
        if op_id in self._ring_state:
            return
        self.ring_recoveries += 1
        self._ring_state[op_id] = {"envelope": envelope, "ttl": 1, "found": False}
        self._ring_round(op_id)

    def _ring_round(self, op_id: Any) -> None:
        state = self._ring_state.get(op_id)
        if state is None or state["found"]:
            return
        envelope = state["envelope"]
        if self.covers(Code(envelope["target"])):
            # A takeover or adoption since the last round made *us* the
            # responsible node (a recovery transient, e.g. we are the dead
            # target's sibling and declared it dead mid-ring): deliver
            # locally instead of burning the remaining rounds and failing.
            del self._ring_state[op_id]
            self.on_route_arrival(envelope)
            return
        ttl = state["ttl"]
        if ttl > self.config.ring_max_ttl:
            del self._ring_state[op_id]
            self.on_route_failed(envelope, "ring-exhausted")
            return
        target = Code(envelope["target"])
        probe = {
            "op_id": op_id,
            "target": envelope["target"],
            "best_match": self.match_len(target),
            "origin": self.address,
            "ttl": ttl,
            "visited": [self.address],
        }
        for addr, _ in self.links():
            self._send(addr, "ring_probe", dict(probe, visited=list(probe["visited"])))
        state["ttl"] = ttl + 1
        self.sim.schedule(self.config.ring_step_timeout_s, self._ring_round, op_id)

    def _on_ring_probe(self, msg: Message) -> None:
        if not self.in_overlay():
            return
        payload = msg.payload
        seen_key = (payload["op_id"], payload["origin"])
        if self._ring_seen.get(seen_key, 0) >= payload["ttl"]:
            return
        # repro-san: ignore[alias-payload-retention] ttl is an int, not a container
        self._ring_seen[seen_key] = payload["ttl"]
        if len(self._ring_seen) > 4096:
            # Bounded memory: drop the oldest half (dict preserves
            # insertion order).
            for key in list(self._ring_seen)[:2048]:
                del self._ring_seen[key]
        target = Code(payload["target"])
        my_match = self.match_len(target)
        can_progress = self.covers(target) or next_hop(self.code, target, self.links()).next_hop is not None
        if my_match >= payload["best_match"] and can_progress and self.address != payload["origin"]:
            self._send(payload["origin"], "ring_found", {"op_id": payload["op_id"], "match": my_match})
            return
        if payload["ttl"] > 1:
            visited = set(payload["visited"]) | {self.address}
            fwd = dict(payload, ttl=payload["ttl"] - 1, visited=list(visited))
            for addr, _ in self.links():
                if addr not in visited:
                    self._send(addr, "ring_probe", dict(fwd, visited=list(fwd["visited"])))

    def _on_ring_found(self, msg: Message) -> None:
        op_id = msg.payload["op_id"]
        state = self._ring_state.get(op_id)
        if state is None or state["found"]:
            return
        state["found"] = True
        envelope = state["envelope"]
        del self._ring_state[op_id]
        envelope["exclude"] = []
        self._forward(envelope, msg.src)

    # ==================================================================
    # Liveness and takeover
    # ==================================================================
    def _start_heartbeats(self) -> None:
        if not self.config.liveness_enabled or self._hb_event is not None:
            return
        jitter = self._rng.random() * self.config.hb_interval_s
        self._hb_event = self.sim.schedule(jitter, self._heartbeat_tick)

    def _heartbeat_tick(self) -> None:
        self._hb_event = None
        if not self.in_overlay():
            return
        now = self.sim.now
        suppress = self.config.hb_suppress_s
        for addr, code in self.links():
            if suppress is None or now - self._last_sent.get(addr, -1e18) >= suppress:
                # ``peer_code`` echoes what *we* think the receiver's code
                # is, so a peer we know under a stale code (it crashed and
                # rejoined elsewhere in the tree) can correct us: without
                # the echo a one-directional link never heals — the peer
                # does not have us in its new link set, so its own
                # heartbeats never reach us, and witness probes only attest
                # that the *address* is alive, keeping the stale code
                # forever.  Greedy routing through such an entry loops.
                self._send(
                    addr,
                    "heartbeat",
                    {"code": self.code.bits, "peer_code": code.bits},
                    size_bytes=96,
                )
            last = self._last_heard.get(addr)
            if last is not None and now - last > self.config.hb_timeout_s:
                self._suspect(addr, code)
        self._hb_event = self.sim.schedule(self.config.hb_interval_s, self._heartbeat_tick)

    def _on_heartbeat(self, msg: Message) -> None:
        bits = msg.payload["code"]
        if self.neighbors.confirm_alive(msg.src, bits):
            # Steady state: the peer is known, alive, and unchanged.
            if self.adopted or self._pending_adoptions:
                self._cede_adoptions_to(intern_code(bits))
        else:
            code = Code(bits)
            self.neighbors.upsert(msg.src, code)
            self.neighbors.mark_alive(msg.src)
            if self.adopted or self._pending_adoptions:
                self._cede_adoptions_to(code)
        believed = msg.payload.get("peer_code")
        if (
            believed is not None
            and self.code is not None
            and believed != self.code.bits
        ):
            # The sender's entry for us is stale.  Answer with a corrective
            # beacon carrying our real code; the echo we attach is the code
            # the sender just told us, so the exchange converges in one
            # round trip instead of ping-ponging.
            self._send(
                msg.src,
                "heartbeat",
                {"code": self.code.bits, "peer_code": bits},
                size_bytes=96,
            )

    def _suspect(self, addr: str, code: Code) -> None:
        if addr in self._declared_dead:
            return
        # Ask another neighbor whether it has heard from the suspect; this
        # distinguishes "my link to the peer broke" from "the peer died".
        witnesses = [a for a, _ in self.links() if a != addr]
        if not witnesses:
            self._declare_dead(addr)
            return
        witness = self._rng.choice(sorted(witnesses))
        self._send(witness, "liveness_probe", {"suspect": addr})

    def _on_liveness_probe(self, msg: Message) -> None:
        """A peer asks us to attest whether ``suspect`` is alive.

        If we heard from the suspect recently we attest directly; otherwise
        we ping it over *our own* link — a path independent of the
        requester's possibly-broken one, which is the point of the probe
        (Section 3.8: distinguish a dead peer from a dead link).
        """
        suspect = msg.payload["suspect"]
        last = self._last_heard.get(suspect)
        if last is not None and (self.sim.now - last) <= self.config.hb_timeout_s:
            self._send(msg.src, "liveness_report", {"suspect": suspect, "alive": True})
            return
        requester = msg.src

        def ping_failed(failed_msg, reason, _s=suspect, _r=requester):
            if self.active:
                self._send(_r, "liveness_report", {"suspect": _s, "alive": False})

        self._send(
            suspect,
            "witness_ping",
            {"on_behalf": requester},
            size_bytes=96,
            on_fail=ping_failed,
        )

    def _on_witness_ping(self, msg: Message) -> None:
        self._send(msg.src, "witness_pong", {"on_behalf": msg.payload["on_behalf"]}, size_bytes=96)

    def _on_witness_pong(self, msg: Message) -> None:
        self._send(
            msg.payload["on_behalf"],
            "liveness_report",
            {"suspect": msg.src, "alive": True},
        )

    def _on_liveness_report(self, msg: Message) -> None:
        if msg.payload["alive"]:
            return
        suspect = msg.payload["suspect"]
        last = self._last_heard.get(suspect)
        if last is not None and (self.sim.now - last) <= self.config.hb_timeout_s:
            return
        self._declare_dead(suspect)

    def _declare_dead(self, addr: str) -> None:
        if addr in self._declared_dead:
            return
        self._declared_dead.add(addr)
        dead_code = self.neighbors.code_of(addr)
        self.neighbors.mark_dead(addr)
        self.on_peer_dead(addr, dead_code)
        if dead_code is None or self.code is None:
            return
        if self.code == dead_code.sibling():
            self._takeover(dead_code)
        else:
            # Staggered fallback adoption: deeper/further candidates wait
            # longer, so the sibling (or the closest survivor) wins the race.
            distance = len(dead_code) - self.code.common_prefix_len(dead_code)
            delay = self.config.adoption_delay_s * (1 + distance) * (1.0 + self._rng.random())
            self.sim.schedule(delay, self._maybe_adopt, dead_code, addr)

    def _takeover(self, dead_code: Code) -> None:
        """Sibling takeover: shorten my code to cover the dead region."""
        old_code = self.code
        new_code = dead_code.shorten()
        self.takeovers += 1
        self.adopted = {r for r in self.adopted if not new_code.is_prefix_of(r)}
        self._set_code(new_code, old_code=old_code)
        self._announce_code()

    def _maybe_adopt(self, dead_code: Code, dead_addr: str) -> None:
        if not self.in_overlay():
            return
        if self.covers(dead_code) or dead_code.bits in self._pending_adoptions:
            return
        # Someone else may have taken over already; check our view.
        sibling = dead_code.sibling()
        for peer, code in self.neighbors.entries(alive_only=True):
            if peer != dead_addr and (code.comparable(dead_code) or code == sibling):
                # Taken over (or about to be: the exact sibling takes over
                # the moment it declares the death itself).
                return
        # Our pruned neighborhood cannot see every candidate — the true
        # sibling usually is *not* in it, and with replication >= 1 it
        # holds the dead region's replicas while we hold nothing.
        # Adopting over a live takeover would shadow the replica holder
        # with a dataless copy of the region and queries would silently
        # lose records, so probe the region through routing first and
        # adopt only when nothing live answers.
        self._probe_seq += 1
        op_id = ("adopt-probe", self.address, self._probe_seq)
        backstop = (self.config.ring_max_ttl + 2) * self.config.ring_step_timeout_s
        self._pending_adoptions[dead_code.bits] = self.sim.schedule(
            backstop, self._adopt_now, dead_code.bits
        )
        self.route(
            dead_code,
            "adopt_probe",
            {"claimant": self.address, "probe": dead_code.bits},
            op_id,
            exclude=[dead_addr],
        )

    def _arrive_adopt_probe(self, envelope: Dict[str, Any]) -> None:
        claimant = envelope["inner"]["claimant"]
        if claimant != self.address:
            self._send(
                claimant,
                "adopt_probe_ack",
                {"code": self.code.bits, "probe": envelope["inner"]["probe"]},
            )

    def _adopt_probe_unreachable(self, envelope: Dict[str, Any]) -> None:
        claimant = envelope["inner"]["claimant"]
        if claimant == self.address:
            self._adopt_now(envelope["inner"]["probe"])
        else:
            self._send(claimant, "adopt_probe_dead", {"probe": envelope["inner"]["probe"]})

    def _on_adopt_probe_ack(self, msg: Message) -> None:
        code = Code(msg.payload["code"])
        self.neighbors.upsert(msg.src, code)
        event = self._pending_adoptions.pop(msg.payload["probe"], None)
        if event is not None:
            event.cancel()
        self._cede_adoptions_to(code)

    def _on_adopt_probe_dead(self, msg: Message) -> None:
        self._adopt_now(msg.payload["probe"])

    def _adopt_now(self, bits: str) -> None:
        event = self._pending_adoptions.pop(bits, None)
        if event is not None:
            event.cancel()
        if not self.in_overlay():
            return
        dead_code = Code(bits)
        if self.covers(dead_code):
            return
        for _, code in self.neighbors.entries(alive_only=True):
            if code.comparable(dead_code):
                return
        self.takeovers += 1
        self.adopted.add(dead_code)
        self._announce_code()
        self.on_code_changed(self.code, self.code)

    def _cede_adoptions_to(self, code: Code) -> None:
        """A live peer claims ``code``: any adopted region it covers is a
        stale fallback adoption (ours is dataless; a takeover holds the
        region's replicas), so cede it and drop pending probes for it.
        Only primary codes are announced, so another fallback adopter can
        never trigger this — just real owners after a takeover."""
        stale = {region for region in self.adopted if code.comparable(region)}
        if stale:
            self.adopted -= stale
        for bits in [b for b in self._pending_adoptions if code.comparable(Code(b))]:
            self._pending_adoptions.pop(bits).cancel()

    def _announce_code(self) -> None:
        update = {"address": self.address, "code": self.code.bits}
        for addr, _ in self.links():
            self._send(addr, "code_update", update)

    # ==================================================================
    # Internals
    # ==================================================================
    def _set_code(self, new_code: Code, old_code: Optional[Code] = None) -> None:
        self.code = new_code
        self.on_code_changed(old_code, new_code)

    def _notify_joined(self) -> None:
        for callback in self.on_joined_callbacks:
            callback(self)
