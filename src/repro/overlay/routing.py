"""Greedy hypercube routing decisions.

Routing targets are codes (for data items, codes at cut-tree resolution;
for queries, possibly short prefixes).  At a node with code ``c`` routing a
message toward target ``t``:

* if ``c`` and ``t`` are prefix-comparable the message has arrived — this
  node owns (part of) the target region;
* otherwise let ``i`` be the first differing bit: the message must cross
  hypercube dimension ``i``, i.e. go to a peer in subtree ``t[:i+1]``.
  Among known live peers in that subtree we pick the one sharing the
  longest prefix with ``t``, which strictly increases prefix match and
  bounds the path by the code length (about log N hops).

When no live peer covers the required subtree the caller falls back to the
expanding-ring recovery implemented in :mod:`repro.overlay.node`.
"""

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.overlay.code import Code


@dataclass(slots=True)
class RouteDecision:
    """Outcome of one routing step.

    ``arrived`` — this node owns (part of) the target region.
    ``next_hop`` — forward to this address, or ``None`` on a dead end.

    Treated as immutable by every caller (decisions are memoized and the
    two constant outcomes below are shared); not ``frozen=True`` because
    the frozen ``__init__`` pays an ``object.__setattr__`` per field and
    this constructor runs once per unmemoized routing decision.
    """

    arrived: bool
    next_hop: Optional[str] = None
    next_code: Optional[Code] = None


#: The two constant outcomes, shared — safe to reuse since decisions are
#: never mutated, and ``next_hop`` runs once per unmemoized decision.
_ARRIVED = RouteDecision(arrived=True)
_DEAD_END = RouteDecision(arrived=False, next_hop=None)


def next_hop(
    my_code: Code,
    target: Code,
    links: Iterable[Tuple[str, Code]],
    exclude: Iterable[str] = (),
    visited: Iterable[str] = (),
) -> RouteDecision:
    """Decide the next routing step toward ``target``.

    ``links`` is the node's live hypercube link set (address, code) pairs;
    ``exclude`` lists addresses already known to be unreachable for this
    message (greedy retries after a send failure).  ``visited`` lists
    addresses already on the message's path: they are deprioritized — but
    not forbidden — so recovery transients and retried attempts do not
    ping-pong between the same pair of stale-coded nodes.
    """
    # This loop runs once per link on every routed hop of every operation,
    # so the prefix algebra is inlined on Code's integer mirrors
    # (``_num``/``_len``) instead of going through method calls.
    t_num = target._num
    t_len = target._len
    my_len = my_code._len
    n = my_len if my_len < t_len else t_len
    if n:
        bits = (my_code._num >> (my_len - n)) ^ (t_num >> (t_len - n))
        my_cpl = n - bits.bit_length()
    else:
        my_cpl = 0
    if my_cpl == n:  # prefix-comparable: this node owns the target region
        return _ARRIVED

    # The message must reach subtree ``required = target[:diff+1]``.  A peer
    # code is prefix-comparable with ``required`` exactly when its common
    # prefix with ``target`` — capped at ``required``'s length — spans the
    # shorter of the two, so the whole check reduces to prefix lengths
    # already in hand (no Code construction per routing decision).
    req_len = my_cpl + 1
    excluded = set(exclude) if exclude else ()
    visited_set = set(visited) if visited else ()
    # Fresh (unvisited) candidates, and already-visited fallbacks; tracked
    # in plain locals since this loop is the routing hot spot.
    best_addr = best_code = None
    best_len = -1
    vis_addr = vis_code = None
    vis_len = -1
    for addr, code in links:
        if addr in excluded:
            continue
        c_len = code._len
        m = c_len if c_len < t_len else t_len
        if m:
            bits = (code._num >> (c_len - m)) ^ (t_num >> (t_len - m))
            cpl = m - bits.bit_length()
        else:
            cpl = 0
        if cpl <= my_cpl:
            cap = c_len if c_len < req_len else req_len
            if (cpl if cpl < req_len else req_len) != cap:
                continue
        if addr not in visited_set:
            if cpl > best_len or (cpl == best_len and best_code is not None and code < best_code):
                best_addr, best_code, best_len = addr, code, cpl
        elif cpl > vis_len or (cpl == vis_len and vis_code is not None and code < vis_code):
            vis_addr, vis_code, vis_len = addr, code, cpl
    if best_addr is None:
        best_addr, best_code = vis_addr, vis_code
    if best_addr is None:
        return _DEAD_END
    return RouteDecision(arrived=False, next_hop=best_addr, next_code=best_code)
