"""Greedy hypercube routing decisions.

Routing targets are codes (for data items, codes at cut-tree resolution;
for queries, possibly short prefixes).  At a node with code ``c`` routing a
message toward target ``t``:

* if ``c`` and ``t`` are prefix-comparable the message has arrived — this
  node owns (part of) the target region;
* otherwise let ``i`` be the first differing bit: the message must cross
  hypercube dimension ``i``, i.e. go to a peer in subtree ``t[:i+1]``.
  Among known live peers in that subtree we pick the one sharing the
  longest prefix with ``t``, which strictly increases prefix match and
  bounds the path by the code length (about log N hops).

When no live peer covers the required subtree the caller falls back to the
expanding-ring recovery implemented in :mod:`repro.overlay.node`.
"""

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.overlay.code import Code


@dataclass(frozen=True)
class RouteDecision:
    """Outcome of one routing step.

    ``arrived`` — this node owns (part of) the target region.
    ``next_hop`` — forward to this address, or ``None`` on a dead end.
    """

    arrived: bool
    next_hop: Optional[str] = None
    next_code: Optional[Code] = None


def next_hop(
    my_code: Code,
    target: Code,
    links: Iterable[Tuple[str, Code]],
    exclude: Iterable[str] = (),
    visited: Iterable[str] = (),
) -> RouteDecision:
    """Decide the next routing step toward ``target``.

    ``links`` is the node's live hypercube link set (address, code) pairs;
    ``exclude`` lists addresses already known to be unreachable for this
    message (greedy retries after a send failure).  ``visited`` lists
    addresses already on the message's path: they are deprioritized — but
    not forbidden — so recovery transients and retried attempts do not
    ping-pong between the same pair of stale-coded nodes.
    """
    if my_code.comparable(target):
        return RouteDecision(arrived=True)

    diff = my_code.first_diff(target)
    required = target.prefix(diff + 1)
    excluded = set(exclude)
    visited_set = set(visited)
    best: Dict[bool, Tuple[Optional[str], Optional[Code], int]] = {
        True: (None, None, -1),   # fresh (unvisited) candidates
        False: (None, None, -1),  # already-visited fallbacks
    }
    for addr, code in links:
        if addr in excluded:
            continue
        if not code.comparable(required) and code.common_prefix_len(target) <= my_code.common_prefix_len(target):
            continue
        cpl = code.common_prefix_len(target)
        bucket = addr not in visited_set
        _, held_code, held_len = best[bucket]
        if cpl > held_len or (cpl == held_len and held_code is not None and code < held_code):
            best[bucket] = (addr, code, cpl)
    best_addr, best_code, _ = best[True] if best[True][0] is not None else best[False]
    if best_addr is None:
        return RouteDecision(arrived=False, next_hop=None)
    return RouteDecision(arrived=False, next_hop=best_addr, next_code=best_code)
