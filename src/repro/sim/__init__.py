"""Discrete-event simulation kernel used by every other subsystem.

The kernel is deliberately minimal: a monotonically advancing clock, a
binary-heap event queue with stable FIFO ordering for simultaneous events,
cancellable event handles and named deterministic random streams.  All of
MIND's distributed behaviour (overlay maintenance, routing, storage queuing,
failures) is expressed as callbacks scheduled on a :class:`Simulator`.
"""

from repro.sim.events import Event, EventQueue
from repro.sim.kernel import SimulationError, Simulator
from repro.sim.randomness import RandomStreams

__all__ = [
    "Event",
    "EventQueue",
    "RandomStreams",
    "SimulationError",
    "Simulator",
]
