"""Event objects and the time-ordered event queue.

Events compare by ``(time, sequence)`` so that two events scheduled for the
same instant fire in the order they were scheduled.  Cancellation is lazy:
a cancelled event stays in the heap but is skipped when popped, which keeps
cancellation O(1) and avoids heap surgery.  The queue still reports its
*live* length — cancelled-but-unpopped timers are excluded — so quiescence
checks and progress logs aren't inflated by lazily-cancelled events.
"""

import heapq
import itertools
from typing import Any, Callable, Optional, Tuple


class Event:
    """A single scheduled callback.

    Instances are created by :meth:`repro.sim.kernel.Simulator.schedule`;
    user code only holds them to :meth:`cancel` a pending timer.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_queue", "_in_heap")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: Tuple[Any, ...],
        queue: Optional["EventQueue"] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._queue = queue
        self._in_heap = queue is not None

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when its time comes."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._queue is not None and self._in_heap:
            self._queue._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"Event(t={self.time:.6f}, {name}, {state})"


class EventQueue:
    """A binary heap of :class:`Event` with stable same-time ordering."""

    def __init__(self) -> None:
        self._heap: list = []
        self._counter = itertools.count()
        #: Cancelled events still sitting in the heap awaiting lazy removal.
        self._dead = 0

    def __len__(self) -> int:
        """Number of *live* (non-cancelled) pending events."""
        return len(self._heap) - self._dead

    def _note_cancelled(self) -> None:
        self._dead += 1

    def _discard(self, event: Event) -> None:
        event._in_heap = False
        if event.cancelled:
            self._dead -= 1

    def push(self, time: float, callback: Callable[..., Any], args: Tuple[Any, ...]) -> Event:
        event = Event(time, next(self._counter), callback, args, queue=self)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event, or ``None``."""
        while self._heap:
            event = heapq.heappop(self._heap)
            self._discard(event)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the next live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            self._discard(heapq.heappop(self._heap))
        if self._heap:
            return self._heap[0].time
        return None
