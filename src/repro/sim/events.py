"""Event objects and the time-ordered event queue.

Events compare by ``(time, sequence)`` so that two events scheduled for the
same instant fire in the order they were scheduled.  Cancellation is lazy:
a cancelled event stays queued but is skipped when popped, which keeps
cancellation O(1) and avoids heap surgery.  The queue still reports its
*live* length — cancelled-but-unpopped timers are excluded — so quiescence
checks and progress logs aren't inflated by lazily-cancelled events.

Scaling design (the 1k-node / 1M-record regime)
-----------------------------------------------
Three things keep the per-event constant small enough for ~10^7-event runs:

* **Tuple-backed ordering.**  The heap and the calendar slots store
  ``(time, seq, event)`` triples, so every comparison is C-speed tuple
  comparison instead of a Python ``Event.__lt__`` call — the dominant cost
  of a large pure-``Event`` heap.
* **A slotted calendar queue in front of the heap.**  The overwhelming
  majority of events in a network simulation are near-future (message
  deliveries and service completions microseconds-to-seconds out).  Those
  land in a ring of time slots appended O(1); a slot is sorted once, when
  the cursor reaches it.  Far-future events (long timers) overflow to the
  binary heap.  Pop/peek take the minimum of the two heads, so ordering is
  *exactly* the global ``(time, seq)`` order — seeded runs are
  byte-identical with the calendar on or off (``num_slots=0`` disables it).
* **Heap compaction.**  Million-timer churn runs cancel most of what they
  schedule (per-attempt watchdogs, heartbeats of crashed nodes).  When
  more than half of the stored entries are dead the queue rebuilds itself,
  dropping them in one O(n) pass instead of paying O(dead) on every pop.
"""

import heapq
import itertools
from bisect import insort
from typing import Any, Callable, Iterable, List, Optional, Tuple

_INF = float("inf")

#: Default near-future slot width in virtual seconds.  Message deliveries
#: and CPU service completions cluster well under this; a slot therefore
#: holds a handful of events and sorts in effectively constant time.  The
#: width is tuned to the dense regime (tens of thousands of events per
#: virtual second at the 1k-node scale tier): per-slot sorts are the
#: calendar's dominant cost and shrink with the slot, while the cursor's
#: empty-slot scan stays immaterial at any realistic density.
DEFAULT_SLOT_WIDTH = 0.001

#: Default number of calendar slots; with the default width the calendar
#: horizon is ``num_slots * slot_width`` ≈ 8 s, which captures message
#: deliveries and service completions.  Events beyond the horizon —
#: heartbeat and churn timers, mostly — go to the heap, whose traffic is
#: orders of magnitude lighter.
DEFAULT_NUM_SLOTS = 8192

#: Compaction trigger: rebuild when at least this many entries are dead
#: *and* they make up at least half of everything stored.
_COMPACT_MIN_DEAD = 64


class Event:
    """A single scheduled callback.

    Instances are created by :meth:`repro.sim.kernel.Simulator.schedule`;
    user code only holds them to :meth:`cancel` a pending timer.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_queue", "_in_heap")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: Tuple[Any, ...],
        queue: Optional["EventQueue"] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._queue = queue
        self._in_heap = queue is not None

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when its time comes."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._queue is not None and self._in_heap:
            self._queue._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"Event(t={self.time:.6f}, {name}, {state})"


class EventQueue:
    """Calendar-queue-fronted heap of :class:`Event` with stable ordering.

    ``num_slots=0`` disables the calendar and degrades to the plain binary
    heap — same observable behavior, used for A/B equivalence testing.
    """

    def __init__(
        self,
        slot_width: float = DEFAULT_SLOT_WIDTH,
        num_slots: int = DEFAULT_NUM_SLOTS,
    ) -> None:
        if slot_width <= 0:
            raise ValueError("slot_width must be positive")
        if num_slots < 0:
            raise ValueError("num_slots must be >= 0")
        self._heap: List[Tuple[float, int, Event]] = []
        self._counter = itertools.count()
        #: Entries stored anywhere (heap + calendar), including cancelled.
        self._size = 0
        #: Cancelled entries still stored awaiting lazy removal.
        self._dead = 0

        self._slot_width = slot_width
        self._num_slots = num_slots
        self._slots: List[List[Tuple[float, int, Event]]] = [
            [] for _ in range(num_slots)
        ]
        #: Entries currently stored in calendar slots (including cancelled).
        self._cal_size = 0
        #: Absolute slot number (``floor(time / slot_width)``) of the cursor.
        self._cur_slot = 0
        #: Next unconsumed position in the (sorted) current slot.
        self._cur_pos = 0
        #: Whether the current slot's bucket has been sorted yet.
        self._cur_sorted = False
        #: Cached reference to the cursor slot's bucket (``None`` when the
        #: cursor has moved and the bucket must be re-resolved).
        self._cur_bucket: Optional[List[Tuple[float, int, Event]]] = None

    def __len__(self) -> int:
        """Number of *live* (non-cancelled) pending events."""
        return self._size - self._dead

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        self._dead += 1
        if self._dead >= _COMPACT_MIN_DEAD and self._dead * 2 >= self._size:
            self._compact()

    def _compact(self) -> None:
        """Rebuild, dropping every cancelled entry in one pass.

        Live near-future entries migrate to the heap; the calendar
        repopulates from subsequent pushes.  Ordering is unaffected — pops
        always take the global ``(time, seq)`` minimum of both structures.
        """
        live = [entry for entry in self._heap if not entry[2].cancelled]
        for dead in self._heap:
            if dead[2].cancelled:
                dead[2]._in_heap = False
        # Entries already consumed from the current (sorted) slot are
        # popped-but-not-yet-cleared; they must not be resurrected.
        cur_bucket = (
            self._slots[self._cur_slot % self._num_slots] if self._num_slots else None
        )
        consumed = self._cur_pos if self._cur_sorted else 0
        for bucket in self._slots:
            if not bucket:
                continue
            start = consumed if bucket is cur_bucket else 0
            for entry in bucket[start:]:
                if entry[2].cancelled:
                    entry[2]._in_heap = False
                else:
                    live.append(entry)
            del bucket[:]
        self._cur_pos = 0
        self._cur_sorted = False
        self._cur_bucket = None
        self._cal_size = 0
        heapq.heapify(live)
        self._heap = live
        self._size = len(live)
        self._dead = 0

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def push(self, time: float, callback: Callable[..., Any], args: Tuple[Any, ...]) -> Event:
        event = Event(time, next(self._counter), callback, args, queue=self)
        entry = (time, event.seq, event)
        # Near-future calendar insert, inlined from :meth:`_insert` — this
        # is the hottest allocation site of a large run.
        num_slots = self._num_slots
        if num_slots and self._cal_size:
            slot = int(time / self._slot_width)
            offset = slot - self._cur_slot
            if 0 <= offset < num_slots:
                self._size += 1
                bucket = self._slots[slot % num_slots]
                if offset == 0 and self._cur_sorted:
                    insort(bucket, entry)
                else:
                    bucket.append(entry)
                self._cal_size += 1
                return event
        self._insert(entry)
        return event

    def push_many(
        self, items: Iterable[Tuple[float, Callable[..., Any], Tuple[Any, ...]]]
    ) -> List[Event]:
        """Bulk :meth:`push`; one call amortizes the per-event overhead."""
        counter = self._counter
        insert = self._insert
        events = []
        for time, callback, args in items:
            event = Event(time, next(counter), callback, args, queue=self)
            insert((time, event.seq, event))
            events.append(event)
        return events

    def _insert(self, entry: Tuple[float, int, Event]) -> None:
        self._size += 1
        num_slots = self._num_slots
        if num_slots:
            slot = int(entry[0] / self._slot_width)
            cal_size = self._cal_size
            if cal_size:
                offset = slot - self._cur_slot
                if 0 <= offset < num_slots:
                    bucket = self._slots[slot % num_slots]
                    if offset == 0 and self._cur_sorted:
                        # The slot under the cursor is already sorted and
                        # partially consumed; keep it ordered.  Consumed
                        # entries all precede this one in (time, seq), so
                        # the insertion point is past ``_cur_pos``.
                        insort(bucket, entry)
                    else:
                        bucket.append(entry)
                    self._cal_size = cal_size + 1
                    return
                # Past the cursor's slot (possible after an idle-period
                # jump) or beyond the horizon: the heap handles any time.
            else:
                # Empty calendar: re-anchor the cursor at this entry's
                # slot.  Pop order stays exact because pop/peek always
                # compare the calendar head against the heap head.
                self._cur_slot = slot
                self._cur_pos = 0
                self._cur_sorted = False
                bucket = self._slots[slot % num_slots]
                self._cur_bucket = bucket
                bucket.append(entry)
                self._cal_size = 1
                return
        heapq.heappush(self._heap, entry)

    # ------------------------------------------------------------------
    # Head access
    # ------------------------------------------------------------------
    def _cal_head(self) -> Optional[Tuple[float, int, Event]]:
        """The calendar's earliest live entry, advancing the cursor to it."""
        while self._cal_size:
            bucket = self._cur_bucket
            if bucket is None:
                bucket = self._slots[self._cur_slot % self._num_slots]
                self._cur_bucket = bucket
            if not self._cur_sorted:
                if not bucket:
                    self._cur_slot += 1
                    self._cur_bucket = None
                    continue
                bucket.sort()
                self._cur_sorted = True
                self._cur_pos = 0
            pos = self._cur_pos
            n = len(bucket)
            while pos < n:
                entry = bucket[pos]
                event = entry[2]
                if not event.cancelled:
                    self._cur_pos = pos
                    return entry
                event._in_heap = False
                self._dead -= 1
                self._size -= 1
                self._cal_size -= 1
                pos += 1
            del bucket[:]
            self._cur_sorted = False
            self._cur_pos = 0
            self._cur_slot += 1
            self._cur_bucket = None
        return None

    def _heap_head(self) -> Optional[Tuple[float, int, Event]]:
        heap = self._heap
        while heap:
            entry = heap[0]
            if not entry[2].cancelled:
                return entry
            heapq.heappop(heap)
            entry[2]._in_heap = False
            self._dead -= 1
            self._size -= 1
        return None

    def _take(self, entry: Tuple[float, int, Event], from_calendar: bool) -> Event:
        if from_calendar:
            self._cur_pos += 1
            self._cal_size -= 1
            if not self._cal_size:
                # Scrub the consumed prefix now so a later re-anchor never
                # lands new entries in a bucket holding popped leftovers.
                del self._slots[self._cur_slot % self._num_slots][:]
                self._cur_pos = 0
                self._cur_sorted = False
        else:
            heapq.heappop(self._heap)
        self._size -= 1
        event = entry[2]
        event._in_heap = False
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event, or ``None``."""
        return self.pop_due(_INF)

    def pop_due(self, limit: float) -> Optional[Event]:
        """Pop the earliest live event with ``time <= limit``, else ``None``.

        The kernel's ``run_until`` hot path: the common case — cursor
        bucket sorted, its head live and not preempted by the heap — is
        fully inlined; everything else (cancelled heads, slot advances,
        heap wins) drops to :meth:`_pop_due_slow`.
        """
        bucket = self._cur_bucket
        if bucket is not None and self._cur_sorted:
            pos = self._cur_pos
            if pos < len(bucket):
                entry = bucket[pos]
                event = entry[2]
                if not event.cancelled:
                    heap = self._heap
                    if heap and heap[0] < entry:
                        return self._pop_due_slow(limit)
                    if entry[0] > limit:
                        return None
                    self._cur_pos = pos + 1
                    self._cal_size -= 1
                    self._size -= 1
                    if not self._cal_size:
                        # Mirror _take: scrub the consumed prefix so a
                        # later re-anchor never lands new entries in a
                        # bucket holding popped leftovers.
                        del bucket[:]
                        self._cur_pos = 0
                        self._cur_sorted = False
                    event._in_heap = False
                    return event
        return self._pop_due_slow(limit)

    def _pop_due_slow(self, limit: float) -> Optional[Event]:
        cal = self._cal_head() if self._num_slots else None
        top = self._heap_head()
        if cal is None:
            if top is None or top[0] > limit:
                return None
            return self._take(top, False)
        if top is None or cal < top:
            if cal[0] > limit:
                return None
            return self._take(cal, True)
        if top[0] > limit:
            return None
        return self._take(top, False)

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the next live event without removing it."""
        cal = self._cal_head() if self._num_slots else None
        top = self._heap_head()
        if cal is None:
            return top[0] if top is not None else None
        if top is None or cal < top:
            return cal[0]
        return top[0]
