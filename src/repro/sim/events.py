"""Event objects and the time-ordered event queue.

Events compare by ``(time, sequence)`` so that two events scheduled for the
same instant fire in the order they were scheduled.  Cancellation is lazy:
a cancelled event stays queued but is skipped when popped, which keeps
cancellation O(1) and avoids heap surgery.  The queue still reports its
*live* length — cancelled-but-unpopped timers are excluded — so quiescence
checks and progress logs aren't inflated by lazily-cancelled events.

Scaling design (the 1k-node / 1M-record regime)
-----------------------------------------------
Three things keep the per-event constant small enough for ~10^7-event runs:

* **Tuple-backed ordering.**  The heap and the calendar slots store
  ``(time, key, event)`` triples (``key`` is ``seq`` unless schedule fuzz
  is on — see below), so every comparison is C-speed tuple comparison
  instead of a Python ``Event.__lt__`` call — the dominant cost of a
  large pure-``Event`` heap.
* **A slotted calendar queue in front of the heap.**  The overwhelming
  majority of events in a network simulation are near-future (message
  deliveries and service completions microseconds-to-seconds out).  Those
  land in a ring of time slots appended O(1); a slot is sorted once, when
  the cursor reaches it.  Far-future events (long timers) overflow to the
  binary heap.  Pop/peek take the minimum of the two heads, so ordering is
  *exactly* the global ``(time, key)`` order — seeded runs are
  byte-identical with the calendar on or off (``num_slots=0`` disables it).
* **Heap compaction.**  Million-timer churn runs cancel most of what they
  schedule (per-attempt watchdogs, heartbeats of crashed nodes).  When
  more than half of the stored entries are dead the queue rebuilds itself,
  dropping them in one O(n) pass instead of paying O(dead) on every pop.

Schedule fuzzing (the repro-race runtime sanitizer)
---------------------------------------------------
FIFO tie-breaking among same-timestamp events is a *simulator* guarantee,
not one the deployed WAN makes: concurrent messages arrive in arbitrary
order.  ``REPRO_SCHEDULE_FUZZ=shuffle`` (or ``reverse``) replaces the
``seq`` component of every stored entry with a seeded *tie key* — a
bijective mix of ``seq`` under ``shuffle``, ``-seq`` under ``reverse`` —
so equal-time events fire in a perturbed but fully deterministic order.
Events at distinct times are unaffected, the heap and the calendar see
the same keys (the two engines stay order-equivalent), and
``REPRO_SCHEDULE_FUZZ_SEED`` selects among shuffle orders.  Handlers
whose outcome changes under fuzz depend on insertion order — exactly the
latent races the ordering lint hunts statically.  The mode is captured
per :class:`EventQueue` at construction; use :func:`schedule_fuzz` (a
context manager) around simulator construction in tests.
"""

import heapq
import itertools
import os
from bisect import insort
from contextlib import contextmanager
from typing import Any, Callable, Iterable, List, Optional, Tuple

_INF = float("inf")

# ----------------------------------------------------------------------
# Schedule-fuzz mode (tie-break perturbation)
# ----------------------------------------------------------------------
#: Tie-break equal-time events in scheduling (``seq``) order — the default.
FUZZ_OFF = "off"
#: Tie-break equal-time events in a seeded pseudo-random order.
FUZZ_SHUFFLE = "shuffle"
#: Tie-break equal-time events in reverse scheduling order (LIFO).
FUZZ_REVERSE = "reverse"

_FUZZ_MODES = (FUZZ_OFF, FUZZ_SHUFFLE, FUZZ_REVERSE)

_M64 = (1 << 64) - 1


def _mix64(value: int) -> int:
    """splitmix64 finalizer: a bijection on 64-bit ints.

    Bijectivity is what makes the shuffled tie keys collision-free for
    distinct ``seq`` values, so the total order stays strict and tuple
    comparisons never fall through to the :class:`Event` objects.
    """
    value = (value + 0x9E3779B97F4A7C15) & _M64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _M64
    return value ^ (value >> 31)


def _mode_from_env() -> str:
    raw = os.environ.get("REPRO_SCHEDULE_FUZZ", "").strip().lower()
    if raw in ("", "0", "false", "no"):
        return FUZZ_OFF
    if raw in _FUZZ_MODES:
        return raw
    raise ValueError(
        f"REPRO_SCHEDULE_FUZZ={raw!r} is not one of {', '.join(_FUZZ_MODES)}"
    )


def _seed_from_env() -> int:
    raw = os.environ.get("REPRO_SCHEDULE_FUZZ_SEED", "").strip()
    return int(raw) if raw else 0


_fuzz_mode = _mode_from_env()
_fuzz_seed = _seed_from_env()


def schedule_fuzz_mode() -> str:
    """The process-wide fuzz mode new :class:`EventQueue`\\ s will capture."""
    return _fuzz_mode


def schedule_fuzz_seed() -> int:
    """The seed that selects among shuffle orders."""
    return _fuzz_seed


def set_schedule_fuzz(mode: str, seed: Optional[int] = None) -> Tuple[str, int]:
    """Set the fuzz mode (and optionally the seed); returns the previous pair.

    Only queues constructed *after* the call observe the new mode — an
    :class:`EventQueue` captures its tie-key function at construction so
    the hot push path never consults module state.
    """
    global _fuzz_mode, _fuzz_seed
    if mode not in _FUZZ_MODES:
        raise ValueError(f"unknown schedule-fuzz mode {mode!r} (expected {_FUZZ_MODES})")
    previous = (_fuzz_mode, _fuzz_seed)
    _fuzz_mode = mode
    if seed is not None:
        _fuzz_seed = int(seed)
    return previous


@contextmanager
def schedule_fuzz(mode: str, seed: Optional[int] = None):
    """Context manager: run a block under the given fuzz mode/seed."""
    previous = set_schedule_fuzz(mode, seed)
    try:
        yield
    finally:
        set_schedule_fuzz(previous[0], previous[1])


def _tie_key_fn(mode: str, seed: int) -> Optional[Callable[[int], int]]:
    """The ``seq -> tie key`` map for ``mode``, or ``None`` for identity."""
    if mode == FUZZ_OFF:
        return None
    if mode == FUZZ_REVERSE:
        return int.__neg__
    salt = _mix64(seed & _M64)
    return lambda seq: _mix64(seq ^ salt)

#: Default near-future slot width in virtual seconds.  Message deliveries
#: and CPU service completions cluster well under this; a slot therefore
#: holds a handful of events and sorts in effectively constant time.  The
#: width is tuned to the dense regime (tens of thousands of events per
#: virtual second at the 1k-node scale tier): per-slot sorts are the
#: calendar's dominant cost and shrink with the slot, while the cursor's
#: empty-slot scan stays immaterial at any realistic density.
DEFAULT_SLOT_WIDTH = 0.001

#: Default number of calendar slots; with the default width the calendar
#: horizon is ``num_slots * slot_width`` ≈ 8 s, which captures message
#: deliveries and service completions.  Events beyond the horizon —
#: heartbeat and churn timers, mostly — go to the heap, whose traffic is
#: orders of magnitude lighter.
DEFAULT_NUM_SLOTS = 8192

#: Compaction trigger: rebuild when at least this many entries are dead
#: *and* they make up at least half of everything stored.
_COMPACT_MIN_DEAD = 64


class Event:
    """A single scheduled callback.

    Instances are created by :meth:`repro.sim.kernel.Simulator.schedule`;
    user code only holds them to :meth:`cancel` a pending timer.
    """

    __slots__ = ("time", "seq", "key", "callback", "args", "cancelled", "_queue", "_in_heap")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: Tuple[Any, ...],
        queue: Optional["EventQueue"] = None,
        key: Optional[int] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        #: Tie-break key within a timestamp: ``seq`` normally, a seeded
        #: perturbation of it under ``REPRO_SCHEDULE_FUZZ``.
        self.key = seq if key is None else key
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._queue = queue
        self._in_heap = queue is not None

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when its time comes."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._queue is not None and self._in_heap:
            self._queue._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.key) < (other.time, other.key)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"Event(t={self.time:.6f}, {name}, {state})"


class EventQueue:
    """Calendar-queue-fronted heap of :class:`Event` with stable ordering.

    ``num_slots=0`` disables the calendar and degrades to the plain binary
    heap — same observable behavior, used for A/B equivalence testing.
    """

    def __init__(
        self,
        slot_width: float = DEFAULT_SLOT_WIDTH,
        num_slots: int = DEFAULT_NUM_SLOTS,
    ) -> None:
        if slot_width <= 0:
            raise ValueError("slot_width must be positive")
        if num_slots < 0:
            raise ValueError("num_slots must be >= 0")
        self._heap: List[Tuple[float, int, Event]] = []
        self._counter = itertools.count()
        #: ``seq -> tie key`` under schedule fuzz, ``None`` when off.
        #: Captured once so the per-push cost of the off mode is a single
        #: ``is None`` test.
        self._tie_key = _tie_key_fn(_fuzz_mode, _fuzz_seed)
        #: Entries stored anywhere (heap + calendar), including cancelled.
        self._size = 0
        #: Cancelled entries still stored awaiting lazy removal.
        self._dead = 0

        self._slot_width = slot_width
        self._num_slots = num_slots
        self._slots: List[List[Tuple[float, int, Event]]] = [
            [] for _ in range(num_slots)
        ]
        #: Entries currently stored in calendar slots (including cancelled).
        self._cal_size = 0
        #: Absolute slot number (``floor(time / slot_width)``) of the cursor.
        self._cur_slot = 0
        #: Next unconsumed position in the (sorted) current slot.
        self._cur_pos = 0
        #: Whether the current slot's bucket has been sorted yet.
        self._cur_sorted = False
        #: Cached reference to the cursor slot's bucket (``None`` when the
        #: cursor has moved and the bucket must be re-resolved).
        self._cur_bucket: Optional[List[Tuple[float, int, Event]]] = None

    def __len__(self) -> int:
        """Number of *live* (non-cancelled) pending events."""
        return self._size - self._dead

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        self._dead += 1
        if self._dead >= _COMPACT_MIN_DEAD and self._dead * 2 >= self._size:
            self._compact()

    def _compact(self) -> None:
        """Rebuild, dropping every cancelled entry in one pass.

        Live near-future entries migrate to the heap; the calendar
        repopulates from subsequent pushes.  Ordering is unaffected — pops
        always take the global ``(time, key)`` minimum of both structures.
        """
        live = [entry for entry in self._heap if not entry[2].cancelled]
        for dead in self._heap:
            if dead[2].cancelled:
                dead[2]._in_heap = False
        # Entries already consumed from the current (sorted) slot are
        # popped-but-not-yet-cleared; they must not be resurrected.
        cur_bucket = (
            self._slots[self._cur_slot % self._num_slots] if self._num_slots else None
        )
        consumed = self._cur_pos if self._cur_sorted else 0
        for bucket in self._slots:
            if not bucket:
                continue
            start = consumed if bucket is cur_bucket else 0
            for entry in bucket[start:]:
                if entry[2].cancelled:
                    entry[2]._in_heap = False
                else:
                    live.append(entry)
            del bucket[:]
        self._cur_pos = 0
        self._cur_sorted = False
        self._cur_bucket = None
        self._cal_size = 0
        heapq.heapify(live)
        self._heap = live
        self._size = len(live)
        self._dead = 0

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def push(self, time: float, callback: Callable[..., Any], args: Tuple[Any, ...]) -> Event:
        seq = next(self._counter)
        tie = self._tie_key
        key = seq if tie is None else tie(seq)
        event = Event(time, seq, callback, args, queue=self, key=key)
        entry = (time, key, event)
        # Near-future calendar insert, inlined from :meth:`_insert` — this
        # is the hottest allocation site of a large run.
        num_slots = self._num_slots
        if num_slots and self._cal_size:
            slot = int(time / self._slot_width)
            offset = slot - self._cur_slot
            if 0 <= offset < num_slots:
                self._size += 1
                bucket = self._slots[slot % num_slots]
                if offset == 0 and self._cur_sorted:
                    insort(bucket, entry, self._cur_pos)
                else:
                    bucket.append(entry)
                self._cal_size += 1
                return event
        self._insert(entry)
        return event

    def push_many(
        self, items: Iterable[Tuple[float, Callable[..., Any], Tuple[Any, ...]]]
    ) -> List[Event]:
        """Bulk :meth:`push`; one call amortizes the per-event overhead."""
        counter = self._counter
        tie = self._tie_key
        insert = self._insert
        events = []
        for time, callback, args in items:
            seq = next(counter)
            key = seq if tie is None else tie(seq)
            event = Event(time, seq, callback, args, queue=self, key=key)
            insert((time, key, event))
            events.append(event)
        return events

    def _insert(self, entry: Tuple[float, int, Event]) -> None:
        self._size += 1
        num_slots = self._num_slots
        if num_slots:
            slot = int(entry[0] / self._slot_width)
            cal_size = self._cal_size
            if cal_size:
                offset = slot - self._cur_slot
                if 0 <= offset < num_slots:
                    bucket = self._slots[slot % num_slots]
                    if offset == 0 and self._cur_sorted:
                        # The slot under the cursor is already sorted and
                        # partially consumed; keep the *unconsumed* suffix
                        # ordered.  ``lo=_cur_pos`` pins the insertion
                        # point past the consumed prefix: under schedule
                        # fuzz a zero-delay push can draw a tie key below
                        # an already-fired entry's, and an unclamped
                        # insort would bury it behind the cursor, losing
                        # the event.  (With fuzz off the clamp is a no-op:
                        # new entries always sort after consumed ones.)
                        insort(bucket, entry, self._cur_pos)
                    else:
                        bucket.append(entry)
                    self._cal_size = cal_size + 1
                    return
                # Past the cursor's slot (possible after an idle-period
                # jump) or beyond the horizon: the heap handles any time.
            else:
                # Empty calendar: re-anchor the cursor at this entry's
                # slot.  Pop order stays exact because pop/peek always
                # compare the calendar head against the heap head.
                self._cur_slot = slot
                self._cur_pos = 0
                self._cur_sorted = False
                bucket = self._slots[slot % num_slots]
                self._cur_bucket = bucket
                bucket.append(entry)
                self._cal_size = 1
                return
        heapq.heappush(self._heap, entry)

    # ------------------------------------------------------------------
    # Head access
    # ------------------------------------------------------------------
    def _cal_head(self) -> Optional[Tuple[float, int, Event]]:
        """The calendar's earliest live entry, advancing the cursor to it."""
        while self._cal_size:
            bucket = self._cur_bucket
            if bucket is None:
                bucket = self._slots[self._cur_slot % self._num_slots]
                self._cur_bucket = bucket
            if not self._cur_sorted:
                if not bucket:
                    self._cur_slot += 1
                    self._cur_bucket = None
                    continue
                bucket.sort()
                self._cur_sorted = True
                self._cur_pos = 0
            pos = self._cur_pos
            n = len(bucket)
            while pos < n:
                entry = bucket[pos]
                event = entry[2]
                if not event.cancelled:
                    self._cur_pos = pos
                    return entry
                event._in_heap = False
                self._dead -= 1
                self._size -= 1
                self._cal_size -= 1
                pos += 1
            del bucket[:]
            self._cur_sorted = False
            self._cur_pos = 0
            self._cur_slot += 1
            self._cur_bucket = None
        return None

    def _heap_head(self) -> Optional[Tuple[float, int, Event]]:
        heap = self._heap
        while heap:
            entry = heap[0]
            if not entry[2].cancelled:
                return entry
            heapq.heappop(heap)
            entry[2]._in_heap = False
            self._dead -= 1
            self._size -= 1
        return None

    def _take(self, entry: Tuple[float, int, Event], from_calendar: bool) -> Event:
        if from_calendar:
            self._cur_pos += 1
            self._cal_size -= 1
            if not self._cal_size:
                # Scrub the consumed prefix now so a later re-anchor never
                # lands new entries in a bucket holding popped leftovers.
                del self._slots[self._cur_slot % self._num_slots][:]
                self._cur_pos = 0
                self._cur_sorted = False
        else:
            heapq.heappop(self._heap)
        self._size -= 1
        event = entry[2]
        event._in_heap = False
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event, or ``None``."""
        return self.pop_due(_INF)

    def pop_due(self, limit: float) -> Optional[Event]:
        """Pop the earliest live event with ``time <= limit``, else ``None``.

        The kernel's ``run_until`` hot path: the common case — cursor
        bucket sorted, its head live and not preempted by the heap — is
        fully inlined; everything else (cancelled heads, slot advances,
        heap wins) drops to :meth:`_pop_due_slow`.
        """
        bucket = self._cur_bucket
        if bucket is not None and self._cur_sorted:
            pos = self._cur_pos
            if pos < len(bucket):
                entry = bucket[pos]
                event = entry[2]
                if not event.cancelled:
                    heap = self._heap
                    if heap and heap[0] < entry:
                        return self._pop_due_slow(limit)
                    if entry[0] > limit:
                        return None
                    self._cur_pos = pos + 1
                    self._cal_size -= 1
                    self._size -= 1
                    if not self._cal_size:
                        # Mirror _take: scrub the consumed prefix so a
                        # later re-anchor never lands new entries in a
                        # bucket holding popped leftovers.
                        del bucket[:]
                        self._cur_pos = 0
                        self._cur_sorted = False
                    event._in_heap = False
                    return event
        return self._pop_due_slow(limit)

    def _pop_due_slow(self, limit: float) -> Optional[Event]:
        cal = self._cal_head() if self._num_slots else None
        top = self._heap_head()
        if cal is None:
            if top is None or top[0] > limit:
                return None
            return self._take(top, False)
        if top is None or cal < top:
            if cal[0] > limit:
                return None
            return self._take(cal, True)
        if top[0] > limit:
            return None
        return self._take(top, False)

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the next live event without removing it."""
        cal = self._cal_head() if self._num_slots else None
        top = self._heap_head()
        if cal is None:
            return top[0] if top is not None else None
        if top is None or cal < top:
            return cal[0]
        return top[0]
