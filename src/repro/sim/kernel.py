"""The discrete-event simulation kernel.

A :class:`Simulator` owns the virtual clock and the event queue.  Components
schedule callbacks with :meth:`Simulator.schedule` (or in bulk with
:meth:`Simulator.schedule_many`); the driver advances time with
:meth:`run_until` or :meth:`run_until_idle`.

Design notes
------------
* Time is a float number of **seconds** of virtual time.
* Callbacks run to completion; there is no preemption.  Long computations in
  a callback cost zero virtual time unless the component models a service
  time explicitly (the storage DAC and node CPU models do).
* Exceptions raised by callbacks abort the run: errors should never pass
  silently in an experiment.
* The event queue is a calendar-queue-fronted heap (see
  :mod:`repro.sim.events`); ``calendar_queue=False`` degrades to the plain
  binary heap with byte-identical scheduling semantics, which the
  equivalence tests exercise.
"""

from typing import Any, Callable, Iterable, List, Optional, Tuple

from repro.sim import resources
from repro.sim.events import Event, EventQueue
from repro.sim.randomness import RandomStreams


class SimulationError(RuntimeError):
    """Raised for kernel misuse, e.g. scheduling in the past."""


class Simulator:
    """Virtual clock plus event queue plus named random streams."""

    def __init__(self, seed: int = 0, calendar_queue: bool = True) -> None:
        self.now: float = 0.0
        self.streams = RandomStreams(seed)
        self._queue = EventQueue() if calendar_queue else EventQueue(num_slots=0)
        self._events_processed = 0
        #: Resource-lifecycle ledger (repro-leak runtime half); ``None``
        #: unless ``REPRO_TRACK_RESOURCES`` was enabled at construction.
        self.resources = resources.new_ledger()
        #: Unchecked fast-path scheduler for per-message hot paths:
        #: ``push_at(time, callback, args_tuple)`` with no past-time
        #: validation and no ``*args`` repacking.  Callers must guarantee
        #: ``time >= now`` by construction (delivery/service completion
        #: times always are).
        self.push_at = self._queue.push

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay:.6f}s in the past")
        return self._queue.push(self.now + delay, callback, args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute virtual ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f} (now is {self.now:.6f})"
            )
        return self._queue.push(time, callback, args)

    def schedule_many(
        self, items: Iterable[Tuple[float, Callable[..., Any], Tuple[Any, ...]]]
    ) -> List[Event]:
        """Schedule a batch of ``(at_time, callback, args)`` items at once.

        The bulk path for workload replay: one call validates and enqueues
        the whole batch, amortizing the per-event scheduling overhead that
        dominates million-record experiment setup.  Times are absolute
        virtual times (as in :meth:`schedule_at`).
        """
        now = self.now
        batch = []
        for time, callback, args in items:
            if time < now:
                raise SimulationError(
                    f"cannot schedule at t={time:.6f} (now is {now:.6f})"
                )
            batch.append((time, callback, args))
        return self._queue.push_many(batch)

    def rng(self, name: str):
        """Return the named deterministic random stream."""
        return self.streams.stream(name)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    def step(self) -> bool:
        """Run the next event.  Returns ``False`` when the queue is empty."""
        event = self._queue.pop()
        if event is None:
            return False
        if event.time < self.now:  # pragma: no cover - defensive
            raise SimulationError("event queue returned an event from the past")
        self.now = event.time
        self._events_processed += 1
        event.callback(*event.args)
        return True

    def run_until(self, time: float) -> None:
        """Advance the clock to ``time``, running every event due before it."""
        if time < self.now:
            raise SimulationError(f"cannot run backwards to t={time:.6f}")
        pop_due = self._queue.pop_due
        while True:
            event = pop_due(time)
            if event is None:
                break
            self.now = event.time
            self._events_processed += 1
            event.callback(*event.args)
        self.now = time

    def run_until_idle(self, max_events: Optional[int] = None) -> int:
        """Run until no events remain; returns the number of events run.

        An empty queue is the kernel's quiescence point: nothing can run
        again without outside input, so with resource tracking enabled
        every pending op and per-node table entry must have been
        reclaimed — a non-empty ledger here raises with a named diff.
        """
        ran = 0
        while self.step():
            ran += 1
            if max_events is not None and ran >= max_events:
                raise SimulationError(
                    f"simulation did not quiesce within {max_events} events"
                )
        if self.resources is not None:
            self.resources.assert_quiescent("run_until_idle")
        return ran

    def run_until_predicate(
        self,
        predicate: Callable[[], bool],
        timeout: float,
        poll_events: int = 1,
    ) -> bool:
        """Run events until ``predicate()`` is true or ``timeout`` elapses.

        Returns ``True`` if the predicate became true, ``False`` on timeout.
        The predicate is checked once up front, then after every
        ``poll_events`` processed events — an expensive predicate (e.g. a
        full-cluster scan) really does run only every ``poll_events``
        events, not per event.  Timeout semantics are exact regardless of
        ``poll_events``: no event past the deadline ever runs, and the
        clock never rewinds (a non-positive timeout must not move time
        backwards).
        """
        if poll_events < 1:
            raise SimulationError("poll_events must be at least 1")
        deadline = self.now + timeout
        if predicate():
            return True
        since_check = 0
        while True:
            next_time = self._queue.peek_time()
            if next_time is None or next_time > deadline:
                # Let the remaining timeout elapse, but never rewind the
                # clock.
                self.now = max(self.now, deadline)
                return predicate()
            self.step()
            since_check += 1
            if since_check >= poll_events:
                since_check = 0
                if predicate():
                    return True
