"""The discrete-event simulation kernel.

A :class:`Simulator` owns the virtual clock and the event queue.  Components
schedule callbacks with :meth:`Simulator.schedule`; the driver advances time
with :meth:`run`, :meth:`run_until` or :meth:`run_until_idle`.

Design notes
------------
* Time is a float number of **seconds** of virtual time.
* Callbacks run to completion; there is no preemption.  Long computations in
  a callback cost zero virtual time unless the component models a service
  time explicitly (the storage DAC and node CPU models do).
* Exceptions raised by callbacks abort the run: errors should never pass
  silently in an experiment.
"""

from typing import Any, Callable, Optional

from repro.sim.events import Event, EventQueue
from repro.sim.randomness import RandomStreams


class SimulationError(RuntimeError):
    """Raised for kernel misuse, e.g. scheduling in the past."""


class Simulator:
    """Virtual clock plus event queue plus named random streams."""

    def __init__(self, seed: int = 0) -> None:
        self.now: float = 0.0
        self.streams = RandomStreams(seed)
        self._queue = EventQueue()
        self._events_processed = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay:.6f}s in the past")
        return self._queue.push(self.now + delay, callback, args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute virtual ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f} (now is {self.now:.6f})"
            )
        return self._queue.push(time, callback, args)

    def rng(self, name: str):
        """Return the named deterministic random stream."""
        return self.streams.stream(name)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    def step(self) -> bool:
        """Run the next event.  Returns ``False`` when the queue is empty."""
        event = self._queue.pop()
        if event is None:
            return False
        if event.time < self.now:  # pragma: no cover - defensive
            raise SimulationError("event queue returned an event from the past")
        self.now = event.time
        self._events_processed += 1
        event.callback(*event.args)
        return True

    def run_until(self, time: float) -> None:
        """Advance the clock to ``time``, running every event due before it."""
        if time < self.now:
            raise SimulationError(f"cannot run backwards to t={time:.6f}")
        while True:
            next_time = self._queue.peek_time()
            if next_time is None or next_time > time:
                break
            self.step()
        self.now = time

    def run_until_idle(self, max_events: Optional[int] = None) -> int:
        """Run until no events remain; returns the number of events run."""
        ran = 0
        while self.step():
            ran += 1
            if max_events is not None and ran >= max_events:
                raise SimulationError(
                    f"simulation did not quiesce within {max_events} events"
                )
        return ran

    def run_until_predicate(
        self,
        predicate: Callable[[], bool],
        timeout: float,
        poll_events: int = 1,
    ) -> bool:
        """Run events until ``predicate()`` is true or ``timeout`` elapses.

        Returns ``True`` if the predicate became true, ``False`` on timeout.
        The predicate is checked after every ``poll_events`` processed events.
        """
        deadline = self.now + timeout
        since_check = 0
        while not predicate():
            next_time = self._queue.peek_time()
            if next_time is None or next_time > deadline:
                # Let the remaining timeout elapse, but never rewind the
                # clock (a non-positive timeout must not move time
                # backwards).
                self.now = max(self.now, deadline)
                return predicate()
            self.step()
            since_check += 1
            if since_check >= poll_events:
                since_check = 0
        return True
