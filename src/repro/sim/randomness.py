"""Named deterministic random streams.

Every stochastic component (latency jitter, traffic generation, failure
injection, join randomization, ...) draws from its own named stream derived
from a single master seed.  This keeps experiments reproducible while
ensuring that adding draws in one component does not perturb another.
"""

import hashlib
import random
from typing import Dict


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a stable 64-bit child seed from ``master_seed`` and ``name``."""
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """A factory of independent ``random.Random`` instances keyed by name."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        rng = random.Random(derive_seed(self.master_seed, name))
        # repro-leak: ignore[leak-op-state] bounded by distinct stream names
        self._streams[name] = rng
        return rng

    def reset(self, name: str) -> random.Random:
        """Re-seed the named stream to its initial state and return it."""
        rng = random.Random(derive_seed(self.master_seed, name))
        self._streams[name] = rng
        return rng
