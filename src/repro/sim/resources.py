"""Resource-lifecycle ledger: the runtime half of repro-leak.

The lifecycle lint (:mod:`repro.analysis.lifecycle_lint`) proves
statically that every per-op table has a removal path; this module
proves dynamically that the paths actually run.  With
``REPRO_TRACK_RESOURCES=1`` every Simulator constructed afterwards
carries a :class:`ResourceLedger`; instrumented sites register each
pending-op record, watchdog, or per-node table entry at creation and
release it on every exit path.  At quiescence — the end of
``run_until_idle`` or an explicit ``MindCluster.close()`` — the ledger
must be empty; a leak raises :class:`ResourceLeakError` with a
named-owner diff (``category owner xN``), so the failing table and key
are in the traceback, not just "memory grew".

Tracking is off by default: the ledger costs a dict write per op on the
hot path, so the perf runner refuses timed runs with it enabled (like
the isolation and schedule-fuzz sanitizers).  The tests enable it
suite-wide via a conftest fixture.

Like the other sanitizers the mode is captured at Simulator
construction: only simulators created after :func:`set_tracking` (or
under the :func:`tracking` context manager) observe the new mode.
"""

import os
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple


def _enabled_from_env() -> bool:
    return os.environ.get("REPRO_TRACK_RESOURCES", "") not in ("", "0")


_tracking = _enabled_from_env()


def tracking_enabled() -> bool:
    """True when newly constructed simulators will carry a ledger."""
    return _tracking


def set_tracking(on: bool) -> bool:
    """Set the mode for simulators constructed from now on; returns previous."""
    global _tracking
    previous = _tracking
    _tracking = bool(on)
    return previous


@contextmanager
def tracking(on: bool = True) -> Iterator[None]:
    """Scoped :func:`set_tracking` for tests."""
    previous = set_tracking(on)
    try:
        yield
    finally:
        set_tracking(previous)


class ResourceLeakError(AssertionError):
    """The ledger was not empty at a quiescence checkpoint."""


class ResourceLedger:
    """Counts live resources keyed by ``(category, owner)``.

    ``category`` names the resource class (``"op:insert"``,
    ``"net:outbox"``, ...) and ``owner`` the holder (a node address, a
    link key) — together they name the leaking table entry in the
    quiescence diff.  Multiple registrations of the same pair are
    counted, so N leaked entries show as ``xN`` rather than hiding
    behind set semantics.
    """

    def __init__(self) -> None:
        self._live: Dict[Tuple[str, str], int] = {}

    def register(self, category: str, owner: str) -> None:
        key = (category, owner)
        self._live[key] = self._live.get(key, 0) + 1

    def release(self, category: str, owner: str) -> None:
        """Release one registration; strict — a double release raises.

        Release-without-register is itself a lifecycle bug (a removal
        path running twice, or against state it never created), so the
        ledger refuses to go negative instead of masking it.
        """
        key = (category, owner)
        count = self._live.get(key, 0)
        if count <= 0:
            raise ResourceLeakError(
                f"release without matching register: {category} {owner!r}"
            )
        if count == 1:
            del self._live[key]
        else:
            self._live[key] = count - 1

    def live(self) -> int:
        """Total live registrations (the soak test's bound)."""
        return sum(self._live.values())

    def snapshot(self) -> List[Tuple[str, str, int]]:
        """Sorted ``(category, owner, count)`` rows of everything live."""
        return sorted(
            (category, owner, count)
            for (category, owner), count in self._live.items()
        )

    def assert_quiescent(self, context: str) -> None:
        """Raise :class:`ResourceLeakError` unless the ledger is empty."""
        if not self._live:
            return
        rows = [
            f"  {category} {owner!r} x{count}"
            for category, owner, count in self.snapshot()
        ]
        raise ResourceLeakError(
            f"{context}: {self.live()} resource(s) still live at "
            "quiescence:\n" + "\n".join(rows)
        )


def new_ledger() -> Optional[ResourceLedger]:
    """A fresh ledger when tracking is enabled, else ``None``.

    Instrumented sites cache the (possibly ``None``) ledger once and
    guard each register/release with ``if ledger is not None`` — the
    tracking-off cost is one attribute load and an identity test.
    """
    return ResourceLedger() if _tracking else None
