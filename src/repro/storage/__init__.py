"""Per-node storage: an in-memory store behind a queued access controller.

This package replaces the paper prototype's MySQL-over-JDBC backend.  The
behavioural contract the experiments depend on is preserved:

* a single storage "thread" per index serializes database work, so a burst
  of insertions or an expensive query delays everything queued behind it
  (the Database Access Controller, :mod:`repro.storage.dac`), and
* range queries over the multi-dimensional records, time-partitioned the
  way a monitoring deployment would partition them
  (:mod:`repro.storage.memtable`).
"""

from repro.storage.dac import DacConfig, DataAccessController
from repro.storage.memtable import TimePartitionedStore

__all__ = ["DacConfig", "DataAccessController", "TimePartitionedStore"]
