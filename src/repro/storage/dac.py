"""The Database Access Controller: one serialized storage queue per index.

The paper's prototype buffers database access requests in a queue and
talks to MySQL via JDBC from a single storage thread, tuned for the high
insertion rates of network monitoring.  We model the same serialization:
each submitted operation occupies the (virtual) storage thread for a cost
that scales with the work, so queries stuck behind a batch of insertions
wait — and, as the paper notes about Figure 11, a query's database access
is *not* interleaved with the network transmission of its results.
"""

from dataclasses import dataclass

from repro.sim.kernel import Simulator


@dataclass
class DacConfig:
    """Service-time model for storage operations.

    Defaults approximate a 2004-era MySQL on PlanetLab hardware: an insert
    is a small indexed write, a query pays parse/plan plus a per-row cost.
    """

    insert_time_s: float = 0.0015
    query_base_s: float = 0.004
    query_per_record_s: float = 0.00008
    replica_insert_time_s: float = 0.0012


class DataAccessController:
    """Serializes storage work for one index at one node."""

    def __init__(self, sim: Simulator, config: DacConfig, speed_factor: float = 1.0) -> None:
        self.sim = sim
        self.config = config
        self.speed_factor = speed_factor
        self._busy_until = 0.0
        self.ops_served = 0
        self.busy_time = 0.0

    @property
    def queue_delay_s(self) -> float:
        """How long a newly submitted op would wait before service starts."""
        return max(0.0, self._busy_until - self.sim.now)

    def submit(self, cost_s: float, callback, *args) -> float:
        """Queue an operation; ``callback(*args)`` runs when it completes.

        Returns the completion time.
        """
        if cost_s < 0:
            raise ValueError("cost_s must be non-negative")
        cost = cost_s * self.speed_factor
        start = max(self.sim.now, self._busy_until)
        self._busy_until = start + cost
        self.ops_served += 1
        self.busy_time += cost
        self.sim.schedule_at(self._busy_until, callback, *args)
        return self._busy_until

    # Convenience cost models ------------------------------------------
    def insert_cost(self, records: int = 1) -> float:
        return self.config.insert_time_s * records

    def replica_cost(self, records: int = 1) -> float:
        return self.config.replica_insert_time_s * records

    def query_cost(self, matched_records: int) -> float:
        return self.config.query_base_s + self.config.query_per_record_s * matched_records
