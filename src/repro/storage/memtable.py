"""In-memory, time-partitioned record store with a columnar hot path.

Records are stored with their *normalized* coordinates so that rectangle
filtering agrees exactly with the embedding's view of the data space
(including the clamping of out-of-domain values to the top of the range).
Partitioning on the raw timestamp attribute prunes the scan for the
periodic monitoring queries the paper issues (5-minute windows over a day
of data).

Each time bucket keeps its normalized points in a growing ``float64``
matrix (amortized-doubling append), so rectangle containment over a bucket
is a handful of vectorized comparisons instead of a per-record Python
loop — the batched range-filter primitive that Skip-Webs-style distributed
multi-dimensional indexes are built around.  The original per-record scan
survives behind ``vectorized=False`` and serves as the ground truth for
the equivalence property tests.
"""

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.query import NormRect, rect_contains_point
from repro.core.records import Record
from repro.core.schema import IndexSchema

_INITIAL_CAPACITY = 16
#: Below this many rows a per-record scan beats the fixed cost of building
#: NumPy masks, so the vectorized store drops to the scalar loop per bucket
#: (results are identical either way).
_VECTOR_MIN_ROWS = 48


class _ColumnBucket:
    """One time bucket: a record list plus a columnar point matrix."""

    __slots__ = ("records", "_points", "size")

    def __init__(self, dimensions: int) -> None:
        self.records: List[Record] = []
        self._points = np.empty((_INITIAL_CAPACITY, dimensions), dtype=np.float64)
        self.size = 0

    def append(self, record: Record, point: Sequence[float]) -> None:
        if self.size == self._points.shape[0]:
            grown = np.empty(
                (self._points.shape[0] * 2, self._points.shape[1]), dtype=np.float64
            )
            grown[: self.size] = self._points[: self.size]
            self._points = grown
        self._points[self.size] = point
        self.records.append(record)
        self.size += 1

    def extend(self, records: Sequence[Record], points: np.ndarray) -> None:
        n = len(records)
        if n == 0:
            return
        needed = self.size + n
        if needed > self._points.shape[0]:
            capacity = self._points.shape[0]
            while capacity < needed:
                capacity *= 2
            grown = np.empty((capacity, self._points.shape[1]), dtype=np.float64)
            grown[: self.size] = self._points[: self.size]
            self._points = grown
        self._points[self.size : needed] = points
        self.records.extend(records)
        self.size = needed

    @property
    def points(self) -> np.ndarray:
        return self._points[: self.size]


def rect_mask(points: np.ndarray, rect: NormRect) -> Optional[np.ndarray]:
    """Vectorized :func:`~repro.core.query.rect_contains_point` over rows.

    Mirrors the scalar semantics exactly for *normalized* points (which
    ``IndexSchema.normalize`` guarantees lie in ``[0, 1)``): half-open per
    dimension, except a top bound at/above 1.0 admits every in-domain
    point (clamped out-of-domain records sit at ``1 - eps``).  Bounds that
    cannot exclude a normalized point — ``lo <= 0`` and ``hi >= 1`` — are
    skipped entirely; returns ``None`` when every dimension is unbounded
    (all rows match).
    """
    mask: Optional[np.ndarray] = None
    for dim, (lo, hi) in enumerate(rect):
        column = points[:, dim]
        if lo > 0.0:
            test = column >= lo
            mask = test if mask is None else (mask & test)
        if hi < 1.0:
            test = column < hi
            mask = test if mask is None else (mask & test)
    return mask


class TimePartitionedStore:
    """Stores (record, normalized point) pairs, partitioned by time.

    ``vectorized=True`` (the default) evaluates rectangle containment as
    one NumPy mask per candidate bucket; ``vectorized=False`` keeps the
    scalar per-record scan as a byte-identical reference path.
    """

    def __init__(
        self,
        schema: IndexSchema,
        bucket_s: float = 300.0,
        vectorized: bool = True,
    ) -> None:
        if bucket_s <= 0:
            raise ValueError("bucket_s must be positive")
        self.schema = schema
        self.bucket_s = bucket_s
        self.vectorized = vectorized
        self._time_dim = schema.time_dimension()
        self._buckets: Dict[int, _ColumnBucket] = {}
        self._count = 0
        self._keys: set = set()

    def _bucket_of(self, record: Record) -> int:
        if self._time_dim is None:
            return 0
        return int(record.values[self._time_dim] // self.bucket_s)

    def _bucket(self, bucket_id: int) -> _ColumnBucket:
        bucket = self._buckets.get(bucket_id)
        if bucket is None:
            bucket = _ColumnBucket(self.schema.dimensions)
            self._buckets[bucket_id] = bucket
        return bucket

    # ------------------------------------------------------------------
    def insert(self, record: Record) -> bool:
        """Store a record; returns False if the key was already present.

        Replica re-delivery and query-time dedup both rely on keys being
        unique, so duplicate keys are dropped rather than double counted.
        """
        if record.key in self._keys:
            return False
        self._keys.add(record.key)
        point = self.schema.normalize(record.values)
        self._bucket(self._bucket_of(record)).append(record, point)
        self._count += 1
        return True

    def insert_batch(self, records: Sequence[Record]) -> int:
        """Bulk insert; returns how many records were new.

        The vectorized path normalizes the whole batch at once and appends
        per-bucket slices; duplicates (against the store and within the
        batch) are dropped exactly as :meth:`insert` would.
        """
        if not self.vectorized:
            return sum(1 for record in records if self.insert(record))
        fresh: List[Record] = []
        for record in records:
            if record.key in self._keys:
                continue
            self._keys.add(record.key)
            fresh.append(record)
        if not fresh:
            return 0
        points = self.schema.normalize_batch([r.values for r in fresh])
        if self._time_dim is None:
            self._bucket(0).extend(fresh, points)
        else:
            bucket_ids = [self._bucket_of(r) for r in fresh]
            by_bucket: Dict[int, List[int]] = {}
            for row, bucket_id in enumerate(bucket_ids):
                by_bucket.setdefault(bucket_id, []).append(row)
            for bucket_id, rows in by_bucket.items():
                self._bucket(bucket_id).extend(
                    [fresh[i] for i in rows], points[rows]
                )
        self._count += len(fresh)
        return len(fresh)

    def __len__(self) -> int:
        return self._count

    def __contains__(self, key: int) -> bool:
        return key in self._keys

    # ------------------------------------------------------------------
    def query(
        self,
        rect: NormRect,
        time_range: Optional[Tuple[float, float]] = None,
    ) -> List[Record]:
        """All records whose normalized point lies in ``rect``.

        ``time_range`` (raw units, half-open) prunes the buckets scanned;
        the rectangle check remains authoritative.
        """
        out: List[Record] = []
        for bucket_id in self._candidate_buckets(time_range):
            bucket = self._buckets[bucket_id]
            records = bucket.records
            if self.vectorized and bucket.size >= _VECTOR_MIN_ROWS:
                mask = rect_mask(bucket.points, rect)
                if mask is None:
                    out.extend(records)
                else:
                    hits = np.flatnonzero(mask)
                    if hits.size == len(records):
                        out.extend(records)
                    else:
                        out.extend(map(records.__getitem__, hits.tolist()))
            else:
                for record, point in zip(records, bucket.points.tolist()):
                    if rect_contains_point(rect, point):
                        out.append(record)
        return out

    def _candidate_buckets(self, time_range: Optional[Tuple[float, float]]) -> Sequence[int]:
        """Bucket ids overlapping ``time_range``, in ascending time order.

        Intersects the requested span with the bucket ids that actually
        exist, so a wide time range over a sparse store costs
        O(buckets log buckets) rather than O(span / bucket_s).
        """
        if time_range is None or self._time_dim is None:
            return sorted(self._buckets)
        lo, hi = time_range
        first = int(lo // self.bucket_s)
        # The range is half-open, so the last candidate bucket is the one
        # holding the largest representable timestamp below ``hi``.  A
        # fixed epsilon (``hi - 1e-9``) breaks for hi in (0, epsilon): the
        # subtraction crosses zero and prunes bucket 0 even though
        # [lo, hi) intersects it.
        last = int(max(lo, math.nextafter(hi, -math.inf)) // self.bucket_s)
        span = last - first + 1
        if span >= len(self._buckets):
            return sorted(b for b in self._buckets if first <= b <= last)
        return [b for b in range(first, last + 1) if b in self._buckets]

    def all_records(self) -> List[Record]:
        return [record for b in sorted(self._buckets) for record in self._buckets[b].records]

    def points_in_time_range(
        self, time_range: Optional[Tuple[float, float]] = None
    ) -> np.ndarray:
        """Normalized points whose *raw* timestamp lies in ``time_range``.

        Feeds vectorized histogram construction (``MultiDimHistogram.
        add_batch``); with no time dimension or no range, returns every
        stored point.
        """
        chunks: List[np.ndarray] = []
        for bucket_id in self._candidate_buckets(time_range):
            bucket = self._buckets[bucket_id]
            points = bucket.points
            if time_range is not None and self._time_dim is not None:
                lo, hi = time_range
                # Bucket pruning is coarse; filter on the raw timestamps.
                raw = np.fromiter(
                    (r.values[self._time_dim] for r in bucket.records),
                    dtype=np.float64,
                    count=bucket.size,
                )
                points = points[(raw >= lo) & (raw < hi)]
            if points.size:
                chunks.append(points)
        if not chunks:
            return np.empty((0, self.schema.dimensions), dtype=np.float64)
        return np.concatenate(chunks, axis=0)

    def drop_before(self, cutoff: float) -> int:
        """Expire whole buckets older than ``cutoff`` (version retirement)."""
        if self._time_dim is None:
            return 0
        removed = 0
        for bucket_id in list(self._buckets):
            if (bucket_id + 1) * self.bucket_s <= cutoff:
                bucket = self._buckets.pop(bucket_id)
                removed += bucket.size
                for record in bucket.records:
                    self._keys.discard(record.key)
        self._count -= removed
        return removed
