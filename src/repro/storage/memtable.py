"""In-memory, time-partitioned record store.

Records are stored with their *normalized* coordinates so that rectangle
filtering agrees exactly with the embedding's view of the data space
(including the clamping of out-of-domain values to the top of the range).
Partitioning on the raw timestamp attribute prunes the scan for the
periodic monitoring queries the paper issues (5-minute windows over a day
of data).
"""

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.query import NormRect, rect_contains_point
from repro.core.records import Record
from repro.core.schema import IndexSchema


class TimePartitionedStore:
    """Stores (record, normalized point) pairs, partitioned by time."""

    def __init__(self, schema: IndexSchema, bucket_s: float = 300.0) -> None:
        if bucket_s <= 0:
            raise ValueError("bucket_s must be positive")
        self.schema = schema
        self.bucket_s = bucket_s
        self._time_dim = schema.time_dimension()
        self._buckets: Dict[int, List[Tuple[Record, Tuple[float, ...]]]] = {}
        self._count = 0
        self._keys: set = set()

    def _bucket_of(self, record: Record) -> int:
        if self._time_dim is None:
            return 0
        return int(record.values[self._time_dim] // self.bucket_s)

    # ------------------------------------------------------------------
    def insert(self, record: Record) -> bool:
        """Store a record; returns False if the key was already present.

        Replica re-delivery and query-time dedup both rely on keys being
        unique, so duplicate keys are dropped rather than double counted.
        """
        if record.key in self._keys:
            return False
        self._keys.add(record.key)
        point = self.schema.normalize(record.values)
        self._buckets.setdefault(self._bucket_of(record), []).append((record, point))
        self._count += 1
        return True

    def __len__(self) -> int:
        return self._count

    def __contains__(self, key: int) -> bool:
        return key in self._keys

    # ------------------------------------------------------------------
    def query(
        self,
        rect: NormRect,
        time_range: Optional[Tuple[float, float]] = None,
    ) -> List[Record]:
        """All records whose normalized point lies in ``rect``.

        ``time_range`` (raw units, half-open) prunes the buckets scanned;
        the rectangle check remains authoritative.
        """
        buckets = self._candidate_buckets(time_range)
        out = []
        for bucket in buckets:
            for record, point in self._buckets.get(bucket, ()):
                if rect_contains_point(rect, point):
                    out.append(record)
        return out

    def _candidate_buckets(self, time_range: Optional[Tuple[float, float]]) -> Sequence[int]:
        if time_range is None or self._time_dim is None:
            return list(self._buckets)
        lo, hi = time_range
        first = int(lo // self.bucket_s)
        last = int(max(lo, hi - 1e-9) // self.bucket_s)
        return [b for b in range(first, last + 1) if b in self._buckets]

    def all_records(self) -> List[Record]:
        return [record for bucket in self._buckets.values() for record, _ in bucket]

    def drop_before(self, cutoff: float) -> int:
        """Expire whole buckets older than ``cutoff`` (version retirement)."""
        if self._time_dim is None:
            return 0
        removed = 0
        for bucket in list(self._buckets):
            if (bucket + 1) * self.bucket_s <= cutoff:
                entries = self._buckets.pop(bucket)
                removed += len(entries)
                for record, _ in entries:
                    self._keys.discard(record.key)
        self._count -= removed
        return removed
