"""Synthetic backbone traffic: flows, aggregation, anomalies, datasets.

This package substitutes for the NetFlow/eBGP feeds the paper collected
from Abilene and GÉANT.  It generates *sampled* flow records per monitor
with the distributional properties the paper's results depend on:

* Zipf-popular source/destination prefixes (storage skew, Figures 2/13),
* heavy-tailed flow sizes (alpha flows exist to be found),
* a stationary diurnal rate and mix profile (day-to-day mismatch stays
  small while hour-to-hour mismatch is large, Figure 3),
* per-network packet-sampling rates (Abilene 1/100 vs GÉANT 1/1000 — more
  tuples injected from Abilene nodes, Figure 12's imbalance), and
* injectable anomalies — alpha flows, DoS attacks, port scans — with exact
  ground truth for recall evaluation (Figure 16/17).

The aggregation module turns raw flows into the paper's three index record
types (Section 4.1) with its 30-second windows and filter thresholds.
"""

from repro.traffic.aggregation import AggregatedFlow, AggregationConfig, aggregate_flows
from repro.traffic.anomalies import (
    AlphaFlowEvent,
    AnomalyEvent,
    DoSEvent,
    PortScanEvent,
)
from repro.traffic.flows import FlowRecord
from repro.traffic.generator import BackboneTrafficGenerator, TrafficConfig
from repro.traffic.indices import (
    INDEX1_FANOUT_MIN,
    INDEX2_OCTETS_MIN,
    INDEX3_FLOWSIZE_MIN,
    index1_records,
    index1_schema,
    index2_records,
    index2_schema,
    index3_records,
    index3_schema,
)
from repro.traffic.prefixes import Prefix, PrefixPool

__all__ = [
    "AggregatedFlow",
    "AggregationConfig",
    "AlphaFlowEvent",
    "AnomalyEvent",
    "BackboneTrafficGenerator",
    "DoSEvent",
    "FlowRecord",
    "INDEX1_FANOUT_MIN",
    "INDEX2_OCTETS_MIN",
    "INDEX3_FLOWSIZE_MIN",
    "PortScanEvent",
    "Prefix",
    "PrefixPool",
    "TrafficConfig",
    "aggregate_flows",
    "index1_records",
    "index1_schema",
    "index2_records",
    "index2_schema",
    "index3_records",
    "index3_schema",
]
