"""Flow aggregation and pre-filtering (Section 2.2 / Figure 1).

Raw sampled flows are grouped per (monitor, time window, source /16,
destination /16); each group becomes one :class:`AggregatedFlow` carrying
the quantities the three paper indices need:

* ``octets``      — total reported bytes (Index-2),
* ``fanout``      — distinct (source host, destination host) pairs among
  *short* flows, i.e. connection attempts (Index-1),
* ``flow_size``   — average bytes per distinct connection (Index-3),
* ``top_port``    — the dominant destination port (Index-3 payload).

Aggregation plus thresholds is where the two-orders-of-magnitude record
reduction of Figure 1 comes from.
"""

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.traffic.flows import FlowRecord
from repro.traffic.prefixes import prefix16_of


@dataclass
class AggregationConfig:
    window_s: float = 30.0
    #: Flows at or under this size count as short connection attempts.
    short_flow_octets: int = 1500


@dataclass
class AggregatedFlow:
    """One (monitor, window, src prefix, dst prefix) traffic aggregate."""

    monitor: str
    window_start: float
    src_prefix: int
    dst_prefix: int
    octets: int
    connections: int
    fanout: int
    top_port: int

    @property
    def flow_size(self) -> float:
        """Average traffic per distinct connection in the window."""
        if self.connections == 0:
            return 0.0
        return self.octets / self.connections


class _Group:
    __slots__ = ("octets", "connections", "pairs", "ports")

    def __init__(self) -> None:
        self.octets = 0
        self.connections: set = set()
        self.pairs: set = set()
        self.ports: Dict[int, int] = {}


def aggregate_flows(
    flows: Iterable[FlowRecord],
    config: AggregationConfig = None,
) -> List[AggregatedFlow]:
    """Aggregate raw flows into per-window prefix-pair records."""
    cfg = config or AggregationConfig()
    groups: Dict[Tuple[str, float, int, int], _Group] = {}
    for flow in flows:
        window_start = (flow.start // cfg.window_s) * cfg.window_s
        key = (flow.monitor, window_start, prefix16_of(flow.src_addr), prefix16_of(flow.dst_addr))
        group = groups.get(key)
        if group is None:
            group = _Group()
            groups[key] = group
        group.octets += flow.octets
        group.connections.add((flow.src_addr, flow.dst_addr, flow.dst_port))
        if flow.octets <= cfg.short_flow_octets:
            group.pairs.add((flow.src_addr, flow.dst_addr))
        group.ports[flow.dst_port] = group.ports.get(flow.dst_port, 0) + flow.octets

    out = []
    for (monitor, window_start, src_prefix, dst_prefix), group in groups.items():
        top_port = max(group.ports.items(), key=lambda kv: (kv[1], -kv[0]))[0]
        out.append(
            AggregatedFlow(
                monitor=monitor,
                window_start=window_start,
                src_prefix=src_prefix,
                dst_prefix=dst_prefix,
                octets=group.octets,
                connections=len(group.connections),
                fanout=len(group.pairs),
                top_port=top_port,
            )
        )
    out.sort(key=lambda a: (a.window_start, a.monitor, a.src_prefix, a.dst_prefix))
    return out
