"""Injectable traffic anomalies with exact ground truth.

Three event types match the anomaly classes of Lakhina et al. that the
paper replays in Section 5: alpha flows (unusually large point-to-point
volume), DoS attacks (many sources hammering one destination) and port
scans (one source probing many hosts in a destination prefix).

Every event knows which monitors observed it (the route of the anomalous
traffic through the backbone — the paper's Figure 17 lists exactly these
router sets for its two DoS flows) and can generate its sampled flows for
any window, deterministically.
"""

import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.traffic.flows import FlowRecord
from repro.traffic.prefixes import Prefix


@dataclass(frozen=True)
class AnomalyEvent:
    """Common shape of an injected anomaly."""

    name: str
    start: float            # absolute time (day*86400 + time-of-day)
    duration: float
    src_prefix: Prefix
    dst_prefix: Prefix
    monitors: Tuple[str, ...]

    def active_in(self, day: int, window_start_s: float, window_s: float) -> bool:
        t0 = day * 86400.0 + window_start_s
        return t0 < self.start + self.duration and self.start < t0 + window_s

    def flows_for_window(
        self, monitor: str, day: int, window_start_s: float, window_s: float, rng: random.Random
    ) -> List[FlowRecord]:
        if monitor not in self.monitors or not self.active_in(day, window_start_s, window_s):
            return []
        return self._emit(monitor, day * 86400.0 + window_start_s, window_s, rng)

    def _emit(self, monitor: str, t0: float, window_s: float, rng: random.Random) -> List[FlowRecord]:
        raise NotImplementedError


@dataclass(frozen=True)
class AlphaFlowEvent(AnomalyEvent):
    """A high-volume point-to-point flow (detected via Index-2 octets)."""

    octets_per_window: int = 6_000_000

    def _emit(self, monitor, t0, window_s, rng):
        src = self.src_prefix.base + 1
        dst = self.dst_prefix.base + 1
        pieces = 4
        return [
            FlowRecord(
                monitor=monitor,
                start=t0 + (i + rng.random()) * window_s / pieces,
                src_addr=src,
                dst_addr=dst,
                dst_port=80,
                protocol=6,
                octets=self.octets_per_window // pieces,
                packets=self.octets_per_window // pieces // 1000,
            )
            for i in range(pieces)
        ]


@dataclass(frozen=True)
class DoSEvent(AnomalyEvent):
    """Many (spoofed) sources flooding one destination host.

    Produces a large *fanout* of short connection attempts from the source
    prefix to the destination prefix (detected via Index-1).
    """

    attempts_per_window: int = 2500

    def _emit(self, monitor, t0, window_s, rng):
        dst = self.dst_prefix.base + 7
        flows = []
        for _ in range(self.attempts_per_window):
            src = self.src_prefix.random_host(rng)
            flows.append(
                FlowRecord(
                    monitor=monitor,
                    start=t0 + rng.random() * window_s,
                    src_addr=src,
                    dst_addr=dst,
                    dst_port=80,
                    protocol=6,
                    octets=rng.randint(40, 120),
                    packets=1,
                )
            )
        return flows


@dataclass(frozen=True)
class PortScanEvent(AnomalyEvent):
    """One source probing many hosts of a destination prefix (Index-1)."""

    attempts_per_window: int = 2000
    dst_port: int = 3306

    def _emit(self, monitor, t0, window_s, rng):
        src = self.src_prefix.base + 13
        flows = []
        for _ in range(self.attempts_per_window):
            dst = self.dst_prefix.random_host(rng)
            flows.append(
                FlowRecord(
                    monitor=monitor,
                    start=t0 + rng.random() * window_s,
                    src_addr=src,
                    dst_addr=dst,
                    dst_port=self.dst_port,
                    protocol=6,
                    octets=rng.randint(40, 80),
                    packets=1,
                )
            )
        return flows


def windows_of(event: AnomalyEvent, window_s: float) -> List[float]:
    """Absolute window-start times during which the event is active."""
    first = int(event.start // window_s)
    last = int((event.start + event.duration - 1e-9) // window_s)
    return [w * window_s for w in range(first, last + 1)]
