"""Canned synthetic datasets mirroring the paper's trace selections.

* :func:`baseline_generator` — the 34-monitor Abilene+GÉANT deployment of
  the baseline experiment (Sept 1-3, 2004 in the paper).
* :func:`abilene_generator` — Abilene-only (Figure 1's single-router day,
  and the Section 5 anomaly replay).
* :func:`lakhina_anomalies` — the five anomaly episodes of Figure 17
  (three alpha-flow pairs, a 2xDoS+scan burst and a 2xDoS burst) with the
  router paths the paper reports for its DoS flows.
"""

from typing import List, Optional, Tuple

from repro.net.topology import ABILENE_SITES, backbone_sites
from repro.traffic.anomalies import AlphaFlowEvent, AnomalyEvent, DoSEvent, PortScanEvent
from repro.traffic.generator import BackboneTrafficGenerator, TrafficConfig


def baseline_generator(
    seed: int = 0,
    config: Optional[TrafficConfig] = None,
    anomalies: Tuple[AnomalyEvent, ...] = (),
) -> BackboneTrafficGenerator:
    """Generator over all 34 Abilene+GÉANT monitors."""
    cfg = config or TrafficConfig(seed=seed)
    return BackboneTrafficGenerator(backbone_sites(), cfg, anomalies=anomalies)


def abilene_generator(
    seed: int = 0,
    config: Optional[TrafficConfig] = None,
    anomalies: Tuple[AnomalyEvent, ...] = (),
) -> BackboneTrafficGenerator:
    """Generator over the 11 Abilene monitors only."""
    cfg = config or TrafficConfig(seed=seed)
    return BackboneTrafficGenerator(ABILENE_SITES, cfg, anomalies=anomalies)


def lakhina_anomalies(generator: BackboneTrafficGenerator) -> List[AnomalyEvent]:
    """The five Figure-17 anomaly episodes on the Abilene topology.

    Times of day follow the paper's table (13:30, 15:45, 15:55, 19:50,
    19:55 on December 18th, 2003); the two 19:55 DoS flows use the router
    paths the paper reports (CHIN-DNVR-IPLS-KSCY-LOSA-SNVA and CHIN-IPLS).
    """
    pool = generator.pools["abilene"]
    p = pool.prefixes

    def at(hh: int, mm: int) -> float:
        return hh * 3600.0 + mm * 60.0

    all_abilene = tuple(s.name for s in ABILENE_SITES)
    events: List[AnomalyEvent] = [
        # Three episodes of two concurrent alpha flows each.
        AlphaFlowEvent("alpha-1330-a", at(13, 30), 240.0, p[3], p[40], ("NYCM", "CHIN", "IPLS")),
        AlphaFlowEvent("alpha-1330-b", at(13, 30) + 30.0, 240.0, p[9], p[41], ("WASH", "ATLA")),
        AlphaFlowEvent("alpha-1545-a", at(15, 45), 240.0, p[5], p[50], ("LOSA", "SNVA")),
        AlphaFlowEvent("alpha-1545-b", at(15, 45) + 60.0, 180.0, p[11], p[51], ("STTL", "DNVR")),
        AlphaFlowEvent("alpha-1555-a", at(15, 55), 240.0, p[6], p[52], ("HSTN", "KSCY")),
        AlphaFlowEvent("alpha-1555-b", at(15, 55) + 30.0, 240.0, p[13], p[53], ("ATLA", "IPLS")),
        # 19:50 — two DoS attacks and one port scan.
        DoSEvent("dos-1950-a", at(19, 50), 180.0, p[20], p[60], ("NYCM", "WASH", "ATLA")),
        DoSEvent("dos-1950-b", at(19, 50) + 30.0, 180.0, p[21], p[61], ("DNVR", "KSCY")),
        PortScanEvent("scan-1950", at(19, 50) + 60.0, 180.0, p[22], p[62], ("CHIN", "IPLS")),
        # 19:55 — two DoS attacks with the paper's router paths.
        DoSEvent(
            "dos-1955-a",
            at(19, 55),
            180.0,
            p[23],
            p[63],
            ("CHIN", "DNVR", "IPLS", "KSCY", "LOSA", "SNVA"),
        ),
        DoSEvent("dos-1955-b", at(19, 55) + 30.0, 180.0, p[24], p[64], ("CHIN", "IPLS")),
    ]
    return events
