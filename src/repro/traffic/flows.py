"""Raw (sampled) flow records as emitted by a monitor's NetFlow export."""

from dataclasses import dataclass


@dataclass(frozen=True)
class FlowRecord:
    """One sampled flow observed at one monitor.

    ``octets`` is the *reported* (sampled) byte count; because routers
    sample packets (1/100 on Abilene, 1/1000 on GÉANT), the true flow may
    be much larger — the reason the paper's 50 KB threshold is
    "conservative enough to capture most alpha flows".
    """

    monitor: str
    start: float
    src_addr: int
    dst_addr: int
    dst_port: int
    protocol: int
    octets: int
    packets: int

    def __post_init__(self) -> None:
        if self.octets < 0 or self.packets < 0:
            raise ValueError("octets/packets must be non-negative")
