"""Synthetic backbone NetFlow generator.

Each monitor (backbone router) emits sampled flow records window by window.
Window contents are derived from a seed keyed on (master seed, monitor,
day, window index), so any window of any day can be regenerated
independently and identically — the property the daily-versioned
experiments rely on.

Distributional knobs and what they reproduce:

* ``zipf_s`` prefix popularity     -> storage skew (Figures 2, 13)
* log-normal flow sizes            -> alpha-flow tail (Figure 17)
* diurnal rate + stable daily mix  -> low day-to-day, high hour-to-hour
                                      mismatch (Figure 3)
* per-network sampling rates       -> Abilene injects more tuples than
                                      GÉANT (Figure 12's imbalance)
"""

import math
import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence

from repro.net.topology import Site
from repro.sim.randomness import derive_seed
from repro.traffic.flows import FlowRecord
from repro.traffic.prefixes import PrefixPool

#: Well-known destination ports, most popular first.
COMMON_PORTS = [80, 443, 25, 53, 110, 21, 22, 119, 3306, 6667, 8080, 1433]

#: Relative flow-record rate by network — the ratio of the paper's packet
#: sampling rates (Abilene 1/100 vs GÉANT 1/1000) shows up directly in how
#: many sampled flow records each monitor exports.
NETWORK_RATE_FACTOR = {"abilene": 1.0, "geant": 0.35, "planetlab": 1.0}


def poisson(rng: random.Random, lam: float) -> int:
    """Poisson sample; Knuth for small lambda, normal approx otherwise."""
    if lam <= 0:
        return 0
    if lam > 30.0:
        return max(0, int(round(rng.gauss(lam, math.sqrt(lam)))))
    threshold = math.exp(-lam)
    k, p = 0, 1.0
    while True:
        p *= rng.random()
        if p <= threshold:
            return k
        k += 1


@dataclass
class TrafficConfig:
    """Knobs of the synthetic workload."""

    seed: int = 0
    #: Mean sampled flow records per second per monitor at the diurnal mean.
    flows_per_second: float = 1.2
    diurnal_amplitude: float = 0.45
    peak_time_s: float = 14.5 * 3600.0
    #: Day-to-day multiplicative drift of the overall rate (stationarity
    #: is approximate, not exact — Figure 3 shows ~10-20% daily mismatch).
    day_jitter: float = 0.08
    prefixes_per_network: int = 192
    zipf_s: float = 1.25
    #: Log-normal sampled flow size (bytes).
    size_mu: float = 8.2
    size_sigma: float = 1.9
    #: Fraction of flows that are short connection attempts (tiny flows
    #: contributing to fanout rather than volume).
    short_flow_fraction: float = 0.35
    #: Fraction of a monitor's sources drawn from its "home" prefix slice —
    #: the spatial locality that makes traffic differ across monitors.
    home_bias: float = 0.6


class BackboneTrafficGenerator:
    """Generates sampled flows for a set of backbone monitor sites."""

    def __init__(
        self,
        sites: Sequence[Site],
        config: Optional[TrafficConfig] = None,
        anomalies: Sequence = (),
    ) -> None:
        if not sites:
            raise ValueError("need at least one monitor site")
        self.sites = list(sites)
        self.config = config or TrafficConfig()
        self.anomalies = list(anomalies)
        cfg = self.config
        self.pools: Dict[str, PrefixPool] = {}
        first_octets = {"abilene": 128, "geant": 62, "planetlab": 192}
        for network in sorted({site.network for site in self.sites}):
            octet = first_octets.get(network, 100)
            self.pools[network] = PrefixPool(octet, cfg.prefixes_per_network, cfg.zipf_s)
        # Each monitor owns a slice of its network's prefixes as "home".
        by_network: Dict[str, List[Site]] = {}
        for site in self.sites:
            by_network.setdefault(site.network, []).append(site)
        self._home_slices: Dict[str, List[int]] = {}
        for network, members in by_network.items():
            pool = self.pools[network]
            per = max(1, len(pool) // len(members))
            for i, site in enumerate(sorted(members, key=lambda s: s.name)):
                lo = (i * per) % len(pool)
                self._home_slices[site.name] = list(range(lo, min(lo + per, len(pool))))
        self._sites_by_name = {site.name: site for site in self.sites}

    # ------------------------------------------------------------------
    # Rate model
    # ------------------------------------------------------------------
    def rate_at(self, monitor: str, time_of_day_s: float, day: int) -> float:
        """Mean sampled flows/second for one monitor at one instant."""
        cfg = self.config
        site = self._sites_by_name[monitor]
        diurnal = 1.0 + cfg.diurnal_amplitude * math.cos(
            2.0 * math.pi * (time_of_day_s - cfg.peak_time_s) / 86400.0
        )
        day_rng = random.Random(derive_seed(cfg.seed, f"day.{day}"))
        drift = 1.0 + cfg.day_jitter * (2.0 * day_rng.random() - 1.0)
        factor = NETWORK_RATE_FACTOR.get(site.network, 1.0)
        return cfg.flows_per_second * diurnal * drift * factor

    # ------------------------------------------------------------------
    # Flow generation
    # ------------------------------------------------------------------
    def _window_rng(self, monitor: str, day: int, window_index: int) -> random.Random:
        return random.Random(derive_seed(self.config.seed, f"{monitor}.{day}.{window_index}"))

    def flows_for_window(
        self, monitor: str, day: int, window_start_s: float, window_s: float
    ) -> List[FlowRecord]:
        """All sampled flows one monitor exports for one time window.

        ``window_start_s`` is the time-of-day of the window start; the
        absolute timestamp of emitted flows is ``day*86400 + offset``.
        """
        cfg = self.config
        site = self._sites_by_name[monitor]
        pool = self.pools[site.network]
        window_index = int(window_start_s // window_s)
        rng = self._window_rng(monitor, day, window_index)
        lam = self.rate_at(monitor, window_start_s + window_s / 2.0, day) * window_s
        count = poisson(rng, lam)
        base_t = day * 86400.0 + window_start_s
        home = self._home_slices[monitor]

        flows = []
        for _ in range(count):
            if rng.random() < cfg.home_bias:
                src_prefix = pool.prefixes[rng.choice(home)]
            else:
                src_prefix = pool.pick(rng)
            dst_prefix = pool.pick(rng)
            src = src_prefix.random_host(rng)
            dst = dst_prefix.random_host(rng)
            port = self._pick_port(rng)
            if rng.random() < cfg.short_flow_fraction:
                octets = rng.randint(40, 1500)
                packets = max(1, octets // 600)
            else:
                octets = max(40, int(rng.lognormvariate(cfg.size_mu, cfg.size_sigma)))
                packets = max(1, octets // 1000)
            flows.append(
                FlowRecord(
                    monitor=monitor,
                    start=base_t + rng.random() * window_s,
                    src_addr=src,
                    dst_addr=dst,
                    dst_port=port,
                    protocol=6,
                    octets=octets,
                    packets=packets,
                )
            )
        for event in self.anomalies:
            flows.extend(event.flows_for_window(monitor, day, window_start_s, window_s, rng))
        return flows

    def _pick_port(self, rng: random.Random) -> int:
        # Zipf-ish over common ports with a tail of ephemeral high ports.
        if rng.random() < 0.85:
            weights_idx = min(int(rng.paretovariate(1.0)) - 1, len(COMMON_PORTS) - 1)
            return COMMON_PORTS[weights_idx]
        return rng.randint(1024, 65535)

    def generate(
        self,
        day: int,
        start_s: float = 0.0,
        duration_s: float = 86400.0,
        window_s: float = 30.0,
        monitors: Optional[Sequence[str]] = None,
    ) -> Iterator[List[FlowRecord]]:
        """Yield per-(window, monitor) flow batches across a time span."""
        names = list(monitors) if monitors else [s.name for s in self.sites]
        t = start_s
        while t < start_s + duration_s - 1e-9:
            for name in names:
                yield self.flows_for_window(name, day, t, window_s)
            t += window_s
