"""The paper's three evaluation indices (Section 4.1).

Each index is built from the first three attributes of an aggregated flow
record; the remaining attributes ride along as payload:

* **Index-1** ``(dest_prefix, timestamp, fanout | source_prefix, node)``
  — port scans and DoS: *sources attempting to connect to more than F
  hosts in destination prefix D within period T*.
* **Index-2** ``(dest_prefix, timestamp, octets | source_prefix, node)``
  — alpha flows: *flows destined for D carrying at least O octets in T*.
* **Index-3** ``(dest_prefix, timestamp, flow_size | source_prefix,
  dst_port, node)`` — applications hiding on well-known ports.

Filter thresholds and histogram upper bounds follow the paper: records
with fanout < 16, octets < 80 KB or flow_size < 1.5 KB are not inserted,
and attribute domains are capped at 5024 / 2 MB / 128 KB (values beyond
the cap — fewer than 0.1% of tuples — are assigned the largest range).
"""

from typing import Iterable, List

from repro.core.records import Record
from repro.core.schema import AttributeSpec, IndexSchema
from repro.traffic.aggregation import AggregatedFlow
from repro.traffic.prefixes import ADDRESS_SPACE

INDEX1_FANOUT_MIN = 16
INDEX2_OCTETS_MIN = 80_000
INDEX3_FLOWSIZE_MIN = 1_500

FANOUT_CAP = 5024.0
OCTETS_CAP = 2_000_000.0
FLOWSIZE_CAP = 128_000.0


def index1_schema(horizon_s: float, name: str = "index1") -> IndexSchema:
    return IndexSchema(
        name,
        attributes=[
            AttributeSpec("dest_prefix", 0.0, float(ADDRESS_SPACE)),
            AttributeSpec("timestamp", 0.0, horizon_s, is_time=True),
            AttributeSpec("fanout", 0.0, FANOUT_CAP),
        ],
        payload_names=("source_prefix", "node"),
    )


def index2_schema(horizon_s: float, name: str = "index2") -> IndexSchema:
    return IndexSchema(
        name,
        attributes=[
            AttributeSpec("dest_prefix", 0.0, float(ADDRESS_SPACE)),
            AttributeSpec("timestamp", 0.0, horizon_s, is_time=True),
            AttributeSpec("octets", 0.0, OCTETS_CAP),
        ],
        payload_names=("source_prefix", "node"),
    )


def index3_schema(horizon_s: float, name: str = "index3") -> IndexSchema:
    return IndexSchema(
        name,
        attributes=[
            AttributeSpec("dest_prefix", 0.0, float(ADDRESS_SPACE)),
            AttributeSpec("timestamp", 0.0, horizon_s, is_time=True),
            AttributeSpec("flow_size", 0.0, FLOWSIZE_CAP),
        ],
        payload_names=("source_prefix", "dst_port", "node"),
    )


def index1_records(
    aggregates: Iterable[AggregatedFlow], min_fanout: int = INDEX1_FANOUT_MIN
) -> List[Record]:
    """Filtered Index-1 records from aggregated flows."""
    return [
        Record(
            [float(a.dst_prefix), a.window_start, float(a.fanout)],
            payload={"source_prefix": a.src_prefix, "node": a.monitor},
        )
        for a in aggregates
        if a.fanout >= min_fanout
    ]


def index2_records(
    aggregates: Iterable[AggregatedFlow], min_octets: int = INDEX2_OCTETS_MIN
) -> List[Record]:
    """Filtered Index-2 records from aggregated flows."""
    return [
        Record(
            [float(a.dst_prefix), a.window_start, float(a.octets)],
            payload={"source_prefix": a.src_prefix, "node": a.monitor},
        )
        for a in aggregates
        if a.octets >= min_octets
    ]


def index3_records(
    aggregates: Iterable[AggregatedFlow], min_flow_size: float = INDEX3_FLOWSIZE_MIN
) -> List[Record]:
    """Filtered Index-3 records from aggregated flows."""
    return [
        Record(
            [float(a.dst_prefix), a.window_start, a.flow_size],
            payload={"source_prefix": a.src_prefix, "dst_port": a.top_port, "node": a.monitor},
        )
        for a in aggregates
        if a.flow_size >= min_flow_size
    ]
