"""IP prefixes as numeric ranges.

MIND indexes addresses as plain 32-bit integers; a prefix is then a
contiguous range, which is exactly what makes prefix queries expressible
as one dimension of a range query.  The synthetic universe assigns each
backbone a pool of /16 prefixes, so the prefix of any generated address is
recoverable with a mask.
"""

import random
from dataclasses import dataclass
from typing import List, Tuple

ADDRESS_SPACE = 2**32
PREFIX16_MASK = 0xFFFF0000


@dataclass(frozen=True)
class Prefix:
    """An IPv4 prefix as (base address, prefix length)."""

    base: int
    length: int = 16

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise ValueError(f"invalid prefix length {self.length}")
        span = self.span
        if self.base % span != 0:
            raise ValueError(f"base {self.base:#x} not aligned to /{self.length}")
        if not 0 <= self.base < ADDRESS_SPACE:
            raise ValueError("base outside IPv4 space")

    @property
    def span(self) -> int:
        return 1 << (32 - self.length)

    @property
    def limit(self) -> int:
        return self.base + self.span

    def contains(self, address: int) -> bool:
        return self.base <= address < self.limit

    def address_range(self) -> Tuple[int, int]:
        """The half-open [base, limit) range for use in queries."""
        return (self.base, self.limit)

    def random_host(self, rng: random.Random) -> int:
        return self.base + rng.randrange(self.span)

    def __str__(self) -> str:
        octets = [(self.base >> shift) & 0xFF for shift in (24, 16, 8, 0)]
        return f"{'.'.join(str(o) for o in octets)}/{self.length}"


def prefix16_of(address: int) -> int:
    """The /16 base covering ``address`` — how aggregation groups hosts."""
    return address & PREFIX16_MASK


class PrefixPool:
    """A backbone network's set of customer /16 prefixes with popularity.

    Popularity is Zipf-distributed: prefix *i* (rank order) is chosen with
    probability proportional to ``1 / (i+1)^s``.  This is the source of the
    storage skew the paper measures in Figure 2.
    """

    def __init__(self, first_octet: int, count: int, zipf_s: float = 1.1) -> None:
        if not 1 <= first_octet <= 223:
            raise ValueError("first_octet must be a unicast /8")
        if count < 1 or count > 256 * 256:
            raise ValueError("count must be in [1, 65536]")
        self.prefixes: List[Prefix] = []
        base_octet = first_octet << 24
        for i in range(count):
            self.prefixes.append(Prefix(base_octet + (i << 16), 16))
        weights = [1.0 / (i + 1) ** zipf_s for i in range(count)]
        total = sum(weights)
        self._cumulative = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self._cumulative.append(acc)

    def __len__(self) -> int:
        return len(self.prefixes)

    def pick(self, rng: random.Random) -> Prefix:
        """Draw a prefix by Zipf popularity."""
        x = rng.random()
        lo, hi = 0, len(self._cumulative) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cumulative[mid] < x:
                lo = mid + 1
            else:
                hi = mid
        return self.prefixes[lo]

    def pick_uniform(self, rng: random.Random) -> Prefix:
        return rng.choice(self.prefixes)
