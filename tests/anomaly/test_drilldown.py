"""Tests for the drill-down query loop."""

import pytest

from repro.anomaly.drilldown import drill_down
from repro.core.cluster import ClusterConfig, MindCluster
from repro.core.query import RangeQuery
from repro.core.records import Record
from repro.core.schema import AttributeSpec, IndexSchema
from repro.net.topology import ABILENE_SITES
from repro.traffic.prefixes import ADDRESS_SPACE


@pytest.fixture(scope="module")
def cluster():
    config = ClusterConfig(seed=81, track_ground_truth=True)
    c = MindCluster(ABILENE_SITES, config)
    c.build()
    schema = IndexSchema(
        "d",
        attributes=[
            AttributeSpec("dest_prefix", 0.0, float(ADDRESS_SPACE)),
            AttributeSpec("timestamp", 0.0, 86400.0, is_time=True),
            AttributeSpec("octets", 0.0, 2e6),
        ],
        payload_names=("node",),
    )
    c.create_index(schema)
    rng = c.sim.rng("t.drill")
    base = c.sim.now
    # Background records plus one hot destination with huge octets.
    hot_dest = (128 << 24) + (40 << 16)
    for i in range(150):
        record = Record([rng.uniform(62 * 2**24, 129 * 2**24), rng.uniform(0, 3600), rng.uniform(0, 1e5)])
        c.schedule_insert("d", record, ABILENE_SITES[i % 11].name, base + i * 0.02)
    for j in range(5):
        record = Record([float(hot_dest + j), 1800.0 + j, 1.9e6])
        c.schedule_insert("d", record, "CHIN", base + 5.0 + j * 0.1)
    c.advance(30.0)
    return c, hot_dest


def test_drill_down_converges_to_hot_records(cluster):
    c, hot_dest = cluster
    initial = RangeQuery("d", {"timestamp": (0, 3600), "octets": (1e4, None)})
    session = drill_down(c, initial, origin="NYCM", value_attribute="octets", target_size=10)
    assert session.queries_issued >= 2
    assert 0 < len(session.final_records) <= 60
    # The hot destination's records survive every narrowing step.
    hot = [r for r in session.final_records if abs(r.values[0] - hot_dest) < 2**16]
    assert len(hot) == 5
    # Result sizes shrink monotonically (never grow).
    sizes = [step.records for step in session.steps]
    assert all(sizes[i + 1] <= sizes[i] for i in range(len(sizes) - 1))


def test_drill_down_stops_when_small(cluster):
    c, _ = cluster
    tiny = RangeQuery("d", {"timestamp": (0, 3600), "octets": (1.5e6, None)})
    session = drill_down(c, tiny, origin="LOSA", value_attribute="octets", target_size=10)
    assert session.queries_issued == 1


def test_drill_down_empty_result(cluster):
    c, _ = cluster
    nothing = RangeQuery("d", {"timestamp": (50000, 50300), "octets": (1e4, None)})
    session = drill_down(c, nothing, origin="ATLA", value_attribute="octets")
    assert session.queries_issued == 1
    assert session.final_records == []
    assert session.total_latency > 0
