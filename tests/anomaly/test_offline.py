"""Tests for the offline detector and query templates."""

import pytest

from repro.anomaly.offline import OfflineDetector
from repro.anomaly.queries import (
    alpha_flow_query,
    covert_port_query,
    fanout_query,
    filter_by_port,
    monitors_in_results,
)
from repro.core.records import Record
from repro.traffic.aggregation import AggregatedFlow
from repro.traffic.prefixes import Prefix


def agg(monitor="CHIN", window=600.0, src=0x80000000, dst=0x80100000, octets=1000, fanout=1):
    return AggregatedFlow(
        monitor=monitor,
        window_start=window,
        src_prefix=src,
        dst_prefix=dst,
        octets=octets,
        connections=max(1, fanout),
        fanout=fanout,
        top_port=80,
    )


def test_detects_alpha_and_fanout():
    detector = OfflineDetector(fanout_threshold=1000, octets_threshold=1_000_000)
    anomalies = detector.detect(
        [
            agg(octets=2_000_000),
            agg(fanout=1500, dst=0x80200000),
            agg(octets=10),
        ]
    )
    kinds = sorted(a.kind for a in anomalies)
    assert kinds == ["alpha", "fanout"]


def test_merges_multi_monitor_observations():
    detector = OfflineDetector(fanout_threshold=1000, octets_threshold=1e12)
    anomalies = detector.detect(
        [
            agg(monitor="CHIN", fanout=1500),
            agg(monitor="IPLS", fanout=1400),
        ]
    )
    assert len(anomalies) == 1
    assert anomalies[0].monitors == ("CHIN", "IPLS")
    assert anomalies[0].magnitude == 1500


def test_below_threshold_ignored():
    detector = OfflineDetector()
    assert detector.detect([agg(octets=100, fanout=3)]) == []


def test_five_minute_interval():
    detector = OfflineDetector(fanout_threshold=1)
    anomaly = detector.detect([agg(window=630.0, fanout=10)])[0]
    assert anomaly.five_minute_interval() == (600.0, 900.0)


def test_invalid_thresholds():
    with pytest.raises(ValueError):
        OfflineDetector(fanout_threshold=0)


# ---------------------------------------------------------------------------
# Query templates
# ---------------------------------------------------------------------------

def test_fanout_query_shape():
    q = fanout_query(1000.0)
    assert q.index == "index1"
    assert q.interval("timestamp") == (1000.0, 1300.0)
    assert q.interval("fanout") == (1500.0, None)
    assert q.interval("dest_prefix") == (None, None)


def test_fanout_query_with_prefix():
    q = fanout_query(0.0, dst_prefix=Prefix(0x80100000))
    lo, hi = q.interval("dest_prefix")
    assert (lo, hi) == (float(0x80100000), float(0x80110000))


def test_alpha_query_between_bounds():
    q = alpha_flow_query(0.0, octets_min=1e6, octets_max=2e6)
    assert q.interval("octets") == (1e6, 2e6)
    assert q.index == "index2"


def test_covert_port_query_and_filter():
    q = covert_port_query(0.0, flow_size_min=5000.0)
    assert q.index == "index3"
    records = [
        Record([1.0, 2.0, 3.0], payload={"dst_port": 53}),
        Record([1.0, 2.0, 3.0], payload={"dst_port": 80}),
    ]
    kept = filter_by_port(records, {53})
    assert len(kept) == 1 and kept[0].payload["dst_port"] == 53


def test_monitors_in_results():
    records = [
        Record([0, 0, 0], payload={"node": "CHIN"}),
        Record([0, 0, 0], payload={"node": "IPLS"}),
        Record([0, 0, 0], payload={"node": "CHIN"}),
    ]
    assert monitors_in_results(records) == ("CHIN", "IPLS")
