"""Tests for the three baseline architectures."""

import pytest

from repro.baselines.centralized import CentralizedSystem
from repro.baselines.dht import UniformHashSystem
from repro.baselines.flooding import QueryFloodingSystem
from repro.core.query import RangeQuery
from repro.core.records import Record
from repro.core.schema import AttributeSpec, IndexSchema
from repro.net.topology import ABILENE_SITES


def make_schema():
    return IndexSchema(
        "b",
        attributes=[
            AttributeSpec("x", 0.0, 1000.0),
            AttributeSpec("timestamp", 0.0, 86400.0, is_time=True),
        ],
    )


SYSTEMS = [QueryFloodingSystem, CentralizedSystem, UniformHashSystem]


@pytest.mark.parametrize("cls", SYSTEMS)
def test_insert_and_query_round_trip(cls):
    system = cls(ABILENE_SITES, make_schema(), seed=1)
    r1 = Record([100.0, 50.0])
    r2 = Record([900.0, 50.0])
    m1 = system.insert_now(r1, origin="CHIN")
    m2 = system.insert_now(r2, origin="NYCM")
    assert m1.success and m2.success

    query = RangeQuery("b", {"x": (0, 500), "timestamp": (0, 100)})
    metric = system.query_now(query, origin="LOSA")
    assert metric.complete
    assert metric.record_keys == {r1.key}


@pytest.mark.parametrize("cls", SYSTEMS)
def test_query_latency_positive(cls):
    system = cls(ABILENE_SITES, make_schema(), seed=2)
    system.insert_now(Record([1.0, 1.0]), origin="CHIN")
    metric = system.query_now(RangeQuery("b", {}), origin="CHIN")
    assert metric.latency > 0


def test_flooding_insert_is_local():
    system = QueryFloodingSystem(ABILENE_SITES, make_schema(), seed=3)
    metric = system.insert_now(Record([1.0, 1.0]), origin="CHIN")
    assert metric.hops == 0
    assert metric.latency < 0.05  # no WAN round trip


def test_flooding_query_visits_everyone():
    system = QueryFloodingSystem(ABILENE_SITES, make_schema(), seed=4)
    metric = system.query_now(RangeQuery("b", {}), origin="CHIN")
    assert metric.cost == len(ABILENE_SITES) - 1


def test_centralized_query_visits_one_node():
    system = CentralizedSystem(ABILENE_SITES, make_schema(), seed=5)
    system.insert_now(Record([1.0, 1.0]), origin="NYCM")
    metric = system.query_now(RangeQuery("b", {}), origin="NYCM")
    assert metric.cost == 1
    assert metric.records == 1


def test_centralized_all_data_at_server():
    system = CentralizedSystem(ABILENE_SITES, make_schema(), seed=6)
    for i in range(10):
        system.insert_now(Record([float(i), 1.0]), origin="LOSA")
    assert len(system.by_address[system.server].store) == 10
    others = [n for n in system.nodes if n.address != system.server]
    assert all(len(n.store) == 0 for n in others)


def test_dht_storage_is_spread():
    system = UniformHashSystem(ABILENE_SITES, make_schema(), seed=7)
    for i in range(60):
        system.insert_now(Record([float(i % 100), 1.0]), origin="CHIN")
    occupancy = [len(n.store) for n in system.nodes]
    assert sum(occupancy) == 60
    assert max(occupancy) < 20  # no single node hoards the data


def test_dht_range_query_contacts_all_nodes():
    system = UniformHashSystem(ABILENE_SITES, make_schema(), seed=8)
    system.insert_now(Record([5.0, 1.0]), origin="CHIN")
    metric = system.query_now(RangeQuery("b", {"x": (0, 10)}), origin="CHIN")
    assert metric.cost == len(ABILENE_SITES) - 1
    assert metric.records == 1
