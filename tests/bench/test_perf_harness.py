"""Tier-1 smoke test for the perf-regression harness.

Runs ``benchmarks/perf/run.py`` at a tiny scale (seconds, not minutes) and
checks the machine-readable ``BENCH_PERF.json`` contract every future PR's
trajectory comparison relies on.  The full-size run is the ``perf``-marked
suite under ``benchmarks/perf/``.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]

EXPECTED_BENCHES = {
    "insert",
    "query_scan",
    "histogram_build",
    "balanced_cut",
    "fig9_workload",
}


def _run_harness(output, extra_env=None, extra_args=()):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    # Timed perf sections require by-reference delivery and the FIFO
    # tie-break; the harness refuses to run with the isolation or
    # schedule-fuzz sanitizers on, so the smoke test must not leak the
    # suite's REPRO_ISOLATE_MESSAGES / REPRO_SCHEDULE_FUZZ into it.
    # Same for wire validation, which the scale tier refuses outright,
    # and the resource-lifecycle ledger.
    env.pop("REPRO_ISOLATE_MESSAGES", None)
    env.pop("REPRO_PROTOCOL_VALIDATE", None)
    env.pop("REPRO_SCHEDULE_FUZZ", None)
    env.pop("REPRO_SCHEDULE_FUZZ_SEED", None)
    env.pop("REPRO_TRACK_RESOURCES", None)
    env.update(extra_env or {})
    return subprocess.run(
        [
            sys.executable,
            str(REPO_ROOT / "benchmarks" / "perf" / "run.py"),
            "--records", "3000",
            "--queries", "5",
            "--output", str(output),
            *extra_args,
        ],
        env=env,
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=300,
    )


def test_run_py_writes_bench_perf_json(tmp_path):
    output = tmp_path / "BENCH_PERF.json"
    result = _run_harness(output)
    assert result.returncode == 0, result.stdout + result.stderr
    payload = json.loads(output.read_text())
    assert payload["meta"]["records"] == 3000
    assert set(payload["benches"]) == EXPECTED_BENCHES
    for name, entry in payload["benches"].items():
        assert entry["scalar_s"] >= 0.0, name
        assert entry["vectorized_s"] >= 0.0, name
        assert entry["speedup"] > 0.0, name
    overhead = payload["isolation_overhead"]
    assert overhead["messages"] > 0
    assert overhead["copy_us_per_msg"] >= 0.0
    assert overhead["freeze_us_per_msg"] >= 0.0
    fuzz = payload["schedule_fuzz_overhead"]
    assert fuzz["events"] > 0
    assert fuzz["off_ns_per_event"] >= 0.0
    assert fuzz["shuffle_ns_per_event"] >= 0.0
    assert fuzz["reverse_ns_per_event"] >= 0.0
    tracking = payload["resource_tracking_overhead"]
    assert tracking["messages"] > 0
    assert tracking["off_ns_per_msg"] >= 0.0
    assert tracking["tracked_ns_per_msg"] >= 0.0


def test_run_py_refuses_isolation_on(tmp_path):
    output = tmp_path / "BENCH_PERF.json"
    result = _run_harness(output, extra_env={"REPRO_ISOLATE_MESSAGES": "copy"})
    assert result.returncode == 1
    assert "isolation" in result.stderr
    assert not output.exists()


def test_run_py_refuses_schedule_fuzz_on(tmp_path):
    output = tmp_path / "BENCH_PERF.json"
    result = _run_harness(output, extra_env={"REPRO_SCHEDULE_FUZZ": "shuffle"})
    assert result.returncode == 1
    assert "schedule fuzz" in result.stderr
    assert not output.exists()


def test_run_py_refuses_resource_tracking_on(tmp_path):
    output = tmp_path / "BENCH_PERF.json"
    result = _run_harness(output, extra_env={"REPRO_TRACK_RESOURCES": "1"})
    assert result.returncode == 1
    assert "resource tracking" in result.stderr
    assert not output.exists()


# A downsized scale tier: real cluster, real kernel, seconds not minutes.
SCALE_SMOKE = ("--scale", "--scale-nodes", "8", "--scale-records", "40")


def test_run_py_scale_smoke_writes_scale_block(tmp_path):
    output = tmp_path / "BENCH_PERF.json"
    result = _run_harness(output, extra_args=SCALE_SMOKE)
    assert result.returncode == 0, result.stdout + result.stderr
    scale = json.loads(output.read_text())["scale"]
    assert scale["nodes"] == 8
    assert scale["records"] == 40
    assert scale["events"] > 0
    assert scale["events_per_s"] > 0
    assert scale["messages_per_s"] > 0
    assert scale["peak_rss_mb"] > 0
    assert scale["complete_fraction"] == 1.0

    # A microbench-only refresh must carry the scale block forward, not
    # silently drop the recorded baseline.
    result = _run_harness(output)
    assert result.returncode == 0, result.stdout + result.stderr
    assert json.loads(output.read_text())["scale"] == scale


def test_run_py_scale_refuses_protocol_validation_on(tmp_path):
    # Wire validation adds per-message payload checks; a scale baseline
    # timed with it on is not comparable, so run.py refuses instead of
    # silently disabling it.
    output = tmp_path / "BENCH_PERF.json"
    result = _run_harness(
        output, extra_env={"REPRO_PROTOCOL_VALIDATE": "1"}, extra_args=SCALE_SMOKE
    )
    assert result.returncode == 1
    assert "validation" in result.stderr
    assert not output.exists()


def test_run_py_scale_refuses_isolation_on(tmp_path):
    output = tmp_path / "BENCH_PERF.json"
    result = _run_harness(
        output, extra_env={"REPRO_ISOLATE_MESSAGES": "copy"}, extra_args=SCALE_SMOKE
    )
    assert result.returncode == 1
    assert "isolation" in result.stderr
    assert not output.exists()
