"""Tests for the benchmark harness helpers (workload replay, stats)."""

import pytest

from repro.bench.stats import cdf_points, format_table, summarize
from repro.bench.workload import collect_aggregates, replay, timed_index_records
from repro.core.cluster import ClusterConfig, MindCluster
from repro.net.topology import ABILENE_SITES
from repro.traffic.datasets import abilene_generator
from repro.traffic.generator import TrafficConfig
from repro.traffic.indices import index2_schema


@pytest.fixture(scope="module")
def generator():
    return abilene_generator(seed=61, config=TrafficConfig(seed=61, flows_per_second=2.0))


def test_timed_records_sorted_and_stamped(generator):
    timed = timed_index_records(
        generator, 0, 3600.0, 300.0, indices=("index2",), thresholds={"index2": 5_000.0}
    )
    assert timed
    assert all(timed[i].at <= timed[i + 1].at for i in range(len(timed) - 1))
    for item in timed:
        # Records are inserted at the end of their window.
        assert item.at % 30.0 == 0.0
        assert item.record.payload["node"] == item.origin
        assert item.index == "index2"


def test_timed_records_unknown_index(generator):
    with pytest.raises(KeyError):
        timed_index_records(generator, 0, 0.0, 60.0, indices=("bogus",))


def test_thresholds_reduce_volume(generator):
    loose = timed_index_records(
        generator, 0, 3600.0, 300.0, indices=("index2",), thresholds={"index2": 1_000.0}
    )
    strict = timed_index_records(
        generator, 0, 3600.0, 300.0, indices=("index2",), thresholds={"index2": 100_000.0}
    )
    assert len(strict) < len(loose)


def test_collect_aggregates_covers_monitors(generator):
    aggs = collect_aggregates(generator, 0, 3600.0, 120.0)
    monitors = {a.monitor for a in aggs}
    assert monitors == {s.name for s in ABILENE_SITES}


def test_replay_maps_trace_time_to_sim_time(generator):
    cluster = MindCluster(ABILENE_SITES[:5], ClusterConfig(seed=62))
    cluster.build()
    cluster.create_index(index2_schema(86400.0))
    timed = timed_index_records(
        generator, 0, 3600.0, 120.0, indices=("index2",), thresholds={"index2": 5_000.0},
        monitors=[s.name for s in ABILENE_SITES[:5]],
    )
    assert timed
    start, end = replay(cluster, timed)
    assert end >= start
    # 120 s of trace maps to about 120 s of virtual time (plus spread).
    assert end - start <= 130.0
    cluster.advance((end - start) + 30.0)
    assert len(cluster.metrics.inserts) == len(timed)


def test_replay_time_scale(generator):
    cluster = MindCluster(ABILENE_SITES[:5], ClusterConfig(seed=63))
    cluster.build()
    cluster.create_index(index2_schema(86400.0))
    timed = timed_index_records(
        generator, 0, 3600.0, 120.0, indices=("index2",), thresholds={"index2": 5_000.0},
        monitors=[s.name for s in ABILENE_SITES[:5]],
    )
    start, end = replay(cluster, timed, time_scale=0.1, spread_s=0.5)
    assert end - start <= 13.0


def test_replay_empty_rejected():
    cluster = MindCluster(ABILENE_SITES[:3], ClusterConfig(seed=64))
    cluster.build()
    with pytest.raises(ValueError):
        replay(cluster, [])


# ---------------------------------------------------------------------------
# stats
# ---------------------------------------------------------------------------

def test_summarize():
    s = summarize([1.0, 2.0, 3.0, 4.0])
    assert s["count"] == 4
    assert s["mean"] == 2.5
    assert s["max"] == 4.0
    with pytest.raises(ValueError):
        summarize([])


def test_cdf_points_monotone():
    points = cdf_points(list(range(100)))
    values = [v for _, v in points]
    assert values == sorted(values)


def test_format_table_alignment():
    table = format_table(["a", "bb"], [[1, 2.5], [10, 3.25]])
    lines = table.splitlines()
    assert len(lines) == 4
    assert all(len(line) == len(lines[0]) for line in lines)


def test_misaligned_start_is_snapped_to_window_grid(generator):
    # A trace start off the 30 s grid must not split windows: the same
    # period requested aligned and misaligned yields the same aggregates.
    aligned = collect_aggregates(generator, 0, 3600.0, 120.0)
    misaligned = collect_aggregates(generator, 0, 3610.0, 110.0)
    key = lambda a: (a.monitor, a.window_start, a.src_prefix, a.dst_prefix, a.octets)
    assert sorted(map(key, aligned)) == sorted(map(key, misaligned))
