"""Suite-wide fixtures.

The whole test suite runs with wire-protocol validation ON: every
:class:`~repro.net.message.Message` constructed anywhere — cluster
integration tests, churn runs, baselines — is checked against the
registry in :mod:`repro.net.protocol`, so payload drift fails loudly.
Unit tests that deliberately send ad-hoc kinds opt out locally with
``protocol.validation(False)``.

The suite also runs with message isolation ON (``copy`` level unless
``REPRO_ISOLATE_MESSAGES`` picks another): every delivery clones the
payload, so any handler that relied on cross-node aliasing fails here
rather than silently diverging from the paper's TCP-serialized
deployment.  ``REPRO_ISOLATE_MESSAGES=freeze`` hardens the whole suite
further — delivered payloads become read-only views and mutation raises.
Perf benchmarks opt out locally (copying would distort timings); tests
that need a specific level use ``message.isolation(level)``.

Schedule fuzz (``REPRO_SCHEDULE_FUZZ=shuffle|reverse`` plus
``REPRO_SCHEDULE_FUZZ_SEED=N``) perturbs same-timestamp event ordering
suite-wide: :mod:`repro.sim.events` reads the variables at import, and
the fixture below re-applies them so a test that leaked a
``set_schedule_fuzz`` call cannot silently change the suite's mode.
Tests that pin a specific tie-break order (golden transcript digests,
engine A/B equivalence) wrap simulator construction in
``events.schedule_fuzz("off")``.

Resource tracking (``REPRO_TRACK_RESOURCES=1``) arms the repro-leak
quiescence ledger suite-wide: every pending op and per-node table entry
registers at creation, and any simulator that reaches ``run_until_idle``
(or a cluster that is ``close()``d) with live entries raises a
named-owner diff.  As with schedule fuzz, the fixture re-applies the
environment value so a leaked ``set_tracking`` call cannot silently
change the suite's mode; tests that measure timing wrap construction in
``resources.tracking(False)``.
"""

import pytest

from repro.net import message, protocol
from repro.sim import events, resources


@pytest.fixture(autouse=True, scope="session")
def _schedule_fuzz():
    previous = events.set_schedule_fuzz(events._mode_from_env(), events._seed_from_env())
    yield
    events.set_schedule_fuzz(previous[0], previous[1])


@pytest.fixture(autouse=True, scope="session")
def _resource_tracking():
    previous = resources.set_tracking(resources._enabled_from_env())
    yield
    resources.set_tracking(previous)


@pytest.fixture(autouse=True, scope="session")
def _wire_validation():
    previous = protocol.validation_enabled()
    protocol.set_validation(True)
    yield
    protocol.set_validation(previous)


@pytest.fixture(autouse=True, scope="session")
def _message_isolation():
    level = message.isolation_level()
    if level == message.ISOLATE_OFF:
        level = message.ISOLATE_COPY
    previous = message.set_isolation(level)
    yield
    message.set_isolation(previous)
