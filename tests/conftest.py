"""Suite-wide fixtures.

The whole test suite runs with wire-protocol validation ON: every
:class:`~repro.net.message.Message` constructed anywhere — cluster
integration tests, churn runs, baselines — is checked against the
registry in :mod:`repro.net.protocol`, so payload drift fails loudly.
Unit tests that deliberately send ad-hoc kinds opt out locally with
``protocol.validation(False)``.
"""

import pytest

from repro.net import protocol


@pytest.fixture(autouse=True, scope="session")
def _wire_validation():
    previous = protocol.validation_enabled()
    protocol.set_validation(True)
    yield
    protocol.set_validation(previous)
