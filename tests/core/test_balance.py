"""Tests for the balanced-embedding convenience API."""

import random

import pytest

from repro.core.balance import (
    balanced_embedding,
    histogram_from_records,
    next_day_embedding,
    recommended_granularity,
)
from repro.core.cuts import BalancedCuts
from repro.core.records import Record
from repro.core.schema import AttributeSpec, IndexSchema

DAY = 86400.0


def schema():
    return IndexSchema(
        "b",
        attributes=[
            AttributeSpec("dest", 0.0, 2.0**32),
            AttributeSpec("timestamp", 0.0, 7 * DAY, is_time=True),
            AttributeSpec("octets", 0.0, 2e6),
        ],
    )


def test_recommended_granularity_roles():
    grains = recommended_granularity(schema())
    assert grains == (65536, 8192, 64)


def test_histogram_from_records():
    records = [Record([1e9, 100.0, 5e5]), Record([1e9, 100.0, 5e5])]
    hist = histogram_from_records(schema(), records)
    assert hist.total == 2.0
    assert hist.grains == (65536, 8192, 64)


def test_balanced_embedding_balances_skewed_sample():
    rng = random.Random(0)
    records = []
    for _ in range(3000):
        dest = (128 << 24) + int(min(rng.expovariate(4.0), 0.999) * (192 << 16))
        records.append(Record([float(dest), rng.uniform(0, DAY), rng.lognormvariate(11, 1.5)]))
    emb = balanced_embedding(schema(), records, code_depth=5)
    counts = {}
    for r in records:
        code = emb.point_code(r.values, depth=5).bits
        counts[code] = counts.get(code, 0) + 1
    assert len(counts) == 32
    assert max(counts.values()) < 3 * (3000 / 32)


def test_next_day_embedding_shifts_time():
    rng = random.Random(1)
    records = [
        Record([rng.uniform(0, 2**32), rng.uniform(0, DAY), rng.uniform(0, 2e6)])
        for _ in range(500)
    ]
    hist = histogram_from_records(schema(), records)
    tomorrow = next_day_embedding(schema(), hist)
    assert isinstance(tomorrow.strategy, BalancedCuts)
    # Tomorrow's time-dimension mass sits one day later: a day-1 point and
    # its day-0 twin land in mirrored regions.
    day1_point = [1e9, DAY + 1000.0, 5e5]
    day0_point = [1e9, 1000.0, 5e5]
    today = balanced_embedding(schema(), records)
    assert tomorrow.point_code(day1_point, depth=6) == today.point_code(day0_point, depth=6)


def test_next_day_embedding_without_time_dimension():
    s = IndexSchema("nt", attributes=[AttributeSpec("x", 0.0, 10.0)])
    hist = histogram_from_records(s, [Record([5.0])])
    emb = next_day_embedding(s, hist)
    assert isinstance(emb.strategy, BalancedCuts)
