"""End-to-end integration: build an overlay, create indices, insert, query."""

import random

import pytest

from repro.core.cluster import ClusterConfig, MindCluster
from repro.core.cuts import BalancedCuts
from repro.core.histogram import MultiDimHistogram
from repro.core.query import RangeQuery
from repro.core.records import Record
from repro.core.schema import AttributeSpec, IndexSchema
from repro.net.topology import ABILENE_SITES


def make_schema(name="idx2"):
    return IndexSchema(
        name,
        attributes=[
            AttributeSpec("dest", 0.0, 1024.0),
            AttributeSpec("timestamp", 0.0, 86400.0, is_time=True),
            AttributeSpec("octets", 0.0, 2e6),
        ],
        payload_names=("source", "node"),
    )


@pytest.fixture(scope="module")
def cluster():
    config = ClusterConfig(seed=42, track_ground_truth=True)
    c = MindCluster(ABILENE_SITES, config)
    c.build()
    c.create_index(make_schema())
    return c


def test_all_nodes_joined(cluster):
    assert len(cluster.live_nodes()) == 11


def test_index_propagated_everywhere(cluster):
    assert all(n.has_index("idx2") for n in cluster.nodes)


def test_insert_and_point_query(cluster):
    record = Record([100.0, 3600.0, 5e5], payload={"source": 7, "node": "ATLA"})
    metric = cluster.insert_now("idx2", record, origin="ATLA")
    assert metric.success
    assert metric.hops is not None
    assert metric.latency > 0

    query = RangeQuery(
        "idx2", {"dest": (99, 101), "timestamp": (3000, 4000), "octets": (4e5, 6e5)}
    )
    records = cluster.query_records(query, origin="NYCM")
    assert [r.key for r in records] == [record.key]
    assert records[0].payload["node"] == "ATLA"


def test_query_excludes_non_matching(cluster):
    r1 = Record([200.0, 7200.0, 1e5])
    r2 = Record([200.0, 7200.0, 9e5])
    cluster.insert_now("idx2", r1, origin="CHIN")
    cluster.insert_now("idx2", r2, origin="CHIN")
    query = RangeQuery("idx2", {"dest": (199, 201), "timestamp": (7000, 7500), "octets": (5e5, None)})
    keys = {r.key for r in cluster.query_records(query, origin="LOSA")}
    assert r2.key in keys
    assert r1.key not in keys


def test_bulk_insert_full_recall(cluster):
    rng = random.Random(8)
    inserted = []
    origins = [s.name for s in ABILENE_SITES]
    for i in range(120):
        record = Record([rng.uniform(0, 1024), rng.uniform(20000, 21000), rng.uniform(0, 2e6)])
        inserted.append(record)
        cluster.schedule_insert("idx2", record, rng.choice(origins), cluster.sim.now + i * 0.05)
    cluster.advance(60.0)

    query = RangeQuery("idx2", {"timestamp": (20000, 21000)})
    metric = cluster.query_now(query, origin="WASH")
    assert metric.complete
    expected = cluster.reference_answer(query)
    assert metric.record_keys == expected
    assert len(expected) == 120


def test_wildcard_big_query_visits_many_nodes(cluster):
    query = RangeQuery("idx2", {"timestamp": (0, 86400)})
    metric = cluster.query_now(query, origin="DNVR")
    assert metric.complete
    assert metric.cost >= 4  # a full-space query touches most of the overlay


def test_small_query_visits_few_nodes(cluster):
    query = RangeQuery(
        "idx2", {"dest": (100, 100.5), "timestamp": (3500, 3700), "octets": (4.9e5, 5.1e5)}
    )
    metric = cluster.query_now(query, origin="SNVA")
    assert metric.complete
    assert metric.cost <= 4


def test_query_latency_sub_second_regime(cluster):
    # Paper Figure 10: median query latency around half a second.
    lat = [m for m in cluster.metrics.queries if m.latency is not None]
    assert lat, "no queries recorded"
    assert min(m.latency for m in lat) < 2.0


def test_balanced_index_creation_and_query():
    config = ClusterConfig(seed=7, track_ground_truth=True)
    c = MindCluster(ABILENE_SITES[:6], config)
    c.build()
    hist = MultiDimHistogram(3, 16)
    rng = random.Random(9)
    for _ in range(1000):
        hist.add((min(0.999, rng.expovariate(6.0)), rng.random(), min(0.999, rng.expovariate(6.0))))
    c.create_index(make_schema("bal"), strategy=BalancedCuts(hist))
    rng2 = random.Random(10)
    for i in range(60):
        rec = Record(
            [min(1023, rng2.expovariate(6.0) * 1024), rng2.uniform(0, 500), min(2e6 - 1, rng2.expovariate(6.0) * 2e6)]
        )
        c.schedule_insert("bal", rec, c.nodes[i % 6].address, c.sim.now + i * 0.1)
    c.advance(30.0)
    query = RangeQuery("bal", {"timestamp": (0, 500)})
    metric = c.query_now(query, origin=c.nodes[0].address)
    assert metric.complete
    assert metric.record_keys == c.reference_answer(query)


def test_drop_index():
    config = ClusterConfig(seed=11)
    c = MindCluster(ABILENE_SITES[:4], config)
    c.build()
    c.create_index(make_schema("tmp"))
    c.nodes[2].drop_index("tmp")
    ok = c.sim.run_until_predicate(
        lambda: not any(n.has_index("tmp") for n in c.nodes), timeout=60.0
    )
    assert ok
