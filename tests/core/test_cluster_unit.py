"""Unit-ish tests for the cluster driver's plumbing."""

import pytest

from repro.core.cluster import ClusterConfig, MindCluster
from repro.core.query import RangeQuery
from repro.core.records import Record
from repro.core.schema import AttributeSpec, IndexSchema
from repro.net.topology import ABILENE_SITES


def make_schema():
    return IndexSchema(
        "u",
        attributes=[
            AttributeSpec("x", 0.0, 100.0),
            AttributeSpec("timestamp", 0.0, 86400.0, is_time=True),
        ],
    )


def test_int_sites_build_local_cluster():
    cluster = MindCluster(6, ClusterConfig(seed=121))
    cluster.build()
    assert len(cluster.live_nodes()) == 6
    assert cluster.sites == {}
    assert sorted(cluster.by_address) == [f"node00{i}" for i in range(6)]


def test_node_codes_partition_space():
    cluster = MindCluster(ABILENE_SITES[:7], ClusterConfig(seed=122))
    cluster.build()
    codes = cluster.node_codes()
    assert len(codes) == 7
    assert abs(sum(2.0 ** -len(bits) for bits in codes.values()) - 1.0) < 1e-9


def test_reference_answer_requires_tracking():
    cluster = MindCluster(4, ClusterConfig(seed=123))
    cluster.build()
    cluster.create_index(make_schema())
    with pytest.raises(RuntimeError):
        cluster.reference_answer(RangeQuery("u", {}))


def test_reference_answer_unknown_index():
    cluster = MindCluster(4, ClusterConfig(seed=124, track_ground_truth=True))
    cluster.build()
    with pytest.raises(KeyError):
        cluster.reference_answer(RangeQuery("ghost", {}))


def test_schedule_insert_skips_missing_index():
    # An insert scheduled at a node lacking the index is dropped silently
    # (the workload replay may race index creation); it must not crash.
    cluster = MindCluster(4, ClusterConfig(seed=125))
    cluster.build()
    cluster.schedule_insert("nope", Record([1.0, 1.0]), "node000", cluster.sim.now + 1.0)
    cluster.advance(5.0)
    assert cluster.metrics.inserts == []


def test_storage_distribution_counts_primaries():
    cluster = MindCluster(5, ClusterConfig(seed=126))
    cluster.build()
    cluster.create_index(make_schema())
    for i in range(20):
        cluster.insert_now("u", Record([i * 5.0, i * 1000.0]), origin="node000")
    dist = cluster.storage_distribution("u")
    assert sum(dist.values()) == 20
    assert set(dist) == set(cluster.by_address)


def test_slow_nodes_assigned_by_fraction():
    config = ClusterConfig(seed=127, slow_node_fraction=1.0, slow_factor=9.0)
    cluster = MindCluster(4, config)
    assert all(n.speed_factor == 9.0 for n in cluster.nodes)
    config2 = ClusterConfig(seed=127, slow_node_fraction=0.0)
    cluster2 = MindCluster(4, config2)
    assert all(n.speed_factor == 1.0 for n in cluster2.nodes)


def test_advance_moves_clock():
    cluster = MindCluster(3, ClusterConfig(seed=128))
    cluster.build()
    t0 = cluster.sim.now
    cluster.advance(12.5)
    assert cluster.sim.now == pytest.approx(t0 + 12.5)


def test_insert_now_timeout_raises():
    cluster = MindCluster(4, ClusterConfig(seed=129))
    cluster.build()
    cluster.create_index(make_schema())
    # Crash every other node so the ack can never return.
    for node in cluster.nodes[1:]:
        cluster.network.set_node_up(node.address, False)
        node.crash()
    with pytest.raises(TimeoutError):
        # Target a region owned by a dead node (origin still up).
        cluster.insert_now("u", Record([99.0, 86000.0]), origin="node000", timeout_s=5.0)
