"""Crash-time op-state teardown: the true leaks repro-leak flagged.

Regressions for the fail-stop ``MindNode.crash`` override: before it,
originator-side op state machines survived ``crash()`` — insert retry
timers churned against the dead node, completion callbacks fired minutes
late (or never), and trigger registrations stranded forever.  These
tests pin the contract: crashing resolves every in-flight op *failed*,
immediately, and leaves the per-op tables (and the resource ledger)
empty.
"""

from repro.core.cluster import ClusterConfig, MindCluster
from repro.core.query import RangeQuery
from repro.core.records import Record
from repro.core.schema import AttributeSpec, IndexSchema
from repro.overlay.node import OverlayConfig
from repro.sim import resources


def make_schema():
    return IndexSchema(
        "f",
        attributes=[
            AttributeSpec("x", 0.0, 1000.0),
            AttributeSpec("timestamp", 0.0, 86400.0, is_time=True),
        ],
    )


def build(seed=7, nodes=12):
    overlay = OverlayConfig(liveness_enabled=False)
    cluster = MindCluster(nodes, ClusterConfig(seed=seed, overlay=overlay, slow_node_fraction=0.0))
    cluster.build()
    cluster.create_index(make_schema())
    return cluster


def test_crash_fails_inflight_ops_immediately():
    cluster = build()
    origin = cluster.nodes[0]
    inserts = []
    queries = []
    installs = []
    origin.insert_record("f", Record([1.0, 2.0]), callback=inserts.append)
    origin.query_index(RangeQuery("f", {"timestamp": (0, 86400)}), callback=queries.append)
    origin.create_trigger(
        RangeQuery("f", {"x": (0, 1000)}), lambda record: None, installed=installs.append
    )
    assert origin._insert_ops and origin._query_ops and origin._trigger_regs

    origin.crash()

    # Every op resolved failed at the crash instant — no sim time needed.
    assert origin._insert_ops == {}
    assert origin._query_ops == {}
    assert origin._trigger_regs == {}
    assert len(inserts) == 1 and inserts[0].success is False
    assert len(queries) == 1 and queries[0].complete is False
    assert installs == [False]


def test_crash_releases_ledger_entries():
    with resources.tracking(True):
        cluster = build()
    origin = cluster.nodes[0]
    ledger = cluster.sim.resources
    assert ledger is not None
    origin.insert_record("f", Record([1.0, 2.0]))
    origin.query_index(RangeQuery("f", {"timestamp": (0, 86400)}))
    before = [row for row in ledger.snapshot() if row[0].startswith("op:")]
    assert before, "ops register themselves while in flight"

    origin.crash()

    after = [row for row in ledger.snapshot() if row[0].startswith("op:")]
    assert after == [], after
    # Quiescence still holds for the rest of the cluster.
    cluster.advance(120.0)
    cluster.close()


def test_trigger_registration_watchdog_resolves_lost_ack():
    # A registration whose final ack is lost used to strand forever: no
    # attempt timer covers trigger installs.  Simulate the lost ack by
    # adding a phantom pending region that nobody will ever answer; the
    # watchdog must resolve the registration installed(False) within the
    # query timeout and clear the table.
    cluster = build()
    origin = cluster.nodes[0]
    installs = []
    origin.create_trigger(
        RangeQuery("f", {"x": (0, 1000)}), lambda record: None, installed=installs.append
    )
    (reg_id,) = origin._trigger_regs
    origin._trigger_regs[reg_id]["pending"].add("PHANTOM")
    cluster.advance(origin.mind_config.query_timeout_s + 10.0)
    assert installs == [False]
    assert origin._trigger_regs == {}


def test_flood_dedupe_set_is_bounded():
    # Regression: _seen_floods grew one tuple per flood forever — the
    # leak-unbounded-growth finding that motivated the eviction cap.
    cluster = build(nodes=4)
    origin = cluster.nodes[0]
    for i in range(5000):
        origin._flood("index_drop", {"index": "nope"}, ("bound-test", i))
    assert len(origin._seen_floods) <= 4096
    # Recent keys are still deduplicated after evictions.
    assert ("bound-test", 4999) in origin._seen_floods
