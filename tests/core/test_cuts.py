"""Unit tests for cut strategies and their wire forms."""

import pytest

from repro.core.cuts import BalancedCuts, EvenCuts, strategy_from_wire
from repro.core.histogram import MultiDimHistogram


def test_even_cuts_midpoint():
    cuts = EvenCuts()
    assert cuts.split(((0.0, 1.0), (0.0, 1.0)), 0) == 0.5
    assert cuts.split(((0.25, 0.75), (0.0, 1.0)), 0) == 0.5
    assert cuts.split(((0.0, 1.0), (0.5, 1.0)), 1) == 0.75


def test_balanced_cuts_follow_mass():
    hist = MultiDimHistogram(1, 16)
    for _ in range(90):
        hist.add((0.05,))
    for _ in range(10):
        hist.add((0.95,))
    cuts = BalancedCuts(hist)
    split = cuts.split(((0.0, 1.0),), 0)
    assert split < 0.2  # the median sits in the heavy cluster


def test_balanced_cuts_empty_histogram_falls_back():
    cuts = BalancedCuts(MultiDimHistogram(2, 4))
    assert cuts.split(((0.0, 1.0), (0.0, 1.0)), 1) == 0.5


def test_wire_round_trip_even():
    clone = strategy_from_wire(EvenCuts().to_wire())
    assert isinstance(clone, EvenCuts)


def test_wire_round_trip_balanced():
    hist = MultiDimHistogram(2, 8)
    hist.add((0.3, 0.7), weight=5.0)
    clone = strategy_from_wire(BalancedCuts(hist).to_wire())
    assert isinstance(clone, BalancedCuts)
    assert clone.histogram.cell_counts() == hist.cell_counts()
    rect = ((0.0, 1.0), (0.0, 1.0))
    assert clone.split(rect, 0) == BalancedCuts(hist).split(rect, 0)


def test_unknown_strategy_kind():
    with pytest.raises(ValueError):
        strategy_from_wire({"kind": "mystery"})


def test_histogram_shifted():
    hist = MultiDimHistogram(2, 8)
    hist.add((0.1, 0.1))
    hist.add((0.2, 0.9))
    moved = hist.shifted(0, 0.25)  # +2 bins along dim 0
    cells = moved.cell_counts()
    assert cells == {(2, 0): 1.0, (3, 7): 1.0}
    assert hist.cell_counts() != cells  # original untouched


def test_histogram_shifted_clamps_at_edge():
    hist = MultiDimHistogram(1, 4)
    hist.add((0.9,))
    moved = hist.shifted(0, 0.9)
    assert moved.cell_counts() == {(3,): 1.0}


def test_histogram_shifted_bad_dim():
    with pytest.raises(IndexError):
        MultiDimHistogram(1, 4).shifted(3, 0.1)


def test_per_dimension_granularity():
    hist = MultiDimHistogram(2, (4, 16))
    hist.add((0.3, 0.3))
    assert hist.grains == (4, 16)
    assert hist.cell_counts() == {(1, 4): 1.0}
    with pytest.raises(ValueError):
        MultiDimHistogram(2, (4,))
    with pytest.raises(ValueError):
        MultiDimHistogram(2, (4, 0))
