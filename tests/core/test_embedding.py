"""Unit and property tests for the data-space embedding."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cuts import BalancedCuts, EvenCuts
from repro.core.embedding import Embedding
from repro.core.histogram import MultiDimHistogram
from repro.core.query import rect_contains_point
from repro.core.schema import AttributeSpec, IndexSchema
from repro.overlay.code import Code


def schema2d():
    return IndexSchema(
        "e", attributes=[AttributeSpec("x", 0.0, 100.0), AttributeSpec("y", 0.0, 10.0)]
    )


def test_even_point_code_first_bits():
    emb = Embedding(schema2d(), EvenCuts(), code_depth=4)
    # x=25 -> 0.25 (left half, bit 0); y=7.5 -> 0.75 (top half, bit 1).
    code = emb.point_code([25.0, 7.5])
    assert code.bits[:2] == "01"
    assert len(code) == 4


def test_point_code_respects_depth():
    emb = Embedding(schema2d(), EvenCuts(), code_depth=10)
    assert len(emb.point_code([1, 1], depth=3)) == 3


def test_region_rect_even():
    emb = Embedding(schema2d(), EvenCuts())
    rect = emb.region_rect(Code("01"))
    assert rect == ((0.0, 0.5), (0.5, 1.0))


def test_region_rect_root_is_full_space():
    emb = Embedding(schema2d(), EvenCuts())
    assert emb.region_rect(Code("")) == ((0.0, 1.0), (0.0, 1.0))


def test_point_lands_in_own_region():
    emb = Embedding(schema2d(), EvenCuts(), code_depth=8)
    rng = random.Random(4)
    for _ in range(200):
        raw = [rng.uniform(0, 100), rng.uniform(0, 10)]
        code = emb.point_code(raw)
        rect = emb.region_rect(code)
        assert rect_contains_point(rect, emb.schema.normalize(raw))


def test_query_prefix_contains_query():
    emb = Embedding(schema2d(), EvenCuts(), code_depth=12)
    qrect = ((0.1, 0.2), (0.6, 0.7))
    prefix = emb.query_prefix(qrect)
    region = emb.region_rect(prefix)
    for (qlo, qhi), (rlo, rhi) in zip(qrect, region):
        assert rlo <= qlo and qhi <= rhi
    # Descending one more step must fail to contain the query (maximality):
    # the prefix is where the query first straddles a cut.
    assert len(prefix) > 0


def test_query_prefix_straddling_root_is_empty():
    emb = Embedding(schema2d(), EvenCuts())
    assert emb.query_prefix(((0.4, 0.6), (0.0, 1.0))) == Code("")


def test_balanced_cuts_equalize_storage():
    # Skewed data: balanced cuts should put ~equal mass in each leaf.
    schema = schema2d()
    hist = MultiDimHistogram(2, 64)
    rng = random.Random(5)
    points = []
    for _ in range(4000):
        p = (min(0.999, rng.expovariate(8.0)), min(0.999, rng.betavariate(2, 8)))
        points.append(p)
        hist.add(p)
    emb = Embedding(schema, BalancedCuts(hist), code_depth=4)

    counts = {}
    for p in points:
        raw = [p[0] * 100.0, p[1] * 10.0]
        code = emb.point_code(raw, depth=4).bits
        counts[code] = counts.get(code, 0) + 1
    assert len(counts) == 16
    imbalance = max(counts.values()) / min(counts.values())
    assert imbalance < 2.0, f"balanced cuts left imbalance {imbalance}"


def test_even_cuts_skewed_data_imbalanced():
    # The contrast case for Figure 13: even cuts on skewed data.
    schema = schema2d()
    rng = random.Random(6)
    emb = Embedding(schema, EvenCuts(), code_depth=4)
    counts = {}
    for _ in range(4000):
        raw = [min(99.9, rng.expovariate(8.0) * 100.0), rng.uniform(0, 10)]
        code = emb.point_code(raw, depth=4).bits
        counts[code] = counts.get(code, 0) + 1
    assert max(counts.values()) / max(1, min(counts.values())) > 4.0


def test_wire_round_trip_preserves_codes():
    hist = MultiDimHistogram(2, 16)
    rng = random.Random(7)
    for _ in range(500):
        hist.add((rng.random(), rng.random()))
    emb = Embedding(schema2d(), BalancedCuts(hist), code_depth=8)
    clone = Embedding.from_wire(emb.to_wire())
    for _ in range(100):
        raw = [rng.uniform(0, 100), rng.uniform(0, 10)]
        assert clone.point_code(raw) == emb.point_code(raw)


def test_region_raw_ranges():
    emb = Embedding(schema2d(), EvenCuts())
    ranges = emb.region_raw_ranges(Code("10"))
    assert ranges[0] == (50.0, 100.0)
    assert ranges[1] == (0.0, 5.0)


@settings(max_examples=40)
@given(
    st.floats(min_value=0, max_value=99.999),
    st.floats(min_value=0, max_value=9.999),
)
def test_sibling_regions_partition_parent(x, y):
    emb = Embedding(schema2d(), EvenCuts(), code_depth=6)
    code = emb.point_code([x, y], depth=5)
    parent = code.shorten()
    sib = code.sibling()
    point = emb.schema.normalize([x, y])
    assert rect_contains_point(emb.region_rect(parent), point)
    assert not rect_contains_point(emb.region_rect(sib), point)
