"""Failure-path behaviour: timeouts, dead regions, incomplete queries."""

import pytest

from repro.core.cluster import ClusterConfig, MindCluster
from repro.core.query import RangeQuery
from repro.core.records import Record
from repro.core.schema import AttributeSpec, IndexSchema
from repro.overlay.node import OverlayConfig


def make_schema():
    return IndexSchema(
        "f",
        attributes=[
            AttributeSpec("x", 0.0, 1000.0),
            AttributeSpec("timestamp", 0.0, 86400.0, is_time=True),
        ],
    )


def build(liveness=False, seed=95, nodes=12):
    overlay = OverlayConfig(
        liveness_enabled=liveness, hb_interval_s=2.0, hb_timeout_s=7.0, adoption_delay_s=2.0
    )
    cluster = MindCluster(nodes, ClusterConfig(seed=seed, overlay=overlay, slow_node_fraction=0.0))
    cluster.build()
    cluster.create_index(make_schema())
    return cluster


def seed_records(cluster, count=100):
    rng = cluster.sim.rng("t.fail")
    base = cluster.sim.now
    records = []
    for i in range(count):
        record = Record([rng.uniform(0, 1000), rng.uniform(0, 86400)])
        records.append(record)
        cluster.schedule_insert("f", record, cluster.nodes[i % len(cluster.nodes)].address, base + i * 0.02)
    cluster.advance(15.0)
    return records


def test_query_without_liveness_times_out_incomplete():
    # With liveness off nobody takes over a dead region: the query's
    # sub-query can never be answered and the op must time out as
    # incomplete rather than hang or claim success.
    cluster = build(liveness=False)
    seed_records(cluster)
    victim = cluster.nodes[4]
    cluster.network.set_node_up(victim.address, False)
    victim.crash()
    cluster.advance(5.0)
    origin = cluster.nodes[0].address
    metric = cluster.query_now(
        RangeQuery("f", {"timestamp": (0, 86400)}), origin=origin, timeout_s=200.0
    )
    assert not metric.complete
    # The failure is reported *before* the op timeout: ring recovery
    # exhausts and notifies the originator explicitly.
    assert metric.latency < cluster.config.mind.query_timeout_s


def test_query_with_liveness_completes_after_takeover():
    cluster = build(liveness=True, seed=96)
    seed_records(cluster)
    victim = cluster.nodes[4]
    cluster.network.set_node_up(victim.address, False)
    victim.crash()
    cluster.advance(60.0)  # detection + takeover
    origin = cluster.nodes[0].address
    metric = cluster.query_now(
        RangeQuery("f", {"timestamp": (0, 86400)}), origin=origin, timeout_s=200.0
    )
    assert metric.complete  # records may be lost (no replication), but the
    # region is re-homed and every sub-query answers.


def test_insert_toward_dead_region_fails_cleanly():
    cluster = build(liveness=False, seed=97)
    victim = cluster.nodes[3]
    cluster.network.set_node_up(victim.address, False)
    victim.crash()
    cluster.advance(5.0)
    # Spray inserts; those owned by the dead node's region must fail (or
    # time out) rather than silently disappear as successes.
    rng = cluster.sim.rng("t.fail2")
    base = cluster.sim.now
    for i in range(80):
        record = Record([rng.uniform(0, 1000), rng.uniform(0, 86400)])
        cluster.schedule_insert("f", record, cluster.nodes[0].address, base + i * 0.05)
    cluster.advance(150.0)
    inserts = cluster.metrics.inserts
    assert len(inserts) == 80
    failed = [m for m in inserts if not m.success]
    succeeded = [m for m in inserts if m.success]
    assert failed, "some inserts must fail into the dead region"
    assert succeeded, "inserts to live regions keep working"
    # The system never reports success without an ack.
    for m in succeeded:
        assert m.hops is not None


def test_ring_probe_dedup_bounds_messages():
    # A dead-end route triggers ring recovery; probe suppression keeps the
    # per-op message count linear in the overlay size, not exponential.
    cluster = build(liveness=False, seed=98, nodes=16)
    victim = cluster.nodes[5]
    cluster.network.set_node_up(victim.address, False)
    victim.crash()
    cluster.advance(2.0)
    before = cluster.network.messages_sent
    origin = cluster.nodes[0]
    origin.insert_record("f", Record([1.0, 1.0]))
    cluster.advance(60.0)
    sent = cluster.network.messages_sent - before
    # Even with full ring expansion, the message count stays modest.
    assert sent < 16 * 40, f"ring recovery sent {sent} messages"
