"""Unit and property tests for sparse histograms and the mismatch metric."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.histogram import MultiDimHistogram, mismatch

unit = st.floats(min_value=0.0, max_value=0.999999)


def test_add_and_total():
    h = MultiDimHistogram(2, 4)
    h.add((0.1, 0.9))
    h.add((0.1, 0.9))
    h.add((0.6, 0.2), weight=3.0)
    assert h.total == 5.0
    assert h.occupied_cells == 2


def test_dimension_checks():
    h = MultiDimHistogram(2, 4)
    with pytest.raises(ValueError):
        h.add((0.5,))
    with pytest.raises(ValueError):
        MultiDimHistogram(0, 4)
    with pytest.raises(ValueError):
        MultiDimHistogram(2, 0)


def test_out_of_range_points_clamp_to_edge_bins():
    h = MultiDimHistogram(1, 4)
    h.add((1.5,))
    h.add((-0.5,))
    cells = h.cell_counts()
    assert cells == {(3,): 1.0, (0,): 1.0}


def test_count_in_rect_full_space():
    h = MultiDimHistogram(2, 8)
    rng = random.Random(1)
    for _ in range(500):
        h.add((rng.random(), rng.random()))
    assert h.count_in_rect(((0.0, 1.0), (0.0, 1.0))) == pytest.approx(500.0)


def test_count_in_rect_partial_bins():
    h = MultiDimHistogram(1, 2)
    h.add((0.25,))  # bin [0, 0.5)
    # Half the bin is covered; uniform-within-bin assumption gives 0.5.
    assert h.count_in_rect(((0.0, 0.25),)) == pytest.approx(0.5)


def test_split_point_balances_mass():
    h = MultiDimHistogram(1, 64)
    rng = random.Random(2)
    # Heavily skewed mass near zero.
    for _ in range(2000):
        h.add((min(0.999, rng.expovariate(10.0)),))
    split = h.split_point(((0.0, 1.0),), 0)
    left = h.count_in_rect(((0.0, split),))
    right = h.count_in_rect(((split, 1.0),))
    assert left == pytest.approx(right, rel=0.1)
    assert split < 0.3  # the median of an Exp(10) sample is ~0.07


def test_split_point_empty_rect_falls_back_to_midpoint():
    h = MultiDimHistogram(2, 4)
    assert h.split_point(((0.2, 0.6), (0.0, 1.0)), 0) == pytest.approx(0.4)


def test_split_point_stays_inside_rect():
    h = MultiDimHistogram(1, 4)
    for _ in range(100):
        h.add((0.01,))
    split = h.split_point(((0.0, 1.0),), 0)
    assert 0.0 < split < 1.0


def test_merge():
    a = MultiDimHistogram(2, 4)
    b = MultiDimHistogram(2, 4)
    a.add((0.1, 0.1))
    b.add((0.1, 0.1))
    b.add((0.9, 0.9))
    a.merge(b)
    assert a.total == 3.0
    with pytest.raises(ValueError):
        a.merge(MultiDimHistogram(2, 8))


def test_mismatch_identical_is_zero():
    a = MultiDimHistogram(2, 4)
    for x in (0.1, 0.5, 0.9):
        a.add((x, x))
    b = MultiDimHistogram(2, 4)
    for x in (0.1, 0.5, 0.9):
        b.add((x, x))
    assert mismatch(a, b) == 0.0


def test_mismatch_disjoint_is_one():
    a = MultiDimHistogram(1, 4)
    b = MultiDimHistogram(1, 4)
    for _ in range(10):
        a.add((0.1,))
        b.add((0.9,))
    assert mismatch(a, b) == pytest.approx(1.0)
    assert mismatch(a, b, normalized=False) == pytest.approx(10.0)


def test_wire_round_trip():
    h = MultiDimHistogram(3, 8)
    rng = random.Random(3)
    for _ in range(100):
        h.add((rng.random(), rng.random(), rng.random()))
    clone = MultiDimHistogram.from_wire(h.to_wire())
    assert clone.cell_counts() == h.cell_counts()
    assert mismatch(h, clone) == 0.0


@settings(max_examples=30)
@given(st.lists(st.tuples(unit, unit), min_size=1, max_size=60))
def test_count_in_rect_never_exceeds_total(points):
    h = MultiDimHistogram(2, 8)
    for p in points:
        h.add(p)
    rect = ((0.1, 0.7), (0.3, 0.9))
    assert -1e-9 <= h.count_in_rect(rect) <= h.total + 1e-9


@settings(max_examples=30)
@given(st.lists(unit, min_size=5, max_size=80))
def test_split_halves_sum_to_total(xs):
    h = MultiDimHistogram(1, 16)
    for x in xs:
        h.add((x,))
    split = h.split_point(((0.0, 1.0),), 0)
    left = h.count_in_rect(((0.0, split),))
    right = h.count_in_rect(((split, 1.0),))
    assert left + right == pytest.approx(h.total, rel=1e-6)


@settings(max_examples=30)
@given(
    st.lists(st.tuples(unit, unit), min_size=1, max_size=40),
    st.lists(st.tuples(unit, unit), min_size=1, max_size=40),
)
def test_mismatch_is_symmetric_and_bounded(pa, pb):
    a = MultiDimHistogram(2, 4)
    b = MultiDimHistogram(2, 4)
    for p in pa:
        a.add(p)
    for p in pb:
        b.add(p)
    m = mismatch(a, b)
    assert m == pytest.approx(mismatch(b, a))
    assert 0.0 <= m <= max(a.total, b.total) / ((a.total + b.total) / 2.0) + 1e-9
