"""Unit tests for metric records and collectors."""

import pytest

from repro.core.metrics import (
    InsertMetric,
    LatencySummary,
    MetricsCollector,
    QueryMetric,
    percentile,
)


def test_percentile_nearest_rank():
    samples = [1.0, 2.0, 3.0, 4.0, 5.0]
    assert percentile(samples, 0) == 1.0
    assert percentile(samples, 50) == 3.0
    assert percentile(samples, 100) == 5.0
    assert percentile([7.0], 99) == 7.0


def test_percentile_unsorted_input():
    assert percentile([5.0, 1.0, 3.0], 50) == 3.0


def test_percentile_empty_rejected():
    with pytest.raises(ValueError):
        percentile([], 50)


def test_latency_summary():
    s = LatencySummary.of([1.0, 2.0, 3.0, 10.0])
    assert s.count == 4
    assert s.mean == 4.0
    assert s.median in (2.0, 3.0)
    assert s.maximum == 10.0


def test_insert_metric_latency():
    m = InsertMetric(op_id="x", index="i", origin="a", start=5.0)
    assert m.latency is None
    m.end = 7.5
    assert m.latency == 2.5


def test_query_metric_cost_counts_unique_nodes():
    m = QueryMetric(op_id="x", index="i", origin="a", start=0.0)
    m.nodes_visited.update({"b", "c", "b"})
    assert m.cost == 2


def test_collector_filters():
    c = MetricsCollector()
    ok = InsertMetric("1", "i", "a", 0.0, end=1.0, success=True, hops=2)
    bad = InsertMetric("2", "i", "a", 0.0, end=3.0, success=False)
    c.inserts.extend([ok, bad])
    assert c.insert_latencies() == [1.0]
    assert c.insert_latencies(successful_only=False) == [1.0, 3.0]
    assert c.insert_hops() == [2]


def test_collector_query_success_fraction():
    c = MetricsCollector()
    q1 = QueryMetric("q1", "i", "a", 0.0, end=1.0, complete=True)
    q1.record_keys = {1, 2, 3}
    q2 = QueryMetric("q2", "i", "a", 0.0, end=1.0, complete=True)
    q2.record_keys = {1}
    c.queries.extend([q1, q2])
    expected = {"q1": {1, 2}, "q2": {1, 2}}
    assert c.query_success_fraction(expected) == 0.5


def test_collector_success_fraction_requires_queries():
    c = MetricsCollector()
    with pytest.raises(ValueError):
        c.query_success_fraction({})
    c.queries.append(QueryMetric("q", "i", "a", 0.0))
    with pytest.raises(ValueError):
        c.query_success_fraction({"other": set()})


def test_collector_summaries():
    c = MetricsCollector()
    for i in range(10):
        c.inserts.append(InsertMetric(str(i), "i", "a", 0.0, end=float(i + 1), success=True))
    s = c.insert_summary()
    assert s.count == 10
    assert s.maximum == 10.0
