"""Protocol-level tests for MindNode: floods, versions, sibling pointers,
on-line histogram collection and joiner state transfer."""

import pytest

from repro.core.cluster import ClusterConfig, MindCluster
from repro.core.cuts import EvenCuts
from repro.core.embedding import Embedding
from repro.core.query import RangeQuery
from repro.core.records import Record
from repro.core.schema import AttributeSpec, IndexSchema
from repro.net.topology import ABILENE_SITES


def make_schema(name="p"):
    return IndexSchema(
        name,
        attributes=[
            AttributeSpec("x", 0.0, 100.0),
            AttributeSpec("timestamp", 0.0, 86400.0, is_time=True),
        ],
    )


def build(count=8, seed=70, **cfg):
    cluster = MindCluster(ABILENE_SITES[:count], ClusterConfig(seed=seed, **cfg))
    cluster.build()
    return cluster


def test_create_index_floods_to_all():
    cluster = build()
    cluster.create_index(make_schema())
    assert all(n.has_index("p") for n in cluster.nodes)


def test_version_install_floods_to_all():
    cluster = build(seed=71)
    schema = make_schema()
    cluster.create_index(schema)
    cluster.install_version("p", 86400.0, Embedding(schema, EvenCuts()))
    assert all(n.has_version_at("p", 86400.0) for n in cluster.nodes)


def test_duplicate_index_rejected_locally():
    cluster = build(seed=72)
    cluster.create_index(make_schema())
    with pytest.raises(ValueError):
        cluster.nodes[0].create_index(make_schema())


def test_insert_into_unknown_index_rejected():
    cluster = build(seed=73)
    with pytest.raises(KeyError):
        cluster.nodes[0].insert_record("ghost", Record([1.0, 1.0]))


def test_query_unknown_index_rejected():
    cluster = build(seed=74)
    with pytest.raises(KeyError):
        cluster.nodes[0].query_index(RangeQuery("ghost", {}))


def test_joiner_receives_schemas():
    # A node joining after index creation learns the schema from its host,
    # not from the (already finished) flood.
    cluster = build(count=6, seed=75)
    cluster.create_index(make_schema())
    late = cluster.by_address[ABILENE_SITES[5].name]
    # Crash and rejoin: state must come from the split host.
    cluster.network.set_node_up(late.address, False)
    late.crash()
    cluster.advance(5.0)
    cluster.network.set_node_up(late.address, True)
    late.restore()
    ok = cluster.sim.run_until_predicate(late.in_overlay, timeout=120.0)
    assert ok
    assert late.has_index("p")


def test_sibling_pointer_serves_presplit_data():
    # Insert data, then have a fresh node join: queries for the joiner's
    # region must still return the host's pre-split records.
    config = ClusterConfig(seed=76, track_ground_truth=True)
    sites = ABILENE_SITES[:7]
    cluster = MindCluster(sites, config)
    # Build only the first six; the seventh joins later.
    cluster.nodes[0].activate_as_root()
    for node in cluster.nodes[1:6]:
        node.start_join(cluster._bootstrap_for(node.address))
        assert cluster.sim.run_until_predicate(node.in_overlay, timeout=120.0)
    cluster.create_index(make_schema())

    rng = cluster.sim.rng("t.sibling")
    records = [Record([rng.uniform(0, 100), rng.uniform(0, 86400)]) for _ in range(120)]
    base = cluster.sim.now
    for i, record in enumerate(records):
        cluster.schedule_insert("p", record, cluster.nodes[i % 6].address, base + i * 0.02)
    cluster.advance(20.0)

    late = cluster.nodes[6]
    late.start_join(cluster._bootstrap_for(late.address))
    assert cluster.sim.run_until_predicate(late.in_overlay, timeout=120.0)
    assert late.sibling_pointer is not None

    query = RangeQuery("p", {"timestamp": (0, 86400)})
    metric = cluster.query_now(query, origin=late.address)
    assert metric.complete
    assert metric.record_keys == cluster.reference_answer(query)


def test_online_histogram_collection():
    cluster = build(count=8, seed=77)
    cluster.create_index(make_schema())
    rng = cluster.sim.rng("t.histo")
    base = cluster.sim.now
    for i in range(100):
        cluster.schedule_insert(
            "p",
            Record([rng.uniform(0, 100), rng.uniform(0, 86400)]),
            cluster.nodes[i % 8].address,
            base + i * 0.02,
        )
    cluster.advance(15.0)

    merged = []
    cluster.nodes[0].collect_histogram(
        "p", granularity=8, time_range=(0.0, 86400.0),
        expected_replies=8, callback=merged.append,
    )
    ok = cluster.sim.run_until_predicate(lambda: bool(merged), timeout=120.0)
    assert ok
    assert merged[0].total == 100.0


def test_histogram_collection_timeout_partial():
    cluster = build(count=6, seed=78)
    cluster.create_index(make_schema())
    merged = []
    # Expect more replies than nodes exist: the timeout fires with the
    # partial aggregate instead of hanging.
    cluster.nodes[0].collect_histogram(
        "p", granularity=4, time_range=(0.0, 86400.0),
        expected_replies=99, callback=merged.append, timeout_s=30.0,
    )
    cluster.advance(40.0)
    assert merged, "timeout should deliver the partial histogram"


def test_drop_index_clears_state_everywhere():
    cluster = build(seed=79)
    cluster.create_index(make_schema())
    cluster.insert_now("p", Record([5.0, 10.0]), origin=cluster.nodes[0].address)
    cluster.nodes[3].drop_index("p")
    ok = cluster.sim.run_until_predicate(
        lambda: not any(n.has_index("p") for n in cluster.nodes), timeout=60.0
    )
    assert ok


def test_draw_block_cluster_inserts_complete():
    # The scale tier opts into block-drawn service and latency jitters;
    # with both knobs on, a small cluster must still route and complete
    # every insert (same model, different deterministic stream).
    from repro.overlay.node import OverlayConfig

    cluster = build(
        seed=80,
        overlay=OverlayConfig(service_draw_block=16),
        latency_draw_block=16,
    )
    cluster.create_index(make_schema())
    done = []
    rng = __import__("random").Random(3)
    for i, node in enumerate(cluster.nodes * 8):
        node.insert_record(
            "p",
            Record([rng.uniform(0, 100), rng.uniform(0, 86400.0)], key=i),
            callback=done.append,
        )
    ok = cluster.sim.run_until_predicate(lambda: len(done) == 64, timeout=300.0)
    assert ok
    assert all(m.success for m in done)
