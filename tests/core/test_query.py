"""Unit tests for range queries and rectangle algebra."""

import pytest

from repro.core.query import (
    RangeQuery,
    full_rect,
    rect_contains_point,
    rect_intersection,
)
from repro.core.records import Record
from repro.core.schema import AttributeSpec, IndexSchema


@pytest.fixture
def schema():
    return IndexSchema(
        "idx2",
        attributes=[
            AttributeSpec("dest", 0.0, 256.0),
            AttributeSpec("timestamp", 0.0, 86400.0, is_time=True),
            AttributeSpec("octets", 0.0, 2e6),
        ],
    )


def test_interval_lookup(schema):
    q = RangeQuery("idx2", {"dest": (10, 20), "octets": (1000, None)})
    assert q.interval("dest") == (10, 20)
    assert q.interval("octets") == (1000, None)
    assert q.interval("timestamp") == (None, None)


def test_unknown_attribute_rejected(schema):
    q = RangeQuery("idx2", {"bogus": (0, 1)})
    with pytest.raises(KeyError):
        q.intervals_for(schema)


def test_matches_half_open(schema):
    q = RangeQuery("idx2", {"dest": (10, 20)})
    assert q.matches(schema, Record([10.0, 0.0, 0.0]))
    assert q.matches(schema, Record([19.999, 0.0, 0.0]))
    assert not q.matches(schema, Record([20.0, 0.0, 0.0]))
    assert not q.matches(schema, Record([9.999, 0.0, 0.0]))


def test_matches_wildcard_dimension(schema):
    q = RangeQuery("idx2", {"octets": (1e5, None)})
    assert q.matches(schema, Record([123.0, 500.0, 2e5]))
    assert not q.matches(schema, Record([123.0, 500.0, 2e4]))


def test_normalized_rect_bounds(schema):
    q = RangeQuery("idx2", {"dest": (64, 128), "octets": (1e6, None)})
    rect = q.normalized_rect(schema)
    assert rect[0] == (0.25, 0.5)
    assert rect[1] == (0.0, 1.0)
    assert rect[2][0] == pytest.approx(0.5)
    assert rect[2][1] == 1.0


def test_normalized_rect_clamps_above_domain(schema):
    q = RangeQuery("idx2", {"octets": (0, 5e9)})
    rect = q.normalized_rect(schema)
    assert rect[2] == (0.0, 1.0)


def test_wire_round_trip(schema):
    q = RangeQuery("idx2", {"dest": (10, 20), "octets": (None, 5)})
    clone = RangeQuery.from_wire(q.to_wire())
    assert clone == q


def test_rect_intersection():
    a = ((0.0, 0.5), (0.0, 1.0))
    b = ((0.25, 1.0), (0.5, 0.75))
    assert rect_intersection(a, b) == ((0.25, 0.5), (0.5, 0.75))
    c = ((0.5, 1.0), (0.0, 1.0))
    assert rect_intersection(a, c) is None


def test_rect_contains_point_closed_top():
    rect = ((0.0, 1.0), (0.5, 1.0))
    assert rect_contains_point(rect, (0.999999, 0.999999))
    assert not rect_contains_point(rect, (0.5, 0.4))


def test_full_rect():
    assert full_rect(2) == ((0.0, 1.0), (0.0, 1.0))
