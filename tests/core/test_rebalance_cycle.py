"""End-to-end daily rebalancing cycle (Section 3.7's full loop).

Day 0 is inserted under even cuts and piles onto a few nodes; the cluster
then collects the day-0 histogram on-line, installs day-1 balanced cuts,
and day 1's (stationary) traffic spreads across the overlay.  Queries over
both days stay exact.
"""

import pytest

from repro.core.cluster import ClusterConfig, MindCluster
from repro.core.query import RangeQuery
from repro.core.records import Record
from repro.core.schema import AttributeSpec, IndexSchema
from repro.net.topology import ABILENE_SITES

DAY = 86400.0


def skewed_record(rng, day):
    # Heavy skew on x, stationary across days.
    x = min(999.0, rng.expovariate(8.0) * 1000.0)
    t = day * DAY + rng.uniform(0, DAY)
    return Record([x, t])


@pytest.fixture(scope="module")
def cycle():
    config = ClusterConfig(seed=111, track_ground_truth=True)
    cluster = MindCluster(ABILENE_SITES, config)
    cluster.build()
    schema = IndexSchema(
        "cyc",
        attributes=[
            AttributeSpec("x", 0.0, 1000.0),
            AttributeSpec("timestamp", 0.0, 7 * DAY, is_time=True),
        ],
    )
    cluster.create_index(schema)

    rng = cluster.sim.rng("t.cycle")
    base = cluster.sim.now
    for i in range(300):
        cluster.schedule_insert("cyc", skewed_record(rng, 0), ABILENE_SITES[i % 11].name, base + i * 0.02)
    cluster.advance(30.0)
    day0_dist = cluster.storage_distribution("cyc")

    cluster.rebalance_daily("cyc", day_start=DAY, granularity=(4096, 8192))

    base = cluster.sim.now
    for i in range(300):
        cluster.schedule_insert("cyc", skewed_record(rng, 1), ABILENE_SITES[i % 11].name, base + i * 0.02)
    cluster.advance(30.0)
    day1_dist = {
        addr: total - day0_dist.get(addr, 0)
        for addr, total in cluster.storage_distribution("cyc").items()
    }
    return cluster, day0_dist, day1_dist


def top_share(dist):
    total = sum(dist.values())
    return max(dist.values()) / total if total else 0.0


def test_day0_is_imbalanced(cycle):
    _, day0, _ = cycle
    assert sum(day0.values()) == 300
    assert top_share(day0) > 0.3


def test_day1_is_balanced(cycle):
    _, day0, day1 = cycle
    assert sum(day1.values()) == 300
    assert top_share(day1) < top_share(day0) / 1.5
    assert sum(1 for c in day1.values() if c == 0) <= 2


def test_version_installed_everywhere(cycle):
    cluster, _, _ = cycle
    assert all(n.has_version_at("cyc", DAY) for n in cluster.nodes)


def test_queries_exact_across_rebalance(cycle):
    cluster, _, _ = cycle
    for interval in [(0, DAY), (DAY, 2 * DAY), (0.7 * DAY, 1.3 * DAY)]:
        query = RangeQuery("cyc", {"timestamp": interval})
        metric = cluster.query_now(query, origin="KSCY")
        assert metric.complete
        assert metric.record_keys == cluster.reference_answer(query)
