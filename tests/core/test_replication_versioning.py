"""Unit tests for replica placement and index versioning."""

import pytest

from repro.core.cuts import EvenCuts
from repro.core.embedding import Embedding
from repro.core.replication import FULL_REPLICATION, replica_targets
from repro.core.schema import AttributeSpec, IndexSchema
from repro.core.versioning import VersionedEmbedding
from repro.overlay.code import Code


def test_paper_example():
    # Node 000000 with m=3 replicates to 000001, 000010 and 000100.
    targets = replica_targets(Code("000000"), 3)
    assert [t.bits for t in targets] == ["000001", "000010", "000100"]


def test_level_zero_no_replicas():
    assert replica_targets(Code("0101"), 0) == []


def test_full_replication_covers_every_dimension():
    targets = replica_targets(Code("0101"), FULL_REPLICATION)
    assert len(targets) == 4
    assert len(set(targets)) == 4
    for t in targets:
        # Each target differs from the node code in exactly one bit.
        assert sum(a != b for a, b in zip(t.bits, "0101")) == 1


def test_level_capped_at_code_length():
    assert len(replica_targets(Code("01"), 10)) == 2


def test_negative_level_rejected():
    with pytest.raises(ValueError):
        replica_targets(Code("01"), -2)


def test_root_code_has_no_replicas():
    assert replica_targets(Code(""), FULL_REPLICATION) == []


# ---------------------------------------------------------------------------
# Versioning
# ---------------------------------------------------------------------------

def _embedding():
    schema = IndexSchema(
        "v",
        attributes=[
            AttributeSpec("x", 0.0, 1.0),
            AttributeSpec("timestamp", 0.0, 1e6, is_time=True),
        ],
    )
    return Embedding(schema, EvenCuts(), code_depth=4)


def test_initial_version_covers_all_time():
    v = VersionedEmbedding(_embedding())
    assert v.for_time(-1e12) is v.latest()
    assert v.for_time(1e12) is v.latest()


def test_install_and_select():
    first = _embedding()
    second = _embedding()
    v = VersionedEmbedding(first)
    v.install(86400.0, second)
    assert v.for_time(0.0) is first
    assert v.for_time(86399.9) is first
    assert v.for_time(86400.0) is second
    assert v.for_time(1e9) is second
    assert v.latest() is second


def test_version_index_for_time():
    v = VersionedEmbedding(_embedding())
    v.install(100.0, _embedding())
    v.install(200.0, _embedding())
    assert v.version_index_for_time(50.0) == 0
    assert v.version_index_for_time(150.0) == 1
    assert v.version_index_for_time(250.0) == 2


def test_duplicate_valid_from_rejected():
    v = VersionedEmbedding(_embedding())
    v.install(100.0, _embedding())
    with pytest.raises(ValueError):
        v.install(100.0, _embedding())


def test_out_of_order_installs_sorted():
    v = VersionedEmbedding(_embedding())
    late = _embedding()
    early = _embedding()
    v.install(200.0, late)
    v.install(100.0, early)
    assert v.for_time(150.0) is early
    assert v.for_time(250.0) is late


def test_wire_round_trip():
    v = VersionedEmbedding(_embedding())
    v.install(86400.0, _embedding())
    clone = VersionedEmbedding.from_wire(v.to_wire())
    assert len(clone.versions) == 2
    assert clone.version_index_for_time(90000.0) == 1
