"""Unit tests for replica placement and index versioning."""

import pytest

from repro.core.cuts import EvenCuts
from repro.core.embedding import Embedding
from repro.core.replication import FULL_REPLICATION, failover_targets, replica_targets
from repro.core.schema import AttributeSpec, IndexSchema
from repro.core.versioning import VersionedEmbedding
from repro.overlay.code import Code


def test_paper_example():
    # Node 000000 with m=3 replicates to 000001, 000010 and 000100.
    targets = replica_targets(Code("000000"), 3)
    assert [t.bits for t in targets] == ["000001", "000010", "000100"]


def test_level_zero_no_replicas():
    assert replica_targets(Code("0101"), 0) == []


def test_full_replication_covers_every_dimension():
    targets = replica_targets(Code("0101"), FULL_REPLICATION)
    assert len(targets) == 4
    assert len(set(targets)) == 4
    for t in targets:
        # Each target differs from the node code in exactly one bit.
        assert sum(a != b for a, b in zip(t.bits, "0101")) == 1


def test_level_capped_at_code_length():
    assert len(replica_targets(Code("01"), 10)) == 2


def test_negative_level_rejected():
    with pytest.raises(ValueError):
        replica_targets(Code("01"), -2)


def test_root_code_has_no_replicas():
    assert replica_targets(Code(""), FULL_REPLICATION) == []


# ---------------------------------------------------------------------------
# Failover targets (the originator's retry list after a dead primary)
# ---------------------------------------------------------------------------

def test_failover_targets_match_replica_placement():
    # For a code at owner depth, failover targets ARE the replica targets.
    code = Code("000000")
    assert failover_targets(code, 3, len(code)) == replica_targets(code, 3)


def test_failover_targets_truncate_to_owner_depth():
    # A full-resolution data code routed at a depth-4 owner fails over to
    # the flips of the owner's code, not of the data code's deep bits.
    targets = failover_targets(Code("010110"), 1, 4)
    assert [t.bits for t in targets] == ["010010"]


def test_failover_targets_level_zero_empty():
    assert failover_targets(Code("0101"), 0, 4) == []


def test_failover_targets_full_replication():
    targets = failover_targets(Code("0101"), FULL_REPLICATION, 4)
    assert len(targets) == 4


# ---------------------------------------------------------------------------
# Versioning
# ---------------------------------------------------------------------------

def _embedding():
    schema = IndexSchema(
        "v",
        attributes=[
            AttributeSpec("x", 0.0, 1.0),
            AttributeSpec("timestamp", 0.0, 1e6, is_time=True),
        ],
    )
    return Embedding(schema, EvenCuts(), code_depth=4)


def test_initial_version_covers_all_time():
    v = VersionedEmbedding(_embedding())
    assert v.for_time(-1e12) is v.latest()
    assert v.for_time(1e12) is v.latest()


def test_install_and_select():
    first = _embedding()
    second = _embedding()
    v = VersionedEmbedding(first)
    v.install(86400.0, second)
    assert v.for_time(0.0) is first
    assert v.for_time(86399.9) is first
    assert v.for_time(86400.0) is second
    assert v.for_time(1e9) is second
    assert v.latest() is second


def test_version_index_for_time():
    v = VersionedEmbedding(_embedding())
    v.install(100.0, _embedding())
    v.install(200.0, _embedding())
    assert v.version_index_for_time(50.0) == 0
    assert v.version_index_for_time(150.0) == 1
    assert v.version_index_for_time(250.0) == 2


def test_duplicate_valid_from_rejected():
    v = VersionedEmbedding(_embedding())
    v.install(100.0, _embedding())
    with pytest.raises(ValueError):
        v.install(100.0, _embedding())


def test_out_of_order_installs_sorted():
    v = VersionedEmbedding(_embedding())
    late = _embedding()
    early = _embedding()
    v.install(200.0, late)
    v.install(100.0, early)
    assert v.for_time(150.0) is early
    assert v.for_time(250.0) is late


def test_wire_round_trip():
    v = VersionedEmbedding(_embedding())
    v.install(86400.0, _embedding())
    clone = VersionedEmbedding.from_wire(v.to_wire())
    assert len(clone.versions) == 2
    assert clone.version_index_for_time(90000.0) == 1


def test_from_wire_rejects_duplicate_valid_from():
    v = VersionedEmbedding(_embedding())
    wire = v.to_wire()
    wire.append(dict(wire[0]))  # same valid_from twice
    with pytest.raises(ValueError):
        VersionedEmbedding.from_wire(wire)


def test_wire_version_references_survive_retirement():
    # Wire references are keyed by valid_from, so they resolve identically
    # on nodes whose *positions* diverged after retire_before().
    v = VersionedEmbedding(_embedding())
    target = _embedding()
    v.install(100.0, _embedding())
    v.install(200.0, target)
    key = v.valid_from_for_time(250.0)
    assert v.embedding_for_version(key) is target
    v.retire_before(150.0)  # drops a leading version; positions shift
    assert v.embedding_for_version(key) is target


def test_retired_version_reference_falls_back_to_time():
    v = VersionedEmbedding(_embedding())
    old = _embedding()
    v.install(100.0, old)
    v.install(200.0, _embedding())
    v.retire_before(250.0)
    # A peer may still reference the retired 100.0 version; the closest
    # surviving approximation is the version in force at that time.
    assert v.embedding_for_version(100.0) is v.for_time(100.0)
