"""Tests for version retention (the paper's deferred storage management)."""

import pytest

from repro.core.cuts import EvenCuts
from repro.core.embedding import Embedding
from repro.core.schema import AttributeSpec, IndexSchema
from repro.core.versioning import VersionedEmbedding


def _embedding():
    schema = IndexSchema(
        "v",
        attributes=[
            AttributeSpec("x", 0.0, 1.0),
            AttributeSpec("timestamp", 0.0, 1e6, is_time=True),
        ],
    )
    return Embedding(schema, EvenCuts(), code_depth=4)


def test_retire_before_drops_superseded():
    v = VersionedEmbedding(_embedding())
    day1, day2, day3 = _embedding(), _embedding(), _embedding()
    v.install(86400.0, day1)
    v.install(2 * 86400.0, day2)
    v.install(3 * 86400.0, day3)
    removed = v.retire_before(2 * 86400.0)
    assert removed == 2
    assert len(v.versions) == 2
    # Times at or after the cutoff still resolve correctly.
    assert v.for_time(2.5 * 86400.0) is day2
    assert v.for_time(4 * 86400.0) is day3


def test_retire_keeps_newest():
    v = VersionedEmbedding(_embedding())
    v.install(100.0, _embedding())
    removed = v.retire_before(1e12)
    assert removed == 1
    assert len(v.versions) == 1
    assert v.latest() is v.for_time(0.0)


def test_retire_noop_when_nothing_superseded():
    v = VersionedEmbedding(_embedding())
    v.install(100.0, _embedding())
    assert v.retire_before(50.0) == 0
    assert len(v.versions) == 2
