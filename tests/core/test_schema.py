"""Unit tests for index schemas and attribute normalization."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.schema import AttributeSpec, IndexSchema


def make_schema():
    return IndexSchema(
        "idx",
        attributes=[
            AttributeSpec("dest", 0.0, 2**32),
            AttributeSpec("timestamp", 0.0, 86400.0, is_time=True),
            AttributeSpec("octets", 0.0, 2e6),
        ],
        payload_names=("source", "node"),
    )


def test_basic_properties():
    schema = make_schema()
    assert schema.dimensions == 3
    assert schema.attribute_names == ["dest", "timestamp", "octets"]
    assert schema.time_dimension() == 1
    assert schema.payload_names == ("source", "node")


def test_invalid_domain_rejected():
    with pytest.raises(ValueError):
        AttributeSpec("x", 5.0, 5.0)


def test_empty_schema_rejected():
    with pytest.raises(ValueError):
        IndexSchema("x", attributes=[])
    with pytest.raises(ValueError):
        IndexSchema("", attributes=[AttributeSpec("a", 0, 1)])


def test_duplicate_attribute_rejected():
    with pytest.raises(ValueError):
        IndexSchema("x", attributes=[AttributeSpec("a", 0, 1), AttributeSpec("a", 0, 2)])


def test_two_time_attributes_rejected():
    with pytest.raises(ValueError):
        IndexSchema(
            "x",
            attributes=[
                AttributeSpec("a", 0, 1, is_time=True),
                AttributeSpec("b", 0, 1, is_time=True),
            ],
        )


def test_normalize_clamps_to_top():
    attr = AttributeSpec("octets", 0.0, 2e6)
    # The paper assigns out-of-bound tuples the largest possible range.
    assert attr.normalize(5e9) < 1.0
    assert attr.normalize(5e9) > 0.999
    assert attr.normalize(-10) == 0.0
    assert attr.normalize(1e6) == pytest.approx(0.5)


def test_normalize_vector_length_checked():
    schema = make_schema()
    with pytest.raises(ValueError):
        schema.normalize([1.0, 2.0])


def test_wire_round_trip():
    schema = make_schema()
    clone = IndexSchema.from_wire(schema.to_wire())
    assert clone == schema


@given(st.floats(min_value=-1e9, max_value=1e9, allow_nan=False))
def test_normalize_always_in_unit_interval(value):
    attr = AttributeSpec("x", -100.0, 1000.0)
    assert 0.0 <= attr.normalize(value) < 1.0


@given(st.floats(min_value=0.0, max_value=0.999999))
def test_denormalize_inverts_normalize(x):
    attr = AttributeSpec("x", 10.0, 50.0)
    assert attr.normalize(attr.denormalize(x)) == pytest.approx(x, abs=1e-9)
