"""Tests for continuous queries (triggers)."""

import pytest

from repro.core.cluster import ClusterConfig, MindCluster
from repro.core.query import RangeQuery
from repro.core.records import Record
from repro.core.schema import AttributeSpec, IndexSchema
from repro.core.triggers import Trigger, TriggerTable, new_trigger_id
from repro.net.topology import ABILENE_SITES


def make_schema(name="t"):
    return IndexSchema(
        name,
        attributes=[
            AttributeSpec("x", 0.0, 1000.0),
            AttributeSpec("timestamp", 0.0, 86400.0, is_time=True),
            AttributeSpec("v", 0.0, 100.0),
        ],
    )


@pytest.fixture()
def cluster():
    c = MindCluster(ABILENE_SITES, ClusterConfig(seed=91))
    c.build()
    c.create_index(make_schema())
    return c


def register(cluster, origin, query, **kwargs):
    fired = []
    done = []
    node = cluster.by_address[origin]
    trigger_id = node.create_trigger(query, fired.append, installed=done.append, **kwargs)
    ok = cluster.sim.run_until_predicate(lambda: bool(done), timeout=120.0)
    assert ok and done[0] is True
    return trigger_id, fired


# ---------------------------------------------------------------------------
# Unit: TriggerTable
# ---------------------------------------------------------------------------

def test_trigger_table_install_and_dedupe():
    table = TriggerTable()
    trig = Trigger("t1", RangeQuery("t", {}), "a")
    assert table.install("t", trig)
    assert not table.install("t", trig)
    assert table.count("t") == 1
    table.remove("t", "t1")
    assert table.count() == 0


def test_trigger_expiry():
    table = TriggerTable()
    schema = make_schema()
    trig = Trigger("t1", RangeQuery("t", {}), "a", expires_at=100.0)
    table.install("t", trig)
    record = Record([1.0, 1.0, 1.0])
    assert table.matching("t", schema, record, now=50.0) == [trig]
    assert table.matching("t", schema, record, now=150.0) == []
    assert table.count("t") == 0  # expired triggers are garbage-collected


def test_trigger_wire_round_trip():
    trig = Trigger(new_trigger_id("a"), RangeQuery("t", {"x": (1, 2)}), "a", expires_at=5.0)
    clone = Trigger.from_wire(trig.to_wire())
    assert clone == trig


# ---------------------------------------------------------------------------
# System: triggers on a cluster
# ---------------------------------------------------------------------------

def test_trigger_fires_on_matching_insert(cluster):
    query = RangeQuery("t", {"v": (50.0, None)})
    trigger_id, fired = register(cluster, "NYCM", query)

    hit = Record([100.0, 1000.0, 80.0])
    miss = Record([100.0, 1000.0, 10.0])
    cluster.insert_now("t", hit, origin="CHIN")
    cluster.insert_now("t", miss, origin="CHIN")
    cluster.advance(10.0)
    assert [r.key for r in fired] == [hit.key]


def test_trigger_covers_all_regions(cluster):
    # A wildcard trigger must fire for inserts landing anywhere.
    query = RangeQuery("t", {})
    trigger_id, fired = register(cluster, "LOSA", query)
    rng = cluster.sim.rng("t.trig")
    records = [
        Record([rng.uniform(0, 1000), rng.uniform(0, 86400), rng.uniform(0, 100)])
        for _ in range(40)
    ]
    for i, record in enumerate(records):
        cluster.schedule_insert("t", record, ABILENE_SITES[i % 11].name, cluster.sim.now + 1 + i * 0.05)
    cluster.advance(30.0)
    assert {r.key for r in fired} == {r.key for r in records}


def test_trigger_scoped_to_region(cluster):
    query = RangeQuery("t", {"x": (0.0, 10.0)})
    trigger_id, fired = register(cluster, "WASH", query)
    inside = Record([5.0, 1000.0, 50.0])
    outside = Record([900.0, 1000.0, 50.0])
    cluster.insert_now("t", inside, origin="ATLA")
    cluster.insert_now("t", outside, origin="ATLA")
    cluster.advance(10.0)
    assert [r.key for r in fired] == [inside.key]


def test_trigger_expires(cluster):
    query = RangeQuery("t", {})
    expires = cluster.sim.now + 20.0
    trigger_id, fired = register(cluster, "DNVR", query, expires_at=expires)
    cluster.insert_now("t", Record([1.0, 1.0, 1.0]), origin="CHIN")
    cluster.advance(30.0)  # past expiry
    before = len(fired)
    assert before >= 1
    cluster.insert_now("t", Record([2.0, 2.0, 2.0]), origin="CHIN")
    cluster.advance(10.0)
    assert len(fired) == before


def test_drop_trigger(cluster):
    query = RangeQuery("t", {})
    trigger_id, fired = register(cluster, "HSTN", query)
    cluster.by_address["HSTN"].drop_trigger("t", trigger_id)
    cluster.advance(10.0)
    cluster.insert_now("t", Record([3.0, 3.0, 3.0]), origin="KSCY")
    cluster.advance(10.0)
    assert fired == []
    assert all(n.trigger_table.count("t") == 0 for n in cluster.nodes)


def test_multiple_triggers_one_insert(cluster):
    q1 = RangeQuery("t", {"v": (0.0, None)})
    q2 = RangeQuery("t", {"x": (0.0, 500.0)})
    _, fired1 = register(cluster, "SNVA", q1)
    _, fired2 = register(cluster, "STTL", q2)
    record = Record([100.0, 5.0, 42.0])
    cluster.insert_now("t", record, origin="IPLS")
    cluster.advance(10.0)
    assert [r.key for r in fired1] == [record.key]
    assert [r.key for r in fired2] == [record.key]
