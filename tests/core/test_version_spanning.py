"""Queries spanning multiple daily index versions (Section 3.7 semantics).

Records stored under different versions live at different nodes (each
version has its own cut tree); a query whose time interval crosses a
version boundary must consult every version it overlaps.
"""

import pytest

from repro.core.cluster import ClusterConfig, MindCluster
from repro.core.cuts import BalancedCuts, EvenCuts
from repro.core.embedding import Embedding
from repro.core.histogram import MultiDimHistogram
from repro.core.query import RangeQuery
from repro.core.records import Record
from repro.core.schema import AttributeSpec, IndexSchema
from repro.net.topology import ABILENE_SITES

DAY = 86400.0


@pytest.fixture(scope="module")
def cluster():
    config = ClusterConfig(seed=101, track_ground_truth=True)
    c = MindCluster(ABILENE_SITES, config)
    c.build()
    schema = IndexSchema(
        "vs",
        attributes=[
            AttributeSpec("x", 0.0, 1000.0),
            AttributeSpec("timestamp", 0.0, 7 * DAY, is_time=True),
        ],
    )
    c.create_index(schema)

    # Day-1 version: balanced cuts from a deliberately lopsided histogram,
    # so day-0 and day-1 records map to very different nodes.
    hist = MultiDimHistogram(2, (64, 4096))
    rng = c.sim.rng("t.vs.hist")
    for _ in range(500):
        hist.add((min(0.999, rng.expovariate(12.0)), 1.0 / 7.0 + rng.random() / 7.0))
    c.install_version("vs", DAY, Embedding(schema, BalancedCuts(hist), code_depth=12))

    rng2 = c.sim.rng("t.vs.data")
    base = c.sim.now
    for i in range(80):
        day0 = Record([rng2.uniform(0, 1000), rng2.uniform(0, DAY)])
        day1 = Record([rng2.uniform(0, 1000), rng2.uniform(DAY, 2 * DAY)])
        c.schedule_insert("vs", day0, ABILENE_SITES[i % 11].name, base + i * 0.05)
        c.schedule_insert("vs", day1, ABILENE_SITES[(i + 3) % 11].name, base + i * 0.05 + 0.02)
    c.advance(40.0)
    return c


def test_single_version_query(cluster):
    query = RangeQuery("vs", {"timestamp": (0.0, DAY)})
    metric = cluster.query_now(query, origin="CHIN")
    assert metric.complete
    assert metric.record_keys == cluster.reference_answer(query)
    assert len(metric.record_keys) == 80


def test_cross_boundary_query_sees_both_versions(cluster):
    query = RangeQuery("vs", {"timestamp": (0.5 * DAY, 1.5 * DAY)})
    metric = cluster.query_now(query, origin="NYCM")
    assert metric.complete
    expected = cluster.reference_answer(query)
    assert metric.record_keys == expected
    # Sanity: the interval genuinely has records on both sides.
    day0 = sum(1 for r in metric.results if r.values[1] < DAY)
    day1 = sum(1 for r in metric.results if r.values[1] >= DAY)
    assert day0 > 0 and day1 > 0


def test_unbounded_time_query_spans_all_versions(cluster):
    query = RangeQuery("vs", {})
    metric = cluster.query_now(query, origin="LOSA")
    assert metric.complete
    assert len(metric.record_keys) == 160


def test_second_version_only(cluster):
    query = RangeQuery("vs", {"timestamp": (DAY, 2 * DAY)})
    metric = cluster.query_now(query, origin="WASH")
    assert metric.complete
    assert metric.record_keys == cluster.reference_answer(query)
    assert len(metric.record_keys) == 80


def test_inserts_use_version_of_their_timestamp(cluster):
    # A record stamped in day 1 must be embedded with the day-1 cut tree:
    # the owner under version 1 differs from the owner version 0 would
    # pick for most coordinates (lopsided histogram).
    node = cluster.by_address["CHIN"]
    state = node.indices["vs"]
    v0 = state.versions.versions[0][1]
    v1 = state.versions.versions[1][1]
    values = [500.0, 1.2 * DAY]
    assert state.versions.for_time(values[1]) is v1
    assert v0.point_code(values) != v1.point_code(values)
