"""Shared test utilities: building small overlays and invariant checks."""

from typing import Dict, List, Optional, Sequence

from repro.net.network import SimNetwork
from repro.net.topology import Site
from repro.overlay.code import Code
from repro.overlay.node import OverlayConfig, OverlayNode
from repro.sim.kernel import Simulator


def make_network(sim: Simulator, sites: Optional[Dict[str, Site]] = None, **kwargs) -> SimNetwork:
    return SimNetwork(sim, sites or {}, **kwargs)


def wire_bootstrap(nodes: Sequence[OverlayNode], network: SimNetwork, sim: Simulator) -> None:
    """Give every node a bootstrap provider choosing a random live member."""
    rng = sim.rng("test.bootstrap")

    def provider(addr: str) -> Optional[str]:
        candidates = sorted(
            node.address
            for node in nodes
            if node.in_overlay() and node.address != addr and network.is_node_up(node.address)
        )
        return rng.choice(candidates) if candidates else None

    for node in nodes:
        node.bootstrap_provider = provider


def build_overlay(
    count: int,
    seed: int = 0,
    config: Optional[OverlayConfig] = None,
    concurrent: bool = False,
    node_cls=OverlayNode,
    join_timeout_s: float = 600.0,
):
    """Build an overlay of ``count`` nodes; returns (sim, network, nodes).

    With ``concurrent=False`` joins are serialized (each join completes
    before the next starts); with ``concurrent=True`` all joins start at
    roughly the same time, exercising the preemption protocol.
    """
    sim = Simulator(seed)
    network = make_network(sim)
    cfg = config or OverlayConfig()
    nodes = [node_cls(sim, network, f"n{i}", config=cfg) for i in range(count)]
    wire_bootstrap(nodes, network, sim)
    nodes[0].activate_as_root()
    if concurrent:
        for node in nodes[1:]:
            sim.schedule(sim.rng("test.starts").random() * 0.05, _start_join, node)
        ok = sim.run_until_predicate(
            lambda: all(n.in_overlay() for n in nodes), timeout=join_timeout_s
        )
        assert ok, "overlay did not converge"
    else:
        for node in nodes[1:]:
            _start_join(node)
            ok = sim.run_until_predicate(node.in_overlay, timeout=join_timeout_s)
            assert ok, f"{node.address} failed to join"
    return sim, network, nodes


def _start_join(node: OverlayNode) -> None:
    bootstrap = node.bootstrap_provider(node.address)
    assert bootstrap is not None
    node.start_join(bootstrap)


def assert_prefix_free_cover(codes: List[Code]) -> None:
    """The live codes must partition the binary code space exactly."""
    for i, a in enumerate(codes):
        for b in codes[i + 1 :]:
            assert not a.comparable(b), f"codes overlap: {a} vs {b}"
    total = sum(2.0 ** -len(c) for c in codes)
    assert abs(total - 1.0) < 1e-9, f"codes cover {total} of the space"
