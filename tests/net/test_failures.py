"""Unit tests for the failure injector."""

import pytest

from repro.net.failures import FailureInjector
from repro.net.network import SimNetwork
from repro.sim.kernel import Simulator


def setup():
    sim = Simulator(seed=3)
    net = SimNetwork(sim, {})
    for name in ("a", "b", "c", "d"):
        net.register(name, lambda m: None)
    return sim, net


def test_crash_and_restore():
    sim, net = setup()
    crashed, restored = [], []
    inj = FailureInjector(sim, net, on_crash=crashed.append, on_restore=restored.append)
    inj.crash_and_restore("b", at_in_s=1.0, downtime_s=5.0)
    sim.run_until(2.0)
    assert not net.is_node_up("b")
    assert crashed == ["b"]
    sim.run_until(7.0)
    assert net.is_node_up("b")
    assert restored == ["b"]


def test_double_crash_idempotent():
    sim, net = setup()
    crashed = []
    inj = FailureInjector(sim, net, on_crash=crashed.append)
    inj.crash_node("a", at_in_s=1.0)
    inj.crash_node("a", at_in_s=2.0)
    sim.run_until(3.0)
    assert crashed == ["a"]


def test_link_outage():
    sim, net = setup()
    inj = FailureInjector(sim, net)
    inj.link_outage("a", "b", start_in_s=1.0, duration_s=3.0)
    sim.run_until(2.0)
    assert not net.is_link_up("a", "b")
    sim.run_until(5.0)
    assert net.is_link_up("a", "b")


def test_link_outage_invalid_duration():
    sim, net = setup()
    inj = FailureInjector(sim, net)
    with pytest.raises(ValueError):
        inj.link_outage("a", "b", 0.0, -1.0)


def test_churn_respects_min_live():
    sim, net = setup()
    inj = FailureInjector(sim, net)
    inj.start_churn(["a", "b", "c", "d"], mean_uptime_s=1.0, mean_downtime_s=100.0, min_live=3)
    sim.run_until(120.0)
    live = sum(1 for n in ("a", "b", "c", "d") if net.is_node_up(n))
    assert live >= 3


def test_churn_min_live_validation():
    sim, net = setup()
    inj = FailureInjector(sim, net)
    with pytest.raises(ValueError):
        inj.start_churn(["a"], 1.0, 1.0, min_live=0)


def test_start_churn_idempotent_and_stop_cancels():
    sim, net = setup()
    inj = FailureInjector(sim, net)
    nodes = ["a", "b", "c", "d"]
    inj.start_churn(nodes, mean_uptime_s=1.0, mean_downtime_s=0.5, min_live=1)
    # A second start replaces the running process instead of stacking a
    # second (uncancellable) tick loop on top of it.
    inj.start_churn(nodes, mean_uptime_s=1.0, mean_downtime_s=0.5, min_live=1)
    assert inj.churn_active
    sim.run_until(30.0)
    assert any(kind == "crash" for _, _, kind in inj.crash_log)
    inj.stop_churn()
    assert not inj.churn_active
    stop_time = sim.now
    sim.run_until(stop_time + 60.0)
    # One stop_churn silences both start calls: no crashes after the stop...
    assert not any(
        kind == "crash" and t > stop_time for t, _, kind in inj.crash_log
    )
    # ...but nodes already down still get their scheduled restores.
    assert all(net.is_node_up(n) for n in nodes)


def test_stop_churn_without_start_is_noop():
    sim, net = setup()
    inj = FailureInjector(sim, net)
    inj.stop_churn()
    assert not inj.churn_active
    sim.run_until(10.0)
    assert inj.crash_log == []


def test_crash_log():
    sim, net = setup()
    inj = FailureInjector(sim, net)
    inj.crash_and_restore("c", 1.0, 2.0)
    sim.run_until(5.0)
    events = [(addr, kind) for _, addr, kind in inj.crash_log]
    assert events == [("c", "crash"), ("c", "restore")]
