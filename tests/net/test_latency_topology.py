"""Unit tests for sites, distances and the latency model."""

import random

import pytest

from repro.net.latency import LatencyModel, great_circle_km
from repro.net.topology import (
    ABILENE_SITES,
    GEANT_SITES,
    Site,
    backbone_sites,
    sites_by_name,
    synthetic_planetlab_sites,
)


def site(name, lat, lon, network="test"):
    return Site(name, lat, lon, network)


def test_backbone_site_counts():
    assert len(ABILENE_SITES) == 11
    assert len(GEANT_SITES) == 23
    assert len(backbone_sites()) == 34


def test_site_names_unique():
    names = [s.name for s in backbone_sites()]
    assert len(set(names)) == len(names)


def test_sites_by_name_rejects_duplicates():
    a = site("X", 0, 0)
    with pytest.raises(ValueError):
        sites_by_name([a, a])


def test_great_circle_known_distance():
    nyc = site("NYC", 40.713, -74.006)
    la = site("LA", 34.052, -118.244)
    d = great_circle_km(nyc, la)
    assert 3800 < d < 4100  # ~3,936 km


def test_great_circle_zero_for_same_point():
    a = site("A", 50.0, 8.0)
    b = site("B", 50.0, 8.0)
    assert great_circle_km(a, b) == pytest.approx(0.0, abs=1e-6)


def test_latency_scales_with_distance():
    model = LatencyModel(jitter_sigma=0.0, pathology_prob=0.0)
    rng = random.Random(0)
    near = model.one_way_s(site("A", 40.0, -74.0), site("B", 41.0, -74.0), rng)
    far = model.one_way_s(site("A", 40.0, -74.0), site("C", 34.0, -118.0), rng)
    assert far > near
    # Transatlantic one-way should be tens of milliseconds.
    eu = model.one_way_s(site("A", 40.7, -74.0), site("D", 51.5, -0.1), rng)
    assert 0.02 < eu < 0.1


def test_latency_jitter_varies():
    model = LatencyModel(pathology_prob=0.0)
    rng = random.Random(1)
    a, b = site("A", 40.0, -74.0), site("B", 48.0, 2.0)
    samples = {model.one_way_s(a, b, rng) for _ in range(10)}
    assert len(samples) == 10


def test_pathology_adds_heavy_tail():
    model = LatencyModel(pathology_prob=1.0, pathology_scale_s=0.5)
    rng = random.Random(2)
    a, b = site("A", 40.0, -74.0), site("B", 41.0, -74.0)
    assert model.one_way_s(a, b, rng) > 0.5


def test_invalid_pathology_prob():
    with pytest.raises(ValueError):
        LatencyModel(pathology_prob=1.5)


def test_synthetic_sites():
    rng = random.Random(3)
    sites = synthetic_planetlab_sites(102, rng)
    assert len(sites) == 102
    assert len({s.name for s in sites}) == 102
    assert all(s.network == "planetlab" for s in sites)
    regions = {s.name.rsplit("-", 1)[-1] for s in sites}
    assert regions == {"eu", "no"} or regions  # NA and EU tags present


def test_synthetic_sites_negative_count():
    with pytest.raises(ValueError):
        synthetic_planetlab_sites(-1, random.Random(0))
