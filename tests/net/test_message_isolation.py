"""Message-isolation sanitizer: clone semantics and cross-node aliasing.

The property test sweeps *every* registered message kind (direct and
routed) with registry-driven synthetic payloads through a real
:class:`~repro.net.network.SimNetwork`, mutates the delivered payload and
every nested container inside it, and asserts the sender-side object
never changes — the invariant the paper's TCP serialization provided for
free and the ``copy`` isolation level restores.  The ``freeze`` level is
checked the other way around: every mutation attempt raises.
"""

import copy

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import message as message_mod
from repro.net import protocol
from repro.net.message import (
    ISOLATE_COPY,
    ISOLATE_FREEZE,
    ISOLATE_OFF,
    FrozenListView,
    FrozenSetView,
    Message,
    MappingProxyType,
    copy_payload,
    freeze_payload,
    isolation,
    set_isolation,
    thaw_payload,
)
from repro.net.topology import Site
from repro.sim.kernel import Simulator
from tests.helpers import make_network

pytestmark = pytest.mark.sanitize

ALL_KINDS = sorted(protocol.REGISTRY) + sorted(protocol.ROUTED)


# ----------------------------------------------------------------------
# Payload helpers
# ----------------------------------------------------------------------
#: scalars that can live anywhere in a payload
_scalars = st.one_of(
    st.integers(-1000, 1000),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=6),
    st.booleans(),
    st.none(),
)

#: nested container values, small on purpose (shape matters, size doesn't)
_values = st.recursive(
    _scalars,
    lambda inner: st.one_of(
        st.lists(inner, max_size=3),
        st.dictionaries(st.text(max_size=4), inner, max_size=3),
        st.tuples(inner, inner),
        st.sets(st.integers(-50, 50), max_size=3),
    ),
    max_leaves=8,
)


def draw_payload(data, kind_name):
    """Registry-driven synthetic payload for ``kind_name``.

    Direct kinds get a value for every declared key; routed kinds are
    wrapped in a full ``route`` envelope, which is how they cross the
    wire for real.
    """
    def body(decl):
        return {key: data.draw(_values, label=key) for key in sorted(decl.all_keys())}

    if kind_name == "route":
        # the direct "route" kind must carry a registered inner kind
        kind_name = data.draw(st.sampled_from(sorted(protocol.ROUTED)), label="inner_kind")
    if kind_name in protocol.ROUTED:
        inner = body(protocol.ROUTED[kind_name])
        return "route", {
            "target": "0101",
            "inner_kind": kind_name,
            "inner": inner,
            "op_id": data.draw(st.one_of(st.text(max_size=4), st.tuples(st.text(max_size=2), st.integers(0, 9)))),
            "origin": "a",
            "hops": 0,
            "path": ["a"],
            "exclude": [],
            "attempt": 1,
            "tuples": 0,
        }
    return kind_name, body(protocol.REGISTRY[kind_name])


def mutate_everything(value):
    """Mutate every mutable container reachable from ``value``."""
    if isinstance(value, dict):
        for item in list(value.values()):
            mutate_everything(item)
        value["__mutated__"] = "x"
    elif isinstance(value, list):
        for item in value:
            mutate_everything(item)
        value.append("__mutated__")
    elif isinstance(value, set):
        value.add("__mutated__")
    elif isinstance(value, tuple):
        for item in value:
            mutate_everything(item)


def assert_all_frozen(value):
    """Every container reachable from ``value`` must refuse mutation."""
    if isinstance(value, MappingProxyType):
        with pytest.raises(TypeError):
            value["__mutated__"] = "x"
        for item in value.values():
            assert_all_frozen(item)
    elif isinstance(value, tuple):  # includes FrozenListView
        assert not hasattr(value, "append")
        for item in value:
            assert_all_frozen(item)
    elif isinstance(value, frozenset):  # includes FrozenSetView
        assert not hasattr(value, "add")
    else:
        assert not isinstance(value, (dict, list, set)), f"unfrozen container: {value!r}"


def deliver(kind, payload, level):
    """Send (kind, payload) a->b over a real SimNetwork; return delivery."""
    sim = Simulator(seed=3)
    sites = {"a": Site("a", 0.0, 0.0, "t"), "b": Site("b", 1.0, 1.0, "t")}
    network = make_network(sim, sites)
    received = []
    network.register("a", received.append)
    network.register("b", received.append)
    with isolation(level):
        network.send("a", "b", kind, payload)
        sim.run_until_idle()
    assert len(received) == 1
    return received[0]


# ----------------------------------------------------------------------
# The cross-node aliasing property, over all 50 registered kinds
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind_name", ALL_KINDS)
@settings(max_examples=10, deadline=None)
@given(data=st.data())
def test_copy_isolation_never_aliases_sender(kind_name, data):
    kind, payload = draw_payload(data, kind_name)
    snapshot = copy.deepcopy(payload)
    msg = deliver(kind, payload, ISOLATE_COPY)
    assert msg.payload == payload
    mutate_everything(msg.payload)
    assert payload == snapshot, "receiver-side mutation reached the sender's payload"


@pytest.mark.parametrize("kind_name", ALL_KINDS)
@settings(max_examples=5, deadline=None)
@given(data=st.data())
def test_freeze_isolation_delivers_read_only_views(kind_name, data):
    kind, payload = draw_payload(data, kind_name)
    snapshot = copy.deepcopy(payload)
    msg = deliver(kind, payload, ISOLATE_FREEZE)
    assert_all_frozen(msg.payload)
    # a thawed private copy equals the original and mutating it is safe
    thawed = thaw_payload(msg.payload)
    assert thawed == payload
    mutate_everything(thawed)
    assert payload == snapshot


def test_off_isolation_aliases_by_reference():
    # Documents the hazard the sanitizer exists for: with isolation off,
    # delivery shares the very object the sender still holds.
    payload = {"joiner": "x"}
    msg = deliver("join_lookup", payload, ISOLATE_OFF)
    assert msg.payload is payload


# ----------------------------------------------------------------------
# copy/freeze/thaw round trips
# ----------------------------------------------------------------------
def test_copy_payload_preserves_container_types():
    payload = {"l": [1, {"k": 2}], "t": (1, [2]), "s": {3}, "f": frozenset({4})}
    out = copy_payload(payload)
    assert out == payload
    assert out is not payload
    assert out["l"] is not payload["l"]
    assert out["l"][1] is not payload["l"][1]
    assert isinstance(out["t"], tuple) and out["t"][1] is not payload["t"][1]
    assert isinstance(out["s"], set) and out["s"] is not payload["s"]
    assert isinstance(out["f"], frozenset)


def test_freeze_thaw_round_trip_preserves_types():
    payload = {
        "op_id": ("ins", "op-1", 2),  # tuple op_ids are dict keys downstream
        "path": ["a", "b"],
        "nested": {"inner": [1, (2, 3)]},
        "seen": {1, 2},
    }
    frozen = freeze_payload(payload)
    assert isinstance(frozen, MappingProxyType)
    assert isinstance(frozen["op_id"], tuple) and not isinstance(frozen["op_id"], FrozenListView)
    assert isinstance(frozen["path"], FrozenListView)
    assert isinstance(frozen["seen"], FrozenSetView)

    thawed = thaw_payload(frozen)
    assert thawed == payload
    assert isinstance(thawed["op_id"], tuple), "tuples must survive freeze+thaw"
    assert hash(thawed["op_id"]) == hash(payload["op_id"])
    assert isinstance(thawed["path"], list)
    assert isinstance(thawed["seen"], set) and not isinstance(thawed["seen"], frozenset)
    assert isinstance(thawed["nested"]["inner"], list)
    assert isinstance(thawed["nested"]["inner"][1], tuple)


def test_thaw_of_unfrozen_payload_is_a_deep_copy():
    payload = {"path": ["a"], "rect": [[0, 1], [2, 3]]}
    out = thaw_payload(payload)
    assert out == payload
    out["path"].append("b")
    out["rect"][0].append(9)
    assert payload == {"path": ["a"], "rect": [[0, 1], [2, 3]]}


# ----------------------------------------------------------------------
# Message.clone
# ----------------------------------------------------------------------
def test_clone_copy_isolates_payload_and_keeps_identity():
    msg = Message(src="a", dst="b", kind="join_lookup", payload={"joiner": "x"}, size_bytes=77)
    clone = msg.clone(level=ISOLATE_COPY)
    assert clone.msg_id == msg.msg_id
    assert clone.size_bytes == 77
    assert clone.wire_size == msg.wire_size, "re-framing must not double-count headers"
    assert clone.payload == msg.payload and clone.payload is not msg.payload


def test_clone_fresh_id_for_resend_attempts():
    msg = Message(src="a", dst="b", kind="join_lookup", payload={"joiner": "x"})
    clone = msg.clone(level=ISOLATE_COPY, fresh_id=True)
    assert clone.msg_id != msg.msg_id
    assert clone.size_bytes == msg.size_bytes


def test_clone_off_shares_payload():
    msg = Message(src="a", dst="b", kind="join_lookup", payload={"joiner": "x"})
    assert msg.clone(level=ISOLATE_OFF).payload is msg.payload


def test_clone_rejects_unknown_level():
    msg = Message(src="a", dst="b", kind="join_lookup", payload={"joiner": "x"})
    with pytest.raises(ValueError):
        msg.clone(level="bogus")


def test_network_resend_never_aliases_between_attempts():
    sim = Simulator(seed=5)
    sites = {"a": Site("a", 0.0, 0.0, "t"), "b": Site("b", 1.0, 1.0, "t")}
    network = make_network(sim, sites)
    received = []
    network.register("a", received.append)
    network.register("b", received.append)
    with isolation(ISOLATE_OFF):
        first = network.send("a", "b", "join_lookup", {"joiner": "x"}, size_bytes=99)
        second = network.resend(first)
        sim.run_until_idle()
    assert second.msg_id != first.msg_id
    assert second.size_bytes == 99, "resend must preserve the declared body size"
    assert second.payload == first.payload and second.payload is not first.payload


# ----------------------------------------------------------------------
# Level plumbing
# ----------------------------------------------------------------------
def test_set_isolation_accepts_bool_shorthand():
    previous = set_isolation(True)
    try:
        assert message_mod.isolation_level() == ISOLATE_COPY
        set_isolation(False)
        assert message_mod.isolation_level() == ISOLATE_OFF
        with pytest.raises(ValueError):
            set_isolation("bogus")
    finally:
        set_isolation(previous)


def test_isolation_context_manager_restores_level():
    before = message_mod.isolation_level()
    with isolation(ISOLATE_FREEZE):
        assert message_mod.isolation_level() == ISOLATE_FREEZE
    assert message_mod.isolation_level() == before


# ----------------------------------------------------------------------
# End-to-end parity: isolation must not change any observable metric
# ----------------------------------------------------------------------
def _run_seeded_workload(level):
    """A small seeded cluster workload; returns every observable metric."""
    import random

    from repro.core.cluster import ClusterConfig, MindCluster
    from repro.core.query import RangeQuery
    from repro.core.records import Record
    from repro.core.schema import AttributeSpec, IndexSchema
    from repro.net.topology import ABILENE_SITES

    schema = IndexSchema(
        "iso-parity",
        attributes=[
            AttributeSpec("dest", 0.0, 1024.0),
            AttributeSpec("timestamp", 0.0, 86400.0, is_time=True),
        ],
    )
    with isolation(level):
        cluster = MindCluster(
            ABILENE_SITES, ClusterConfig(seed=1234, track_ground_truth=True)
        )
        cluster.build()
        cluster.create_index(schema)
        rng = random.Random(99)
        origins = [s.name for s in ABILENE_SITES]
        inserts = []
        # Record keys are a process-global counter, so runs compare by
        # per-run insertion ordinal instead of raw key.
        ordinal = {}
        for i in range(30):
            record = Record([rng.uniform(0, 1024), rng.uniform(10000, 20000)])
            ordinal[record.key] = i
            metric = cluster.insert_now(schema.name, record, origin=rng.choice(origins))
            inserts.append((metric.success, metric.hops, round(metric.latency, 9)))
        queries = []
        for _ in range(5):
            lo = rng.uniform(0, 900)
            query = RangeQuery(
                schema.name, {"dest": (lo, lo + 200), "timestamp": (10000, 20000)}
            )
            metric = cluster.query_now(query, origin=rng.choice(origins))
            reference = cluster.reference_answer(query)
            recall = len(metric.record_keys & reference) / len(reference) if reference else 1.0
            queries.append(
                (
                    sorted(ordinal[k] for k in metric.record_keys),
                    recall,
                    metric.complete,
                    round(metric.latency, 9),
                    len(metric.nodes_visited),
                )
            )
        return {
            "inserts": inserts,
            "queries": queries,
            "messages": cluster.network.messages_sent,
        }


@pytest.mark.slow
def test_end_to_end_metrics_identical_with_isolation_on_and_off():
    baseline = _run_seeded_workload(ISOLATE_OFF)
    assert baseline["queries"], "workload produced no queries"
    assert _run_seeded_workload(ISOLATE_COPY) == baseline
    assert _run_seeded_workload(ISOLATE_FREEZE) == baseline


@pytest.mark.parametrize(
    "raw,expected",
    [
        ("", ISOLATE_OFF),
        ("0", ISOLATE_OFF),
        ("off", ISOLATE_OFF),
        ("no", ISOLATE_OFF),
        ("false", ISOLATE_OFF),
        ("1", ISOLATE_COPY),
        ("copy", ISOLATE_COPY),
        ("freeze", ISOLATE_FREEZE),
        ("FREEZE", ISOLATE_FREEZE),
    ],
)
def test_level_from_env(monkeypatch, raw, expected):
    monkeypatch.setenv("REPRO_ISOLATE_MESSAGES", raw)
    assert message_mod._level_from_env() == expected
