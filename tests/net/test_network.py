"""Unit tests for the simulated network layer."""

import dataclasses

import pytest

from repro.net import protocol
from repro.net.message import HEADER_BYTES, Message
from repro.net.network import SimNetwork
from repro.net.topology import Site
from repro.sim.kernel import Simulator


@pytest.fixture(autouse=True)
def _adhoc_kinds():
    # These unit tests exercise the transport with ad-hoc message kinds
    # ("ping", "x", ...) that are deliberately not part of the registry.
    with protocol.validation(False):
        yield


def make_net(sites=None, **kwargs):
    sim = Simulator(seed=1)
    return sim, SimNetwork(sim, sites or {}, **kwargs)


def test_message_header_overhead():
    msg = Message("a", "b", "k", size_bytes=100)
    assert msg.size_bytes == 100
    assert msg.wire_size == 100 + HEADER_BYTES


def test_reframed_message_does_not_double_count_header():
    msg = Message("a", "b", "k", size_bytes=100)
    copy = dataclasses.replace(msg)
    assert copy.size_bytes == 100
    assert copy.wire_size == msg.wire_size == 100 + HEADER_BYTES


def test_message_negative_size_rejected():
    with pytest.raises(ValueError):
        Message("a", "b", "k", size_bytes=-1)


def test_register_and_deliver():
    sim, net = make_net()
    got = []
    net.register("a", got.append)
    net.register("b", got.append)
    net.send("a", "b", "ping", {"x": 1})
    sim.run_until_idle()
    assert len(got) == 1
    assert got[0].kind == "ping"
    assert got[0].payload == {"x": 1}


def test_duplicate_registration_rejected():
    sim, net = make_net()
    net.register("a", lambda m: None)
    with pytest.raises(ValueError):
        net.register("a", lambda m: None)


def test_unknown_destination_fails():
    sim, net = make_net()
    net.register("a", lambda m: None)
    failures = []
    net.send("a", "ghost", "ping", on_fail=lambda m, r: failures.append(r))
    sim.run_until_idle()
    assert failures == ["unknown-destination"]


def test_link_down_fails_send():
    sim, net = make_net()
    net.register("a", lambda m: None)
    net.register("b", lambda m: None)
    net.set_link_down("a", "b", duration_s=10.0)
    failures = []
    net.send("a", "b", "ping", on_fail=lambda m, r: failures.append(r))
    sim.run_until_idle()
    assert failures == ["link-down"]
    assert not net.is_link_up("a", "b")
    assert not net.is_link_up("b", "a")  # bidirectional by default


def test_link_recovers_after_duration():
    sim, net = make_net()
    got = []
    net.register("a", lambda m: None)
    net.register("b", got.append)
    net.set_link_down("a", "b", duration_s=5.0)
    sim.run_until(6.0)
    assert net.is_link_up("a", "b")
    net.send("a", "b", "ping")
    sim.run_until_idle()
    assert len(got) == 1


def test_peer_down_fails_send():
    sim, net = make_net()
    net.register("a", lambda m: None)
    net.register("b", lambda m: None)
    net.set_node_up("b", False)
    failures = []
    net.send("a", "b", "ping", on_fail=lambda m, r: failures.append(r))
    sim.run_until_idle()
    assert failures == ["peer-down"]


def test_crashed_sender_drops_silently():
    sim, net = make_net()
    got = []
    net.register("a", lambda m: None)
    net.register("b", got.append)
    net.set_node_up("a", False)
    net.send("a", "b", "ping")
    sim.run_until_idle()
    assert got == []
    assert net.messages_failed == 1


def test_peer_crash_in_flight():
    sim, net = make_net()
    net.register("a", lambda m: None)
    net.register("b", lambda m: None)
    failures = []
    net.send("a", "b", "ping", on_fail=lambda m, r: failures.append(r))
    net.set_node_up("b", False)  # crashes before delivery completes
    sim.run_until_idle()
    assert failures == ["peer-down"]


def test_bandwidth_serializes_transmissions():
    # Two 10 kB messages over a 10 kbit/s link: the second waits for the
    # first's transmission slot.
    sim, net = make_net(bandwidth_bps=1e4)
    arrivals = []
    net.register("a", lambda m: None)
    net.register("b", lambda m: arrivals.append(sim.now))
    net.send("a", "b", "x", size_bytes=10_000 - HEADER_BYTES)
    net.send("a", "b", "y", size_bytes=10_000 - HEADER_BYTES)
    sim.run_until_idle()
    assert len(arrivals) == 2
    assert arrivals[1] - arrivals[0] == pytest.approx(8.0, rel=0.05)


def test_link_stats_accumulate():
    sim, net = make_net(record_link_delays=True)
    net.register("a", lambda m: None)
    net.register("b", lambda m: None)
    net.send("a", "b", "x", tuples=3, size_bytes=100)
    net.send("a", "b", "y", tuples=2, size_bytes=100)
    sim.run_until_idle()
    stats = net.link_stats[("a", "b")]
    assert stats.messages == 2
    assert stats.tuples == 5
    assert stats.bytes == 2 * (100 + HEADER_BYTES)
    assert len(stats.delay_samples) == 2


def test_colocated_nodes_lan_latency():
    sim, net = make_net()  # no sites -> LAN delays
    times = []
    net.register("a", lambda m: None)
    net.register("b", lambda m: times.append(sim.now))
    net.send("a", "b", "x")
    sim.run_until_idle()
    assert times[0] < 0.005


def test_wan_latency_uses_sites():
    ny = Site("NY", 40.7, -74.0, "t")
    ldn = Site("LDN", 51.5, -0.1, "t")
    sim = Simulator(seed=2)
    net = SimNetwork(sim, {"NY": ny, "LDN": ldn})
    times = []
    net.register("NY", lambda m: None)
    net.register("LDN", lambda m: times.append(sim.now))
    net.send("NY", "LDN", "x")
    sim.run_until_idle()
    assert times[0] > 0.02


def test_link_delay_samples_bounded_by_cap():
    sim, net = make_net(record_link_delays=True, link_delay_sample_cap=16)
    net.register("a", lambda msg: None)
    net.register("b", lambda msg: None)
    for _ in range(500):
        net.send("a", "b", "k")
    stats = net.link_stats[("a", "b")]
    assert stats.messages == 500
    assert len(stats.delay_samples) < 16
    assert stats.delay_sample_stride > 1
    # Decimation keeps the series in send order (the Fig 8/12 shape).
    times = [t for t, _ in stats.delay_samples]
    assert times == sorted(times)


def test_link_delay_samples_unbounded_when_cap_disabled():
    sim, net = make_net(record_link_delays=True, link_delay_sample_cap=None)
    net.register("a", lambda msg: None)
    net.register("b", lambda msg: None)
    for _ in range(300):
        net.send("a", "b", "k")
    stats = net.link_stats[("a", "b")]
    assert len(stats.delay_samples) == 300
    assert stats.delay_sample_stride == 1


def test_link_delay_sample_cap_validated():
    with pytest.raises(ValueError):
        make_net(record_link_delays=True, link_delay_sample_cap=1)
