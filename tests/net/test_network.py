"""Unit tests for the simulated network layer."""

import dataclasses

import pytest

from repro.net import protocol
from repro.net.message import HEADER_BYTES, Message
from repro.net.network import LinkStats, SimNetwork
from repro.net.topology import Site
from repro.sim.kernel import Simulator


@pytest.fixture(autouse=True)
def _adhoc_kinds():
    # These unit tests exercise the transport with ad-hoc message kinds
    # ("ping", "x", ...) that are deliberately not part of the registry.
    with protocol.validation(False):
        yield


def make_net(sites=None, **kwargs):
    sim = Simulator(seed=1)
    return sim, SimNetwork(sim, sites or {}, **kwargs)


def test_message_header_overhead():
    msg = Message("a", "b", "k", size_bytes=100)
    assert msg.size_bytes == 100
    assert msg.wire_size == 100 + HEADER_BYTES


def test_reframed_message_does_not_double_count_header():
    msg = Message("a", "b", "k", size_bytes=100)
    copy = dataclasses.replace(msg)
    assert copy.size_bytes == 100
    assert copy.wire_size == msg.wire_size == 100 + HEADER_BYTES


def test_message_negative_size_rejected():
    with pytest.raises(ValueError):
        Message("a", "b", "k", size_bytes=-1)


def test_register_and_deliver():
    sim, net = make_net()
    got = []
    net.register("a", got.append)
    net.register("b", got.append)
    net.send("a", "b", "ping", {"x": 1})
    sim.run_until_idle()
    assert len(got) == 1
    assert got[0].kind == "ping"
    assert got[0].payload == {"x": 1}


def test_duplicate_registration_rejected():
    sim, net = make_net()
    net.register("a", lambda m: None)
    with pytest.raises(ValueError):
        net.register("a", lambda m: None)


def test_unknown_destination_fails():
    sim, net = make_net()
    net.register("a", lambda m: None)
    failures = []
    net.send("a", "ghost", "ping", on_fail=lambda m, r: failures.append(r))
    sim.run_until_idle()
    assert failures == ["unknown-destination"]


def test_link_down_fails_send():
    sim, net = make_net()
    net.register("a", lambda m: None)
    net.register("b", lambda m: None)
    net.set_link_down("a", "b", duration_s=10.0)
    failures = []
    net.send("a", "b", "ping", on_fail=lambda m, r: failures.append(r))
    sim.run_until_idle()
    assert failures == ["link-down"]
    assert not net.is_link_up("a", "b")
    assert not net.is_link_up("b", "a")  # bidirectional by default


def test_link_recovers_after_duration():
    sim, net = make_net()
    got = []
    net.register("a", lambda m: None)
    net.register("b", got.append)
    net.set_link_down("a", "b", duration_s=5.0)
    sim.run_until(6.0)
    assert net.is_link_up("a", "b")
    net.send("a", "b", "ping")
    sim.run_until_idle()
    assert len(got) == 1


def test_peer_down_fails_send():
    sim, net = make_net()
    net.register("a", lambda m: None)
    net.register("b", lambda m: None)
    net.set_node_up("b", False)
    failures = []
    net.send("a", "b", "ping", on_fail=lambda m, r: failures.append(r))
    sim.run_until_idle()
    assert failures == ["peer-down"]


def test_crashed_sender_drops_silently():
    sim, net = make_net()
    got = []
    net.register("a", lambda m: None)
    net.register("b", got.append)
    net.set_node_up("a", False)
    net.send("a", "b", "ping")
    sim.run_until_idle()
    assert got == []
    assert net.messages_failed == 1


def test_peer_crash_in_flight():
    sim, net = make_net()
    net.register("a", lambda m: None)
    net.register("b", lambda m: None)
    failures = []
    net.send("a", "b", "ping", on_fail=lambda m, r: failures.append(r))
    net.set_node_up("b", False)  # crashes before delivery completes
    sim.run_until_idle()
    assert failures == ["peer-down"]


def test_bandwidth_serializes_transmissions():
    # Two 10 kB messages over a 10 kbit/s link: the second waits for the
    # first's transmission slot.
    sim, net = make_net(bandwidth_bps=1e4)
    arrivals = []
    net.register("a", lambda m: None)
    net.register("b", lambda m: arrivals.append(sim.now))
    net.send("a", "b", "x", size_bytes=10_000 - HEADER_BYTES)
    net.send("a", "b", "y", size_bytes=10_000 - HEADER_BYTES)
    sim.run_until_idle()
    assert len(arrivals) == 2
    assert arrivals[1] - arrivals[0] == pytest.approx(8.0, rel=0.05)


def test_link_stats_accumulate():
    sim, net = make_net(record_link_delays=True)
    net.register("a", lambda m: None)
    net.register("b", lambda m: None)
    net.send("a", "b", "x", tuples=3, size_bytes=100)
    net.send("a", "b", "y", tuples=2, size_bytes=100)
    sim.run_until_idle()
    stats = net.link_stats[("a", "b")]
    assert stats.messages == 2
    assert stats.tuples == 5
    assert stats.bytes == 2 * (100 + HEADER_BYTES)
    assert len(stats.delay_samples) == 2


def test_colocated_nodes_lan_latency():
    sim, net = make_net()  # no sites -> LAN delays
    times = []
    net.register("a", lambda m: None)
    net.register("b", lambda m: times.append(sim.now))
    net.send("a", "b", "x")
    sim.run_until_idle()
    assert times[0] < 0.005


def test_wan_latency_uses_sites():
    ny = Site("NY", 40.7, -74.0, "t")
    ldn = Site("LDN", 51.5, -0.1, "t")
    sim = Simulator(seed=2)
    net = SimNetwork(sim, {"NY": ny, "LDN": ldn})
    times = []
    net.register("NY", lambda m: None)
    net.register("LDN", lambda m: times.append(sim.now))
    net.send("NY", "LDN", "x")
    sim.run_until_idle()
    assert times[0] > 0.02


def test_draw_block_wan_delays_stay_in_model_support():
    # Block-drawn jitters are a different (numpy) stream from the stdlib
    # RNG, but they must sample the same model: every WAN delay is at
    # least base_s + transmission, and positive jitter keeps it finite.
    ny = Site("NY", 40.7, -74.0, "t")
    ldn = Site("LDN", 51.5, -0.1, "t")
    sim = Simulator(seed=3)
    net = SimNetwork(
        sim, {"NY": ny, "LDN": ldn},
        draw_block=8, record_link_delays=True, link_delay_sample_cap=None,
    )
    net.register("NY", lambda m: None)
    net.register("LDN", lambda m: None)
    for _ in range(100):  # > draw_block, so refills happen mid-run
        net.send("NY", "LDN", "x")
    sim.run_until_idle()
    delays = [d for _, d in net.link_stats[("NY", "LDN")].delay_samples]
    assert len(delays) == 100
    assert all(d >= net.latency.base_s for d in delays)


def test_draw_block_lan_delays_stay_in_model_support():
    sim, net = make_net(
        draw_block=8, record_link_delays=True, link_delay_sample_cap=None
    )
    net.register("a", lambda m: None)
    net.register("b", lambda m: None)
    for _ in range(100):
        net.send("a", "b", "x")
    sim.run_until_idle()
    # LAN latency is uniform on [0.5ms, 1ms); the recorded delay adds
    # transmission and queueing (all 100 sends share one link), so only
    # the floor and the unqueued first message bound it from both sides.
    delays = [d for _, d in net.link_stats[("a", "b")].delay_samples]
    assert len(delays) == 100
    assert all(d >= 0.0005 for d in delays)
    assert delays[0] < 0.002


def test_draw_block_validated():
    with pytest.raises(ValueError):
        make_net(draw_block=-1)


def test_link_delay_samples_bounded_by_cap():
    sim, net = make_net(record_link_delays=True, link_delay_sample_cap=16)
    net.register("a", lambda msg: None)
    net.register("b", lambda msg: None)
    for _ in range(500):
        net.send("a", "b", "k")
    stats = net.link_stats[("a", "b")]
    assert stats.messages == 500
    assert len(stats.delay_samples) < 16
    assert stats.delay_sample_stride > 1
    # Decimation keeps the series in send order (the Fig 8/12 shape).
    times = [t for t, _ in stats.delay_samples]
    assert times == sorted(times)


def test_link_delay_samples_unbounded_when_cap_disabled():
    sim, net = make_net(record_link_delays=True, link_delay_sample_cap=None)
    net.register("a", lambda msg: None)
    net.register("b", lambda msg: None)
    for _ in range(300):
        net.send("a", "b", "k")
    stats = net.link_stats[("a", "b")]
    assert len(stats.delay_samples) == 300
    assert stats.delay_sample_stride == 1


def test_link_delay_sample_cap_validated():
    with pytest.raises(ValueError):
        make_net(record_link_delays=True, link_delay_sample_cap=1)


# ----------------------------------------------------------------------
# Link-level delivery coalescing
# ----------------------------------------------------------------------


def test_coalesced_window_validated():
    with pytest.raises(ValueError):
        make_net(coalesce_window_s=-0.001)


def test_coalesced_batch_delivers_all_messages_at_window_boundary():
    sim, net = make_net(coalesce_window_s=0.05)
    arrivals = []
    net.register("a", lambda m: None)
    net.register("b", lambda m: arrivals.append((sim.now, m.kind)))
    for i in range(5):
        net.send("a", "b", f"k{i}")
    sim.run_until_idle()
    assert [kind for _, kind in arrivals] == [f"k{i}" for i in range(5)]
    assert net.messages_delivered == 5
    # All five LAN deliveries land in the first window and drain together
    # at its boundary — one simulated instant, one drain event.
    times = {t for t, _ in arrivals}
    assert len(times) == 1
    assert next(iter(times)) == pytest.approx(0.05)


def test_coalescing_batches_only_same_link_and_window():
    sim, net = make_net(coalesce_window_s=0.05)
    arrivals = []
    net.register("a", lambda m: None)
    net.register("b", lambda m: arrivals.append(("b", sim.now)))
    net.register("c", lambda m: arrivals.append(("c", sim.now)))
    net.send("a", "b", "x")
    net.send("a", "c", "x")  # different link, same window
    sim.schedule_at(0.07, net.send, "a", "b", "x")  # same link, later window
    sim.run_until_idle()
    assert len(arrivals) == 3
    assert arrivals[0][1] == arrivals[1][1] == pytest.approx(0.05)
    assert arrivals[2] == ("b", pytest.approx(0.10))


def test_coalesced_drain_fails_exactly_the_undelivered_messages():
    # Satellite: the destination dies between two windows of a stream.
    # The already-drained window's messages were delivered; every message
    # still in the outbox fails with its *own* on_fail — per message, not
    # per batch, and nothing on other links is touched.
    sim, net = make_net(coalesce_window_s=0.05)
    delivered = []
    failures = []
    net.register("a", lambda m: None)
    net.register("b", lambda m: delivered.append(m.kind))
    net.register("c", lambda m: delivered.append(m.kind))

    def fail(m, reason):
        failures.append((m.kind, reason))

    net.send("a", "b", "early1", on_fail=fail)
    net.send("a", "b", "early2", on_fail=fail)
    sim.schedule_at(0.06, lambda: net.send("a", "b", "late1", on_fail=fail))
    sim.schedule_at(0.06, lambda: net.send("a", "b", "late2", on_fail=fail))
    sim.schedule_at(0.06, lambda: net.send("a", "c", "other", on_fail=fail))
    sim.schedule_at(0.08, net.set_node_up, "b", False)
    sim.run_until_idle()

    assert sorted(delivered) == ["early1", "early2", "other"]
    assert sorted(failures) == [("late1", "peer-down"), ("late2", "peer-down")]
    assert net.messages_delivered == 3
    assert net.messages_failed == 2


def test_coalesced_link_stats_match_per_message_accounting():
    sim, net = make_net(coalesce_window_s=0.05, record_link_delays=True)
    net.register("a", lambda m: None)
    net.register("b", lambda m: None)
    for _ in range(4):
        net.send("a", "b", "x", size_bytes=100, tuples=2)
    sim.run_until_idle()
    stats = net.link_stats[("a", "b")]
    assert stats.messages == 4
    assert stats.tuples == 8
    assert stats.bytes == 4 * (100 + HEADER_BYTES)
    assert len(stats.delay_samples) == 4


# ----------------------------------------------------------------------
# unregister() link-state pruning
# ----------------------------------------------------------------------


def test_unregister_prunes_link_state():
    # Regression: unregister used to leave _link_busy_until,
    # _link_down_until and link_stats entries behind for every link the
    # departed node ever touched — unbounded growth under 1k-node churn.
    sim, net = make_net()
    net.register("a", lambda m: None)
    net.register("b", lambda m: None)
    net.send("a", "b", "ping")
    net.send("b", "a", "ping")
    sim.run_until_idle()
    assert ("a", "b") in net.link_stats and ("b", "a") in net.link_stats
    net.set_link_down("a", "b", duration_s=60.0)

    net.unregister("b")

    assert all("b" not in key for key in net.link_stats)
    assert all("b" not in key for key in net._link_down_until)
    assert "b" not in net._link_ids
    assert all("b" not in by_dst for by_dst in net._link_ids.values())
    # The interned slots go back on the free list for new links to reuse.
    assert len(net._free_ids) == 2


def test_unregister_retain_stats_keeps_accounting():
    sim, net = make_net()
    net.register("a", lambda m: None)
    net.register("b", lambda m: None)
    net.send("a", "b", "ping", size_bytes=1000, tuples=3)
    sim.run_until_idle()
    before = net.link_stats[("a", "b")]
    assert before.messages == 1 and before.tuples == 3

    net.unregister("b", retain_stats=True)

    after = net.link_stats[("a", "b")]
    assert after.messages == before.messages
    assert after.bytes == before.bytes
    assert after.tuples == before.tuples
    # Transmission state still resets: a re-registered "b" starts with
    # idle links instead of inheriting a stale busy-until horizon.
    link_id = net._link_ids["a"]["b"]
    assert net._lk_busy_until[link_id] == 0.0


def test_unregister_freed_link_ids_are_reused():
    sim, net = make_net()
    for name in ("a", "b", "c"):
        net.register(name, lambda m: None)
    net.send("a", "b", "ping")
    sim.run_until_idle()
    net.unregister("b")
    freed = len(net._free_ids)
    assert freed == 1
    net.send("a", "c", "ping")
    sim.run_until_idle()
    assert not net._free_ids, "a fresh link should reuse the freed slot"
    assert net.link_stats[("a", "c")].messages == 1


# ----------------------------------------------------------------------
# unregister() vs pending coalesced state
# ----------------------------------------------------------------------


def test_unregister_flushes_pending_coalesced_batches():
    # Regression: unregister freed a departed node's link ids but left its
    # pending coalesced batches in _outbox/_slot_links, keyed by the freed
    # ids.  Batches must be re-homed at unregister time: the outbox holds
    # nothing for freed links, each message still resolves individually at
    # the same drain boundary, and the stale drain event no-ops.
    sim, net = make_net(coalesce_window_s=0.05)
    delivered = []
    failures = []
    net.register("a", lambda m: delivered.append(m.kind))
    net.register("b", lambda m: delivered.append(m.kind))
    net.send("a", "b", "to-b", on_fail=lambda m, r: failures.append((m.kind, r)))
    net.send("b", "a", "from-b")
    assert net._outbox  # both sends are pending in the first window

    net.unregister("b")

    assert net._outbox == {}
    assert net._slot_links == {}
    sim.run_until_idle()  # the already-scheduled drain event must no-op
    assert delivered == ["from-b"]  # in-flight traffic *from* b still lands
    assert failures == [("to-b", "peer-down")]
    assert net.messages_delivered == 1
    assert net.messages_failed == 1


def test_reinterned_link_does_not_inherit_stale_batches():
    # Regression: a freed link id re-interned by a new (src, dst) pair in
    # the same window used to find the dead link's batch under its own
    # (link_id, slot) key and merge into it.  The new link must start with
    # a batch of its own messages only.
    sim, net = make_net(coalesce_window_s=0.05)
    delivered = []
    failures = []
    net.register("a", lambda m: None)
    net.register("b", lambda m: None)
    net.send("a", "b", "stale", on_fail=lambda m, r: failures.append((m.kind, r)))
    net.unregister("b")
    net.register("d", lambda m: delivered.append(m.kind))
    net.send("a", "d", "fresh")
    # (a, d) reuses the freed id and its first window is the stale batch's
    # slot; post-flush it must be the only pending batch, of one message.
    assert len(net._outbox) == 1
    ((batch),) = net._outbox.values()
    assert [m.kind for m, _ in batch] == ["fresh"]

    sim.run_until_idle()
    assert delivered == ["fresh"]
    assert failures == [("stale", "peer-down")]
    assert net.messages_delivered == 1
    assert net.messages_failed == 1


def test_call_wheel_drains_after_unregister():
    # call_in_slot entries are time-keyed, not node-keyed: a callback
    # scheduled before its node unregistered still fires (stale callbacks
    # self-guard), and the wheel is empty at idle.
    sim, net = make_net(coalesce_window_s=0.05)
    fired = []
    net.register("a", lambda m: None)
    net.call_in_slot(0.02, fired.append, ("tick",))
    net.unregister("a")
    sim.run_until_idle()
    assert fired == ["tick"]
    assert net._call_wheel == {}


def test_resource_ledger_drains_through_unregister():
    # With tracking on, re-homed outbox entries release their ledger slots
    # when they resolve — run_until_idle's quiescence check passes even
    # when an endpoint unregisters with traffic still coalesced.
    from repro.sim import resources

    with resources.tracking(True), protocol.validation(False):
        sim = Simulator(seed=1)
        net = SimNetwork(sim, {}, coalesce_window_s=0.05)
        net.register("a", lambda m: None)
        net.register("b", lambda m: None)
        net.send("a", "b", "ping")
        net.send("b", "a", "pong")
        assert sim.resources.live() == 2  # both outbox entries registered
        net.unregister("b")
        sim.run_until_idle()  # would raise ResourceLeakError on residue
        assert sim.resources.live() == 0


# ----------------------------------------------------------------------
# Delay-sample decimation
# ----------------------------------------------------------------------


def test_decimation_realigns_phase_on_stride_doubling():
    # Regression: when cap-thinning doubled the stride, _delay_phase was
    # left counting from the pre-thinning grid, so the first sample after
    # a doubling drifted off the even-spacing grid the Fig 8/12 plots
    # assume.  Feed sends at t = send index; retained times must stay an
    # arithmetic progression at the current stride, for both parities of
    # the just-appended sample surviving the thinning (cap even/odd).
    for cap in (7, 8):
        stats = LinkStats()
        for send in range(100):
            stats.record_delay(float(send), 0.001, cap)
        times = [t for t, _ in stats.delay_samples]
        stride = stats.delay_sample_stride
        diffs = [b - a for a, b in zip(times, times[1:])]
        assert times[0] == 0.0
        assert diffs and all(d == stride for d in diffs), (cap, stride, times)
        assert len(times) <= cap


def test_decimation_spacing_property():
    from hypothesis import given, settings
    from hypothesis import strategies as st

    @settings(max_examples=60, deadline=None)
    @given(cap=st.integers(2, 33), n=st.integers(1, 400))
    def check(cap, n):
        stats = LinkStats()
        for send in range(n):
            stats.record_delay(float(send), 0.001, cap)
        times = [t for t, _ in stats.delay_samples]
        stride = stats.delay_sample_stride
        diffs = [b - a for a, b in zip(times, times[1:])]
        assert all(d == stride for d in diffs), (cap, n, stride, times)
        assert len(times) <= cap
        if times:
            assert times[0] == 0.0

    check()
