"""Unit tests for the wire-protocol registry and debug-mode validation."""

import pytest

from repro.net import protocol
from repro.net.message import Message
from repro.net.protocol import ProtocolError, validate_wire


def test_registry_covers_every_layer():
    layers = {decl.layer for decl in protocol.REGISTRY.values()}
    assert layers == {"overlay", "mind", "baseline"}
    assert all(decl.layer == "routed" for decl in protocol.ROUTED.values())


def test_registered_kind_with_exact_payload_passes():
    validate_wire("heartbeat", {"code": "010"})
    validate_wire("insert_ack", {"op_id": "a:1", "hops": 3})


def test_optional_keys_are_accepted_but_not_required():
    validate_wire("op_failed", {"kind": "insert", "op_id": "a:1"})
    validate_wire(
        "op_failed",
        {"kind": "subquery", "op_id": "a:1", "version": 0.0, "region_bits": "01", "attempt": 2},
    )


def test_unknown_kind_rejected():
    with pytest.raises(ProtocolError, match="unregistered message kind"):
        validate_wire("heartbeet", {"code": "010"})


def test_missing_required_key_rejected():
    with pytest.raises(ProtocolError, match="missing required"):
        validate_wire("heartbeat", {})


def test_undeclared_key_rejected():
    with pytest.raises(ProtocolError, match="undeclared"):
        validate_wire("heartbeat", {"code": "010", "cod": "typo"})


def test_route_envelope_checks_inner_kind():
    envelope = {
        "target": "01",
        "inner_kind": "adopt_probe",
        "inner": {"claimant": "a", "probe": "01"},
        "op_id": 1,
        "origin": "a",
        "hops": 0,
        "path": ["a"],
        "exclude": [],
        "attempt": 1,
        "tuples": 0,
    }
    validate_wire("route", envelope)
    envelope["inner_kind"] = "adopt_prob"
    with pytest.raises(ProtocolError, match="unregistered routed kind"):
        validate_wire("route", envelope)
    envelope["inner_kind"] = "adopt_probe"
    envelope["inner"] = {"claimant": "a"}
    with pytest.raises(ProtocolError, match="missing required"):
        validate_wire("route", envelope)


def test_message_construction_validates_when_enabled():
    with protocol.validation(True):
        Message("a", "b", "heartbeat", {"code": "0"})
        with pytest.raises(ProtocolError):
            Message("a", "b", "heartbeat", {"cod": "0"})
    with protocol.validation(False):
        Message("a", "b", "totally-made-up", {"whatever": 1})


def test_validation_toggle_restores_previous_state():
    before = protocol.validation_enabled()
    with protocol.validation(not before):
        assert protocol.validation_enabled() is not before
    assert protocol.validation_enabled() is before
