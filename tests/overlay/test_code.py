"""Unit and property tests for binary node codes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.overlay.code import Code

bits_st = st.text(alphabet="01", max_size=24)


def test_empty_code():
    c = Code()
    assert len(c) == 0
    assert str(c) == "ε"
    with pytest.raises(ValueError):
        c.sibling()
    with pytest.raises(ValueError):
        c.shorten()


def test_invalid_bits_rejected():
    with pytest.raises(ValueError):
        Code("012")


def test_immutable():
    c = Code("01")
    with pytest.raises(AttributeError):
        c.bits = "10"


def test_prefix_relations():
    assert Code("0").is_prefix_of(Code("01"))
    assert not Code("01").is_prefix_of(Code("0"))
    assert Code("").is_prefix_of(Code("1101"))
    assert Code("01").comparable(Code("0"))
    assert not Code("01").comparable(Code("00"))


def test_common_prefix_len():
    assert Code("0101").common_prefix_len(Code("0110")) == 2
    assert Code("0101").common_prefix_len(Code("0101")) == 4
    assert Code("").common_prefix_len(Code("111")) == 0


def test_first_diff():
    assert Code("0101").first_diff(Code("0110")) == 2
    assert Code("01").first_diff(Code("0100")) == -1


def test_sibling_and_shorten():
    assert Code("0100").sibling() == Code("0101")
    assert Code("0101").sibling() == Code("0100")
    assert Code("0101").shorten() == Code("010")


def test_flip():
    assert Code("0000").flip(1) == Code("0100")
    with pytest.raises(IndexError):
        Code("00").flip(2)


def test_prefix():
    assert Code("0101").prefix(2) == Code("01")
    with pytest.raises(ValueError):
        Code("01").prefix(3)


def test_extend():
    assert Code("01").extend("1") == Code("011")
    with pytest.raises(ValueError):
        Code("01").extend("x")


def test_hash_and_eq():
    assert Code("01") == Code("01")
    assert hash(Code("01")) == hash(Code("01"))
    assert Code("01") != Code("10")
    assert len({Code("0"), Code("0"), Code("1")}) == 2


@given(bits_st)
def test_sibling_involution(bits):
    if bits:
        c = Code(bits)
        assert c.sibling().sibling() == c
        assert c.sibling() != c
        assert c.sibling().shorten() == c.shorten()


@given(bits_st, bits_st)
def test_common_prefix_symmetry(a, b):
    ca, cb = Code(a), Code(b)
    assert ca.common_prefix_len(cb) == cb.common_prefix_len(ca)
    cpl = ca.common_prefix_len(cb)
    assert a[:cpl] == b[:cpl]


@given(bits_st, bits_st)
def test_comparable_iff_full_prefix_match(a, b):
    ca, cb = Code(a), Code(b)
    assert ca.comparable(cb) == (ca.common_prefix_len(cb) == min(len(a), len(b)))
