"""Integration tests for the randomized join protocol."""

import pytest

from repro.net.message import Message
from repro.overlay.code import Code
from repro.overlay.join import PendingPrepare
from repro.overlay.node import OverlayConfig

from tests.helpers import assert_prefix_free_cover, build_overlay


def overlay_codes(nodes):
    return [n.code for n in nodes if n.in_overlay()]


def test_root_gets_empty_code():
    sim, network, nodes = build_overlay(1)
    assert nodes[0].code == Code("")


def test_two_nodes_split_root():
    sim, network, nodes = build_overlay(2)
    codes = sorted(c.bits for c in overlay_codes(nodes))
    assert codes == ["0", "1"]
    assert_prefix_free_cover(overlay_codes(nodes))


@pytest.mark.parametrize("count", [3, 5, 8, 16, 21])
def test_sequential_joins_keep_cover_invariant(count):
    sim, network, nodes = build_overlay(count, seed=count)
    assert all(n.in_overlay() for n in nodes)
    assert_prefix_free_cover(overlay_codes(nodes))


@pytest.mark.parametrize("count,seed", [(8, 1), (16, 2), (34, 3)])
def test_concurrent_joins_converge(count, seed):
    sim, network, nodes = build_overlay(count, seed=seed, concurrent=True)
    assert all(n.in_overlay() for n in nodes)
    assert_prefix_free_cover(overlay_codes(nodes))


def test_balanced_with_high_probability():
    # Code lengths should stay within a small band of log2(N); Adler's
    # procedure guarantees balance w.h.p., and at 32 nodes sequentially
    # joined the spread should be modest.
    sim, network, nodes = build_overlay(32, seed=9)
    lengths = [len(n.code) for n in nodes]
    assert max(lengths) - min(lengths) <= 3
    assert min(lengths) >= 3


def test_neighbor_tables_are_symmetricish():
    # Every node's links must point at live peers with correct codes.
    sim, network, nodes = build_overlay(12, seed=4)
    by_addr = {n.address: n for n in nodes}
    for node in nodes:
        for addr, code in node.links():
            assert by_addr[addr].code == code, (
                f"{node.address} thinks {addr} has {code}, actual {by_addr[addr].code}"
            )


def test_every_node_has_full_dimension_links():
    sim, network, nodes = build_overlay(16, seed=5)
    for node in nodes:
        for dim in range(len(node.code)):
            assert node.neighbors.dimension_neighbors(node.code, dim), (
                f"{node.address} ({node.code}) missing dim-{dim} neighbor"
            )


def _prepare_msg(host, neighbor, round_id):
    return Message(
        src=host.address,
        dst=neighbor.address,
        kind="split_prepare",
        payload={
            "host": host.address,
            "host_code": host.code.bits,
            "joiner": "ghost-joiner",
            "round": round_id,
        },
    )


def test_newer_round_from_same_host_supersedes_stale_pending():
    # Per-message latencies are independent, so a round's split_abort can
    # arrive *before* its own split_prepare: the late prepare then installs
    # a pending that no future abort matches.  Since a same-host prepare
    # carries the *same* priority, the stale pending used to nack every
    # newer round from its own host forever — at 1000 nodes this livelocks
    # the join (seed 7 reproduces it).  A newer round id from the same host
    # proves the old round is dead and must supersede the stale pending.
    sim, network, nodes = build_overlay(3, seed=1)
    host, neighbor = nodes[0], nodes[2]
    sent = []
    neighbor._send = lambda dst, kind, payload=None, **kw: sent.append((dst, kind, payload))

    neighbor._pending_prepare = PendingPrepare(
        host=host.address, host_code=host.code, joiner="ghost-joiner", round_id=5
    )
    neighbor._on_split_prepare(_prepare_msg(host, neighbor, round_id=6))

    assert neighbor._pending_prepare.round_id == 6
    assert sent == [(host.address, "split_ack", {"round": 6})]


def test_stale_prepare_from_dead_round_is_nacked():
    # The mirror-image reorder: the *older* round's prepare arrives after a
    # newer round is already pending.  The old round is dead; refuse it and
    # keep the live pending.
    sim, network, nodes = build_overlay(3, seed=1)
    host, neighbor = nodes[0], nodes[2]
    sent = []
    neighbor._send = lambda dst, kind, payload=None, **kw: sent.append((dst, kind, payload))

    neighbor._pending_prepare = PendingPrepare(
        host=host.address, host_code=host.code, joiner="ghost-joiner", round_id=6
    )
    neighbor._on_split_prepare(_prepare_msg(host, neighbor, round_id=5))

    assert neighbor._pending_prepare.round_id == 6
    assert sent == [(host.address, "split_nack", {"round": 5})]


def test_abort_clears_older_pending_from_same_host():
    # An abort for round r invalidates any same-host pending with round <= r
    # (rounds are serialized per host), so a reordered older pending cannot
    # outlive the newer round's abort.
    sim, network, nodes = build_overlay(3, seed=1)
    host, neighbor = nodes[0], nodes[2]
    neighbor._pending_prepare = PendingPrepare(
        host=host.address, host_code=host.code, joiner="ghost-joiner", round_id=5
    )
    abort = Message(
        src=host.address,
        dst=neighbor.address,
        kind="split_abort",
        payload={"host": host.address, "round": 6},
    )
    neighbor._on_split_abort(abort)
    assert neighbor._pending_prepare is None


def test_rejoin_after_crash():
    sim, network, nodes = build_overlay(6, seed=6)
    victim = nodes[3]
    network.set_node_up(victim.address, False)
    victim.crash()
    sim.run_until(sim.now + 5.0)
    network.set_node_up(victim.address, True)
    victim.restore()
    ok = sim.run_until_predicate(victim.in_overlay, timeout=120.0)
    assert ok
    live = [n for n in nodes if n.in_overlay()]
    assert len(live) == 6
