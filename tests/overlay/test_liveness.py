"""Liveness mechanics: heartbeats, witness probes, false-positive safety."""

from repro.overlay.code import Code
from repro.overlay.node import OverlayConfig

from tests.helpers import build_overlay


def live_cfg(**kwargs):
    defaults = dict(liveness_enabled=True, hb_interval_s=2.0, hb_timeout_s=7.0, adoption_delay_s=2.0)
    defaults.update(kwargs)
    return OverlayConfig(**defaults)


def test_heartbeats_flow_between_links():
    sim, network, nodes = build_overlay(6, seed=131, config=live_cfg())
    before = network.messages_sent
    sim.run_until(sim.now + 20.0)
    assert network.messages_sent > before + 6 * 5  # several rounds of beats


def test_no_false_death_declarations_when_healthy():
    sim, network, nodes = build_overlay(10, seed=132, config=live_cfg())
    sim.run_until(sim.now + 60.0)
    assert all(n.takeovers == 0 for n in nodes)
    for node in nodes:
        for addr, _ in node.links():
            assert node.neighbors.is_alive(addr)


def test_dead_peer_marked_dead_at_neighbors():
    sim, network, nodes = build_overlay(8, seed=133, config=live_cfg())
    victim = nodes[2]
    neighbors = [a for a, _ in victim.links()]
    network.set_node_up(victim.address, False)
    victim.crash()
    sim.run_until(sim.now + 40.0)
    by_addr = {n.address: n for n in nodes}
    for addr in neighbors:
        peer = by_addr[addr]
        assert not peer.neighbors.is_alive(victim.address), (
            f"{addr} still believes {victim.address} is alive"
        )


def test_transient_link_break_does_not_kill_peer():
    # A broken direct link is not a dead peer: the witness probe attests
    # liveness and no takeover happens.
    sim, network, nodes = build_overlay(8, seed=134, config=live_cfg(hb_timeout_s=6.0))
    a = nodes[1]
    links = a.links()
    assert links
    b_addr = links[0][0]
    network.set_link_down(a.address, b_addr, duration_s=15.0)
    sim.run_until(sim.now + 30.0)
    assert all(n.takeovers == 0 for n in nodes), "link break must not trigger takeover"


def test_hb_suppression_skips_heartbeats_for_active_links():
    # With piggybacking on, a node that keeps sending traffic to all its
    # links sends no explicit heartbeats -- and nobody gets suspected,
    # because every delivery refreshes the receiver's liveness clock.
    sim, network, nodes = build_overlay(6, seed=136, config=live_cfg(hb_suppress_s=2.0))
    beats = []
    orig_send = network.send_framed

    def counting_send(msg, tuples=0, on_fail=None):
        if msg.kind == "heartbeat":
            beats.append((msg.src, msg.dst))
        return orig_send(msg, tuples, on_fail)

    # Nodes frame their own messages and enter the network at
    # ``send_framed``; patch that seam to observe overlay traffic.
    network.send_framed = counting_send

    def chatter():
        for n in nodes:
            for addr, _ in n.links():
                n._send(addr, "witness_ping", {"on_behalf": n.address}, size_bytes=96)
        sim.schedule(1.0, chatter)

    chatter()
    sim.run_until(sim.now + 20.0)
    assert beats == [], f"piggybacked links still sent {len(beats)} heartbeats"
    assert all(n.takeovers == 0 for n in nodes)
    for node in nodes:
        for addr, _ in node.links():
            assert node.neighbors.is_alive(addr)


def test_hb_suppression_resumes_on_idle_links():
    # Suppression is per-link recency, not a global off switch: with no
    # application traffic the heartbeats flow exactly as before.
    sim, network, nodes = build_overlay(6, seed=137, config=live_cfg(hb_suppress_s=2.0))
    before = network.messages_sent
    sim.run_until(sim.now + 20.0)
    assert network.messages_sent > before + 6 * 5
    for node in nodes:
        for addr, _ in node.links():
            assert node.neighbors.is_alive(addr)


def test_stale_neighbor_code_heals_via_heartbeat_echo():
    # Regression (found by REPRO_SCHEDULE_FUZZ=shuffle): when a peer
    # crashes and rejoins elsewhere in the code tree, a node that knew it
    # under the old code may no longer be hypercube-adjacent to the new
    # one.  The relocated peer then never heartbeats back, and witness
    # probes only attest that the *address* is alive — so the stale code
    # survived forever and greedy routing through it looped.  Heartbeats
    # now echo the code the sender believes the receiver holds, and a
    # mismatch triggers a corrective beacon that heals the entry.
    sim, network, nodes = build_overlay(8, seed=138, config=live_cfg())
    s = nodes[1]
    x_addr, x_old = s.links()[0]
    x = next(n for n in nodes if n.address == x_addr)
    # Relocate x to the bitwise complement of s's code: provably not
    # adjacent to s in either direction, so no regular heartbeat from x
    # will ever reach s — exactly the one-directional staleness the
    # shuffle run produced via crash + rejoin.
    relocated = Code("".join("1" if b == "0" else "0" for b in s.code.bits))
    x._set_code(relocated, old_code=x_old)
    assert all(addr != s.address for addr, _ in x.links())
    sim.run_until(sim.now + 4 * 2.0)
    assert s.neighbors.code_of(x_addr) == relocated, (
        f"{s.address} still knows {x_addr} under stale code "
        f"{s.neighbors.code_of(x_addr)}"
    )


def test_heartbeat_echo_converges_without_ping_pong():
    # A corrective beacon carries the code the sender just learned, so a
    # single stale entry heals in one exchange: count the corrective
    # (off-schedule) heartbeats x sends back to s.
    sim, network, nodes = build_overlay(8, seed=139, config=live_cfg())
    s = nodes[2]
    x_addr, x_old = s.links()[0]
    x = next(n for n in nodes if n.address == x_addr)
    relocated = Code("".join("1" if b == "0" else "0" for b in s.code.bits))
    x._set_code(relocated, old_code=x_old)
    beats = []
    orig_send = network.send_framed

    def counting_send(msg, tuples=0, on_fail=None):
        if msg.kind == "heartbeat" and msg.src == x.address and msg.dst == s.address:
            beats.append(msg.payload)
        return orig_send(msg, tuples, on_fail)

    # Nodes frame their own messages and enter the network at
    # ``send_framed``; patch that seam to observe overlay traffic.
    network.send_framed = counting_send
    sim.run_until(sim.now + 10 * 2.0)
    assert s.neighbors.code_of(x_addr) == relocated
    # One corrective beacon heals the entry; after that s's heartbeats
    # carry the right peer_code and x stays silent toward s.
    assert 1 <= len(beats) <= 2, f"{len(beats)} corrective beacons"


def test_cover_restored_after_death():
    sim, network, nodes = build_overlay(10, seed=135, config=live_cfg())
    victim = nodes[4]
    network.set_node_up(victim.address, False)
    victim.crash()
    sim.run_until(sim.now + 90.0)
    live = [n for n in nodes if n.in_overlay()]
    covered = sum(2.0 ** -len(n.code) for n in live)
    covered += sum(2.0 ** -len(r) for n in live for r in n.adopted)
    assert covered >= 1.0 - 1e-9, "the dead region must be re-homed"
