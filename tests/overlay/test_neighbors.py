"""Unit tests for the neighbor table and hypercube link semantics."""

import pytest

from repro.overlay.code import Code
from repro.overlay.neighbors import NeighborTable


def table_of(entries):
    table = NeighborTable()
    for addr, bits in entries:
        table.upsert(addr, Code(bits))
    return table


def test_upsert_and_lookup():
    t = table_of([("a", "00"), ("b", "01")])
    assert "a" in t
    assert t.code_of("a") == Code("00")
    assert t.is_alive("a")
    assert len(t) == 2


def test_mark_dead_and_alive():
    t = table_of([("a", "00")])
    t.mark_dead("a")
    assert not t.is_alive("a")
    assert t.entries(alive_only=True) == []
    t.mark_alive("a")
    assert t.is_alive("a")


def test_remove():
    t = table_of([("a", "00")])
    t.remove("a")
    assert "a" not in t
    t.remove("ghost")  # idempotent


def test_dimension_neighbors_balanced():
    # Node 00 in a balanced 4-cube: dim-0 neighbor is 10, dim-1 is 01.
    t = table_of([("n01", "01"), ("n10", "10"), ("n11", "11")])
    me = Code("00")
    dim0 = t.dimension_neighbors(me, 0)
    dim1 = t.dimension_neighbors(me, 1)
    assert [a for a, _ in dim0] == ["n10"]
    assert [a for a, _ in dim1] == ["n01"]


def test_dimension_neighbors_deeper_opposite_subtree():
    # Node 00 with the opposite dim-1 subtree split one level deeper links
    # to both 010 and 011 (suffixes comparable with the empty suffix).
    t = table_of([("n010", "010"), ("n011", "011"), ("n1", "1")])
    me = Code("00")
    dim1 = {a for a, _ in t.dimension_neighbors(me, 1)}
    assert dim1 == {"n010", "n011"}


def test_dimension_neighbors_suffix_filter():
    # Node 000's dim-0 neighbor must agree on the suffix "00": 100
    # qualifies, 101 and 110 do not.
    t = table_of([("n100", "100"), ("n101", "101"), ("n110", "110")])
    me = Code("000")
    dim0 = {a for a, _ in t.dimension_neighbors(me, 0)}
    assert dim0 == {"n100"}


def test_dimension_neighbors_shorter_peer_covers():
    # A peer with code "1" covers the whole opposite half of node 000.
    t = table_of([("big", "1")])
    dim0 = {a for a, _ in t.dimension_neighbors(Code("000"), 0)}
    assert dim0 == {"big"}


def test_dimension_out_of_range():
    t = table_of([])
    with pytest.raises(IndexError):
        t.dimension_neighbors(Code("00"), 2)


def test_hypercube_neighbors_union():
    t = table_of([("n01", "01"), ("n10", "10"), ("n11", "11")])
    links = {a for a, _ in t.hypercube_neighbors(Code("00"))}
    assert links == {"n01", "n10"}


def test_best_toward():
    t = table_of([("a", "00"), ("b", "010"), ("c", "011")])
    best = t.best_toward(Code("0111"))
    assert best[0] == "c"
    assert t.best_toward(Code("0111"), exclude=["c"])[0] == "b"


def test_best_toward_empty():
    assert table_of([]).best_toward(Code("01")) is None


def test_prune_to_neighborhood():
    t = table_of([("n01", "01"), ("n10", "10"), ("n11", "11"), ("far", "111001")])
    t.prune_to_neighborhood(Code("00"))
    assert "n01" in t and "n10" in t
    assert "far" not in t
