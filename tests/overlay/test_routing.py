"""Greedy routing, dead-end recovery and takeover tests."""

from typing import Any, Dict, List

import pytest

from repro.net import protocol
from repro.overlay.code import Code
from repro.overlay.node import OverlayConfig, OverlayNode
from repro.overlay.routing import next_hop

from tests.helpers import build_overlay


@pytest.fixture(autouse=True)
def _adhoc_routed_kinds():
    # These tests route a synthetic "probe" inner kind to exercise the
    # overlay routing machinery in isolation from the application protocol.
    with protocol.validation(False):
        yield


class RecordingNode(OverlayNode):
    """Overlay node that records routed-message arrivals and failures."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.arrivals: List[Dict[str, Any]] = []
        self.failures: List[Dict[str, Any]] = []

    def on_route_arrival(self, envelope):
        self.arrivals.append(envelope)

    def on_route_failed(self, envelope, reason):
        self.failures.append({"envelope": envelope, "reason": reason})


def find_owner(nodes, target: Code):
    owners = [n for n in nodes if n.in_overlay() and n.covers(target)]
    assert len(owners) == 1, f"{len(owners)} owners for {target}"
    return owners[0]


def test_next_hop_arrival_when_comparable():
    decision = next_hop(Code("01"), Code("0110"), links=[])
    assert decision.arrived


def test_next_hop_picks_longest_match():
    links = [("a", Code("10")), ("b", Code("110")), ("c", Code("111"))]
    decision = next_hop(Code("0"), Code("1101"), links)
    assert decision.next_hop == "b"


def test_next_hop_dead_end():
    decision = next_hop(Code("0"), Code("1101"), links=[], exclude=[])
    assert not decision.arrived
    assert decision.next_hop is None


def test_all_pairs_routing_delivers_to_owner():
    sim, network, nodes = build_overlay(16, seed=11, node_cls=RecordingNode)
    op = 0
    expected = []
    for src in nodes:
        for dst in nodes:
            target = dst.code
            op += 1
            expected.append((dst, op))
            src.route(target, "probe", {"n": op}, op_id=("t", op))
    sim.run_until(sim.now + 120.0)
    for dst, op in expected:
        assert any(env["inner"]["n"] == op for env in dst.arrivals), (
            f"op {op} did not arrive at {dst.address}"
        )


def test_routing_hop_count_bounded_by_code_length():
    sim, network, nodes = build_overlay(32, seed=12, node_cls=RecordingNode)
    max_len = max(len(n.code) for n in nodes)
    for i, src in enumerate(nodes):
        src.route(nodes[-1 - i % len(nodes)].code, "probe", {"i": i}, op_id=("h", i))
    sim.run_until(sim.now + 120.0)
    for node in nodes:
        for env in node.arrivals:
            assert env["hops"] <= max_len


def test_routing_to_deep_target_code():
    # Targets deeper than any node code (data-item codes) must land on the
    # unique owner whose code is a prefix of the target.
    sim, network, nodes = build_overlay(16, seed=13, node_cls=RecordingNode)
    target = Code(nodes[5].code.bits + "0110")
    owner = find_owner(nodes, target)
    assert owner is nodes[5]
    nodes[0].route(target, "probe", {"deep": True}, op_id="deep1")
    sim.run_until(sim.now + 60.0)
    assert any(env["inner"].get("deep") for env in owner.arrivals)


def test_route_around_transient_link_failure():
    sim, network, nodes = build_overlay(16, seed=14, node_cls=RecordingNode)
    src, dst = nodes[0], nodes[9]
    # Kill the first-hop link the greedy route would take.
    decision = next_hop(src.code, dst.code, src.links())
    assert decision.next_hop is not None
    network.set_link_down(src.address, decision.next_hop, duration_s=30.0)
    src.route(dst.code, "probe", {"x": 1}, op_id="transient")
    sim.run_until(sim.now + 60.0)
    assert any(env["inner"].get("x") == 1 for env in dst.arrivals)


def test_sibling_takeover_after_node_death():
    cfg = OverlayConfig(liveness_enabled=True, hb_interval_s=2.0, hb_timeout_s=7.0)
    sim, network, nodes = build_overlay(8, seed=15, node_cls=RecordingNode, config=cfg)
    victim = nodes[3]
    sibling_code = victim.code.sibling()
    siblings = [n for n in nodes if n.code == sibling_code]
    victim_code = victim.code
    network.set_node_up(victim.address, False)
    victim.crash()
    sim.run_until(sim.now + 60.0)
    if siblings:
        assert siblings[0].code == victim_code.shorten()
    live_covering = [n for n in nodes if n.in_overlay() and n.covers(victim_code)]
    assert live_covering, "dead region was never taken over"


def test_routing_still_works_after_takeover():
    cfg = OverlayConfig(liveness_enabled=True, hb_interval_s=2.0, hb_timeout_s=7.0)
    sim, network, nodes = build_overlay(12, seed=16, node_cls=RecordingNode, config=cfg)
    victim = nodes[5]
    victim_code = victim.code
    network.set_node_up(victim.address, False)
    victim.crash()
    sim.run_until(sim.now + 90.0)
    src = nodes[0] if nodes[0] is not victim else nodes[1]
    src.route(Code(victim_code.bits + "01"), "probe", {"after": 1}, op_id="post-takeover")
    sim.run_until(sim.now + 90.0)
    arrived = [
        n for n in nodes
        if n is not victim and any(env["inner"].get("after") == 1 for env in n.arrivals)
    ]
    assert arrived, "message to dead region was not re-homed"
