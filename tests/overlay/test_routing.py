"""Greedy routing, dead-end recovery and takeover tests."""

from typing import Any, Dict, List

import pytest

from repro.net import protocol
from repro.overlay.code import Code
from repro.overlay.node import OverlayConfig, OverlayNode
from repro.overlay.routing import next_hop

from tests.helpers import build_overlay


@pytest.fixture(autouse=True)
def _adhoc_routed_kinds():
    # These tests route a synthetic "probe" inner kind to exercise the
    # overlay routing machinery in isolation from the application protocol.
    with protocol.validation(False):
        yield


class RecordingNode(OverlayNode):
    """Overlay node that records routed-message arrivals and failures."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.arrivals: List[Dict[str, Any]] = []
        self.failures: List[Dict[str, Any]] = []

    def on_route_arrival(self, envelope):
        self.arrivals.append(envelope)

    def on_route_failed(self, envelope, reason):
        self.failures.append({"envelope": envelope, "reason": reason})


def find_owner(nodes, target: Code):
    owners = [n for n in nodes if n.in_overlay() and n.covers(target)]
    assert len(owners) == 1, f"{len(owners)} owners for {target}"
    return owners[0]


def test_next_hop_arrival_when_comparable():
    decision = next_hop(Code("01"), Code("0110"), links=[])
    assert decision.arrived


def test_next_hop_picks_longest_match():
    links = [("a", Code("10")), ("b", Code("110")), ("c", Code("111"))]
    decision = next_hop(Code("0"), Code("1101"), links)
    assert decision.next_hop == "b"


def test_next_hop_dead_end():
    decision = next_hop(Code("0"), Code("1101"), links=[], exclude=[])
    assert not decision.arrived
    assert decision.next_hop is None


def test_all_pairs_routing_delivers_to_owner():
    sim, network, nodes = build_overlay(16, seed=11, node_cls=RecordingNode)
    op = 0
    expected = []
    for src in nodes:
        for dst in nodes:
            target = dst.code
            op += 1
            expected.append((dst, op))
            src.route(target, "probe", {"n": op}, op_id=("t", op))
    sim.run_until(sim.now + 120.0)
    for dst, op in expected:
        assert any(env["inner"]["n"] == op for env in dst.arrivals), (
            f"op {op} did not arrive at {dst.address}"
        )


def test_routing_hop_count_bounded_by_code_length():
    sim, network, nodes = build_overlay(32, seed=12, node_cls=RecordingNode)
    max_len = max(len(n.code) for n in nodes)
    for i, src in enumerate(nodes):
        src.route(nodes[-1 - i % len(nodes)].code, "probe", {"i": i}, op_id=("h", i))
    sim.run_until(sim.now + 120.0)
    for node in nodes:
        for env in node.arrivals:
            assert env["hops"] <= max_len


def test_routing_to_deep_target_code():
    # Targets deeper than any node code (data-item codes) must land on the
    # unique owner whose code is a prefix of the target.
    sim, network, nodes = build_overlay(16, seed=13, node_cls=RecordingNode)
    target = Code(nodes[5].code.bits + "0110")
    owner = find_owner(nodes, target)
    assert owner is nodes[5]
    nodes[0].route(target, "probe", {"deep": True}, op_id="deep1")
    sim.run_until(sim.now + 60.0)
    assert any(env["inner"].get("deep") for env in owner.arrivals)


def test_route_around_transient_link_failure():
    sim, network, nodes = build_overlay(16, seed=14, node_cls=RecordingNode)
    src, dst = nodes[0], nodes[9]
    # Kill the first-hop link the greedy route would take.
    decision = next_hop(src.code, dst.code, src.links())
    assert decision.next_hop is not None
    network.set_link_down(src.address, decision.next_hop, duration_s=30.0)
    src.route(dst.code, "probe", {"x": 1}, op_id="transient")
    sim.run_until(sim.now + 60.0)
    assert any(env["inner"].get("x") == 1 for env in dst.arrivals)


def _rig(codes):
    """A hand-built overlay with forged neighbor tables (no join protocol).

    Used to reproduce inconsistent-table states (stale codes after a
    crash + rejoin) that the join protocol itself would never produce.
    """
    from repro.sim.kernel import Simulator
    from tests.helpers import make_network

    sim = Simulator(21)
    network = make_network(sim)
    nodes = {}
    for addr, bits in codes.items():
        node = RecordingNode(sim, network, addr, config=OverlayConfig())
        node.active = True
        node._set_code(Code(bits))
        nodes[addr] = node
    return sim, network, nodes


def test_stale_link_cycle_falls_back_to_ring_recovery():
    # Regression (found by REPRO_SCHEDULE_FUZZ=shuffle): "b" crashed and
    # rejoined as 11111, but "a" still lists it under its old code 0001 —
    # the only candidate toward region 000.  Greedy then cycles
    # a -> b -> c -> a: at every hop the sole subtree candidate is already
    # on the path, and pre-fix the message bounced until route_ttl and
    # died "ttl-exceeded".  The revisit is now treated as a greedy dead
    # end: expanding-ring recovery escapes through e (equal prefix match,
    # outside the required subtree — exactly what greedy may not use) and
    # reaches d, the region's real owner.
    sim, network, nodes = _rig(
        {"a": "0011", "b": "11111", "c": "0111", "d": "0000", "e": "0010"}
    )
    a, b, c, d, e = (nodes[k] for k in "abcde")
    a.neighbors.upsert("b", Code("0001"))  # stale: b's pre-crash code
    a.neighbors.upsert("c", Code("0111"))
    a.neighbors.upsert("e", Code("0010"))
    b.neighbors.upsert("c", Code("0111"))
    c.neighbors.upsert("a", Code("0011"))
    c.neighbors.upsert("b", Code("11111"))
    e.neighbors.upsert("d", Code("0000"))

    a.route(Code("000"), "probe", {"stale": 1}, op_id="stale-cycle")
    sim.run_until(sim.now + 60.0)

    reasons = [
        f["reason"] for n in nodes.values() for f in n.failures
    ]
    assert "ttl-exceeded" not in reasons, f"greedy looped to death: {reasons}"
    assert any(env["inner"].get("stale") == 1 for env in d.arrivals), (
        f"message never escaped the stale cycle (failures: {reasons})"
    )
    assert a.ring_recoveries + c.ring_recoveries >= 1


def test_sibling_takeover_after_node_death():
    cfg = OverlayConfig(liveness_enabled=True, hb_interval_s=2.0, hb_timeout_s=7.0)
    sim, network, nodes = build_overlay(8, seed=15, node_cls=RecordingNode, config=cfg)
    victim = nodes[3]
    sibling_code = victim.code.sibling()
    siblings = [n for n in nodes if n.code == sibling_code]
    victim_code = victim.code
    network.set_node_up(victim.address, False)
    victim.crash()
    sim.run_until(sim.now + 60.0)
    if siblings:
        assert siblings[0].code == victim_code.shorten()
    live_covering = [n for n in nodes if n.in_overlay() and n.covers(victim_code)]
    assert live_covering, "dead region was never taken over"


def test_routing_still_works_after_takeover():
    cfg = OverlayConfig(liveness_enabled=True, hb_interval_s=2.0, hb_timeout_s=7.0)
    sim, network, nodes = build_overlay(12, seed=16, node_cls=RecordingNode, config=cfg)
    victim = nodes[5]
    victim_code = victim.code
    network.set_node_up(victim.address, False)
    victim.crash()
    sim.run_until(sim.now + 90.0)
    src = nodes[0] if nodes[0] is not victim else nodes[1]
    src.route(Code(victim_code.bits + "01"), "probe", {"after": 1}, op_id="post-takeover")
    sim.run_until(sim.now + 90.0)
    arrived = [
        n for n in nodes
        if n is not victim and any(env["inner"].get("after") == 1 for env in n.arrivals)
    ]
    assert arrived, "message to dead region was not re-homed"
