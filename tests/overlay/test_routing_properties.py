"""Property-style tests: greedy routing converges on random prefix covers."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.overlay.code import Code
from repro.overlay.neighbors import NeighborTable
from repro.overlay.routing import next_hop


def random_cover(rng: random.Random, splits: int):
    """Build a random prefix-free cover by repeatedly splitting leaves."""
    leaves = [Code("")]
    for _ in range(splits):
        victim = rng.choice(leaves)
        leaves.remove(victim)
        leaves.append(victim.extend("0"))
        leaves.append(victim.extend("1"))
    return leaves


def build_tables(leaves):
    tables = {}
    for code in leaves:
        table = NeighborTable()
        for other in leaves:
            if other != code:
                table.upsert(f"n{other.bits}", other)
        table.prune_to_neighborhood(code)
        tables[code] = table
    return tables


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=2**32), st.integers(min_value=1, max_value=40))
def test_greedy_routing_always_converges(seed, splits):
    rng = random.Random(seed)
    leaves = random_cover(rng, splits)
    tables = build_tables(leaves)
    target = rng.choice(leaves)
    deep_target = Code(target.bits + "0101"[: rng.randint(0, 4)])

    current = rng.choice(leaves)
    hops = 0
    max_len = max(len(c) for c in leaves)
    while True:
        decision = next_hop(
            current, deep_target, tables[current].hypercube_neighbors(current)
        )
        if decision.arrived:
            break
        assert decision.next_hop is not None, (
            f"dead end at {current} toward {deep_target} in cover "
            f"{[c.bits for c in leaves]}"
        )
        nxt = decision.next_code
        # Strict progress: the common prefix with the target grows.
        assert nxt.common_prefix_len(deep_target) > current.common_prefix_len(deep_target)
        current = nxt
        hops += 1
        assert hops <= max_len, "routing exceeded the code-length bound"
    assert current.comparable(deep_target)
    assert current == target


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=2**32))
def test_every_node_has_all_dimension_links(seed):
    rng = random.Random(seed)
    leaves = random_cover(rng, rng.randint(1, 30))
    tables = build_tables(leaves)
    for code in leaves:
        for dim in range(len(code)):
            assert tables[code].dimension_neighbors(code, dim), (
                f"{code} lacks a dim-{dim} link in a complete cover"
            )
