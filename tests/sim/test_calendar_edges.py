"""Calendar-queue edge cases: slot boundaries, cursor-slot mutation, drains.

The calendar front is an *ordering-transparent* accelerator: every test
here asserts the same observable sequence with the calendar on and off
(``num_slots=0``), under the default FIFO tie-break pinned explicitly so
the assertions hold in a schedule-fuzzed suite run too.
"""

from repro.sim.events import DEFAULT_SLOT_WIDTH, EventQueue, schedule_fuzz


def _pair(**kwargs):
    """A calendar-fronted queue and a plain-heap queue, fuzz pinned off."""
    with schedule_fuzz("off"):
        return EventQueue(**kwargs), EventQueue(num_slots=0)


def _drain(queue):
    out = []
    while True:
        event = queue.pop()
        if event is None:
            return out
        out.append((event.time, event.seq))


def test_slot_boundary_times_keep_global_order():
    # Times at exact slot-width multiples sit on bucket boundaries; the
    # (time, key) order must be unaffected by which bucket they land in.
    cal, heap = _pair()
    w = DEFAULT_SLOT_WIDTH
    times = [0.0, w, w, 2 * w, w / 2, 3 * w, 2 * w, w]
    for t in times:
        cal.push(t, lambda: None, ())
        heap.push(t, lambda: None, ())
    got_cal, got_heap = _drain(cal), _drain(heap)
    assert got_cal == got_heap
    assert got_cal == sorted(got_cal)


def test_cancel_in_cursor_slot_during_drain():
    # Cancel entries of the *current* (sorted, partially consumed) slot
    # between pops: the live remainder must still come out in order and
    # the live length must track exactly.
    cal, heap = _pair()
    events_cal = [cal.push(1.0, lambda: None, (i,)) for i in range(6)]
    events_heap = [heap.push(1.0, lambda: None, (i,)) for i in range(6)]
    assert cal.pop().args == heap.pop().args == (0,)
    # Now the calendar cursor sits inside a sorted slot; cancel ahead.
    for ev in (events_cal[2], events_cal[4]):
        ev.cancel()
    for ev in (events_heap[2], events_heap[4]):
        ev.cancel()
    assert len(cal) == len(heap) == 3
    assert [e.args[0] for e in iter(cal.pop, None)] == [1, 3, 5]
    assert [e.args[0] for e in iter(heap.pop, None)] == [1, 3, 5]
    assert len(cal) == 0 and cal.pop() is None


def test_push_into_sorted_cursor_slot_mid_drain():
    # A zero-delay push lands in the slot the cursor is consuming; with
    # FIFO keys it must fire after everything already scheduled there,
    # exactly as in the heap engine.
    cal, heap = _pair()
    for q in (cal, heap):
        for i in range(4):
            q.push(1.0, lambda: None, (i,))
    assert cal.pop().args == heap.pop().args == (0,)
    cal.push(1.0, lambda: None, (99,))
    heap.push(1.0, lambda: None, (99,))
    assert [e.args[0] for e in iter(cal.pop, None)] == [1, 2, 3, 99]
    assert [e.args[0] for e in iter(heap.pop, None)] == [1, 2, 3, 99]


def test_far_future_overflow_and_idle_jump_reanchor():
    # Events beyond the calendar horizon overflow to the heap; after the
    # near-future entries drain, the cursor re-anchors on the next push
    # and ordering across the jump stays exact.
    cal, heap = _pair(num_slots=8)
    w = DEFAULT_SLOT_WIDTH
    for q in (cal, heap):
        q.push(2 * w, lambda: None, ("near",))
        q.push(1e6, lambda: None, ("far",))
    assert cal.pop().args == heap.pop().args == ("near",)
    # Idle jump: the next near-future push re-anchors far from slot 0.
    for q in (cal, heap):
        q.push(5000.0, lambda: None, ("later",))
    assert [e.args[0] for e in iter(cal.pop, None)] == ["later", "far"]
    assert [e.args[0] for e in iter(heap.pop, None)] == ["later", "far"]


def test_push_behind_cursor_goes_to_heap_not_lost():
    # After the cursor advances past a slot, a push for an earlier time
    # (allowed by EventQueue even if the kernel forbids it) must fall
    # back to the heap and still pop first.
    cal, _ = _pair()
    w = DEFAULT_SLOT_WIDTH
    cal.push(10 * w, lambda: None, ("late",))
    assert cal.pop().args == ("late",)
    cal.push(10 * w, lambda: None, ("same-slot",))
    cal.push(2 * w, lambda: None, ("behind",))
    assert [e.args[0] for e in iter(cal.pop, None)] == ["behind", "same-slot"]


def test_interleaved_cancel_push_pop_matches_heap():
    # A deterministic stress mix over both engines: pushes clustered on
    # few timestamps (ties), interleaved cancels (including entries in
    # the cursor slot), and periodic pops.
    cal, heap = _pair(num_slots=16)
    live = ([], [])
    script = [(i * 37 % 11, i) for i in range(120)]
    out = ([], [])
    for step, (slot, i) in enumerate(script):
        t = slot * DEFAULT_SLOT_WIDTH
        for k, q in enumerate((cal, heap)):
            live[k].append(q.push(t, lambda: None, (i,)))
        if step % 5 == 4:
            for k in (0, 1):
                live[k][(step * 13) % len(live[k])].cancel()
        if step % 7 == 6:
            for k, q in enumerate((cal, heap)):
                ev = q.pop()
                if ev is not None:
                    out[k].append((ev.time, ev.seq))
        assert len(cal) == len(heap)
    out[0].extend(_drain(cal))
    out[1].extend(_drain(heap))
    assert out[0] == out[1]
