"""Property tests: EventQueue vs a naive sorted-list model.

The queue is a calendar-fronted binary heap with lazy cancellation and
periodic compaction; the model is a plain list of ``(time, key, event)``
tuples ordered by ``min()`` — ``key`` is the tie-break key, which equals
``seq`` unless schedule fuzz is on, so the same model checks the fuzzed
orders too.  Any sequence of push/cancel/pop/pop_due/peek operations
must be observationally identical between the two — including pushes
behind the calendar cursor, duplicate times (tie-break), cancels of
already-popped events, and compaction rebuilds.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.events import EventQueue

QUEUE_VARIANTS = [
    pytest.param({"num_slots": 0}, id="heap-only"),
    pytest.param({}, id="calendar"),
    pytest.param({"slot_width": 0.5, "num_slots": 4}, id="tiny-calendar"),
]

_TIMES = st.integers(0, 2000).map(lambda i: i / 8.0)
_OPS = st.lists(
    st.sampled_from(["push", "push", "push", "pop", "pop_due", "cancel", "peek"]),
    min_size=1,
    max_size=200,
)


def _noop():  # events are never fired by these tests
    raise AssertionError("queue tests never run callbacks")


@pytest.mark.parametrize("kwargs", QUEUE_VARIANTS)
@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_event_queue_matches_sorted_model(kwargs, data):
    queue = EventQueue(**kwargs)
    model = []  # live (time, key, event) tuples; min() is the next pop
    created = []  # every event ever pushed, for cancel-after-pop ops

    for op in data.draw(_OPS):
        if op == "push":
            t = data.draw(_TIMES)
            event = queue.push(t, _noop, ())
            model.append((t, event.key, event))
            created.append((t, event.key, event))
        elif op == "cancel" and created:
            # May hit a live, already-popped, or already-cancelled event;
            # all must be safe and only the live case changes the queue.
            entry = created[data.draw(st.integers(0, len(created) - 1))]
            entry[2].cancel()
            if entry in model:
                model.remove(entry)
        elif op == "pop":
            expected = min(model) if model else None
            got = queue.pop()
            if expected is None:
                assert got is None
            else:
                assert got is expected[2]
                model.remove(expected)
        elif op == "pop_due":
            limit = data.draw(_TIMES)
            due = [entry for entry in model if entry[0] <= limit]
            expected = min(due) if due else None
            got = queue.pop_due(limit)
            if expected is None:
                assert got is None
            else:
                assert got is expected[2]
                model.remove(expected)
        elif op == "peek":
            expected = min(model)[0] if model else None
            assert queue.peek_time() == expected
        assert len(queue) == len(model)

    # Drain: the tail must come out in exact (time, key) order.
    drained = []
    while True:
        event = queue.pop()
        if event is None:
            break
        drained.append(event)
    assert drained == [entry[2] for entry in sorted(model)]
    assert len(queue) == 0
    assert queue.peek_time() is None


@pytest.mark.parametrize("kwargs", QUEUE_VARIANTS)
def test_event_queue_compaction_matches_model(kwargs):
    # Long seeded run with a heavy cancel mix: drives _dead past the
    # compaction threshold many times so the rebuild path itself is
    # exercised, which short hypothesis sequences rarely reach.
    rng = random.Random(42)
    queue = EventQueue(**kwargs)
    model = []
    for _ in range(6000):
        r = rng.random()
        if r < 0.5 or not model:
            t = rng.randrange(0, 20000) / 8.0
            event = queue.push(t, _noop, ())
            model.append((t, event.key, event))
        elif r < 0.85:
            entry = model.pop(rng.randrange(len(model)))
            entry[2].cancel()
        else:
            expected = min(model)
            assert queue.pop() is expected[2]
            model.remove(expected)
        assert len(queue) == len(model)
    # ~1800 cancels happened while the live size stayed ~1000, so only
    # compaction can have kept the dead count under its trigger bound.
    assert queue._dead < 64 or queue._dead * 2 < queue._size
    drained = []
    while True:
        event = queue.pop()
        if event is None:
            break
        drained.append(event)
    assert drained == [entry[2] for entry in sorted(model)]
