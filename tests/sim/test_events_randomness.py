"""Unit tests for the event queue and named random streams."""

import pytest

from repro.sim.events import EventQueue, schedule_fuzz
from repro.sim.randomness import RandomStreams, derive_seed


def test_queue_orders_by_time():
    q = EventQueue()
    q.push(3.0, lambda: None, ())
    q.push(1.0, lambda: None, ())
    q.push(2.0, lambda: None, ())
    times = [q.pop().time for _ in range(3)]
    assert times == [1.0, 2.0, 3.0]
    assert q.pop() is None


def test_queue_fifo_within_same_time():
    # FIFO within a timestamp is the *default* tie-break; pin schedule
    # fuzz off so the assertion holds under a fuzzed suite run too.
    with schedule_fuzz("off"):
        q = EventQueue()
    events = [q.push(1.0, lambda: None, (i,)) for i in range(5)]
    popped = [q.pop().args[0] for _ in range(5)]
    assert popped == [0, 1, 2, 3, 4]


def test_cancelled_events_skipped():
    q = EventQueue()
    keep = q.push(2.0, lambda: None, ())
    drop = q.push(1.0, lambda: None, ())
    drop.cancel()
    assert q.pop() is keep


def test_peek_time_skips_cancelled():
    q = EventQueue()
    first = q.push(1.0, lambda: None, ())
    q.push(2.0, lambda: None, ())
    first.cancel()
    assert q.peek_time() == 2.0
    assert len(q) == 1


def test_peek_time_empty():
    assert EventQueue().peek_time() is None


def test_event_len_tracks_pushes():
    q = EventQueue()
    assert len(q) == 0
    q.push(1.0, lambda: None, ())
    assert len(q) == 1


# ---------------------------------------------------------------------------
# Random streams
# ---------------------------------------------------------------------------

def test_derive_seed_deterministic():
    assert derive_seed(42, "x") == derive_seed(42, "x")
    assert derive_seed(42, "x") != derive_seed(42, "y")
    assert derive_seed(42, "x") != derive_seed(43, "x")


def test_streams_independent_of_draw_order():
    a = RandomStreams(7)
    first = a.stream("one").random()
    _ = [a.stream("two").random() for _ in range(10)]

    b = RandomStreams(7)
    _ = [b.stream("two").random() for _ in range(10)]
    assert b.stream("one").random() == first


def test_stream_identity_cached():
    streams = RandomStreams(1)
    assert streams.stream("s") is streams.stream("s")


def test_reset_restores_initial_state():
    streams = RandomStreams(1)
    first = streams.stream("s").random()
    streams.stream("s").random()
    assert streams.reset("s").random() == first


def test_len_counts_only_live_events():
    q = EventQueue()
    events = [q.push(float(i), lambda: None, ()) for i in range(4)]
    assert len(q) == 4
    events[1].cancel()
    events[2].cancel()
    assert len(q) == 2
    # Cancelling twice must not double-count.
    events[1].cancel()
    assert len(q) == 2
    assert q.pop() is events[0]
    assert len(q) == 1
    assert q.pop() is events[3]
    assert len(q) == 0
    assert q.pop() is None


def test_cancel_after_pop_does_not_corrupt_len():
    q = EventQueue()
    first = q.push(1.0, lambda: None, ())
    q.push(2.0, lambda: None, ())
    assert q.pop() is first
    first.cancel()  # already executed; must not affect the live count
    assert len(q) == 1


def test_simulator_pending_events_excludes_cancelled():
    from repro.sim.kernel import Simulator

    sim = Simulator()
    keep = sim.schedule(1.0, lambda: None)
    drop = sim.schedule(2.0, lambda: None)
    drop.cancel()
    assert sim.pending_events == 1
    assert keep is not None
