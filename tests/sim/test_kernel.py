"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.events import schedule_fuzz
from repro.sim.kernel import SimulationError, Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0
    assert sim.pending_events == 0


def test_schedule_and_run_order():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, fired.append, "b")
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(3.0, fired.append, "c")
    sim.run_until_idle()
    assert fired == ["a", "b", "c"]
    assert sim.now == 3.0


def test_same_time_events_fifo():
    # FIFO within a timestamp is the *default* tie-break; pin schedule
    # fuzz off so the assertion holds under a fuzzed suite run too.
    with schedule_fuzz("off"):
        sim = Simulator()
    fired = []
    for tag in range(5):
        sim.schedule(1.0, fired.append, tag)
    sim.run_until_idle()
    assert fired == [0, 1, 2, 3, 4]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run_until_idle()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_run_until_stops_at_boundary():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(5.0, fired.append, 5)
    sim.run_until(2.0)
    assert fired == [1]
    assert sim.now == 2.0
    sim.run_until(5.0)
    assert fired == [1, 5]


def test_run_until_backwards_rejected():
    sim = Simulator()
    sim.run_until(3.0)
    with pytest.raises(SimulationError):
        sim.run_until(1.0)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    event.cancel()
    sim.run_until_idle()
    assert fired == []


def test_events_scheduled_during_run():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run_until_idle()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 3.0


def test_run_until_idle_guard():
    sim = Simulator()

    def forever():
        sim.schedule(1.0, forever)

    sim.schedule(0.0, forever)
    with pytest.raises(SimulationError):
        sim.run_until_idle(max_events=100)


def test_run_until_predicate_true_early():
    sim = Simulator()
    state = {"done": False}
    sim.schedule(1.0, state.__setitem__, "done", True)
    sim.schedule(100.0, lambda: None)
    assert sim.run_until_predicate(lambda: state["done"], timeout=10.0)
    assert sim.now < 100.0


def test_run_until_predicate_timeout():
    sim = Simulator()
    sim.schedule(100.0, lambda: None)
    assert not sim.run_until_predicate(lambda: False, timeout=5.0)
    assert sim.now == 5.0


def test_named_rng_streams_independent():
    a = Simulator(seed=7).rng("x").random()
    b = Simulator(seed=7).rng("x").random()
    c = Simulator(seed=7).rng("y").random()
    assert a == b
    assert a != c


def test_exceptions_propagate():
    sim = Simulator()

    def boom():
        raise RuntimeError("bad")

    sim.schedule(0.0, boom)
    with pytest.raises(RuntimeError):
        sim.run_until_idle()


def test_run_until_predicate_timeout_with_empty_queue_advances_clock():
    sim = Simulator()
    assert not sim.run_until_predicate(lambda: False, timeout=5.0)
    assert sim.now == 5.0


def test_run_until_predicate_never_rewinds_clock():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    sim.run_until(10.0)
    assert sim.now == 10.0
    # A zero timeout checks the predicate without moving time at all...
    assert not sim.run_until_predicate(lambda: False, timeout=0.0)
    assert sim.now == 10.0
    # ...and a (misuse) negative timeout must not move time backwards.
    assert not sim.run_until_predicate(lambda: False, timeout=-3.0)
    assert sim.now == 10.0


def test_run_until_predicate_timeout_leaves_future_events_pending():
    sim = Simulator()
    fired = []
    sim.schedule(100.0, fired.append, "late")
    assert not sim.run_until_predicate(lambda: False, timeout=5.0)
    assert sim.now == 5.0
    assert not fired
    assert sim.pending_events == 1


def test_run_until_predicate_batches_predicate_calls():
    # Regression: the loop used to evaluate the predicate after *every*
    # event regardless of poll_events (the since_check counter was dead).
    sim = Simulator()
    for i in range(10):
        sim.schedule(float(i + 1), lambda: None)
    calls = {"n": 0}

    def predicate():
        calls["n"] += 1
        return False

    assert not sim.run_until_predicate(predicate, timeout=100.0, poll_events=5)
    # One up-front check, one per 5-event batch (10 events = 2 batches),
    # and one final check when the queue drains at the deadline.
    assert calls["n"] == 1 + 2 + 1


def test_run_until_predicate_poll_events_checks_at_batch_boundary():
    # With poll_events=4 a condition that becomes true at event 3 is only
    # observed at the batch boundary (event 4) — that is the documented
    # cost of batching an expensive predicate.
    sim = Simulator()
    state = {"count": 0}
    for i in range(10):
        sim.schedule(float(i + 1), state.__setitem__, "count", i + 1)
    assert sim.run_until_predicate(
        lambda: state["count"] >= 3, timeout=100.0, poll_events=4
    )
    assert state["count"] == 4
    assert sim.now == 4.0


def test_run_until_predicate_rejects_bad_poll_events():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.run_until_predicate(lambda: True, timeout=1.0, poll_events=0)
