"""Unit tests for the resource-lifecycle ledger (repro-leak, runtime half)."""

import pytest

from repro.sim import resources
from repro.sim.kernel import Simulator
from repro.sim.resources import ResourceLeakError, ResourceLedger


def test_register_release_round_trip():
    ledger = ResourceLedger()
    ledger.register("op:insert", "node001")
    ledger.register("op:insert", "node001")
    ledger.register("net:outbox", "node002")
    assert ledger.live() == 3
    assert ledger.snapshot() == [
        ("net:outbox", "node002", 1),
        ("op:insert", "node001", 2),
    ]
    ledger.release("op:insert", "node001")
    ledger.release("op:insert", "node001")
    ledger.release("net:outbox", "node002")
    assert ledger.live() == 0
    ledger.assert_quiescent("test")  # empty: no raise


def test_release_without_register_raises():
    # Strict by design: a removal path running twice (or against state it
    # never created) is itself a lifecycle bug, not something to mask.
    ledger = ResourceLedger()
    with pytest.raises(ResourceLeakError, match="release without matching register"):
        ledger.release("op:query", "node009")
    ledger.register("op:query", "node009")
    ledger.release("op:query", "node009")
    with pytest.raises(ResourceLeakError):
        ledger.release("op:query", "node009")


def test_quiescence_diff_names_owners():
    ledger = ResourceLedger()
    ledger.register("op:trigger-reg", "node004")
    ledger.register("op:trigger-reg", "node004")
    ledger.register("net:outbox", "node007")
    with pytest.raises(ResourceLeakError) as excinfo:
        ledger.assert_quiescent("run_until_idle")
    text = str(excinfo.value)
    assert "run_until_idle: 3 resource(s) still live" in text
    assert "op:trigger-reg 'node004' x2" in text
    assert "net:outbox 'node007' x1" in text


def test_mode_is_captured_at_simulator_construction():
    with resources.tracking(False):
        untracked = Simulator(seed=1)
        with resources.tracking(True):
            tracked = Simulator(seed=1)
        assert untracked.resources is None
        assert tracked.resources is not None
        # Flipping the mode later never retrofits an existing simulator.
        assert untracked.resources is None


def test_run_until_idle_raises_on_leaked_registration():
    with resources.tracking(True):
        sim = Simulator(seed=3)
    sim.resources.register("op:insert", "node000")
    sim.schedule(1.0, lambda: None)
    with pytest.raises(ResourceLeakError, match="op:insert 'node000' x1"):
        sim.run_until_idle()
    # Releasing the entry makes the same checkpoint pass.
    sim.resources.release("op:insert", "node000")
    sim.run_until_idle()


def test_tracking_off_costs_nothing():
    with resources.tracking(False):
        sim = Simulator(seed=4)
    assert sim.resources is None
    sim.schedule(1.0, lambda: None)
    sim.run_until_idle()  # no ledger, no check
