"""Schedule fuzz: seeded perturbation of same-timestamp event ordering.

The runtime half of repro-race: ``REPRO_SCHEDULE_FUZZ=shuffle|reverse``
replaces the FIFO tie-break among equal-time events with a seeded
pseudo-random (or reversed) one.  These tests pin the contract: the
perturbation is deterministic per seed, touches *only* ties, and the
calendar and heap engines observe the identical perturbed order.
"""

import pytest

from repro.sim.events import EventQueue, schedule_fuzz, set_schedule_fuzz
from repro.sim.kernel import Simulator


def _drain(queue):
    tags = []
    while True:
        event = queue.pop()
        if event is None:
            return tags
        tags.append(event.args[0])


def _same_time_order(mode, seed, count=12, num_slots=None):
    with schedule_fuzz(mode, seed):
        queue = EventQueue() if num_slots is None else EventQueue(num_slots=num_slots)
    for i in range(count):
        queue.push(1.0, lambda: None, (i,))
    return _drain(queue)


def test_off_is_fifo():
    assert _same_time_order("off", 0) == list(range(12))


def test_reverse_is_lifo():
    assert _same_time_order("reverse", 0) == list(reversed(range(12)))


def test_shuffle_is_a_nontrivial_permutation():
    order = _same_time_order("shuffle", 1)
    assert sorted(order) == list(range(12))
    assert order != list(range(12))
    assert order != list(reversed(range(12)))


def test_shuffle_is_deterministic_per_seed():
    assert _same_time_order("shuffle", 7) == _same_time_order("shuffle", 7)


def test_shuffle_seeds_select_different_orders():
    orders = {tuple(_same_time_order("shuffle", seed)) for seed in range(4)}
    assert len(orders) > 1


def test_distinct_times_unaffected_by_fuzz():
    times = [5.0, 1.0, 3.0, 2.0, 4.0]
    for mode, seed in (("off", 0), ("shuffle", 3), ("reverse", 0)):
        with schedule_fuzz(mode, seed):
            queue = EventQueue()
        for t in times:
            queue.push(t, lambda: None, (t,))
        assert _drain(queue) == sorted(times), mode


def test_heap_and_calendar_engines_agree_under_fuzz():
    # The tie key is part of the stored entry, so the calendar-fronted
    # queue and the plain heap must produce the identical perturbed order.
    schedule = [(0.001 * (i % 5), i) for i in range(40)]  # dense ties
    for seed in range(3):
        orders = []
        for num_slots in (None, 0):
            with schedule_fuzz("shuffle", seed):
                queue = (
                    EventQueue() if num_slots is None else EventQueue(num_slots=0)
                )
            for t, tag in schedule:
                queue.push(t, lambda: None, (tag,))
            orders.append(_drain(queue))
        assert orders[0] == orders[1], f"engines diverge under shuffle seed {seed}"


def test_mode_captured_at_queue_construction():
    with schedule_fuzz("reverse"):
        queue = EventQueue()
    # Mode changes after construction must not affect an existing queue.
    for i in range(4):
        queue.push(1.0, lambda: None, (i,))
    assert _drain(queue) == [3, 2, 1, 0]


def test_set_schedule_fuzz_rejects_unknown_mode():
    with pytest.raises(ValueError):
        set_schedule_fuzz("random")


def test_zero_delay_push_while_draining_is_not_lost():
    # Regression for the cursor-slot insort clamp: once a slot is sorted
    # and partially consumed, a same-timestamp push may draw a shuffled
    # tie key *below* an already-fired entry's.  An unclamped insort
    # buries such an entry behind the cursor and the event never fires.
    hazard_exercised = False
    for seed in range(8):
        with schedule_fuzz("shuffle", seed):
            queue = EventQueue()
        first = [queue.push(1.0, lambda: None, ("a", i)) for i in range(3)]
        fired = [queue.pop()]
        consumed_key = fired[0].key
        late = [queue.push(1.0, lambda: None, ("b", i)) for i in range(6)]
        if any(event.key < consumed_key for event in late):
            hazard_exercised = True
        while True:
            event = queue.pop()
            if event is None:
                break
            fired.append(event)
        # Identity, not count: the unclamped-insort failure mode fires the
        # already-consumed entry a second time in place of the lost push,
        # so a bare length check would not catch it.
        tags = sorted(e.args for e in fired)
        expected = sorted(e.args for e in first + late)
        assert tags == expected, f"lost/duplicated events under shuffle seed {seed}"
        keys = [e.key for e in fired[1:]]
        assert keys == sorted(keys), "unconsumed suffix left unsorted"
    assert hazard_exercised, "no seed produced a below-cursor tie key"


def test_simulator_time_order_preserved_under_fuzz():
    for mode, seed in (("shuffle", 2), ("reverse", 0)):
        with schedule_fuzz(mode, seed):
            sim = Simulator(seed=9)
        seen = []
        for i in range(50):
            sim.schedule(float(i % 7) * 0.5, seen.append, i)
        sim.run_until_idle()
        # Time order is sacred; only ties within a timestamp may move.
        times = {i: float(i % 7) * 0.5 for i in range(50)}
        fired_times = [times[i] for i in seen]
        assert fired_times == sorted(fired_times)
        assert sorted(seen) == list(range(50))
