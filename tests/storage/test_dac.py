"""Unit tests for the Database Access Controller queue model."""

import pytest

from repro.sim.kernel import Simulator
from repro.storage.dac import DacConfig, DataAccessController


def test_single_op_costs_service_time():
    sim = Simulator()
    dac = DataAccessController(sim, DacConfig())
    done = []
    dac.submit(0.01, done.append, "a")
    sim.run_until_idle()
    assert done == ["a"]
    assert sim.now == pytest.approx(0.01)


def test_ops_serialize():
    sim = Simulator()
    dac = DataAccessController(sim, DacConfig())
    times = []
    dac.submit(0.01, lambda: times.append(sim.now))
    dac.submit(0.01, lambda: times.append(sim.now))
    dac.submit(0.01, lambda: times.append(sim.now))
    sim.run_until_idle()
    assert times == pytest.approx([0.01, 0.02, 0.03])


def test_queue_delay_visible():
    sim = Simulator()
    dac = DataAccessController(sim, DacConfig())
    dac.submit(0.5, lambda: None)
    assert dac.queue_delay_s == pytest.approx(0.5)


def test_speed_factor_scales_cost():
    sim = Simulator()
    dac = DataAccessController(sim, DacConfig(), speed_factor=4.0)
    dac.submit(0.01, lambda: None)
    sim.run_until_idle()
    assert sim.now == pytest.approx(0.04)


def test_negative_cost_rejected():
    sim = Simulator()
    dac = DataAccessController(sim, DacConfig())
    with pytest.raises(ValueError):
        dac.submit(-1.0, lambda: None)


def test_cost_models_monotonic():
    sim = Simulator()
    dac = DataAccessController(sim, DacConfig())
    assert dac.insert_cost(10) > dac.insert_cost(1)
    assert dac.query_cost(1000) > dac.query_cost(0)
    assert dac.replica_cost(1) > 0


def test_counters():
    sim = Simulator()
    dac = DataAccessController(sim, DacConfig())
    dac.submit(0.01, lambda: None)
    dac.submit(0.02, lambda: None)
    sim.run_until_idle()
    assert dac.ops_served == 2
    assert dac.busy_time == pytest.approx(0.03)


def test_idle_gap_then_new_op():
    sim = Simulator()
    dac = DataAccessController(sim, DacConfig())
    dac.submit(0.01, lambda: None)
    sim.run_until_idle()
    sim.schedule(1.0, lambda: dac.submit(0.01, lambda: None))
    sim.run_until_idle()
    # The op submitted at t=1.01 starts immediately (finishing at 1.02),
    # not queued behind the long-finished first op.
    assert sim.now == pytest.approx(1.02)
