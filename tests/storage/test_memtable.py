"""Unit tests for the time-partitioned store."""

import random

import pytest

from repro.core.records import Record
from repro.core.schema import AttributeSpec, IndexSchema
from repro.storage.memtable import TimePartitionedStore


@pytest.fixture
def schema():
    return IndexSchema(
        "s",
        attributes=[
            AttributeSpec("x", 0.0, 100.0),
            AttributeSpec("timestamp", 0.0, 86400.0, is_time=True),
        ],
    )


def test_insert_and_len(schema):
    store = TimePartitionedStore(schema)
    assert store.insert(Record([1.0, 10.0]))
    assert len(store) == 1


def test_duplicate_key_dropped(schema):
    store = TimePartitionedStore(schema)
    r = Record([1.0, 10.0])
    assert store.insert(r)
    assert not store.insert(r)
    assert len(store) == 1


def test_query_rect(schema):
    store = TimePartitionedStore(schema)
    a = Record([10.0, 100.0])
    b = Record([90.0, 100.0])
    store.insert(a)
    store.insert(b)
    hits = store.query(((0.0, 0.5), (0.0, 1.0)))
    assert [r.key for r in hits] == [a.key]


def test_query_time_pruning(schema):
    store = TimePartitionedStore(schema, bucket_s=100.0)
    early = Record([10.0, 50.0])
    late = Record([10.0, 5000.0])
    store.insert(early)
    store.insert(late)
    full = ((0.0, 1.0), (0.0, 1.0))
    hits = store.query(full, time_range=(0.0, 100.0))
    assert [r.key for r in hits] == [early.key]
    hits = store.query(full, time_range=(4900.0, 5100.0))
    assert [r.key for r in hits] == [late.key]
    assert len(store.query(full)) == 2


def test_tiny_positive_time_upper_bound_keeps_bucket_zero(schema):
    # Regression (found by the store property test): bucket pruning used a
    # fixed epsilon (hi - 1e-9) to handle the half-open upper bound, so a
    # time range like (-1.0, 1e-308) — hi positive but below the epsilon —
    # pruned bucket 0 and dropped a record at t=0 the rectangle admits.
    store = TimePartitionedStore(schema, bucket_s=100.0)
    at_zero = Record([10.0, 0.0])
    store.insert(at_zero)
    full = ((0.0, 1.0), (0.0, 1.0))
    hits = store.query(full, time_range=(-1.0, 1e-308))
    assert [r.key for r in hits] == [at_zero.key]
    # The half-open bound itself still excludes: [lo, 0.0) holds nothing.
    assert store.query(full, time_range=(-1.0, 0.0)) == []


def test_clamped_records_match_top_rect(schema):
    store = TimePartitionedStore(schema)
    big = Record([1e9, 10.0])  # x beyond domain clamps to top
    store.insert(big)
    hits = store.query(((0.99, 1.0), (0.0, 1.0)))
    assert [r.key for r in hits] == [big.key]


def test_drop_before(schema):
    store = TimePartitionedStore(schema, bucket_s=100.0)
    old = Record([10.0, 50.0])
    new = Record([10.0, 250.0])
    store.insert(old)
    store.insert(new)
    removed = store.drop_before(200.0)
    assert removed == 1
    assert len(store) == 1
    assert old.key not in store
    assert new.key in store


def test_no_time_dimension_single_bucket():
    schema = IndexSchema("nt", attributes=[AttributeSpec("x", 0.0, 10.0)])
    store = TimePartitionedStore(schema)
    store.insert(Record([5.0]))
    assert len(store.query(((0.0, 1.0),))) == 1
    assert store.drop_before(1e9) == 0


def test_many_records_query_consistency(schema):
    store = TimePartitionedStore(schema, bucket_s=300.0)
    rng = random.Random(0)
    records = [Record([rng.uniform(0, 100), rng.uniform(0, 86400)]) for _ in range(500)]
    for r in records:
        store.insert(r)
    rect = ((0.2, 0.7), (0.1, 0.4))
    expected = {
        r.key
        for r in records
        if 20 <= r.values[0] < 70 and 8640 <= r.values[1] < 34560
    }
    got = {r.key for r in store.query(rect)}
    assert got == expected


def test_wide_time_range_intersects_existing_buckets(schema):
    # A huge requested span must cost O(buckets), not O(span / bucket_s):
    # with the old range() materialization this query would build a
    # ~10^12-element candidate list and effectively hang.
    store = TimePartitionedStore(schema, bucket_s=1e-4)
    records = [Record([10.0, t]) for t in (1.0, 2.0, 3.0)]
    for r in records:
        store.insert(r)
    hits = store.query(((0.0, 1.0), (0.0, 1.0)), time_range=(0.0, 1e8))
    assert {r.key for r in hits} == {r.key for r in records}


def test_candidate_buckets_sorted_and_pruned(schema):
    store = TimePartitionedStore(schema, bucket_s=100.0)
    for t in (950.0, 50.0, 450.0):
        store.insert(Record([1.0, t]))
    assert list(store._candidate_buckets(None)) == [0, 4, 9]
    assert list(store._candidate_buckets((0.0, 500.0))) == [0, 4]
    assert list(store._candidate_buckets((400.0, 10_000.0))) == [4, 9]
