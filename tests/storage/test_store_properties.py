"""Property-based tests: the store agrees with brute-force evaluation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.query import RangeQuery
from repro.core.records import Record
from repro.core.schema import AttributeSpec, IndexSchema
from repro.storage.memtable import TimePartitionedStore

SCHEMA = IndexSchema(
    "prop",
    attributes=[
        AttributeSpec("x", 0.0, 100.0),
        AttributeSpec("timestamp", 0.0, 1000.0, is_time=True),
        AttributeSpec("v", -50.0, 50.0),
    ],
)

value_st = st.tuples(
    st.floats(min_value=0, max_value=99.99),
    st.floats(min_value=0, max_value=999.99),
    st.floats(min_value=-50, max_value=49.99),
)

bound_st = st.one_of(st.none(), st.floats(min_value=-60, max_value=1100))


def make_query(bx, bt, bv):
    def iv(pair):
        lo, hi = pair
        if lo is not None and hi is not None and lo > hi:
            lo, hi = hi, lo
        return (lo, hi)

    return RangeQuery("prop", {"x": iv(bx), "timestamp": iv(bt), "v": iv(bv)})


@settings(max_examples=60, deadline=None)
@given(
    st.lists(value_st, min_size=0, max_size=50),
    st.tuples(bound_st, bound_st),
    st.tuples(bound_st, bound_st),
    st.tuples(bound_st, bound_st),
)
def test_store_query_matches_bruteforce(values, bx, bt, bv):
    store = TimePartitionedStore(SCHEMA, bucket_s=100.0)
    records = [Record(list(v)) for v in values]
    for r in records:
        store.insert(r)
    query = make_query(bx, bt, bv)

    rect = query.normalized_rect(SCHEMA)
    time_dim = SCHEMA.time_dimension()
    lo, hi = query.interval("timestamp")
    t_range = (lo, hi) if lo is not None and hi is not None else None

    got = {r.key for r in store.query(rect, t_range)}
    expected = {r.key for r in records if query.matches(SCHEMA, r)}
    assert got == expected


@settings(max_examples=30, deadline=None)
@given(st.lists(value_st, min_size=1, max_size=40))
def test_full_space_query_returns_everything(values):
    store = TimePartitionedStore(SCHEMA, bucket_s=50.0)
    records = [Record(list(v)) for v in values]
    for r in records:
        store.insert(r)
    query = RangeQuery("prop", {})
    got = {r.key for r in store.query(query.normalized_rect(SCHEMA))}
    assert got == {r.key for r in records}


@settings(max_examples=30, deadline=None)
@given(st.lists(value_st, min_size=1, max_size=40), st.floats(min_value=0, max_value=1000))
def test_drop_before_then_query(values, cutoff):
    store = TimePartitionedStore(SCHEMA, bucket_s=100.0)
    records = [Record(list(v)) for v in values]
    for r in records:
        store.insert(r)
    store.drop_before(cutoff)
    got = {r.key for r in store.query(RangeQuery("prop", {}).normalized_rect(SCHEMA))}
    # Whole buckets are dropped: records at or after the cutoff survive;
    # records in a partially-covered bucket may survive too (bucket
    # granularity), but nothing at or after the cutoff may vanish.
    must_survive = {r.key for r in records if r.values[1] >= cutoff}
    assert must_survive <= got
